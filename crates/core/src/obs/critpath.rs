//! Post-mortem critical-path analysis of an executed DAG.
//!
//! The quantitative form of the paper's depth-first-scheduling and
//! granularity discussions: from the captured [`GraphTemplate`] and the
//! lifecycle event stream, compute the longest weighted dependence chain
//! (node weight = measured schedule→completion time), and compare it to
//! the achieved makespan and the ideal `T1/p`. Template node ids are
//! *mostly* discovery-ordered, but optimization (c) inserts redirect
//! nodes after the dependent task they feed — an edge from a higher to
//! a lower id — so the longest-path pass runs over an explicit Kahn
//! topological order rather than ascending ids.

use super::event::{EventKind, RtEvent};
use crate::graph::GraphTemplate;

/// Result of a critical-path computation.
#[derive(Clone, Debug, Default)]
pub struct CritPath {
    /// Length of the heaviest dependence chain, ns.
    pub cp_ns: u64,
    /// Tasks on that chain.
    pub cp_tasks: usize,
    /// Total work `T1` (sum of per-task times), ns.
    pub t1_ns: u64,
    /// Achieved makespan, ns.
    pub makespan_ns: u64,
    /// Cores the run had available.
    pub n_cores: usize,
    /// Cumulated time per task name along the critical path, heaviest
    /// first: `(name, total_ns, count)`.
    pub top_tasks: Vec<(&'static str, u64, usize)>,
}

impl CritPath {
    /// The ideal lower bound `T1 / p`, ns.
    pub fn ideal_ns(&self) -> u64 {
        self.t1_ns / self.n_cores.max(1) as u64
    }

    /// Human-readable report (top-`k` critical-path task names).
    pub fn render(&self, k: usize) -> String {
        let ms = |ns: u64| ns as f64 * 1e-6;
        let mut out = format!(
            "critical path: {:.3} ms over {} tasks | makespan {:.3} ms | \
             T1 {:.3} ms | T1/p {:.3} ms (p = {})\n",
            ms(self.cp_ns),
            self.cp_tasks,
            ms(self.makespan_ns),
            ms(self.t1_ns),
            ms(self.ideal_ns()),
            self.n_cores,
        );
        for (i, (name, ns, count)) in self.top_tasks.iter().take(k).enumerate() {
            out.push_str(&format!(
                "  {:>2}. {:<28} {:>10.3} ms  ({count} on path)\n",
                i + 1,
                name,
                ms(*ns),
            ));
        }
        out
    }
}

/// Mean schedule→completion duration per template node, derived from the
/// event stream (persistent runs see each id once per iteration; the mean
/// is the per-iteration weight). Redirect nodes and tasks that never
/// scheduled weigh zero.
fn durations(n_nodes: usize, events: &[RtEvent]) -> Vec<u64> {
    let mut open: Vec<Option<u64>> = vec![None; n_nodes];
    let mut sum: Vec<u64> = vec![0; n_nodes];
    let mut count: Vec<u64> = vec![0; n_nodes];
    for e in events {
        let i = e.id.index();
        if i >= n_nodes {
            continue;
        }
        match e.kind {
            EventKind::Scheduled => open[i] = Some(e.t_ns),
            EventKind::Completed => {
                if let Some(t0) = open[i].take() {
                    sum[i] += e.t_ns.saturating_sub(t0);
                    count[i] += 1;
                }
            }
            _ => {}
        }
    }
    (0..n_nodes)
        .map(|i| sum[i].checked_div(count[i]).unwrap_or(0))
        .collect()
}

/// Longest weighted path over the executed DAG.
///
/// `makespan_ns` is the run's wall (or virtual) execution span and
/// `n_cores` its parallelism, both reported back for the `cp ≤ makespan`
/// and `T1/p ≤ makespan` comparisons.
pub fn critical_path(
    graph: &GraphTemplate,
    events: &[RtEvent],
    makespan_ns: u64,
    n_cores: usize,
) -> CritPath {
    let n = graph.n_nodes();
    let dur = durations(n, events);
    // Kahn topological order: redirect nodes (optimization (c)) are
    // created after the task they feed, so ascending ids would visit
    // some successors before their predecessor and under-count chains
    // passing through a redirect.
    let mut indegree: Vec<usize> = vec![0; n];
    for id in graph.ids() {
        for s in graph.successors(id) {
            indegree[s.index()] += 1;
        }
    }
    let mut order: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let i = order[head];
        head += 1;
        for s in graph.successors(crate::task::TaskId(i as u32)) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                order.push(s.index());
            }
        }
    }
    debug_assert_eq!(order.len(), n, "executed template is acyclic");
    let mut dist: Vec<u64> = vec![0; n]; // longest-path length *into* node
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for &i in &order {
        let reach = dist[i] + dur[i];
        for s in graph.successors(crate::task::TaskId(i as u32)) {
            if reach > dist[s.index()] {
                dist[s.index()] = reach;
                parent[s.index()] = Some(i);
            }
        }
    }
    let end = (0..n).max_by_key(|&i| dist[i] + dur[i]);
    let mut cp = CritPath {
        makespan_ns,
        n_cores,
        t1_ns: dur.iter().sum(),
        ..Default::default()
    };
    let Some(end) = end else { return cp };
    cp.cp_ns = dist[end] + dur[end];
    // Walk the chain, aggregating time per task name.
    let mut by_name: std::collections::HashMap<&'static str, (u64, usize)> =
        std::collections::HashMap::new();
    let mut cursor = Some(end);
    while let Some(i) = cursor {
        if !graph.node(crate::task::TaskId(i as u32)).is_redirect {
            cp.cp_tasks += 1;
            let e = by_name
                .entry(graph.node(crate::task::TaskId(i as u32)).name)
                .or_default();
            e.0 += dur[i];
            e.1 += 1;
        }
        cursor = parent[i];
    }
    cp.top_tasks = by_name.into_iter().map(|(k, (ns, c))| (k, ns, c)).collect();
    cp.top_tasks
        .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DiscoveryEngine, TemplateRecorder};
    use crate::opts::OptConfig;
    use crate::task::{TaskId, TaskSpec};
    use crate::{AccessMode, HandleSpace};

    /// w(0) -> {a(1), b(2)} -> r(3)
    fn diamond() -> GraphTemplate {
        let mut space = HandleSpace::new();
        let x = space.region("x", 4096);
        let y = space.region("y", 4096);
        let z = space.region("z", 4096);
        let mut engine = DiscoveryEngine::new(OptConfig::none());
        let mut rec = TemplateRecorder::new(false);
        for spec in [
            TaskSpec::new("w").depend(x, AccessMode::Out),
            TaskSpec::new("a")
                .depend(x, AccessMode::In)
                .depend(y, AccessMode::Out),
            TaskSpec::new("b")
                .depend(x, AccessMode::In)
                .depend(z, AccessMode::Out),
            TaskSpec::new("r")
                .depend(y, AccessMode::In)
                .depend(z, AccessMode::In),
        ] {
            engine.submit(&mut rec, &spec);
        }
        rec.finish()
    }

    fn sched(id: u32, t: u64) -> RtEvent {
        RtEvent {
            t_ns: t,
            aux: u64::MAX,
            id: TaskId(id),
            core: 0,
            kind: EventKind::Scheduled,
        }
    }
    fn comp(id: u32, t: u64) -> RtEvent {
        RtEvent {
            t_ns: t,
            aux: u64::MAX,
            id: TaskId(id),
            core: 0,
            kind: EventKind::Completed,
        }
    }

    #[test]
    fn picks_the_heavier_branch() {
        let g = diamond();
        // w: 10, a: 5, b: 50, r: 10 — critical path w->b->r = 70
        let events = vec![
            sched(0, 0),
            comp(0, 10),
            sched(1, 10),
            comp(1, 15),
            sched(2, 10),
            comp(2, 60),
            sched(3, 60),
            comp(3, 70),
        ];
        let cp = critical_path(&g, &events, 70, 2);
        assert_eq!(cp.cp_ns, 70);
        assert_eq!(cp.cp_tasks, 3);
        assert_eq!(cp.t1_ns, 75);
        assert_eq!(cp.ideal_ns(), 37);
        assert_eq!(cp.top_tasks[0].0, "b", "heaviest name first");
        assert!(cp.cp_ns <= cp.makespan_ns);
        let report = cp.render(3);
        assert!(report.contains("critical path"));
        assert!(report.contains("b"));
    }

    #[test]
    fn empty_graph_and_events_are_safe() {
        let rec = TemplateRecorder::new(false);
        let g = rec.finish();
        let cp = critical_path(&g, &[], 0, 4);
        assert_eq!(cp.cp_ns, 0);
        assert_eq!(cp.t1_ns, 0);
    }

    #[test]
    fn persistent_reuse_averages_durations() {
        let g = diamond();
        // Two iterations of the same ids; b takes 40 then 60 -> mean 50.
        let mut events = Vec::new();
        for (base, b_dur) in [(0u64, 40u64), (1_000, 60)] {
            events.extend([
                sched(0, base),
                comp(0, base + 10),
                sched(2, base + 10),
                comp(2, base + 10 + b_dur),
                sched(1, base + 10),
                comp(1, base + 15),
                sched(3, base + 10 + b_dur),
                comp(3, base + 20 + b_dur),
            ]);
        }
        let cp = critical_path(&g, &events, 2_000, 2);
        assert_eq!(cp.cp_ns, 10 + 50 + 10);
    }
}
