//! Dependency-protected shared data.
//!
//! Task bodies running on different workers need mutable access to shared
//! arrays (mesh fields, vectors, tiles). In OpenMP this is ordinary shared
//! memory and the `depend` clauses are what make it race-free. [`SharedVec`]
//! is the Rust equivalent: an interior-mutable array whose *safety contract
//! is the dependency graph* — two tasks may touch overlapping elements only
//! if the graph orders them.
//!
//! The API is deliberately explicit about this: all element access goes
//! through [`SharedVec::slice`] / [`SharedVec::slice_mut`], which are safe
//! to *call* but document that disjointness/ordering is the caller's
//! obligation, exactly as in any OpenMP program. Property tests in the
//! applications verify the contract holds by checking deterministic results
//! across schedulers.

use std::cell::UnsafeCell;
use std::sync::Arc;

/// A shared, interior-mutable, fixed-length array of `T`.
///
/// Cloning shares the underlying storage (it is an `Arc`).
pub struct SharedVec<T> {
    data: Arc<Vec<UnsafeCell<T>>>,
}

// SAFETY: concurrent access is coordinated by the task dependency graph;
// see the module documentation. `T: Send + Sync` is required so elements
// may be read/written from any worker.
unsafe impl<T: Send + Sync> Send for SharedVec<T> {}
unsafe impl<T: Send + Sync> Sync for SharedVec<T> {}

impl<T> Clone for SharedVec<T> {
    fn clone(&self) -> Self {
        SharedVec {
            data: Arc::clone(&self.data),
        }
    }
}

impl<T: Clone> SharedVec<T> {
    /// A shared vector of `len` copies of `init`.
    pub fn new(len: usize, init: T) -> Self {
        SharedVec {
            data: Arc::new((0..len).map(|_| UnsafeCell::new(init.clone())).collect()),
        }
    }
}

impl<T> SharedVec<T> {
    /// Build from an existing vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        SharedVec {
            data: Arc::new(v.into_iter().map(UnsafeCell::new).collect()),
        }
    }

    /// Length of the array.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of `range`.
    ///
    /// Safety contract (checked by the *dependency graph*, not the borrow
    /// checker): no task ordered concurrently with the caller writes any
    /// element of `range`.
    #[allow(clippy::mut_from_ref)]
    pub fn slice(&self, range: std::ops::Range<usize>) -> &[T] {
        assert!(range.end <= self.len());
        // SAFETY: see module docs — the task graph serializes conflicting
        // accesses; UnsafeCell<T> has the same layout as T.
        unsafe {
            std::slice::from_raw_parts(
                self.data[range.start..range.end].as_ptr() as *const T,
                range.len(),
            )
        }
    }

    /// Mutable view of `range`.
    ///
    /// Safety contract: the dependency graph must give the calling task
    /// exclusive access to `range` (it declared `out`/`inout` on the handle
    /// covering it, or `inoutset` with member-disjoint writes).
    #[allow(clippy::mut_from_ref)]
    pub fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        assert!(range.end <= self.len());
        // SAFETY: as above; exclusivity guaranteed by task ordering.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.data[range.start..range.end].as_ptr() as *mut T,
                range.len(),
            )
        }
    }

    /// Read one element (same contract as [`SharedVec::slice`]).
    pub fn get(&self, i: usize) -> &T {
        &self.slice(i..i + 1)[0]
    }

    /// Write one element (same contract as [`SharedVec::slice_mut`]).
    pub fn set(&self, i: usize, v: T) {
        self.slice_mut(i..i + 1)[0] = v;
    }

    /// Copy out the entire contents (for verification at quiescent points).
    pub fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.slice(0..self.len()).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_read_write() {
        let v = SharedVec::new(4, 0i64);
        v.set(2, 42);
        assert_eq!(*v.get(2), 42);
        assert_eq!(v.snapshot(), vec![0, 0, 42, 0]);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
    }

    #[test]
    fn from_vec_preserves_contents() {
        let v = SharedVec::from_vec(vec![1.0f64, 2.0, 3.0]);
        assert_eq!(v.slice(0..3), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn clones_share_storage() {
        let a = SharedVec::new(2, 0u32);
        let b = a.clone();
        a.set(0, 7);
        assert_eq!(*b.get(0), 7);
    }

    #[test]
    fn disjoint_mut_slices_are_usable_in_parallel() {
        let v = SharedVec::new(100, 0usize);
        let v1 = v.clone();
        let v2 = v.clone();
        let t1 = std::thread::spawn(move || {
            for (i, x) in v1.slice_mut(0..50).iter_mut().enumerate() {
                *x = i;
            }
        });
        let t2 = std::thread::spawn(move || {
            for (i, x) in v2.slice_mut(50..100).iter_mut().enumerate() {
                *x = 50 + i;
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(v.snapshot(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        let v = SharedVec::new(4, 0u8);
        let _ = v.slice(0..5);
    }
}
