//! HPCG: solve a 27-point-stencil system with task-based CG, verify the
//! solution, and reproduce the TPL trade-off of the paper's Fig. 9 at
//! small scale.
//!
//! ```sh
//! cargo run --release --example hpcg_solve
//! ```

use ptdg::core::exec::{ExecConfig, Executor, SchedPolicy};
use ptdg::core::opts::OptConfig;
use ptdg::core::throttle::ThrottleConfig;
use ptdg::hpcg::{HpcgConfig, HpcgTask};
use ptdg::simrt::{simulate_tasks, MachineConfig, RankProgram, SimConfig};

fn main() {
    // --- real task-based CG solve --------------------------------------
    let cfg = HpcgConfig::single(10, 25, 16);
    let prog = HpcgTask::with_state(cfg.clone());
    let exec = Executor::new(ExecConfig {
        n_workers: 4,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::mpc_default(),
        profile: false,
        record_events: false,
    });
    let mut session = exec.session(OptConfig::all());
    for iter in 0..cfg.iterations {
        prog.build_iteration(0, iter, &mut session);
    }
    session.wait_all();
    let st = prog.state.as_ref().unwrap();
    println!(
        "CG on {}³ grid, {} iterations, {} vector blocks:",
        cfg.nx, cfg.iterations, cfg.tpl
    );
    println!("  residual (bookkeeping): {:.3e}", st.residual());
    println!("  residual (recomputed) : {:.3e}", st.true_residual());
    let err = (0..st.x.len())
        .map(|i| (st.x.get(i) - 1.0).abs())
        .fold(0.0, f64::max);
    println!("  max |x - 1|           : {err:.3e}  (exact solution is all-ones)");
    println!("  discovery stats       : {:?}", session.stats());

    // --- simulated TPL sweep (Fig. 9 in miniature) ----------------------
    // edges/task is the *structural* count (attempted edges): at fine
    // grain the runtime prunes most of them because predecessors complete
    // before their successors are discovered.
    println!("\nsimulated 24-core-node TPL sweep (nx=96, 4 CG iterations):");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "TPL", "total(s)", "work(s)", "disc(s)", "edges/task", "grain(us)"
    );
    let m = MachineConfig::skylake_24();
    for tpl in [24, 96, 240, 480, 960] {
        let cfg = HpcgConfig::single(96, 4, tpl);
        let prog = HpcgTask::new(cfg);
        let r = simulate_tasks(&m, &SimConfig::default(), &prog.space, &prog);
        let rank = r.rank(0);
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>12.1} {:>12.1}",
            tpl,
            r.total_time_s(),
            rank.avg_work_s(),
            rank.discovery_s(),
            rank.disc.edges_attempted() as f64 / rank.disc.tasks as f64,
            rank.mean_grain_s() * 1e6
        );
    }
}
