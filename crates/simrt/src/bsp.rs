//! The fork-join (`parallel for`) reference executor.
//!
//! Models the original LLNL-style MPI+OpenMP structure: every mesh-wide
//! loop is statically chunked over the cores and ends in a barrier; MPI
//! communication happens between parallel regions with the whole team
//! waiting. There is no discovery, no dependence management — and no
//! communication overlap, exactly as the paper describes (§2.1, §4.1).

use crate::machine::MachineConfig;
use crate::program::{BspPhase, BspProgram};
use crate::report::{RankReport, SimReport};
use crate::sim::SimConfig;
use ptdg_core::handle::HandleSpace;
use ptdg_core::workdesc::HandleSlice;
use ptdg_memsim::{BlockRange, DramContention, MemoryHierarchy};
use ptdg_simcore::{EventQueue, SimTime, SplitRng};
use ptdg_simmpi::{Network, ReqId};
use std::collections::HashMap;

enum Ev {
    Step(u32),
    ReqDone(ReqId),
}

struct BspRank {
    iter: u64,
    phase_idx: usize,
    phases: Vec<BspPhase>,
    waiting: u32,
    wait_start: SimTime,
    hier: MemoryHierarchy,
    contention: DramContention,
    work_ns: u64,
    overhead_ns: u64,
    idle_ns: u64,
    stalls: ptdg_memsim::StallCycles,
    last_event: SimTime,
    done: bool,
    rng: SplitRng,
    jitter: f64,
}

/// Simulate the `parallel for` version of a program.
///
/// Only `cfg.n_ranks` and `cfg.net` are read from the configuration — the
/// task-side switches have no fork-join meaning.
pub fn simulate_bsp(
    machine: &MachineConfig,
    cfg: &SimConfig,
    space: &HandleSpace,
    program: &dyn BspProgram,
) -> SimReport {
    assert_eq!(machine.mem.block_bytes, space.block_bytes());
    let n_cores = machine.n_cores;
    let mut ranks: Vec<BspRank> = (0..cfg.n_ranks)
        .map(|r| BspRank {
            iter: 0,
            phase_idx: 0,
            phases: program.phases(r, 0),
            waiting: 0,
            wait_start: SimTime::ZERO,
            hier: MemoryHierarchy::new(machine.mem.clone(), n_cores),
            contention: DramContention::new(machine.mem.dram_bw_bytes_per_s),
            work_ns: 0,
            overhead_ns: 0,
            idle_ns: 0,
            stalls: Default::default(),
            last_event: SimTime::ZERO,
            done: false,
            rng: SplitRng::new(cfg.seed.wrapping_add(r as u64 * 0x9E37_79B9)),
            jitter: cfg.work_jitter,
        })
        .collect();
    let mut net = Network::new(cfg.net.clone(), cfg.n_ranks);
    let mut evq: EventQueue<Ev> = EventQueue::new();
    let mut req_owner: HashMap<ReqId, u32> = HashMap::new();
    for r in 0..cfg.n_ranks {
        evq.push(SimTime::ZERO, Ev::Step(r));
    }

    while let Some(ev) = evq.pop() {
        let now = ev.time;
        match ev.payload {
            Ev::Step(r) => {
                let st = &mut ranks[r as usize];
                st.last_event = st.last_event.max(now);
                if st.phase_idx >= st.phases.len() {
                    st.iter += 1;
                    if st.iter >= program.n_iterations() {
                        st.done = true;
                        continue;
                    }
                    st.phases = program.phases(r, st.iter);
                    st.phase_idx = 0;
                }
                let phase = st.phases[st.phase_idx].clone();
                st.phase_idx += 1;
                match phase {
                    BspPhase::Loop {
                        flops, footprint, ..
                    } => {
                        let t_done = run_loop(machine, space, st, flops, &footprint, now);
                        st.last_event = st.last_event.max(t_done);
                        evq.push(t_done, Ev::Step(r));
                    }
                    BspPhase::Exchange { sends, recvs } => {
                        let mut own = 0u32;
                        let mut t = now;
                        for (peer, bytes, tag) in recvs {
                            let (req, comps) = net.post_irecv(t, peer, r, tag, bytes);
                            req_owner.insert(req, r);
                            own += 1;
                            t += cfg.net.post_cost;
                            for c in comps {
                                evq.push(c.at, Ev::ReqDone(c.req));
                            }
                        }
                        for (peer, bytes, tag) in sends {
                            let (req, comps) = net.post_isend(t, r, peer, tag, bytes);
                            req_owner.insert(req, r);
                            own += 1;
                            t += cfg.net.post_cost;
                            for c in comps {
                                evq.push(c.at, Ev::ReqDone(c.req));
                            }
                        }
                        if own == 0 {
                            evq.push(t, Ev::Step(r));
                        } else {
                            st.waiting = own;
                            st.wait_start = now;
                        }
                    }
                    BspPhase::Allreduce { bytes } => {
                        let (req, comps) = net.post_iallreduce(now, r, bytes);
                        req_owner.insert(req, r);
                        st.waiting = 1;
                        st.wait_start = now;
                        for c in comps {
                            evq.push(c.at, Ev::ReqDone(c.req));
                        }
                    }
                }
            }
            Ev::ReqDone(req) => {
                let r = req_owner[&req];
                let st = &mut ranks[r as usize];
                st.last_event = st.last_event.max(now);
                debug_assert!(st.waiting > 0);
                st.waiting -= 1;
                if st.waiting == 0 {
                    // The whole team idled through the communication wait.
                    st.idle_ns +=
                        now.as_ns().saturating_sub(st.wait_start.as_ns()) * n_cores as u64;
                    evq.push(now, Ev::Step(r));
                }
            }
        }
    }

    let mut report = SimReport::default();
    for (r, st) in ranks.iter().enumerate() {
        assert!(st.done, "rank {r} did not finish (waiting={})", st.waiting);
        report.ranks.push(RankReport {
            n_cores,
            work_ns: st.work_ns,
            overhead_ns: st.overhead_ns,
            idle_ns: st.idle_ns,
            span_ns: st.last_event.as_ns(),
            cache: st.hier.totals(),
            stalls: st.stalls,
            comm_ns: net.tracked_comm_time(r as u32).as_ns(),
            comm_coll_ns: net.tracked_comm_split(r as u32).0.as_ns(),
            comm_p2p_ns: net.tracked_comm_split(r as u32).1.as_ns(),
            // No work can overlap: communication happens outside parallel
            // regions with the team at a barrier.
            overlapped_ns: 0,
            ..Default::default()
        });
    }
    assert!(net.all_complete(), "unmatched BSP communication");
    report
}

/// Execute one statically-chunked parallel loop; returns its end time.
fn run_loop(
    machine: &MachineConfig,
    space: &HandleSpace,
    st: &mut BspRank,
    flops: f64,
    footprint: &[HandleSlice],
    now: SimTime,
) -> SimTime {
    let n = machine.n_cores;
    let mem = &machine.mem;
    let bb = space.block_bytes();
    // Per-core chunks: core k touches the k-th fraction of every slice —
    // static scheduling, so consecutive loops revisit the same ranges.
    let mut durations = vec![0f64; n];
    let mut demands = Vec::with_capacity(n);
    for (k, dur) in durations.iter_mut().enumerate() {
        let mut blocks: Vec<BlockRange> = Vec::with_capacity(footprint.len());
        for s in footprint {
            if s.len == 0 {
                continue;
            }
            let lo = s.offset + s.len * k as u64 / n as u64;
            let hi = s.offset + s.len * (k as u64 + 1) / n as u64;
            if hi <= lo {
                continue;
            }
            let info = space.info(s.handle);
            let first = info.base_block + lo / bb;
            let last = info.base_block + (hi - 1) / bb;
            blocks.push(BlockRange::new(first, (last - first + 1) as u32));
        }
        let stats = st.hier.touch_footprint(k, &blocks);
        let stall = stats.stall_cycles(mem);
        st.stalls.l1 += stall.l1;
        st.stalls.l2 += stall.l2;
        st.stalls.l3 += stall.l3;
        let compute_s = flops / n as f64 / mem.flops_per_s;
        let fast_s = mem.cycles_to_secs(stall.l1 + stall.l2);
        let dram_s = mem.cycles_to_secs(stall.l3);
        let nominal = (compute_s + fast_s + dram_s).max(1e-12);
        demands.push((
            st.contention
                .register(stats.dram_bytes(mem) as f64 / nominal),
            compute_s + fast_s,
            dram_s,
        ));
        *dur = 0.0; // filled below once the factor is known
        let _ = dur;
    }
    // All chunks run concurrently: one common contention factor.
    let factor = st.contention.factor();
    for (k, (id, fast, dram)) in demands.into_iter().enumerate() {
        let mut d = fast + dram * factor;
        if st.jitter > 0.0 {
            d *= 1.0 + st.jitter * (2.0 * st.rng.next_f64() - 1.0);
        }
        durations[k] = d;
        st.contention.unregister(id);
    }
    let max_s = durations.iter().cloned().fold(0.0, f64::max);
    let work_ns: u64 = durations
        .iter()
        .map(|d| SimTime::from_secs_f64(*d).as_ns())
        .sum();
    let idle_ns: u64 = durations
        .iter()
        .map(|d| SimTime::from_secs_f64(max_s - *d).as_ns())
        .sum();
    st.work_ns += work_ns;
    st.idle_ns += idle_ns;
    let fj = &machine.forkjoin;
    st.overhead_ns += (fj.per_loop_fork + fj.per_loop_barrier).as_ns() * n as u64;
    now + fj.per_loop_fork + SimTime::from_secs_f64(max_s) + fj.per_loop_barrier
}
