//! HPCG-style command line: solve the 27-point-stencil system with
//! task-based CG and report the residual trajectory.
//!
//! ```sh
//! cargo run --release -p ptdg-hpcg --bin hpcg -- --nx 12 --iters 30 --tpl 16
//! ```

use ptdg_core::exec::{run_program, ExecConfig, Executor, SchedPolicy, ThreadsConfig};
use ptdg_core::obs::{chrome_trace, critical_path};
use ptdg_core::opts::OptConfig;
use ptdg_core::throttle::ThrottleConfig;
use ptdg_hpcg::{HpcgConfig, HpcgTask};
use ptdg_simrt::RankProgram;
use std::path::PathBuf;

fn main() {
    let mut nx = 10usize;
    let mut iters = 25u64;
    let mut tpl = 16usize;
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut ranks = 1usize;
    let mut trace: Option<PathBuf> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut k = 0;
    while k < argv.len() {
        let val = argv.get(k + 1).and_then(|v| v.parse::<usize>().ok());
        match (argv[k].as_str(), val) {
            ("--nx", Some(v)) => nx = v,
            ("--iters", Some(v)) => iters = v as u64,
            ("--tpl", Some(v)) => tpl = v,
            ("--workers", Some(v)) => workers = v,
            ("--ranks", Some(v)) => ranks = v,
            ("--trace", _) => match argv.get(k + 1) {
                Some(p) => trace = Some(PathBuf::from(p)),
                None => {
                    eprintln!("missing path after --trace");
                    std::process::exit(2);
                }
            },
            ("-h", _) | ("--help", _) => {
                eprintln!(
                    "usage: hpcg [--nx N] [--iters I] [--tpl B] [--workers W] [--ranks P³] \
                     [--trace out.json]"
                );
                return;
            }
            (flag, _) => {
                eprintln!("bad flag/value: {flag} (try --help)");
                std::process::exit(2);
            }
        }
        k += 2;
    }

    if ranks > 1 {
        // Cost-model mode: concurrent rank pools over the in-process
        // network (halo exchanges + dot-product all-reduces), no numeric
        // state.
        let px = (ranks as f64).cbrt().round() as usize;
        if px * px * px != ranks {
            eprintln!("--ranks {ranks} is not a perfect cube");
            std::process::exit(2);
        }
        let cfg = HpcgConfig {
            px,
            ..HpcgConfig::single(nx, iters, tpl)
        };
        let prog = HpcgTask::new(cfg);
        let t0 = std::time::Instant::now();
        let report = run_program(
            &prog,
            &ThreadsConfig {
                exec: ExecConfig {
                    n_workers: workers,
                    policy: SchedPolicy::DepthFirst,
                    throttle: ThrottleConfig::mpc_default(),
                    profile: false,
                    record_events: false,
                },
                opts: OptConfig::all(),
                ..Default::default()
            },
        );
        println!(
            "CG {nx}\u{b3}/rank, {iters} iterations on {} ranks x {workers} workers \
             (cost model): {} tasks, {} comms posted / {} completed, {:.3}s",
            report.n_ranks,
            report.counters.tasks_completed,
            report.counters.comms_posted,
            report.counters.comms_completed,
            t0.elapsed().as_secs_f64()
        );
        for (r, c) in report.per_rank_counters.iter().enumerate() {
            println!(
                "  rank {r}: {} tasks, {} posted / {} completed, {} unexpected",
                c.tasks_completed, c.comms_posted, c.comms_completed, c.unexpected_msgs
            );
        }
        if let Some(err) = &report.comm_error {
            eprintln!("{err}");
            std::process::exit(1);
        }
        return;
    }
    let cfg = HpcgConfig::single(nx, iters, tpl);
    let prog = HpcgTask::with_state(cfg.clone());
    let exec = Executor::new(ExecConfig {
        n_workers: workers,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::mpc_default(),
        profile: trace.is_some(),
        record_events: false,
    });
    let t0 = std::time::Instant::now();
    // with --trace, capture the streamed graph for the critical-path walk
    let mut session = if trace.is_some() {
        exec.session_capturing(OptConfig::all())
    } else {
        exec.session(OptConfig::all())
    };
    for iter in 0..cfg.iterations {
        prog.build_iteration(0, iter, &mut session);
        if iter % 5 == 4 {
            session.taskwait();
            println!(
                "iter {:>4}: residual {:.6e}",
                iter + 1,
                prog.state.as_ref().unwrap().residual()
            );
        }
    }
    if let Some(path) = &trace {
        let (g, stats) = session.finish_capture();
        let mut obs = exec.take_obs();
        let created = obs.counters.tasks_created;
        obs.counters.absorb_discovery(&stats);
        obs.counters.tasks_created = created;
        let doc = chrome_trace(&obs.trace, &obs.events, &obs.counters);
        if let Err(e) = std::fs::write(path, doc.render() + "\n") {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "chrome trace written to {} (load at https://ui.perfetto.dev)",
            path.display()
        );
        println!(
            "{}",
            critical_path(&g, &obs.events, obs.trace.span_ns, workers).render(5)
        );
    } else {
        session.wait_all();
    }
    let st = prog.state.as_ref().unwrap();
    println!(
        "CG {}³ grid, {} iterations, {} blocks on {} workers: residual {:.3e} \
         (true {:.3e}) in {:.3}s",
        nx,
        iters,
        cfg.blocks(),
        workers,
        st.residual(),
        st.true_residual(),
        t0.elapsed().as_secs_f64()
    );
}
