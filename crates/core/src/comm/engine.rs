//! The in-process multi-rank communication world.
//!
//! N ranks run as N executor pools inside one process; this world is the
//! shared-memory "network" between them. Posting is wait-free for the
//! poster's peers (envelopes go through lock-free [`Injector`] inboxes),
//! matching is owner-local (only threads of the destination rank match,
//! under that rank's mailbox mutex), and completions are handed back to
//! the owning rank through a second lock-free queue so the detached
//! `RtNode` is always completed by its own pool's progress path — never
//! by the thread that happened to match the message.
//!
//! ## Request state machine and memory ordering
//!
//! A request moves `posted -> (matched) -> completion queued -> completed`.
//! The orderings that carry the protocol (full table in DESIGN.md §4.5):
//!
//! | transition                | ordering  | why                              |
//! |---------------------------|-----------|----------------------------------|
//! | envelope/completion push  | Release   | inside `Injector` slot publish   |
//! | envelope/completion pop   | Acquire   | inside `Injector` slot consume   |
//! | `epoch` bump after push   | `SeqCst`  | deadlock-detector ordering fence |
//! | stall-report epoch read   | `SeqCst`  | must precede emptiness checks    |
//! | `poisoned` set/read       | `SeqCst`  | posts after a fire self-complete |
//!
//! ## Deadlock detection
//!
//! There is no timeout anywhere. A rank *reports a stall* (from its pool's
//! idle/park path) only when it has no runnable task, no in-flight task,
//! and a progress sweep found nothing; the report records the world
//! `epoch`, which every message/completion push bumps. The world declares
//! deadlock only when every rank is done or stalled *at the current
//! epoch*, every inbox and completion queue is empty, no rank's busy
//! probe fires, the epoch has not moved during the validation sweep, and
//! at least one request is parked in a mailbox. Only then does it commit:
//! it stores a [`CommError`] naming every unmatched (rank, peer, tag),
//! poisons the world (later posts self-complete immediately), and
//! force-completes every parked request so barriers drain and the error
//! can actually be returned instead of hanging.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use super::error::{CommError, UnmatchedComm};
use super::mailbox::{coll_tag, CollState, CommCompletion, Envelope, MatchState, COLL_TAG_BIT};
use crate::rt::{Injector, NodeRef, Parker};
use crate::workdesc::CommOp;

/// Tuning knobs for the in-process network.
#[derive(Clone, Copy, Debug)]
pub struct CommConfig {
    /// Sends at or below this size complete at post time (eager); larger
    /// sends complete only when the matching recv consumes them
    /// (rendezvous). Mirrors the DES `NetConfig` default of 16 KiB.
    pub eager_threshold: u64,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            eager_threshold: 16 * 1024,
        }
    }
}

/// Callback a pool registers so the deadlock sweep can ask "might this
/// rank still produce work on its own?" (in-flight or ready tasks).
type BusyProbe = Box<dyn Fn() -> bool + Send + Sync>;

struct Endpoint {
    /// Cross-rank message delivery (lock-free; senders push).
    inbox: Injector<Envelope>,
    /// Completions owed to this rank's detached nodes (lock-free; any
    /// matching thread pushes, only this rank's pool pops).
    completions: Injector<CommCompletion>,
    /// Owner-local matching state.
    state: Mutex<MatchState>,
    /// Hooks registered by the owning pool.
    hooks: Mutex<RankHooks>,
}

#[derive(Default)]
struct RankHooks {
    waker: Option<Arc<Parker>>,
    busy: Option<BusyProbe>,
}

struct WorldStatus {
    /// `Some(epoch)` while the rank is stalled (reported at that epoch).
    stalled: Vec<Option<u64>>,
    /// Rank finished its program and will post nothing more.
    done: Vec<bool>,
    /// Error recorded when the detector fired.
    error: Option<CommError>,
    fired: bool,
}

/// The shared-memory multi-rank communication engine.
pub struct CommWorld {
    n_ranks: u32,
    cfg: CommConfig,
    endpoints: Vec<Endpoint>,
    /// Monotone request ids, world-wide (trace correlation).
    next_req: AtomicU64,
    /// Bumped (SeqCst) after every envelope or completion push; the
    /// deadlock detector's notion of "something happened".
    epoch: AtomicU64,
    /// Set once deadlock resolution fired; posts self-complete from then
    /// on so the forced drain terminates.
    poisoned: AtomicBool,
    status: Mutex<WorldStatus>,
}

impl CommWorld {
    /// A world of `n_ranks` in-process ranks. `n_ranks == 1` is the
    /// degenerate (but fully functional) single-rank network used by
    /// every default-constructed executor.
    pub fn new(n_ranks: u32, cfg: CommConfig) -> CommWorld {
        assert!(n_ranks >= 1, "a comm world needs at least one rank");
        let endpoints = (0..n_ranks)
            .map(|_| Endpoint {
                inbox: Injector::new(),
                completions: Injector::new(),
                state: Mutex::new(MatchState::default()),
                hooks: Mutex::new(RankHooks::default()),
            })
            .collect();
        CommWorld {
            n_ranks,
            cfg,
            endpoints,
            next_req: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            status: Mutex::new(WorldStatus {
                stalled: vec![None; n_ranks as usize],
                done: vec![false; n_ranks as usize],
                error: None,
                fired: false,
            }),
        }
    }

    /// Number of ranks in this world.
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// Register the owning pool's parker (so cross-rank deliveries can
    /// wake parked threads) and busy probe (so the deadlock sweep can see
    /// in-flight/ready work the stall flags cannot).
    pub fn register_rank(
        &self,
        rank: u32,
        waker: Arc<Parker>,
        busy: impl Fn() -> bool + Send + Sync + 'static,
    ) {
        let mut hooks = self.endpoints[rank as usize].hooks.lock().unwrap();
        hooks.waker = Some(waker);
        hooks.busy = Some(Box::new(busy));
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn wake(&self, rank: u32) {
        let hooks = self.endpoints[rank as usize].hooks.lock().unwrap();
        if let Some(p) = &hooks.waker {
            p.notify_all();
        }
    }

    /// Queue `done` on its owner's completion queue and wake the owner.
    /// Push-then-bump order is what the stall protocol relies on.
    fn deliver(&self, owner: u32, mut done: CommCompletion, forced: bool) {
        done.forced = forced;
        self.endpoints[owner as usize].completions.push(done);
        self.bump_epoch();
        self.wake(owner);
    }

    fn send_envelope(&self, dst: u32, env: Envelope) {
        self.endpoints[dst as usize].inbox.push(env);
        self.bump_epoch();
        self.wake(dst);
    }

    /// Reserve a request id. Posters take the id *before* calling
    /// [`CommWorld::post`] so they can narrate `CommPosted` first — a
    /// request may match the instant it is posted, and the completion
    /// event must not beat the post event into the stream.
    pub fn alloc_req(&self) -> u64 {
        self.next_req.fetch_add(1, Ordering::Relaxed)
    }

    /// Post a communication request for `node` from `rank` under a
    /// pre-reserved id from [`CommWorld::alloc_req`]. The node's completion
    /// is *never* performed here — it is queued (possibly immediately, for
    /// eager sends or self-matching recvs) on the owning rank's completion
    /// queue, to be drained by [`CommWorld::pop_completion`].
    pub fn post(&self, rank: u32, node: NodeRef, op: CommOp, posted_ns: u64, req: u64) {
        let done = CommCompletion {
            node,
            req,
            posted_ns,
            forced: false,
        };
        if self.poisoned.load(Ordering::SeqCst) {
            self.deliver(rank, done, true);
            return;
        }
        match op {
            CommOp::Isend { peer, bytes, tag } => self.post_isend(rank, peer, bytes, tag, done),
            CommOp::Irecv { peer, tag, .. } => self.post_irecv(rank, peer, tag, done),
            CommOp::Iallreduce { bytes } => self.post_iallreduce(rank, bytes, done),
        }
    }

    fn post_isend(&self, src: u32, dst: u32, bytes: u64, tag: u32, done: CommCompletion) {
        debug_assert!(tag & COLL_TAG_BIT == 0, "p2p tags must be < 2^31");
        if dst >= self.n_ranks {
            let mut st = self.endpoints[src as usize].state.lock().unwrap();
            st.invalid.push((dst, tag, "Isend", done));
            return;
        }
        if bytes <= self.cfg.eager_threshold {
            // Eager: the payload is "copied out" at post time, so the
            // sender's request completes immediately — still off-core,
            // through the completion queue.
            self.send_envelope(
                dst,
                Envelope {
                    src,
                    tag,
                    bytes,
                    sender_done: None,
                },
            );
            self.deliver(src, done, false);
        } else {
            // Rendezvous: the send completes only when the matching recv
            // consumes the envelope; the completion rides along.
            self.send_envelope(
                dst,
                Envelope {
                    src,
                    tag,
                    bytes,
                    sender_done: Some(done),
                },
            );
        }
    }

    fn post_irecv(&self, dst: u32, src: u32, tag: u32, done: CommCompletion) {
        debug_assert!(tag & COLL_TAG_BIT == 0, "p2p tags must be < 2^31");
        if src >= self.n_ranks {
            let mut st = self.endpoints[dst as usize].state.lock().unwrap();
            st.invalid.push((src, tag, "Irecv", done));
            return;
        }
        let matched = {
            let mut st = self.endpoints[dst as usize].state.lock().unwrap();
            match st.take_unexpected(src, tag) {
                Some(env) => Some((env.sender_done, done)),
                None => {
                    st.queue_recv(src, tag, done);
                    None
                }
            }
        };
        if let Some((sender_done, done)) = matched {
            if let Some(sd) = sender_done {
                self.deliver(src, sd, false);
            }
            self.deliver(dst, done, false);
        }
    }

    fn post_iallreduce(&self, rank: u32, bytes: u64, done: CommCompletion) {
        let rounds = Self::ceil_log2(self.n_ranks);
        if rounds == 0 {
            self.deliver(rank, done, false);
            return;
        }
        let finished = {
            let mut st = self.endpoints[rank as usize].state.lock().unwrap();
            let seq = st.next_coll_seq;
            st.next_coll_seq += 1;
            st.colls.insert(
                seq,
                CollState {
                    done,
                    bytes,
                    round: 0,
                    rounds,
                },
            );
            // Sending while holding our own mailbox mutex is fine (peer
            // delivery is lock-free) and keeps round bookkeeping atomic.
            self.coll_send(rank, seq, 0, bytes);
            self.coll_advance(rank, &mut st, seq)
        };
        if let Some(done) = finished {
            self.deliver(rank, done, false);
        }
    }

    /// Send this rank's round-`round` dissemination message.
    fn coll_send(&self, rank: u32, seq: u64, round: u32, bytes: u64) {
        let dst = (rank as u64 + (1u64 << round)) % self.n_ranks as u64;
        self.send_envelope(
            dst as u32,
            Envelope {
                src: rank,
                tag: coll_tag(seq, round),
                bytes,
                sender_done: None,
            },
        );
    }

    /// Peer this rank receives from in dissemination round `round`.
    fn coll_recv_peer(&self, rank: u32, round: u32) -> u32 {
        let n = self.n_ranks as u64;
        ((rank as u64 + n - (1u64 << round) % n) % n) as u32
    }

    /// Absorb every already-arrived round message for collective `seq`.
    /// Either registers the next awaited (src, tag) and returns `None`,
    /// or removes the finished collective and returns its completion.
    fn coll_advance(&self, rank: u32, st: &mut MatchState, seq: u64) -> Option<CommCompletion> {
        let (mut round, rounds, bytes) = {
            let c = st.colls.get(&seq)?;
            (c.round, c.rounds, c.bytes)
        };
        while round < rounds {
            let from = self.coll_recv_peer(rank, round);
            if st.take_unexpected(from, coll_tag(seq, round)).is_none() {
                break;
            }
            round += 1;
            if round < rounds {
                self.coll_send(rank, seq, round, bytes);
            }
        }
        if round >= rounds {
            Some(st.colls.remove(&seq).unwrap().done)
        } else {
            let from = self.coll_recv_peer(rank, round);
            st.coll_waiting.insert((from, coll_tag(seq, round)), seq);
            st.colls.get_mut(&seq).unwrap().round = round;
            None
        }
    }

    fn ceil_log2(n: u32) -> u32 {
        debug_assert!(n >= 1);
        n.next_power_of_two().trailing_zeros()
    }

    /// Drain and match this rank's inbox. Returns true if any envelope was
    /// consumed. Only threads of the owning rank should call this; if the
    /// mailbox mutex is contended (a sibling thread is already matching),
    /// returns false immediately.
    pub fn progress(&self, rank: u32) -> bool {
        let ep = &self.endpoints[rank as usize];
        if ep.inbox.is_empty() {
            return false;
        }
        let Ok(mut st) = ep.state.try_lock() else {
            return false;
        };
        let mut any = false;
        while let Some(env) = ep.inbox.pop() {
            any = true;
            self.match_envelope(rank, &mut st, env);
        }
        any
    }

    fn match_envelope(&self, rank: u32, st: &mut MatchState, env: Envelope) {
        if env.tag & COLL_TAG_BIT != 0 {
            if let Some(seq) = st.coll_waiting.remove(&(env.src, env.tag)) {
                // Exactly the round message this collective waits on:
                // absorb it, forward the next round, then soak up any
                // further rounds that already arrived out of order.
                let (round, rounds, bytes) = {
                    let c = st.colls.get_mut(&seq).expect("waiting coll exists");
                    c.round += 1;
                    (c.round, c.rounds, c.bytes)
                };
                if round < rounds {
                    self.coll_send(rank, seq, round, bytes);
                }
                if let Some(done) = self.coll_advance(rank, st, seq) {
                    self.deliver(rank, done, false);
                }
            } else {
                st.queue_unexpected(env);
            }
            return;
        }
        match st.take_recv(env.src, env.tag) {
            Some(done) => {
                if let Some(sd) = env.sender_done {
                    self.deliver(env.src, sd, false);
                }
                self.deliver(rank, done, false);
            }
            None => st.queue_unexpected(env),
        }
    }

    /// Pop one queued completion for this rank's detached nodes.
    pub fn pop_completion(&self, rank: u32) -> Option<CommCompletion> {
        self.endpoints[rank as usize].completions.pop()
    }

    /// Unexpected-message count (envelopes that arrived before their recv
    /// was posted) observed by this rank so far.
    pub fn unexpected_count(&self, rank: u32) -> u64 {
        self.endpoints[rank as usize]
            .state
            .lock()
            .unwrap()
            .unexpected_msgs
    }

    /// Clear this rank's stall flag. Must be called before a thread starts
    /// a progress sweep from an idle path (and whenever new local work is
    /// found) so the detector never fires across an in-flight delivery.
    pub fn note_active(&self, rank: u32) {
        let mut st = self.status.lock().unwrap();
        st.stalled[rank as usize] = None;
    }

    /// Rank finished its program; it will post nothing more.
    pub fn note_done(&self, rank: u32) {
        let mut st = self.status.lock().unwrap();
        st.done[rank as usize] = true;
        drop(st);
        // A rank retiring can be the last event other stalled ranks wait
        // for; let their next sweep observe it.
        self.bump_epoch();
        for r in 0..self.n_ranks {
            if r != rank {
                self.wake(r);
            }
        }
    }

    /// Report that `rank` is fully idle: no runnable or in-flight task and
    /// a just-completed progress sweep found nothing. Returns true if this
    /// report completed a deadlock declaration (forced completions have
    /// been queued; the caller should keep draining).
    pub fn note_stall(&self, rank: u32) -> bool {
        // Epoch first: any delivery that lands after this read moves the
        // epoch past what we record, invalidating the report.
        let observed = self.epoch.load(Ordering::SeqCst);
        let mut st = self.status.lock().unwrap();
        st.stalled[rank as usize] = Some(observed);
        if st.fired {
            return false;
        }
        let cur = self.epoch.load(Ordering::SeqCst);
        let all_idle = (0..self.n_ranks as usize).all(|r| st.done[r] || st.stalled[r] == Some(cur));
        if !all_idle {
            return false;
        }
        // Validation sweep, with the status lock held so nobody can clear
        // a stall flag under us. Taking each mailbox mutex blockingly also
        // serializes against any matching still running on that rank.
        // Nothing is mutated in this pass, so bailing out is always safe.
        let mut any_pending = false;
        for (r, ep) in self.endpoints.iter().enumerate() {
            let mbox = ep.state.lock().unwrap();
            if !ep.inbox.is_empty() || !ep.completions.is_empty() {
                return false;
            }
            any_pending |= !mbox.is_clean();
            drop(mbox);
            if !st.done[r] {
                let hooks = ep.hooks.lock().unwrap();
                if let Some(busy) = &hooks.busy {
                    if busy() {
                        return false;
                    }
                }
            }
        }
        if !any_pending || self.epoch.load(Ordering::SeqCst) != cur {
            // Either something moved mid-sweep (a delivery will re-wake
            // the rank it targets), or nothing is actually parked — then
            // this is not a comm deadlock and firing would be wrong.
            return false;
        }
        // Commit: from here on the world is poisoned, so even a post that
        // races past the validation self-completes and cannot hang.
        st.fired = true;
        self.poisoned.store(true, Ordering::SeqCst);
        let mut unmatched: Vec<UnmatchedComm> = Vec::new();
        let mut forced: Vec<(u32, CommCompletion)> = Vec::new();
        for (r, ep) in self.endpoints.iter().enumerate() {
            let mut mbox = ep.state.lock().unwrap();
            let (mut u, mut f) = mbox.drain_pending(r as u32);
            unmatched.append(&mut u);
            forced.append(&mut f);
        }
        unmatched.sort_by_key(|u| (u.rank, u.peer, u.tag));
        st.error = Some(CommError { unmatched });
        drop(st);
        for (owner, done) in forced {
            self.deliver(owner, done, true);
        }
        true
    }

    /// The error recorded by the deadlock detector, if it fired.
    pub fn take_error(&self) -> Option<CommError> {
        self.status.lock().unwrap().error.clone()
    }

    /// End-of-run check, to be called after every rank finished: reports
    /// the deadlock error if one fired, otherwise any leftover messages or
    /// requests (e.g. an eager send nobody ever received — the sender
    /// completed, so no deadlock, but the program was still malformed).
    pub fn finish(&self) -> Option<CommError> {
        if let Some(e) = self.take_error() {
            return Some(e);
        }
        let mut unmatched: Vec<UnmatchedComm> = Vec::new();
        let mut all_forced: Vec<(u32, CommCompletion)> = Vec::new();
        for (r, ep) in self.endpoints.iter().enumerate() {
            // Flush in-flight envelopes into the mailbox first so
            // reporting sees everything uniformly.
            let mut st = ep.state.lock().unwrap();
            while let Some(env) = ep.inbox.pop() {
                self.match_envelope(r as u32, &mut st, env);
            }
            if !st.is_clean() {
                let (mut u, mut f) = st.drain_pending(r as u32);
                unmatched.append(&mut u);
                all_forced.append(&mut f);
            }
        }
        // The run is over; nothing waits on these nodes' successors, but
        // queue their completions anyway so a late drain (or teardown
        // diagnostics) sees a consistent request ledger.
        for (owner, done) in all_forced {
            self.deliver(owner, done, true);
        }
        if unmatched.is_empty() {
            None
        } else {
            unmatched.sort_by_key(|u| (u.rank, u.peer, u.tag));
            Some(CommError { unmatched })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::RtNode;
    use crate::task::TaskId;

    fn node(id: u32) -> NodeRef {
        RtNode::bare(TaskId(id), "comm", None, 0)
    }

    fn world(n: u32) -> CommWorld {
        CommWorld::new(n, CommConfig::default())
    }

    /// Post `op` for a fresh node and return the request id used.
    fn post(w: &CommWorld, rank: u32, id: u32, op: CommOp) -> u64 {
        let req = w.alloc_req();
        w.post(rank, node(id), op, 0, req);
        req
    }

    /// One progress sweep then one completion pop for `rank`.
    fn drain(w: &CommWorld, rank: u32) -> Option<CommCompletion> {
        w.progress(rank);
        w.pop_completion(rank)
    }

    #[test]
    fn eager_send_completes_sender_at_post() {
        let w = world(2);
        let rr = post(
            &w,
            1,
            10,
            CommOp::Irecv {
                peer: 0,
                bytes: 64,
                tag: 3,
            },
        );
        let rs = post(
            &w,
            0,
            11,
            CommOp::Isend {
                peer: 1,
                bytes: 64,
                tag: 3,
            },
        );
        // The sender's completion is queued before any receiver progress.
        let sc = w.pop_completion(0).expect("eager sender done at post");
        assert_eq!(sc.req, rs);
        assert!(!sc.forced);
        let rc = drain(&w, 1).expect("recv matched");
        assert_eq!(rc.req, rr);
        assert_eq!(w.unexpected_count(1), 0, "recv was pre-posted");
        assert!(w.finish().is_none(), "clean world");
    }

    #[test]
    fn late_recv_matches_parked_unexpected_envelope() {
        let w = world(2);
        post(
            &w,
            0,
            20,
            CommOp::Isend {
                peer: 1,
                bytes: 64,
                tag: 5,
            },
        );
        w.pop_completion(0).expect("eager sender done");
        // The envelope parks in the unexpected queue before its recv exists.
        w.progress(1);
        assert_eq!(w.unexpected_count(1), 1);
        let rr = post(
            &w,
            1,
            21,
            CommOp::Irecv {
                peer: 0,
                bytes: 64,
                tag: 5,
            },
        );
        // Matching a parked envelope completes the recv at post time.
        let rc = w.pop_completion(1).expect("late recv matched");
        assert_eq!(rc.req, rr);
        assert!(w.finish().is_none());
    }

    #[test]
    fn rendezvous_send_completes_only_on_match() {
        let w = world(2);
        let big = 64 * 1024; // above the default eager threshold
        let rs = post(
            &w,
            0,
            30,
            CommOp::Isend {
                peer: 1,
                bytes: big,
                tag: 0,
            },
        );
        assert!(
            w.pop_completion(0).is_none(),
            "rendezvous sender must wait for the match"
        );
        let rr = post(
            &w,
            1,
            31,
            CommOp::Irecv {
                peer: 0,
                bytes: big,
                tag: 0,
            },
        );
        let rc = drain(&w, 1).expect("recv matched");
        assert_eq!(rc.req, rr);
        let sc = w.pop_completion(0).expect("sender done rides the match");
        assert_eq!(sc.req, rs);
        assert!(w.finish().is_none());
    }

    #[test]
    fn tag_mismatch_does_not_match() {
        let w = world(2);
        post(
            &w,
            1,
            40,
            CommOp::Irecv {
                peer: 0,
                bytes: 64,
                tag: 1,
            },
        );
        post(
            &w,
            0,
            41,
            CommOp::Isend {
                peer: 1,
                bytes: 64,
                tag: 2,
            },
        );
        w.progress(1);
        assert!(w.pop_completion(1).is_none(), "tags differ: no match");
        assert_eq!(w.unexpected_count(1), 1, "wrong-tag envelope parked");
        let err = w.finish().expect("both sides left over");
        assert!(err.unmatched.iter().any(|u| u.op == "Irecv" && u.tag == 1));
        assert!(err.unmatched.iter().any(|u| u.op == "Isend" && u.tag == 2));
    }

    #[test]
    fn allreduce_completes_every_rank() {
        for n in 1..=4u32 {
            let w = world(n);
            let reqs: Vec<u64> = (0..n)
                .map(|r| post(&w, r, 100 + r, CommOp::Iallreduce { bytes: 8 }))
                .collect();
            let mut done = vec![false; n as usize];
            for _ in 0..10_000 {
                for r in 0..n {
                    w.progress(r);
                    while let Some(c) = w.pop_completion(r) {
                        assert_eq!(c.req, reqs[r as usize]);
                        assert!(!done[r as usize], "exactly one completion per rank");
                        done[r as usize] = true;
                    }
                }
                if done.iter().all(|&d| d) {
                    break;
                }
            }
            assert!(done.iter().all(|&d| d), "n={n}: allreduce converged");
            assert!(w.finish().is_none(), "n={n}: clean world");
        }
    }

    #[test]
    fn invalid_peer_is_reported_at_finish() {
        let w = world(2);
        post(
            &w,
            0,
            50,
            CommOp::Isend {
                peer: 7,
                bytes: 64,
                tag: 1,
            },
        );
        assert!(w.pop_completion(0).is_none(), "invalid peer never matches");
        let err = w.finish().expect("invalid peer surfaces");
        assert_eq!(err.unmatched.len(), 1);
        let u = &err.unmatched[0];
        assert_eq!((u.rank, u.peer, u.tag, u.op), (0, 7, 1, "Isend"));
        // The parked node's completion is force-delivered for the ledger.
        let fc = w.pop_completion(0).expect("forced completion queued");
        assert!(fc.forced);
    }

    #[test]
    fn unreceived_eager_send_is_reported_at_finish() {
        let w = world(2);
        post(
            &w,
            0,
            60,
            CommOp::Isend {
                peer: 1,
                bytes: 64,
                tag: 7,
            },
        );
        // The sender completed (eager), yet the program is malformed:
        // finish() must still name the leftover message.
        w.pop_completion(0).expect("eager sender done");
        let err = w.finish().expect("leftover envelope surfaces");
        assert_eq!(err.unmatched.len(), 1);
        let u = &err.unmatched[0];
        assert_eq!((u.rank, u.peer, u.tag, u.op), (0, 1, 7, "Isend"));
    }

    #[test]
    fn stall_detector_fires_on_unmatched_recv_and_forces_completion() {
        let w = world(2);
        let rr = post(
            &w,
            0,
            70,
            CommOp::Irecv {
                peer: 1,
                bytes: 64,
                tag: 9,
            },
        );
        // Rank 1 retires without ever sending; rank 0 then reports a
        // fully-idle sweep. That completes the termination detection.
        w.note_done(1);
        assert!(w.note_stall(0), "detector fires");
        let err = w.take_error().expect("structured error recorded");
        assert_eq!(err.unmatched.len(), 1);
        let u = &err.unmatched[0];
        assert_eq!((u.rank, u.peer, u.tag, u.op), (0, 1, 9, "Irecv"));
        // The parked recv is force-completed so the run can drain.
        let fc = w.pop_completion(0).expect("forced completion");
        assert_eq!(fc.req, rr);
        assert!(fc.forced);
        // Posts after poisoning self-complete instead of hanging.
        let late = post(
            &w,
            0,
            71,
            CommOp::Irecv {
                peer: 1,
                bytes: 64,
                tag: 10,
            },
        );
        let lc = w.pop_completion(0).expect("post-poison self-completion");
        assert_eq!(lc.req, late);
        assert!(lc.forced);
        assert_eq!(
            w.finish()
                .expect("finish repeats the recorded error")
                .unmatched,
            err.unmatched
        );
    }

    #[test]
    fn stall_report_with_pending_inbox_does_not_fire() {
        let w = world(2);
        post(
            &w,
            0,
            80,
            CommOp::Isend {
                peer: 1,
                bytes: 64,
                tag: 0,
            },
        );
        w.pop_completion(0).expect("eager sender done");
        w.note_done(0);
        // Rank 1 stalls but its inbox still holds the envelope — the
        // detector must refuse (a progress sweep will consume it).
        assert!(!w.note_stall(1), "undelivered envelope blocks firing");
        assert!(w.take_error().is_none());
    }
}
