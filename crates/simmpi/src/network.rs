//! The message-matching network state machine.

use crate::collective::CollectiveState;
use crate::config::NetConfig;
use crate::request::{ReqId, ReqKind, Request};
use crate::Rank;
use ptdg_simcore::SimTime;
use std::collections::{HashMap, VecDeque};

/// A determined future completion: the caller (the discrete-event
/// executor) schedules an event at `at` and then delivers the completion
/// to whatever task detached on `req`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The request that completes.
    pub req: ReqId,
    /// When it completes (poll delay already included).
    pub at: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct PendingSend {
    req: ReqId,
    bytes: u64,
    posted: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct PendingRecv {
    req: ReqId,
    posted: SimTime,
}

/// The simulated interconnect: P2P matching plus collective rounds.
#[derive(Debug)]
pub struct Network {
    cfg: NetConfig,
    n_ranks: u32,
    requests: Vec<Request>,
    unmatched_sends: HashMap<(Rank, Rank, u32), VecDeque<PendingSend>>,
    unmatched_recvs: HashMap<(Rank, Rank, u32), VecDeque<PendingRecv>>,
    round_of_rank: Vec<u32>,
    rounds: Vec<CollectiveState>,
    /// Per-rank tally of receives that matched an already-parked send —
    /// the message was "unexpected" at the receiver (it arrived before
    /// the receive was posted).
    unexpected: Vec<u64>,
}

impl Network {
    /// A network joining `n_ranks` ranks.
    pub fn new(cfg: NetConfig, n_ranks: u32) -> Self {
        assert!(n_ranks >= 1);
        Network {
            cfg,
            n_ranks,
            requests: Vec::new(),
            unmatched_sends: HashMap::new(),
            unmatched_recvs: HashMap::new(),
            round_of_rank: vec![0; n_ranks as usize],
            rounds: Vec::new(),
            unexpected: vec![0; n_ranks as usize],
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    fn new_request(&mut self, rank: Rank, kind: ReqKind, bytes: u64, now: SimTime) -> ReqId {
        let id = ReqId(self.requests.len() as u64);
        self.requests.push(Request {
            id,
            rank,
            kind,
            bytes,
            posted_at: now,
            completed_at: None,
        });
        id
    }

    fn finish(&mut self, req: ReqId, at: SimTime, out: &mut Vec<Completion>) {
        let at = at + self.cfg.poll_delay;
        let r = &mut self.requests[req.0 as usize];
        debug_assert!(r.completed_at.is_none(), "request completed twice");
        r.completed_at = Some(at);
        out.push(Completion { req, at });
    }

    /// Post a non-blocking send from `src` to `dst`.
    pub fn post_isend(
        &mut self,
        now: SimTime,
        src: Rank,
        dst: Rank,
        tag: u32,
        bytes: u64,
    ) -> (ReqId, Vec<Completion>) {
        let req = self.new_request(src, ReqKind::Send, bytes, now);
        let mut out = Vec::new();
        let now = now + self.cfg.post_cost;
        let key = (src, dst, tag);
        let rendezvous = self.cfg.is_rendezvous(bytes);
        let matched = self
            .unmatched_recvs
            .get_mut(&key)
            .and_then(|q| q.pop_front());
        match (rendezvous, matched) {
            (false, matched) => {
                // Eager: the send buffers locally and completes regardless
                // of the receiver.
                let send_done = now + self.cfg.transfer_time(bytes);
                self.finish(req, send_done, &mut out);
                let arrival = now + self.cfg.latency + self.cfg.transfer_time(bytes);
                match matched {
                    Some(recv) => {
                        let recv_done = arrival.max(recv.posted);
                        self.finish(recv.req, recv_done, &mut out);
                    }
                    None => {
                        self.unmatched_sends
                            .entry(key)
                            .or_default()
                            .push_back(PendingSend {
                                req,
                                bytes,
                                posted: now,
                            });
                    }
                }
            }
            (true, Some(recv)) => {
                // Rendezvous with the receive already posted: handshake
                // then transfer; both sides complete together.
                let start = now.max(recv.posted) + self.cfg.rendezvous_rtt;
                let done = start + self.cfg.latency + self.cfg.transfer_time(bytes);
                self.finish(req, done, &mut out);
                self.finish(recv.req, done, &mut out);
            }
            (true, None) => {
                // Rendezvous with no receive yet: the send stalls until the
                // receiver arrives — the cost of late posting.
                self.unmatched_sends
                    .entry(key)
                    .or_default()
                    .push_back(PendingSend {
                        req,
                        bytes,
                        posted: now,
                    });
            }
        }
        (req, out)
    }

    /// Post a non-blocking receive on `dst` for a message from `src`.
    pub fn post_irecv(
        &mut self,
        now: SimTime,
        src: Rank,
        dst: Rank,
        tag: u32,
        bytes: u64,
    ) -> (ReqId, Vec<Completion>) {
        let req = self.new_request(dst, ReqKind::Recv, bytes, now);
        let mut out = Vec::new();
        let now = now + self.cfg.post_cost;
        let key = (src, dst, tag);
        let matched = self
            .unmatched_sends
            .get_mut(&key)
            .and_then(|q| q.pop_front());
        if matched.is_some() {
            self.unexpected[dst as usize] += 1;
        }
        match matched {
            Some(send) if self.cfg.is_rendezvous(send.bytes) => {
                let start = now.max(send.posted) + self.cfg.rendezvous_rtt;
                let done = start + self.cfg.latency + self.cfg.transfer_time(send.bytes);
                self.finish(send.req, done, &mut out);
                self.finish(req, done, &mut out);
            }
            Some(send) => {
                // Eager: data is in flight (or already here) since posting.
                let arrival = send.posted + self.cfg.latency + self.cfg.transfer_time(send.bytes);
                let done = arrival.max(now);
                self.finish(req, done, &mut out);
            }
            None => {
                self.unmatched_recvs
                    .entry(key)
                    .or_default()
                    .push_back(PendingRecv { req, posted: now });
            }
        }
        (req, out)
    }

    /// Join this rank's next all-reduce round.
    pub fn post_iallreduce(
        &mut self,
        now: SimTime,
        rank: Rank,
        bytes: u64,
    ) -> (ReqId, Vec<Completion>) {
        let req = self.new_request(rank, ReqKind::Allreduce, bytes, now);
        let mut out = Vec::new();
        let now = now + self.cfg.post_cost;
        let round = self.round_of_rank[rank as usize] as usize;
        self.round_of_rank[rank as usize] += 1;
        while self.rounds.len() <= round {
            self.rounds.push(CollectiveState::new(self.n_ranks));
        }
        if self.rounds[round].join(rank, req, bytes, now) {
            let done =
                self.rounds[round].last_join() + self.cfg.collective_tree_time(self.n_ranks, bytes);
            let reqs: Vec<ReqId> = self.rounds[round].requests().collect();
            for r in reqs {
                self.finish(r, done, &mut out);
            }
        }
        (req, out)
    }

    /// Inspect one request.
    pub fn request(&self, id: ReqId) -> &Request {
        &self.requests[id.0 as usize]
    }

    /// All requests, in posting order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Whether every posted request has completed (end-of-run sanity).
    pub fn all_complete(&self) -> bool {
        self.requests.iter().all(|r| r.completed_at.is_some())
    }

    /// Unexpected-message count observed by `rank` so far.
    pub fn unexpected_count(&self, rank: Rank) -> u64 {
        self.unexpected[rank as usize]
    }

    /// Everything still parked in the matching state at end of run:
    /// `(owner, peer, tag, op)` tuples for unmatched sends and receives,
    /// plus one `(rank, u32::MAX, round, "Iallreduce")` entry per joined
    /// rank of every collective round still missing participants. A
    /// parked *eager* send appears here even though its request completed
    /// — the message was still never received. Sorted for stable
    /// reporting.
    pub fn unmatched(&self) -> Vec<(Rank, Rank, u32, &'static str)> {
        let mut out: Vec<(Rank, Rank, u32, &'static str)> = Vec::new();
        for (&(src, dst, tag), q) in &self.unmatched_sends {
            for _ in q {
                out.push((src, dst, tag, "Isend"));
            }
        }
        for (&(src, dst, tag), q) in &self.unmatched_recvs {
            for _ in q {
                out.push((dst, src, tag, "Irecv"));
            }
        }
        for (round, coll) in self.rounds.iter().enumerate() {
            if coll.n_joined > 0 && (coll.n_joined as usize) < coll.joined.len() {
                for (rank, slot) in coll.joined.iter().enumerate() {
                    if slot.is_some() {
                        out.push((rank as Rank, u32::MAX, round as u32, "Iallreduce"));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Total communication time on `rank` over tracked requests (send and
    /// collective — the paper's `C` metric).
    pub fn tracked_comm_time(&self, rank: Rank) -> SimTime {
        let ns: u64 = self
            .requests
            .iter()
            .filter(|r| r.rank == rank && r.is_tracked())
            .filter_map(|r| r.comm_time())
            .map(|t| t.as_ns())
            .sum();
        SimTime::from_ns(ns)
    }

    /// Split of tracked communication time into (collective, p2p-send).
    pub fn tracked_comm_split(&self, rank: Rank) -> (SimTime, SimTime) {
        let mut coll = 0u64;
        let mut p2p = 0u64;
        for r in self.requests.iter().filter(|r| r.rank == rank) {
            if let Some(t) = r.comm_time() {
                match r.kind {
                    ReqKind::Allreduce => coll += t.as_ns(),
                    ReqKind::Send => p2p += t.as_ns(),
                    ReqKind::Recv => {}
                }
            }
        }
        (SimTime::from_ns(coll), SimTime::from_ns(p2p))
    }

    /// Number of tracked requests on `rank`.
    pub fn tracked_request_count(&self, rank: Rank) -> usize {
        self.requests
            .iter()
            .filter(|r| r.rank == rank && r.is_tracked())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(
            NetConfig {
                eager_threshold: 1000,
                latency: SimTime::from_ns(100),
                bw_bytes_per_s: 1e9, // 1 ns per byte
                rendezvous_rtt: SimTime::from_ns(200),
                collective_stage_latency: SimTime::from_ns(50),
                post_cost: SimTime::ZERO,
                poll_delay: SimTime::ZERO,
            },
            4,
        )
    }

    #[test]
    fn eager_send_completes_without_receiver() {
        let mut n = net();
        let (req, comps) = n.post_isend(SimTime::from_ns(0), 0, 1, 7, 500);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].req, req);
        assert_eq!(comps[0].at.as_ns(), 500); // local buffering at 1 B/ns
    }

    #[test]
    fn eager_recv_after_send_completes_at_arrival() {
        let mut n = net();
        n.post_isend(SimTime::from_ns(0), 0, 1, 7, 500);
        let (rreq, comps) = n.post_irecv(SimTime::from_ns(50), 0, 1, 7, 500);
        // arrival = 0 + 100 + 500 = 600 > post time 50
        assert_eq!(
            comps,
            vec![Completion {
                req: rreq,
                at: SimTime::from_ns(600)
            }]
        );
    }

    #[test]
    fn eager_recv_posted_long_after_arrival_completes_immediately() {
        let mut n = net();
        n.post_isend(SimTime::from_ns(0), 0, 1, 7, 500);
        let (rreq, comps) = n.post_irecv(SimTime::from_ns(10_000), 0, 1, 7, 500);
        assert_eq!(comps[0].req, rreq);
        assert_eq!(comps[0].at.as_ns(), 10_000);
    }

    #[test]
    fn rendezvous_send_stalls_until_recv_posted() {
        let mut n = net();
        let (sreq, comps) = n.post_isend(SimTime::from_ns(0), 0, 1, 7, 2000);
        assert!(comps.is_empty(), "rendezvous send must wait for the recv");
        let (rreq, comps) = n.post_irecv(SimTime::from_ns(5_000), 0, 1, 7, 2000);
        // done = max(0, 5000) + 200 + 100 + 2000 = 7300, both sides
        assert_eq!(comps.len(), 2);
        let done = SimTime::from_ns(7_300);
        assert!(comps.contains(&Completion {
            req: sreq,
            at: done
        }));
        assert!(comps.contains(&Completion {
            req: rreq,
            at: done
        }));
        // Early posting shortens c(send): here c = 7300 (late recv).
        assert_eq!(n.request(sreq).comm_time().unwrap().as_ns(), 7_300);
    }

    #[test]
    fn rendezvous_with_early_recv_is_fast() {
        let mut n = net();
        n.post_irecv(SimTime::from_ns(0), 0, 1, 7, 2000);
        let (sreq, comps) = n.post_isend(SimTime::from_ns(1_000), 0, 1, 7, 2000);
        // done = max(1000, 0) + 200 + 100 + 2000 = 3300
        assert_eq!(comps.len(), 2);
        assert_eq!(n.request(sreq).comm_time().unwrap().as_ns(), 2_300);
    }

    #[test]
    fn matching_is_fifo_per_key() {
        let mut n = net();
        let (s1, _) = n.post_isend(SimTime::from_ns(0), 0, 1, 7, 10);
        let (s2, _) = n.post_isend(SimTime::from_ns(1), 0, 1, 7, 10);
        let (r1, c1) = n.post_irecv(SimTime::from_ns(2), 0, 1, 7, 10);
        let (r2, c2) = n.post_irecv(SimTime::from_ns(3), 0, 1, 7, 10);
        // r1 matches s1 (arrival 0+100+10=110), r2 matches s2 (111)
        assert_eq!(c1[0].req, r1);
        assert_eq!(c1[0].at.as_ns(), 110);
        assert_eq!(c2[0].req, r2);
        assert_eq!(c2[0].at.as_ns(), 111);
        let _ = (s1, s2);
    }

    #[test]
    fn different_tags_do_not_match() {
        let mut n = net();
        n.post_isend(SimTime::ZERO, 0, 1, 7, 10);
        let (_, comps) = n.post_irecv(SimTime::ZERO, 0, 1, 8, 10);
        assert!(comps.is_empty());
        assert!(!n.all_complete());
    }

    #[test]
    fn allreduce_completes_when_last_rank_joins() {
        let mut n = net();
        let mut all = Vec::new();
        for (rank, t) in [(0u32, 10u64), (1, 40), (2, 20), (3, 30)] {
            let (_, comps) = n.post_iallreduce(SimTime::from_ns(t), rank, 8);
            all.extend(comps);
        }
        assert_eq!(all.len(), 4);
        // last join 40; tree = 2 stages * (50 + 8) = 116 -> done 156
        for c in &all {
            assert_eq!(c.at.as_ns(), 156);
        }
        // the straggler (rank 1) sees the shortest c(r)
        let times: Vec<u64> = n
            .requests()
            .iter()
            .map(|r| r.comm_time().unwrap().as_ns())
            .collect();
        assert_eq!(times, vec![146, 116, 136, 126]);
    }

    #[test]
    fn collective_rounds_match_in_program_order() {
        let mut n = Network::new(NetConfig::default(), 2);
        // rank 0 joins rounds 0 and 1; rank 1 then joins round 0 and 1.
        let (_, c) = n.post_iallreduce(SimTime::from_ns(0), 0, 8);
        assert!(c.is_empty());
        let (_, c) = n.post_iallreduce(SimTime::from_ns(1), 0, 8);
        assert!(c.is_empty());
        let (_, c) = n.post_iallreduce(SimTime::from_ns(2), 1, 8);
        assert_eq!(c.len(), 2, "round 0 full");
        let (_, c) = n.post_iallreduce(SimTime::from_ns(3), 1, 8);
        assert_eq!(c.len(), 2, "round 1 full");
        assert!(n.all_complete());
    }

    #[test]
    fn tracked_metrics_exclude_recvs() {
        let mut n = net();
        n.post_isend(SimTime::ZERO, 0, 1, 7, 500);
        n.post_irecv(SimTime::ZERO, 0, 1, 7, 500);
        assert_eq!(n.tracked_request_count(0), 1); // the send, owned by rank 0
        assert_eq!(n.tracked_request_count(1), 0); // recv not tracked
        assert!(n.tracked_comm_time(0) > SimTime::ZERO);
        assert_eq!(n.tracked_comm_time(1), SimTime::ZERO);
        let (coll, p2p) = n.tracked_comm_split(0);
        assert_eq!(coll, SimTime::ZERO);
        assert!(p2p > SimTime::ZERO);
    }

    #[test]
    fn poll_delay_shifts_completions() {
        let mut cfg = NetConfig {
            eager_threshold: 1000,
            latency: SimTime::from_ns(100),
            bw_bytes_per_s: 1e9,
            rendezvous_rtt: SimTime::from_ns(200),
            collective_stage_latency: SimTime::from_ns(50),
            post_cost: SimTime::ZERO,
            poll_delay: SimTime::from_ns(42),
        };
        let mut n = Network::new(cfg.clone(), 2);
        let (_, comps) = n.post_isend(SimTime::ZERO, 0, 1, 0, 100);
        assert_eq!(comps[0].at.as_ns(), 100 + 42);
        cfg.poll_delay = SimTime::ZERO;
        let mut n = Network::new(cfg, 2);
        let (_, comps) = n.post_isend(SimTime::ZERO, 0, 1, 0, 100);
        assert_eq!(comps[0].at.as_ns(), 100);
    }
}
