//! Behavioural tests for the thread executor.

use super::*;
use crate::access::AccessMode;
use crate::handle::HandleSpace;
use crate::opts::OptConfig;
use crate::task::TaskSpec;
use crate::throttle::ThrottleConfig;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

fn exec(workers: usize) -> Executor {
    Executor::new(ExecConfig {
        n_workers: workers,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::unbounded(),
        profile: false,
        record_events: false,
    })
}

#[test]
fn chain_executes_in_order() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(2);
    let log = Arc::new(AtomicU64::new(0));
    let mut s = e.session(OptConfig::all());
    for i in 1..=10u64 {
        let log = log.clone();
        s.submit(
            TaskSpec::new("step")
                .depend(x, AccessMode::InOut)
                .body(move |_| {
                    // each step sees exactly the previous value
                    let prev = log.load(Ordering::SeqCst);
                    assert_eq!(prev, i - 1);
                    log.store(i, Ordering::SeqCst);
                }),
        );
    }
    s.wait_all();
    assert_eq!(log.load(Ordering::SeqCst), 10);
}

#[test]
fn fan_out_fan_in_runs_all() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let slices: Vec<_> = (0..32).map(|_| space.region("s", 64)).collect();
    let e = exec(4);
    let count = Arc::new(AtomicUsize::new(0));
    let sum = Arc::new(AtomicU64::new(0));
    let mut s = e.session(OptConfig::all());
    s.submit(TaskSpec::new("init").depend(x, AccessMode::Out).body({
        let c = count.clone();
        move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        }
    }));
    for (i, &sl) in slices.iter().enumerate() {
        let c = count.clone();
        let sum = sum.clone();
        s.submit(
            TaskSpec::new("mid")
                .depend(x, AccessMode::In)
                .depend(sl, AccessMode::Out)
                .body(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    sum.fetch_add(i as u64, Ordering::SeqCst);
                }),
        );
    }
    let deps: Vec<_> = slices
        .iter()
        .map(|&sl| crate::access::Depend::read(sl))
        .collect();
    s.submit(TaskSpec::new("join").depends(deps).body({
        let c = count.clone();
        let sum = sum.clone();
        move |_| {
            // all 32 middles done before the join
            assert_eq!(sum.load(Ordering::SeqCst), (0..32).sum::<u64>());
            c.fetch_add(1, Ordering::SeqCst);
        }
    }));
    s.wait_all();
    assert_eq!(count.load(Ordering::SeqCst), 34);
}

#[test]
fn inoutset_members_all_run_before_reader() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(4);
    let members = Arc::new(AtomicUsize::new(0));
    let mut s = e.session(OptConfig::all());
    for _ in 0..8 {
        let m = members.clone();
        s.submit(
            TaskSpec::new("member")
                .depend(x, AccessMode::InOutSet)
                .body(move |_| {
                    m.fetch_add(1, Ordering::SeqCst);
                }),
        );
    }
    let m = members.clone();
    s.submit(
        TaskSpec::new("reader")
            .depend(x, AccessMode::In)
            .body(move |_| {
                assert_eq!(m.load(Ordering::SeqCst), 8, "reader after all members");
            }),
    );
    s.wait_all();
    assert_eq!(members.load(Ordering::SeqCst), 8);
}

#[test]
fn inoutset_without_redirect_optimization_is_equally_correct() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(3);
    let members = Arc::new(AtomicUsize::new(0));
    let mut s = e.session(OptConfig::none());
    for _ in 0..8 {
        let m = members.clone();
        s.submit(
            TaskSpec::new("member")
                .depend(x, AccessMode::InOutSet)
                .body(move |_| {
                    m.fetch_add(1, Ordering::SeqCst);
                }),
        );
    }
    for _ in 0..4 {
        let m = members.clone();
        s.submit(
            TaskSpec::new("reader")
                .depend(x, AccessMode::In)
                .body(move |_| {
                    assert_eq!(m.load(Ordering::SeqCst), 8);
                }),
        );
    }
    s.wait_all();
}

#[test]
fn breadth_first_policy_completes() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = Executor::new(ExecConfig {
        n_workers: 2,
        policy: SchedPolicy::BreadthFirst,
        throttle: ThrottleConfig::unbounded(),
        profile: false,
        record_events: false,
    });
    let n = Arc::new(AtomicUsize::new(0));
    let mut s = e.session(OptConfig::all());
    for i in 0..50 {
        let n = n.clone();
        let mode = if i % 10 == 0 {
            AccessMode::InOut
        } else {
            AccessMode::In
        };
        s.submit(TaskSpec::new("t").depend(x, mode).body(move |_| {
            n.fetch_add(1, Ordering::SeqCst);
        }));
    }
    s.wait_all();
    assert_eq!(n.load(Ordering::SeqCst), 50);
}

#[test]
fn non_overlapped_session_discovers_before_executing() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(2);
    let ran = Arc::new(AtomicUsize::new(0));
    let mut s = e.session_non_overlapped(OptConfig::all());
    for _ in 0..20 {
        let r = ran.clone();
        s.submit(
            TaskSpec::new("t")
                .depend(x, AccessMode::InOut)
                .body(move |_| {
                    r.fetch_add(1, Ordering::SeqCst);
                }),
        );
        // While discovering, nothing may run.
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }
    // Non-overlapped discovery prunes nothing: every edge exists.
    assert_eq!(s.stats().edges_created, 19);
    s.wait_all();
    assert_eq!(ran.load(Ordering::SeqCst), 20);
}

#[test]
fn overlapped_session_can_prune_edges() {
    // With a slow producer and an eager pool, predecessors are often
    // consumed before their successors are discovered -> pruned edges.
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(2);
    let mut s = e.session(OptConfig::all());
    for i in 0..20 {
        s.submit(
            TaskSpec::new("t")
                .depend(x, AccessMode::InOut)
                .firstprivate_bytes(i as u32)
                .body(|_| {}),
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let st = s.stats();
    s.wait_all();
    assert_eq!(st.edges_created + st.edges_pruned, 19);
    assert!(
        st.edges_pruned > 0,
        "a 1ms-per-task producer against empty tasks must prune; got {st:?}"
    );
}

#[test]
fn throttling_bounds_live_tasks() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = Executor::new(ExecConfig {
        n_workers: 1,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig {
            max_ready: None,
            max_live: Some(8),
        },
        profile: false,
        record_events: false,
    });
    let peak = Arc::new(AtomicUsize::new(0));
    let mut s = e.session(OptConfig::all());
    for _ in 0..200 {
        let pool_live_peak = peak.clone();
        let tracker = Arc::clone(&e.pool().tracker);
        s.submit(TaskSpec::new("t").depend(x, AccessMode::In).body(move |_| {
            pool_live_peak.fetch_max(tracker.live(), Ordering::SeqCst);
        }));
    }
    s.wait_all();
    // max_live=8 plus the one task the producer may be mid-submitting.
    assert!(
        peak.load(Ordering::SeqCst) <= 16,
        "throttle failed: peak live {}",
        peak.load(Ordering::SeqCst)
    );
}

#[test]
fn persistent_region_runs_every_iteration_with_correct_iter() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(2);
    let sums: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
    let mut region = e.persistent_region(OptConfig::all());
    for iter in 0..4u64 {
        let sums = sums.clone();
        region.run(iter, |sub| {
            // 3-task chain: w -> r -> r2; bodies record ctx.iter.
            for (k, mode) in [
                (0usize, AccessMode::Out),
                (1, AccessMode::In),
                (2, AccessMode::In),
            ] {
                let sums = sums.clone();
                sub.submit(TaskSpec::new("t").depend(x, mode).body(move |ctx| {
                    sums[ctx.iter as usize].fetch_add(1 + k as u64, Ordering::SeqCst);
                }));
            }
        });
    }
    assert_eq!(region.iterations_run(), 4);
    for iter in 0..4 {
        assert_eq!(
            sums[iter].load(Ordering::SeqCst),
            6,
            "iteration {iter} must run all 3 tasks exactly once"
        );
    }
    let t = region.template().unwrap();
    assert_eq!(t.n_tasks(), 3);
    assert_eq!(t.n_edges(), 2);
}

#[test]
fn persistent_region_respects_dependencies_every_iteration() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(4);
    let val = Arc::new(AtomicU64::new(0));
    let mut region = e.persistent_region(OptConfig::all());
    for iter in 0..16u64 {
        let val = val.clone();
        region.run(iter, move |sub| {
            let v1 = val.clone();
            sub.submit(
                TaskSpec::new("w")
                    .depend(x, AccessMode::Out)
                    .body(move |ctx| {
                        v1.store(ctx.iter * 100, Ordering::SeqCst);
                    }),
            );
            for _ in 0..8 {
                let v = val.clone();
                sub.submit(
                    TaskSpec::new("r")
                        .depend(x, AccessMode::In)
                        .body(move |ctx| {
                            assert_eq!(v.load(Ordering::SeqCst), ctx.iter * 100);
                        }),
                );
            }
        });
    }
    assert_eq!(region.iterations_run(), 16);
}

#[test]
fn persistent_template_counts_unpruned_edges() {
    // Even at full execution speed, the capture must record every edge.
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(4);
    let mut region = e.persistent_region(OptConfig::all());
    region.run(0, |sub| {
        for _ in 0..64 {
            sub.submit(TaskSpec::new("t").depend(x, AccessMode::InOut).body(|_| {}));
        }
    });
    assert_eq!(region.template().unwrap().n_edges(), 63);
}

#[test]
fn trace_records_work_spans() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = Executor::new(ExecConfig {
        n_workers: 2,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::unbounded(),
        profile: true,
        record_events: false,
    });
    let mut s = e.session(OptConfig::all());
    for _ in 0..10 {
        s.submit(
            TaskSpec::new("traced")
                .depend(x, AccessMode::InOut)
                .body(|_| {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }),
        );
    }
    s.wait_all();
    let trace = e.take_trace();
    assert_eq!(trace.n_tasks_run(), 10);
    assert!(trace.span_ns > 0);
    assert!(trace.mean_task_grain_ns() >= 100_000.0 * 0.5);
    // take_trace drains
    assert_eq!(e.take_trace().n_tasks_run(), 0);
}

#[test]
fn many_independent_tasks_all_run() {
    let mut space = HandleSpace::new();
    let hs: Vec<_> = (0..256).map(|_| space.region("h", 8)).collect();
    let e = exec(4);
    let n = Arc::new(AtomicUsize::new(0));
    let mut s = e.session(OptConfig::all());
    for &h in &hs {
        let n = n.clone();
        s.submit(
            TaskSpec::new("t")
                .depend(h, AccessMode::Out)
                .body(move |_| {
                    n.fetch_add(1, Ordering::SeqCst);
                }),
        );
    }
    s.wait_all();
    assert_eq!(n.load(Ordering::SeqCst), 256);
}

#[test]
fn sequential_sessions_on_one_executor() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(2);
    for round in 0..3 {
        let n = Arc::new(AtomicUsize::new(0));
        let mut s = e.session(OptConfig::all());
        for _ in 0..10 {
            let n = n.clone();
            s.submit(TaskSpec::new("t").depend(x, AccessMode::In).body(move |_| {
                n.fetch_add(1, Ordering::SeqCst);
            }));
        }
        s.wait_all();
        assert_eq!(n.load(Ordering::SeqCst), 10, "round {round}");
    }
}

#[test]
fn tasks_without_dependences_are_roots() {
    let e = exec(2);
    let n = Arc::new(AtomicUsize::new(0));
    let mut s = e.session(OptConfig::all());
    for _ in 0..5 {
        let n = n.clone();
        s.submit(TaskSpec::new("root").body(move |_| {
            n.fetch_add(1, Ordering::SeqCst);
        }));
    }
    s.wait_all();
    assert_eq!(n.load(Ordering::SeqCst), 5);
}

#[test]
fn taskwait_blocks_until_prior_tasks_complete() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(3);
    let n = Arc::new(AtomicUsize::new(0));
    let mut s = e.session(OptConfig::all());
    for _ in 0..16 {
        let n = n.clone();
        s.submit(
            TaskSpec::new("pre")
                .depend(x, AccessMode::In)
                .body(move |_| {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    n.fetch_add(1, Ordering::SeqCst);
                }),
        );
    }
    s.taskwait();
    assert_eq!(n.load(Ordering::SeqCst), 16, "taskwait drains prior tasks");
    // the session continues to work afterwards
    let n2 = n.clone();
    s.submit(
        TaskSpec::new("post")
            .depend(x, AccessMode::Out)
            .body(move |_| {
                n2.fetch_add(100, Ordering::SeqCst);
            }),
    );
    s.wait_all();
    assert_eq!(n.load(Ordering::SeqCst), 116);
}

#[test]
fn persistent_region_invalidate_recaptures() {
    // Models an AMR step: the graph changes shape mid-run.
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(2);
    let count = Arc::new(AtomicUsize::new(0));
    let mut region = e.persistent_region(OptConfig::all());
    let build = |width: usize, count: Arc<AtomicUsize>| {
        move |sub: &mut dyn crate::builder::TaskSubmitter| {
            for _ in 0..width {
                let c = count.clone();
                sub.submit(TaskSpec::new("t").depend(x, AccessMode::In).body(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
    };
    for iter in 0..3u64 {
        region.run(iter, build(4, count.clone()));
    }
    assert_eq!(region.template().unwrap().n_tasks(), 4);
    assert_eq!(count.load(Ordering::SeqCst), 12);
    // "mesh adaptation": the next capture has 6 tasks per iteration
    region.invalidate();
    for iter in 3..6u64 {
        region.run(iter, build(6, count.clone()));
    }
    assert_eq!(region.template().unwrap().n_tasks(), 6);
    assert_eq!(count.load(Ordering::SeqCst), 12 + 18);
    assert_eq!(region.iterations_run(), 6);
}

#[test]
fn capture_iteration_stamps_requested_iter() {
    let mut space = HandleSpace::new();
    let x = space.region("x", 8);
    let e = exec(2);
    let seen = Arc::new(AtomicU64::new(u64::MAX));
    let mut region = e.persistent_region(OptConfig::all());
    // start the region at iteration 7 (e.g. after a restart)
    let s7 = seen.clone();
    region.run(7, move |sub| {
        let s = s7.clone();
        sub.submit(
            TaskSpec::new("t")
                .depend(x, AccessMode::In)
                .body(move |ctx| {
                    s.store(ctx.iter, Ordering::SeqCst);
                }),
        );
    });
    assert_eq!(seen.load(Ordering::SeqCst), 7, "capture run sees iter 7");
    region.run(8, |_| unreachable!());
    assert_eq!(seen.load(Ordering::SeqCst), 8);
}

#[test]
fn deep_redirect_chain_does_not_overflow_stack() {
    // make_ready walks redirect completions with an explicit worklist;
    // a chain this deep overflows the test thread's stack if anyone
    // reintroduces recursion there.
    use crate::rt::{NodeArena, RtNode};
    use crate::task::TaskId;
    const DEPTH: usize = 200_000;
    let e = exec(2);
    let pool = Arc::clone(e.pool());
    let mut arena = NodeArena::new();
    arena.reserve(DEPTH);
    let chain: Vec<_> = (0..DEPTH)
        .map(|i| arena.alloc(RtNode::redirect(TaskId(i as u32), 0)))
        .collect();
    for w in chain.windows(2) {
        assert!(w[0].attach_succ(&w[1]));
    }
    let ran = Arc::new(AtomicUsize::new(0));
    let tail = RtNode::bare(
        TaskId(DEPTH as u32),
        "tail",
        Some(Arc::new({
            let ran = Arc::clone(&ran);
            move |_: &crate::task::TaskCtx| {
                ran.fetch_add(1, Ordering::SeqCst);
            }
        })),
        0,
    );
    assert!(chain.last().unwrap().attach_succ(&tail));
    // Drop every creation token; non-head nodes keep their 1 predecessor.
    for n in chain.iter().skip(1) {
        assert!(!n.seal());
    }
    assert!(!tail.seal());
    pool.tracker.created(DEPTH + 1);
    assert!(chain[0].seal(), "head has only its token");
    pool.make_ready(chain[0].clone(), None);
    pool.barrier();
    assert_eq!(ran.load(Ordering::SeqCst), 1, "tail task ran exactly once");
}
