//! Small vendored utilities (no crates.io access — same policy as the
//! `crates/proptest` and `crates/criterion` shims).

mod inline;

pub use inline::InlineVec;
