//! A live graph instance: the one [`GraphSink`] both back-ends feed to the
//! [`crate::graph::DiscoveryEngine`].
//!
//! `GraphInstance` owns the node table, applies edges (including pruning
//! against already-completed predecessors), tracks creation counts, and —
//! when capturing for a persistent region — mirrors every node and edge
//! into a [`TemplateRecorder`]. Back-ends never materialize nodes or
//! edges themselves; they only *route* the ready tasks this instance
//! hands them.
//!
//! Nodes come from the instance's [`NodeArena`]: after a
//! [`GraphInstance::reserve`] (or once chunk allocation has warmed up),
//! submitting a task performs **zero** heap allocations — the zero-alloc
//! invariant of DESIGN.md §4.4.

use super::arena::{NodeArena, NodeRef};
use super::probe::{NullProbe, RtProbe};
use super::{ReadyTracker, RtNode};
use crate::graph::{GraphSink, GraphTemplate, TemplateRecorder};
use crate::task::{SpecView, TaskId};
use std::sync::Arc;

/// Options for a [`GraphInstance`].
#[derive(Clone, Copy, Debug)]
pub struct InstanceOptions {
    /// Retain task bodies (real execution). `false` for cost-model-only
    /// back-ends — discovery then skips closure allocation entirely.
    pub want_bodies: bool,
    /// Retain [`crate::WorkDesc`]s on nodes (cost models need them; the
    /// wall-clock executor does not).
    pub keep_work: bool,
    /// Mirror discovery into a [`TemplateRecorder`] for persistent
    /// re-instancing. Capture disables pruning *reporting*: the recorder
    /// must keep every edge for later iterations, so `add_edge` claims
    /// success even when the live edge was pruned.
    pub capture: bool,
}

impl Default for InstanceOptions {
    fn default() -> Self {
        InstanceOptions {
            want_bodies: true,
            keep_work: false,
            capture: false,
        }
    }
}

/// The streaming node table one discovery stream writes into.
pub struct GraphInstance {
    arena: NodeArena,
    nodes: Vec<NodeRef>,
    newly_ready: Vec<NodeRef>,
    tracker: Arc<ReadyTracker>,
    capture: Option<TemplateRecorder>,
    opts: InstanceOptions,
    iter: u64,
    probe: Arc<dyn RtProbe>,
    /// Timestamp stamped on lifecycle events emitted during discovery;
    /// the back-end advances it before each submission batch (discovery
    /// itself has no clock).
    now_ns: u64,
}

impl GraphInstance {
    /// A fresh instance accounting into `tracker`.
    pub fn new(tracker: Arc<ReadyTracker>, opts: InstanceOptions) -> Self {
        GraphInstance {
            arena: NodeArena::new(),
            nodes: Vec::new(),
            newly_ready: Vec::new(),
            tracker,
            capture: opts
                .capture
                .then(|| TemplateRecorder::new(opts.want_bodies)),
            opts,
            iter: 0,
            probe: Arc::new(NullProbe),
            now_ns: 0,
        }
    }

    /// Pre-size the node table, the arena, and the ready buffer for
    /// `extra` more tasks, so the next `extra` submissions allocate
    /// nothing.
    pub fn reserve(&mut self, extra: usize) {
        self.arena.reserve(extra);
        self.nodes.reserve(extra);
        self.newly_ready.reserve(extra);
    }

    /// Iteration stamped onto subsequently created nodes.
    pub fn set_iter(&mut self, iter: u64) {
        self.iter = iter;
    }

    /// Attach the lifecycle probe (creation and root-readiness events are
    /// emitted from here — the discovery-side emit site).
    pub fn set_probe(&mut self, probe: Arc<dyn RtProbe>) {
        self.probe = probe;
    }

    /// Advance the clock lifecycle events are stamped with.
    pub fn set_now_ns(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// The node for `id`.
    pub fn node(&self, id: TaskId) -> &NodeRef {
        &self.nodes[id.index()]
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Tasks that became ready since the last drain, in seal order. The
    /// back-end routes them (hold gate, queues) — the instance only
    /// detects readiness.
    pub fn drain_ready(&mut self) -> Vec<NodeRef> {
        std::mem::take(&mut self.newly_ready)
    }

    /// [`GraphInstance::drain_ready`] into a caller-recycled buffer: the
    /// instance's internal ready list keeps its capacity and `out` grows
    /// at most to the high-water mark — after warm-up, no allocation on
    /// either side.
    pub fn drain_ready_into(&mut self, out: &mut Vec<NodeRef>) {
        out.append(&mut self.newly_ready);
    }

    /// Finish a capture, yielding the persistent template. Panics if the
    /// instance was not created with `capture`.
    pub fn finish_capture(&mut self) -> GraphTemplate {
        self.capture
            .take()
            .expect("finish_capture requires InstanceOptions::capture")
            .finish()
    }
}

impl GraphSink for GraphInstance {
    fn add_task(&mut self, view: &SpecView<'_>) -> TaskId {
        let id = TaskId(self.nodes.len() as u32);
        self.tracker.created(1);
        let node = RtNode::from_view(
            id,
            view,
            self.iter,
            self.opts.want_bodies,
            self.opts.keep_work,
        );
        self.nodes.push(self.arena.alloc(node));
        if let Some(cap) = &mut self.capture {
            let mirror = cap.add_task(view);
            debug_assert_eq!(mirror, id, "capture mirrors node ids");
        }
        if self.probe.lifecycle_enabled() {
            self.probe.task_created(id, self.now_ns);
        }
        id
    }

    fn add_redirect(&mut self) -> TaskId {
        let id = TaskId(self.nodes.len() as u32);
        self.tracker.created(1);
        self.nodes
            .push(self.arena.alloc(RtNode::redirect(id, self.iter)));
        if let Some(cap) = &mut self.capture {
            let mirror = cap.add_redirect();
            debug_assert_eq!(mirror, id, "capture mirrors node ids");
        }
        if self.probe.lifecycle_enabled() {
            self.probe.task_created(id, self.now_ns);
        }
        id
    }

    fn add_edge(&mut self, pred: TaskId, succ: TaskId) -> bool {
        let attached = self.nodes[pred.index()].attach_succ(&self.nodes[succ.index()]);
        if let Some(cap) = &mut self.capture {
            cap.add_edge(pred, succ);
            // The template keeps the edge either way; report success so the
            // engine's dedup table stays consistent with the template.
            return true;
        }
        attached
    }

    fn seal(&mut self, task: TaskId) {
        let node = &self.nodes[task.index()];
        if node.seal() {
            if self.probe.lifecycle_enabled() {
                self.probe.task_ready(node.id, self.now_ns);
            }
            self.newly_ready.push(node.clone());
        }
    }

    fn wants_bodies(&self) -> bool {
        self.opts.want_bodies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DiscoveryEngine;
    use crate::opts::OptConfig;
    use crate::task::TaskSpec;
    use crate::{AccessMode, HandleSpace};

    fn chain_specs(space: &mut HandleSpace) -> Vec<TaskSpec> {
        let x = space.region("x", 4096);
        vec![
            TaskSpec::new("w").depend(x, AccessMode::Out),
            TaskSpec::new("r1").depend(x, AccessMode::In),
            TaskSpec::new("r2").depend(x, AccessMode::In),
        ]
    }

    #[test]
    fn discovery_builds_nodes_and_readiness() {
        let mut space = HandleSpace::new();
        let tracker = Arc::new(ReadyTracker::new());
        let mut inst = GraphInstance::new(Arc::clone(&tracker), InstanceOptions::default());
        let mut engine = DiscoveryEngine::new(OptConfig::all());
        for spec in chain_specs(&mut space) {
            engine.submit(&mut inst, &spec);
        }
        assert_eq!(inst.len(), 3);
        assert_eq!(tracker.live(), 3);
        let ready = inst.drain_ready();
        assert_eq!(ready.len(), 1, "only the writer is ready");
        assert_eq!(ready[0].name, "w");
        let done = ready[0].complete();
        assert_eq!(done.ready.len(), 2, "both readers released");
    }

    #[test]
    fn drain_ready_into_recycles_buffers() {
        let mut space = HandleSpace::new();
        let tracker = Arc::new(ReadyTracker::new());
        let mut inst = GraphInstance::new(tracker, InstanceOptions::default());
        let mut engine = DiscoveryEngine::new(OptConfig::all());
        let mut buf = Vec::new();
        for spec in chain_specs(&mut space) {
            engine.submit(&mut inst, &spec);
            inst.drain_ready_into(&mut buf);
        }
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].name, "w");
        buf.clear();
        let cap = buf.capacity();
        // subsequent drains refill within the retained capacity
        let y = space.region("y", 64);
        engine.submit(&mut inst, &TaskSpec::new("w2").depend(y, AccessMode::Out));
        inst.drain_ready_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn capture_mirrors_the_stream() {
        let mut space = HandleSpace::new();
        let tracker = Arc::new(ReadyTracker::new());
        let mut inst = GraphInstance::new(
            tracker,
            InstanceOptions {
                capture: true,
                ..InstanceOptions::default()
            },
        );
        let mut engine = DiscoveryEngine::new(OptConfig::all());
        for spec in chain_specs(&mut space) {
            engine.submit(&mut inst, &spec);
        }
        let tmpl = inst.finish_capture();
        assert_eq!(tmpl.n_tasks(), 3);
        assert_eq!(tmpl.n_edges(), 2);
    }

    #[test]
    fn reserve_is_accepted_before_any_submission() {
        let tracker = Arc::new(ReadyTracker::new());
        let mut inst = GraphInstance::new(tracker, InstanceOptions::default());
        inst.reserve(100);
        let mut space = HandleSpace::new();
        let mut engine = DiscoveryEngine::new(OptConfig::all());
        for spec in chain_specs(&mut space) {
            engine.submit(&mut inst, &spec);
        }
        assert_eq!(inst.len(), 3);
    }
}
