//! The virtual-time task executor.
//!
//! One discrete-event simulation drives `n_ranks` virtual nodes, each with
//! `n_cores` cores. Core 0 of every rank doubles as the **producer**: it
//! discovers the TDG sequentially at the modeled cost (per task, per depend
//! item, per edge, per duplicate probe — or per re-instanced task in
//! persistent mode) and joins the worker pool when discovery is done, or
//! temporarily when throttling bounds are exceeded. Workers execute ready
//! tasks with the depth-first (local LIFO + steal) or breadth-first policy,
//! their work time coming from the `ptdg-memsim` cache model under shared
//! DRAM contention; communication tasks post into the `ptdg-simmpi` network
//! with detached-completion semantics.
//!
//! Graph state is **not** simulated here: nodes, in-degree counters,
//! readiness, hold gate, throttling and persistent re-instancing all come
//! from the shared runtime kernel ([`ptdg_core::rt`]) — the same code the
//! thread executor runs. This file is purely the *DES cost-model policy*:
//! it decides what each kernel transition costs in virtual time and which
//! simulated core performs it.

use crate::machine::MachineConfig;
use crate::program::RankProgram;
use crate::report::{RankReport, SimReport};
use ptdg_core::builder::RecordingSubmitter;
use ptdg_core::comm::{CommError, UnmatchedComm};
use ptdg_core::graph::{DiscoveryEngine, DiscoveryStats};
use ptdg_core::handle::HandleSpace;
use ptdg_core::obs::{EventRecorder, EVENT_RING_CAPACITY};
use ptdg_core::opts::OptConfig;
use ptdg_core::profile::{Span, SpanKind, Trace};
use ptdg_core::rt::{
    GraphInstance, HoldGate, InstanceOptions, NodeRef, PersistentInstance, ReadyQueues,
    ReadyTracker, RtProbe, SchedPolicy, ThrottleGate, REINSTANCE_BATCH,
};
use ptdg_core::task::{TaskId, TaskSpec};
use ptdg_core::throttle::ThrottleConfig;
use ptdg_core::workdesc::{CommOp, WorkDesc};
use ptdg_memsim::{BlockRange, DramContention, MemoryHierarchy};
use ptdg_simcore::{EventQueue, SimTime, SplitRng};
use ptdg_simmpi::{Network, ReqId};
use std::collections::HashMap;
use std::sync::Arc;

/// Producer retry period while throttled with nothing to help with.
const THROTTLE_RETRY: SimTime = SimTime(5_000);

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of MPI ranks.
    pub n_ranks: u32,
    /// Runtime discovery optimizations (b)/(c).
    pub opts: OptConfig,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Optimization (p): persistent task sub-graph across iterations.
    pub persistent: bool,
    /// Paper Table 1 "non overlapped": discover everything first.
    pub non_overlapped: bool,
    /// Producer throttling.
    pub throttle: ThrottleConfig,
    /// Interconnect parameters.
    pub net: ptdg_simmpi::NetConfig,
    /// Record a full span trace on this rank (Gantt export).
    pub record_trace_rank: Option<u32>,
    /// Relative amplitude of deterministic per-task work-time jitter
    /// (models system noise and data-dependent imbalance; the source of
    /// collective skew in distributed runs). 0.0 = none.
    pub work_jitter: f64,
    /// Seed of the jitter streams.
    pub seed: u64,
    /// Capture the discovered graph per rank into
    /// [`SimReport::graphs`] (cross-backend equivalence checks). Capture
    /// disables edge pruning, like persistent capture does.
    pub capture_graph: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_ranks: 1,
            opts: OptConfig::all(),
            policy: SchedPolicy::DepthFirst,
            persistent: false,
            non_overlapped: false,
            throttle: ThrottleConfig::unbounded(),
            net: ptdg_simmpi::NetConfig::default(),
            record_trace_rank: None,
            work_jitter: 0.0,
            seed: 0x5EED,
            capture_graph: false,
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// Producer does its next unit of discovery work.
    Producer(u32),
    /// A core is free and looks for a task.
    CoreFree { rank: u32, core: u32 },
    /// A compute task finishes.
    TaskDone {
        rank: u32,
        core: u32,
        node: u32,
        work_ns: u64,
        demand: Option<ptdg_memsim::DemandId>,
    },
    /// A communication request completes.
    ReqDone(ReqId),
}

enum Prod {
    StartIter(u64),
    Discover {
        iter: u64,
        specs: std::collections::VecDeque<TaskSpec>,
    },
    Reinstance {
        iter: u64,
        next: usize,
    },
    Barrier {
        next_iter: u64,
    },
    Worker,
}

struct RankState {
    engine: DiscoveryEngine,
    /// Streaming graph state (kernel).
    instance: GraphInstance,
    tracker: Arc<ReadyTracker>,
    queues: ReadyQueues<u32>,
    gate: HoldGate<u32>,
    throttle: ThrottleGate,
    /// Instanced persistent graph after iteration 0 (kernel).
    pinst: Option<PersistentInstance>,
    /// Recycled publish buffer for re-instanced iterations.
    publish_buf: Vec<NodeRef>,
    /// Memory footprint per node id, resolved once at creation (the
    /// cost-model side table the kernel is agnostic of).
    blocks: Vec<Vec<BlockRange>>,
    prod: Prod,
    producer_helping: bool,
    producer_done: bool,
    idle_since: Vec<Option<SimTime>>,
    hier: MemoryHierarchy,
    contention: DramContention,
    in_template_iter: bool, // executing a re-instanced iteration
    // accounting
    work_ns: u64,
    overhead_ns: u64,
    idle_ns: u64,
    tasks_executed: u64,
    last_event: SimTime,
    stalls: ptdg_memsim::StallCycles,
    /// Cumulative producer time spent discovering / re-instancing (the
    /// paper's Table 2 "discovery" column: busy time, excluding barriers
    /// and helping).
    disc_busy_ns: u64,
    disc_first_iter_ns: u64,
    // overlap accounting
    open_tracked: u32,
    running_work: u32,
    overlap_last: SimTime,
    overlapped_ns: u64,
    // trace
    trace: Option<Vec<Span>>,
    /// Lifecycle-event sink the kernel emit sites narrate through;
    /// enabled on the `record_trace_rank` rank only (spans stay in the
    /// per-rank vector above — the recorder only carries events here).
    probe: Arc<EventRecorder>,
    throttle_stalls: u64,
    throttle_stall_ns: u64,
    comms_posted: u64,
    comms_completed: u64,
    comm_wait_ns: u64,
    rng: SplitRng,
}

impl RankState {
    /// The live node for `id` in the current execution mode.
    fn node(&self, id: u32) -> &NodeRef {
        if self.in_template_iter {
            self.pinst
                .as_ref()
                .expect("template iteration")
                .node(TaskId(id))
        } else {
            self.instance.node(TaskId(id))
        }
    }

    fn acc_overlap(&mut self, now: SimTime) {
        // start_exec pre-advances the accounting clock to the task's start
        // time; an event landing inside that window contributes nothing.
        if now <= self.overlap_last {
            return;
        }
        if self.open_tracked > 0 {
            self.overlapped_ns +=
                (now.as_ns() - self.overlap_last.as_ns()) * self.running_work as u64;
        }
        self.overlap_last = now;
    }

    fn span(
        &mut self,
        worker: u32,
        start: SimTime,
        end: SimTime,
        kind: SpanKind,
        name: &'static str,
        iter: u64,
    ) {
        if let Some(tr) = &mut self.trace {
            tr.push(Span {
                worker,
                start_ns: start.as_ns(),
                end_ns: end.as_ns(),
                kind,
                name,
                iter,
            });
        }
    }
}

/// Resolve a work description's footprint to memory-model block ranges.
fn resolve_blocks(space: &HandleSpace, work: &WorkDesc) -> Vec<BlockRange> {
    let bb = space.block_bytes();
    work.footprint
        .iter()
        .filter(|s| s.len > 0)
        .map(|s| {
            let info = space.info(s.handle);
            let first = info.base_block + s.offset / bb;
            let last = info.base_block + (s.offset + s.len - 1) / bb;
            BlockRange::new(first, (last - first + 1) as u32)
        })
        .collect()
}

/// The simulation driver.
pub struct TaskSim<'p> {
    machine: MachineConfig,
    cfg: SimConfig,
    space: HandleSpace,
    program: &'p dyn RankProgram,
    evq: EventQueue<Ev>,
    ranks: Vec<RankState>,
    net: Network,
    req_map: HashMap<ReqId, (u32, u32)>,
}

/// Simulate a task-based program and return its measurements.
pub fn simulate_tasks(
    machine: &MachineConfig,
    cfg: &SimConfig,
    space: &HandleSpace,
    program: &dyn RankProgram,
) -> SimReport {
    assert!(
        !(cfg.persistent && cfg.non_overlapped),
        "persistent + non-overlapped is not a studied configuration"
    );
    let mut sim = TaskSim::new(machine.clone(), cfg.clone(), space.clone(), program);
    sim.run()
}

impl<'p> TaskSim<'p> {
    fn new(
        machine: MachineConfig,
        cfg: SimConfig,
        space: HandleSpace,
        program: &'p dyn RankProgram,
    ) -> Self {
        assert_eq!(
            machine.mem.block_bytes,
            space.block_bytes(),
            "HandleSpace block size must match the memory model"
        );
        let n_cores = machine.n_cores;
        let ranks = (0..cfg.n_ranks)
            .map(|r| {
                let tracker = Arc::new(ReadyTracker::new());
                let probe = Arc::new(EventRecorder::with_capacity(
                    1,
                    cfg.record_trace_rank == Some(r),
                    0,
                    EVENT_RING_CAPACITY,
                ));
                let mut instance = GraphInstance::new(
                    Arc::clone(&tracker),
                    InstanceOptions {
                        want_bodies: false,
                        keep_work: true,
                        capture: cfg.persistent || cfg.capture_graph,
                    },
                );
                instance.set_probe(Arc::clone(&probe) as Arc<dyn RtProbe>);
                RankState {
                    engine: DiscoveryEngine::new(cfg.opts),
                    instance,
                    tracker,
                    queues: ReadyQueues::new(cfg.policy, n_cores),
                    gate: HoldGate::new(cfg.non_overlapped),
                    throttle: ThrottleGate::new(cfg.throttle),
                    pinst: None,
                    publish_buf: Vec::new(),
                    blocks: Vec::new(),
                    prod: Prod::StartIter(0),
                    producer_helping: false,
                    producer_done: false,
                    idle_since: vec![None; n_cores],
                    hier: MemoryHierarchy::new(machine.mem.clone(), n_cores),
                    contention: DramContention::new(machine.mem.dram_bw_bytes_per_s),
                    in_template_iter: false,
                    work_ns: 0,
                    overhead_ns: 0,
                    idle_ns: 0,
                    tasks_executed: 0,
                    last_event: SimTime::ZERO,
                    stalls: Default::default(),
                    disc_busy_ns: 0,
                    disc_first_iter_ns: 0,
                    open_tracked: 0,
                    running_work: 0,
                    overlap_last: SimTime::ZERO,
                    overlapped_ns: 0,
                    trace: (cfg.record_trace_rank == Some(r)).then(Vec::new),
                    probe,
                    throttle_stalls: 0,
                    throttle_stall_ns: 0,
                    comms_posted: 0,
                    comms_completed: 0,
                    comm_wait_ns: 0,
                    rng: SplitRng::new(cfg.seed.wrapping_add(r as u64 * 0x9E37_79B9)),
                }
            })
            .collect();
        let net = Network::new(cfg.net.clone(), cfg.n_ranks);
        TaskSim {
            machine,
            cfg,
            space,
            program,
            evq: EventQueue::new(),
            ranks,
            net,
            req_map: HashMap::new(),
        }
    }

    fn run(&mut self) -> SimReport {
        for r in 0..self.cfg.n_ranks {
            self.evq.push(SimTime::ZERO, Ev::Producer(r));
            // Cores 1.. start idle; core 0 is the producer.
            for c in 1..self.machine.n_cores {
                self.ranks[r as usize].idle_since[c] = Some(SimTime::ZERO);
            }
        }
        while let Some(ev) = self.evq.pop() {
            let now = ev.time;
            match ev.payload {
                Ev::Producer(rank) => self.producer_step(rank, now),
                Ev::CoreFree { rank, core } => self.core_free(rank, core, now),
                Ev::TaskDone {
                    rank,
                    core,
                    node,
                    work_ns,
                    demand,
                } => self.task_done(rank, core, node, work_ns, demand, now),
                Ev::ReqDone(req) => self.req_done(req, now),
            }
        }
        self.finalize()
    }

    // ---- producer -------------------------------------------------------

    fn note_rank_time(&mut self, rank: u32, now: SimTime) {
        let st = &mut self.ranks[rank as usize];
        if now > st.last_event {
            st.last_event = now;
        }
    }

    fn producer_step(&mut self, rank: u32, now: SimTime) {
        self.note_rank_time(rank, now);
        let st = &mut self.ranks[rank as usize];
        match std::mem::replace(&mut st.prod, Prod::Worker) {
            Prod::StartIter(iter) => {
                if iter >= self.program.n_iterations() {
                    st.prod = Prod::Worker;
                    self.finish_discovery(rank, now);
                } else if self.cfg.persistent && iter > 0 {
                    // Kernel-side re-arm is bookkeeping; the *time* is
                    // charged by the paced Reinstance steps below, which
                    // drop the visibility tokens batch by batch.
                    let pinst = st.pinst.as_ref().expect("template frozen after iter 0");
                    pinst.begin_iteration_with(iter, &st.tracker, st.probe.as_ref(), now.as_ns());
                    st.in_template_iter = true;
                    st.prod = Prod::Reinstance { iter, next: 0 };
                    self.evq.push(now, Ev::Producer(rank));
                } else {
                    let mut rec = RecordingSubmitter::default();
                    self.program.build_iteration(rank, iter, &mut rec);
                    st.instance.set_iter(iter);
                    st.prod = Prod::Discover {
                        iter,
                        specs: rec.specs.into(),
                    };
                    self.evq.push(now, Ev::Producer(rank));
                }
            }
            Prod::Discover { iter, mut specs } => {
                // Throttling: the producer helps execute when bounds are hit.
                if st.throttle.should_help(&st.tracker) {
                    st.prod = Prod::Discover { iter, specs };
                    self.producer_help(rank, now);
                    return;
                }
                match specs.pop_front() {
                    None => {
                        if self.cfg.persistent {
                            // iteration 0 ends: freeze the template
                            debug_assert_eq!(iter, 0);
                            self.freeze_template(rank);
                            let st = &mut self.ranks[rank as usize];
                            st.disc_first_iter_ns = st.disc_busy_ns;
                            st.prod = Prod::Barrier {
                                next_iter: iter + 1,
                            };
                            if st.tracker.quiescent() {
                                self.evq.push(now, Ev::Producer(rank));
                            }
                        } else {
                            st.prod = Prod::StartIter(iter + 1);
                            self.evq.push(now, Ev::Producer(rank));
                        }
                    }
                    Some(spec) => {
                        let before = st.engine.stats();
                        let n_before = st.instance.len();
                        let RankState {
                            engine, instance, ..
                        } = st;
                        instance.set_now_ns(now.as_ns());
                        engine.submit(instance, &spec);
                        // Resolve the cost-model footprint of the nodes
                        // this submission created.
                        for id in n_before..st.instance.len() {
                            let w = st.instance.node(TaskId(id as u32)).work.as_ref();
                            st.blocks
                                .push(w.map_or_else(Vec::new, |w| resolve_blocks(&self.space, w)));
                        }
                        let cost =
                            self.discovery_cost(&before, &self.ranks[rank as usize].engine.stats());
                        let t_end = now + cost;
                        let st = &mut self.ranks[rank as usize];
                        st.overhead_ns += cost.as_ns();
                        st.disc_busy_ns += cost.as_ns();
                        st.span(0, now, t_end, SpanKind::Discovery, "<discovery>", iter);
                        st.prod = Prod::Discover { iter, specs };
                        for node in st.instance.drain_ready() {
                            self.activate(rank, node.id.0, None, t_end);
                        }
                        self.evq.push(t_end, Ev::Producer(rank));
                    }
                }
            }
            Prod::Reinstance { iter, next } => {
                let pinst = st.pinst.as_ref().expect("reinstance needs a template");
                let n0 = pinst.len();
                let hi = (next + REINSTANCE_BATCH).min(n0);
                let mut cost = SimTime::ZERO;
                for k in next..hi {
                    let fp = pinst.node(TaskId(k as u32)).fp_bytes as u64;
                    cost += self.machine.discovery.per_reinstance_task
                        + self.machine.discovery.per_fp_byte.scaled(fp);
                }
                let t_end = now + cost;
                st.overhead_ns += cost.as_ns();
                st.disc_busy_ns += cost.as_ns();
                st.span(0, now, t_end, SpanKind::Discovery, "<reinstance>", iter);
                let mut ready = std::mem::take(&mut st.publish_buf);
                st.pinst.as_ref().unwrap().publish_into(
                    next..hi,
                    st.probe.as_ref(),
                    t_end.as_ns(),
                    &mut ready,
                );
                for node in ready.drain(..) {
                    self.activate(rank, node.id.0, None, t_end);
                }
                self.ranks[rank as usize].publish_buf = ready;
                let st = &mut self.ranks[rank as usize];
                if hi >= n0 {
                    st.prod = Prod::Barrier {
                        next_iter: iter + 1,
                    };
                    if st.tracker.quiescent() {
                        self.evq.push(t_end, Ev::Producer(rank));
                    }
                } else {
                    st.prod = Prod::Reinstance { iter, next: hi };
                    self.evq.push(t_end, Ev::Producer(rank));
                }
            }
            Prod::Barrier { next_iter } => {
                if st.tracker.quiescent() {
                    st.in_template_iter = false;
                    st.prod = Prod::StartIter(next_iter);
                    self.evq.push(now, Ev::Producer(rank));
                } else {
                    st.prod = Prod::Barrier { next_iter };
                }
            }
            Prod::Worker => { /* stale event after discovery finished */ }
        }
    }

    fn discovery_cost(&self, before: &DiscoveryStats, after: &DiscoveryStats) -> SimTime {
        let d = self.machine.discovery.clone();
        let tasks = after.tasks - before.tasks;
        let redirects = after.redirect_nodes - before.redirect_nodes;
        let deps = after.depend_items - before.depend_items;
        let created = after.edges_created - before.edges_created;
        let pruned = after.edges_pruned - before.edges_pruned;
        let probes = after.dup_probes - before.dup_probes;
        d.per_task.scaled(tasks)
            + d.per_redirect.scaled(redirects)
            + d.per_depend.scaled(deps)
            + d.per_edge.scaled(created)
            + d.per_pruned_edge.scaled(pruned)
            + d.per_dup_probe.scaled(probes)
    }

    /// End of the capturing iteration: instance the persistent graph from
    /// the kernel template (optimization (p)).
    fn freeze_template(&mut self, rank: u32) {
        let st = &mut self.ranks[rank as usize];
        let template = Arc::new(st.instance.finish_capture());
        st.pinst = Some(PersistentInstance::new(template, true));
    }

    fn finish_discovery(&mut self, rank: u32, now: SimTime) {
        let st = &mut self.ranks[rank as usize];
        st.producer_done = true;
        // Non-overlapped mode: everything was held back; release it now.
        for n in st.gate.release() {
            self.enqueue(rank, n, None, now);
        }
        // Core 0 joins the worker pool.
        self.evq.push(now, Ev::CoreFree { rank, core: 0 });
    }

    fn producer_help(&mut self, rank: u32, now: SimTime) {
        if let Some((node, stolen)) = self.pick_task(rank, 0, now) {
            self.ranks[rank as usize].producer_helping = true;
            self.start_exec(rank, 0, node, stolen, now);
        } else {
            // Throttled with nothing to help with: a genuine stall.
            let st = &mut self.ranks[rank as usize];
            st.throttle_stalls += 1;
            st.throttle_stall_ns += THROTTLE_RETRY.as_ns();
            self.evq.push(now + THROTTLE_RETRY, Ev::Producer(rank));
        }
    }

    // ---- readiness & queues ---------------------------------------------

    /// A node's dependences are all satisfied: route it.
    fn activate(&mut self, rank: u32, node: u32, by_core: Option<u32>, at: SimTime) {
        let st = &mut self.ranks[rank as usize];
        if st.node(node).is_redirect {
            // Redirect nodes are empty: they complete the moment they are
            // ready, costing nothing at execution time.
            self.complete_node(rank, node, by_core, at);
            return;
        }
        // `None` means the gate held the node until discovery finishes
        // (non-overlapped mode).
        if let Some(node) = st.gate.offer(node) {
            self.enqueue(rank, node, by_core, at)
        }
    }

    fn enqueue(&mut self, rank: u32, node: u32, by_core: Option<u32>, at: SimTime) {
        let st = &mut self.ranks[rank as usize];
        st.tracker.became_ready();
        st.queues.push(node, by_core.map(|c| c as usize));
        // Wake one idle core, if any.
        if let Some(core) = st.idle_since.iter().position(|s| s.is_some()) {
            let since = st.idle_since[core].take().unwrap();
            st.idle_ns += at.as_ns().saturating_sub(since.as_ns());
            st.span(core as u32, since, at, SpanKind::Idle, "", 0);
            self.evq.push(
                at + self.machine.sched.wakeup,
                Ev::CoreFree {
                    rank,
                    core: core as u32,
                },
            );
        }
    }

    fn pick_task(&mut self, rank: u32, core: u32, now: SimTime) -> Option<(u32, bool)> {
        let st = &mut self.ranks[rank as usize];
        let picked = st
            .queues
            .pop_with(Some(core as usize), st.probe.as_ref(), now.as_ns());
        if picked.is_some() {
            st.tracker.scheduled();
        }
        picked
    }

    // ---- execution --------------------------------------------------------

    fn core_free(&mut self, rank: u32, core: u32, now: SimTime) {
        self.note_rank_time(rank, now);
        if core == 0 && !self.ranks[rank as usize].producer_done {
            // Stale wakeup for the producer core while it is discovering.
            return;
        }
        if let Some((node, stolen)) = self.pick_task(rank, core, now) {
            self.start_exec(rank, core, node, stolen, now);
        } else {
            let st = &mut self.ranks[rank as usize];
            if st.idle_since[core as usize].is_none() {
                st.idle_since[core as usize] = Some(now);
            }
        }
    }

    fn start_exec(&mut self, rank: u32, core: u32, node: u32, stolen: bool, now: SimTime) {
        let sched = &self.machine.sched;
        let overhead = sched.per_schedule
            + if stolen {
                sched.steal_penalty
            } else {
                SimTime::ZERO
            };
        let t1 = now + overhead;
        {
            let st = &mut self.ranks[rank as usize];
            st.overhead_ns += overhead.as_ns();
            st.span(core, now, t1, SpanKind::Overhead, "", 0);
        }
        let comm = self.ranks[rank as usize].node(node).comm;
        match comm {
            Some(op) => self.post_comm(rank, core, node, op, t1),
            None => {
                let (dur, demand) = self.compute_duration(rank, core, node);
                let t_done = t1 + dur;
                let st = &mut self.ranks[rank as usize];
                st.acc_overlap(t1);
                st.running_work += 1;
                let (name, iter) = {
                    let n = st.node(node);
                    (n.name, n.iter.load(std::sync::atomic::Ordering::Relaxed))
                };
                st.span(core, t1, t_done, SpanKind::Work, name, iter);
                self.evq.push(
                    t_done,
                    Ev::TaskDone {
                        rank,
                        core,
                        node,
                        work_ns: dur.as_ns(),
                        demand,
                    },
                );
            }
        }
    }

    fn compute_duration(
        &mut self,
        rank: u32,
        core: u32,
        node: u32,
    ) -> (SimTime, Option<ptdg_memsim::DemandId>) {
        let mem = &self.machine.mem;
        let st = &mut self.ranks[rank as usize];
        let flops = st.node(node).work.as_ref().map_or(0.0, |w| w.flops);
        let blocks = std::mem::take(&mut st.blocks[node as usize]);
        let stats = st.hier.touch_footprint(core as usize, &blocks);
        st.blocks[node as usize] = blocks;
        let stall = stats.stall_cycles(mem);
        st.stalls.l1 += stall.l1;
        st.stalls.l2 += stall.l2;
        st.stalls.l3 += stall.l3;
        let compute_s = flops / mem.flops_per_s;
        let fast_stall_s = mem.cycles_to_secs(stall.l1 + stall.l2);
        let dram_s = mem.cycles_to_secs(stall.l3);
        let nominal_s = (compute_s + fast_stall_s + dram_s).max(1e-12);
        let demand = if dram_s > 0.0 {
            let id = st
                .contention
                .register(stats.dram_bytes(mem) as f64 / nominal_s);
            Some(id)
        } else {
            None
        };
        let factor = st.contention.factor();
        let mut dur_s = compute_s + fast_stall_s + dram_s * factor;
        if self.cfg.work_jitter > 0.0 {
            dur_s *= 1.0 + self.cfg.work_jitter * (2.0 * st.rng.next_f64() - 1.0);
        }
        (SimTime::from_secs_f64(dur_s), demand)
    }

    fn task_done(
        &mut self,
        rank: u32,
        core: u32,
        node: u32,
        work_ns: u64,
        demand: Option<ptdg_memsim::DemandId>,
        now: SimTime,
    ) {
        self.note_rank_time(rank, now);
        {
            let st = &mut self.ranks[rank as usize];
            if let Some(id) = demand {
                st.contention.unregister(id);
            }
            st.acc_overlap(now);
            st.running_work -= 1;
            st.work_ns += work_ns;
            st.tasks_executed += 1;
        }
        let released = self.complete_node(rank, node, Some(core), now);
        let release = self.machine.sched.per_release.scaled(released as u64);
        self.ranks[rank as usize].overhead_ns += release.as_ns();
        let t_next = now + release;
        let st = &mut self.ranks[rank as usize];
        if core == 0 && !st.producer_done {
            st.producer_helping = false;
            self.evq.push(t_next, Ev::Producer(rank));
        } else {
            self.evq.push(t_next, Ev::CoreFree { rank, core });
        }
    }

    /// Complete a node through the kernel, routing the successors it made
    /// ready. Returns the number of successor releases performed (the
    /// quantity `per_release` is charged on).
    fn complete_node(&mut self, rank: u32, node: u32, by_core: Option<u32>, now: SimTime) -> usize {
        let rt_node = self.ranks[rank as usize].node(node).clone();
        let probe = Arc::clone(&self.ranks[rank as usize].probe);
        let done =
            rt_node.complete_with(probe.as_ref(), by_core.unwrap_or(0) as usize, now.as_ns());
        for succ in &done.ready {
            self.activate(rank, succ.id.0, by_core, now);
        }
        let st = &mut self.ranks[rank as usize];
        st.tracker.completed();
        if st.tracker.quiescent() {
            if let Prod::Barrier { .. } = st.prod {
                self.evq.push(now, Ev::Producer(rank));
            }
        }
        done.released
    }

    // ---- communication ----------------------------------------------------

    fn post_comm(&mut self, rank: u32, core: u32, node: u32, op: CommOp, t1: SimTime) {
        let (req, comps) = match op {
            CommOp::Isend { peer, bytes, tag } => self.net.post_isend(t1, rank, peer, tag, bytes),
            CommOp::Irecv { peer, bytes, tag } => self.net.post_irecv(t1, peer, rank, tag, bytes),
            CommOp::Iallreduce { bytes } => self.net.post_iallreduce(t1, rank, bytes),
        };
        self.req_map.insert(req, (rank, node));
        let tracked = !matches!(op, CommOp::Irecv { .. });
        let st = &mut self.ranks[rank as usize];
        st.comms_posted += 1;
        let id = st.node(node).id;
        st.probe.comm_posted(id, req.0, core as usize, t1.as_ns());
        if tracked {
            st.acc_overlap(t1);
            st.open_tracked += 1;
        }
        let post_end = t1 + self.cfg.net.post_cost;
        let (name, iter) = {
            let n = st.node(node);
            (n.name, n.iter.load(std::sync::atomic::Ordering::Relaxed))
        };
        st.span(core, t1, post_end, SpanKind::Work, name, iter);
        for c in comps {
            self.evq.push(c.at, Ev::ReqDone(c.req));
        }
        // The core is free as soon as the request is posted (detach).
        let st = &mut self.ranks[rank as usize];
        if core == 0 && !st.producer_done {
            st.producer_helping = false;
            self.evq.push(post_end, Ev::Producer(rank));
        } else {
            self.evq.push(post_end, Ev::CoreFree { rank, core });
        }
    }

    fn req_done(&mut self, req: ReqId, now: SimTime) {
        let (rank, node) = *self
            .req_map
            .get(&req)
            .expect("completion for unknown request");
        self.note_rank_time(rank, now);
        let tracked = self.net.request(req).is_tracked();
        if tracked {
            let st = &mut self.ranks[rank as usize];
            st.acc_overlap(now);
            st.open_tracked -= 1;
        }
        let posted_at = self.net.request(req).posted_at;
        let st = &mut self.ranks[rank as usize];
        st.tasks_executed += 1;
        st.comms_completed += 1;
        st.comm_wait_ns += now.as_ns().saturating_sub(posted_at.as_ns());
        // Completion happens off-core (the DES analogue of the thread
        // engine's progress path): no core column in the event.
        let id = st.node(node).id;
        st.probe.comm_completed(id, req.0, usize::MAX, now.as_ns());
        self.complete_node(rank, node, None, now);
    }

    // ---- finalization -----------------------------------------------------

    fn finalize(&mut self) -> SimReport {
        let n_iters = self.program.n_iterations();
        let mut report = SimReport::default();
        // Anything still parked in the network explains non-quiescent
        // ranks; surface it as the same structured error the thread
        // engine reports instead of aborting the process.
        let unmatched = self.net.unmatched();
        for (r, st) in self.ranks.iter_mut().enumerate() {
            assert!(
                st.tracker.quiescent() || !unmatched.is_empty(),
                "rank {r}: deadlock — {} tasks never completed, yet no \
                 unmatched communication (kernel bug)",
                st.tracker.live()
            );
            let span_end = st.last_event;
            for c in 0..st.idle_since.len() {
                if let Some(since) = st.idle_since[c].take() {
                    st.idle_ns += span_end.as_ns().saturating_sub(since.as_ns());
                    if st.trace.is_some() {
                        st.span(c as u32, since, span_end, SpanKind::Idle, "", 0);
                    }
                }
            }
            let disc_ns = st.disc_busy_ns;
            let edges_existing = if self.cfg.persistent {
                st.pinst.as_ref().map_or(0, |p| p.template().n_edges()) * n_iters
            } else {
                st.engine.stats().edges_created
            };
            // Kernel counters: drain the lifecycle recorder (virtual time
            // is already zero-based — no rebase) and fold in the kernel's
            // tallies, mirroring the thread back-end's surface.
            let obs = st.probe.finish(false, self.machine.n_cores, disc_ns);
            let mut counters = obs.counters;
            counters.absorb_discovery(&st.engine.stats());
            // The tracker counted every creation (discovery + re-instance);
            // the discovery absorption above would under-count persistence.
            counters.tasks_created = st.tracker.created_total() as u64;
            counters.tasks_completed = counters.tasks_created - st.tracker.live() as u64;
            counters.ready_hwm = st.tracker.ready_hwm() as u64;
            counters.live_hwm = st.tracker.live_hwm() as u64;
            counters.gate_held = st.gate.held_total();
            counters.throttle_stalls = st.throttle_stalls;
            counters.throttle_stall_ns = st.throttle_stall_ns;
            counters.persistent_reuses = st.pinst.as_ref().map_or(0, |p| p.reuses());
            counters.comms_posted = st.comms_posted;
            counters.comms_completed = st.comms_completed;
            counters.comm_wait_ns = st.comm_wait_ns;
            counters.unexpected_msgs = self.net.unexpected_count(r as u32);
            if !obs.events.is_empty() {
                report.events = obs.events;
            }
            report.ranks.push(RankReport {
                n_cores: self.machine.n_cores,
                work_ns: st.work_ns,
                overhead_ns: st.overhead_ns,
                idle_ns: st.idle_ns,
                span_ns: span_end.as_ns(),
                discovery_ns: disc_ns,
                discovery_first_iter_ns: if self.cfg.persistent {
                    st.disc_first_iter_ns
                } else {
                    disc_ns
                },
                disc: st.engine.stats(),
                cache: st.hier.totals(),
                stalls: st.stalls,
                tasks_executed: st.tasks_executed,
                edges_existing,
                comm_ns: self.net.tracked_comm_time(r as u32).as_ns(),
                comm_coll_ns: self.net.tracked_comm_split(r as u32).0.as_ns(),
                comm_p2p_ns: self.net.tracked_comm_split(r as u32).1.as_ns(),
                overlapped_ns: st.overlapped_ns,
                counters,
            });
            if self.cfg.persistent {
                if let Some(p) = &st.pinst {
                    if self.cfg.capture_graph {
                        report.graphs.push((**p.template()).clone());
                    }
                }
            } else if self.cfg.capture_graph {
                report.graphs.push(st.instance.finish_capture());
            }
            if let Some(spans) = st.trace.take() {
                let span_ns = span_end.as_ns();
                report.trace = Some(Trace {
                    spans,
                    n_workers: self.machine.n_cores,
                    discovery_ns: disc_ns,
                    span_ns,
                });
            }
        }
        if !unmatched.is_empty() {
            report.comm_error = Some(CommError {
                unmatched: unmatched
                    .into_iter()
                    .map(|(rank, peer, tag, op)| UnmatchedComm {
                        rank,
                        peer,
                        tag,
                        op,
                    })
                    .collect(),
            });
        }
        report
    }
}
