//! Ready-task queues implementing the paper's two scheduling heuristics.

use super::probe::RtProbe;
use crate::task::TaskId;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Queue elements that can name the task they carry, so
/// [`ReadyQueues::pop_with`] can narrate scheduling through a probe.
/// The thread executor queues `Arc<RtNode>`; the simulator queues raw
/// node indices.
pub trait TaskKey {
    fn task_id(&self) -> TaskId;
}

impl TaskKey for std::sync::Arc<super::RtNode> {
    fn task_id(&self) -> TaskId {
        self.id
    }
}

impl TaskKey for u32 {
    fn task_id(&self) -> TaskId {
        TaskId(*self)
    }
}

/// Scheduling heuristic for ready tasks (paper §2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Newly-ready successors go to the completing core's local LIFO deque
    /// (data-reuse locality); other cores steal from the FIFO end.
    #[default]
    DepthFirst,
    /// One global FIFO queue: tasks run roughly in discovery order.
    BreadthFirst,
}

/// Per-core local deques plus a global queue, policy-driven. The thread
/// executor stores `Arc<RtNode>`; the simulator stores node indices —
/// the *placement and steal order* is the shared policy, the element type
/// is not.
pub struct ReadyQueues<T> {
    policy: SchedPolicy,
    global: Mutex<VecDeque<T>>,
    local: Vec<Mutex<VecDeque<T>>>,
}

impl<T> ReadyQueues<T> {
    /// Queues for `n_cores` cores under `policy`.
    pub fn new(policy: SchedPolicy, n_cores: usize) -> Self {
        ReadyQueues {
            policy,
            global: Mutex::new(VecDeque::new()),
            local: (0..n_cores).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    fn lock<'a>(m: &'a Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue a ready task. Under depth-first, a task made ready by core
    /// `local` lands on that core's deque (LIFO side); everything else —
    /// breadth-first, or producer-made-ready tasks — goes to the global
    /// FIFO.
    pub fn push(&self, item: T, local: Option<usize>) {
        match (self.policy, local) {
            (SchedPolicy::DepthFirst, Some(c)) if c < self.local.len() => {
                Self::lock(&self.local[c]).push_back(item);
            }
            _ => Self::lock(&self.global).push_back(item),
        }
    }

    /// Dequeue for core `worker`. Returns the task and whether it was
    /// *stolen* from another core's deque (the simulator charges a steal
    /// penalty). Depth-first order: own deque LIFO, then global FIFO, then
    /// round-robin steal from other cores' FIFO ends.
    pub fn pop(&self, worker: Option<usize>) -> Option<(T, bool)> {
        if self.policy == SchedPolicy::DepthFirst {
            if let Some(w) = worker {
                if w < self.local.len() {
                    if let Some(item) = Self::lock(&self.local[w]).pop_back() {
                        return Some((item, false));
                    }
                }
            }
        }
        if let Some(item) = Self::lock(&self.global).pop_front() {
            return Some((item, false));
        }
        if self.policy == SchedPolicy::DepthFirst {
            let n = self.local.len();
            let start = worker.map_or(0, |w| w + 1);
            for i in 0..n {
                let victim = (start + i) % n;
                if Some(victim) == worker {
                    continue;
                }
                if let Some(item) = Self::lock(&self.local[victim]).pop_front() {
                    return Some((item, true));
                }
            }
        }
        None
    }

    /// [`ReadyQueues::pop`] narrated through a probe: emits
    /// `task_scheduled` for the dequeued task. A `None` worker (the
    /// producer helping out) reports core `n_cores` — the producer lane.
    pub fn pop_with(
        &self,
        worker: Option<usize>,
        probe: &dyn RtProbe,
        now_ns: u64,
    ) -> Option<(T, bool)>
    where
        T: TaskKey,
    {
        let popped = self.pop(worker)?;
        if probe.lifecycle_enabled() {
            let core = worker.unwrap_or(self.local.len());
            probe.task_scheduled(popped.0.task_id(), core, now_ns);
        }
        Some(popped)
    }

    /// Total queued tasks (diagnostics).
    pub fn len(&self) -> usize {
        let mut n = Self::lock(&self.global).len();
        for l in &self.local {
            n += Self::lock(l).len();
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_first_local_is_lifo() {
        let q = ReadyQueues::new(SchedPolicy::DepthFirst, 2);
        q.push(1, Some(0));
        q.push(2, Some(0));
        assert_eq!(q.pop(Some(0)), Some((2, false)));
        assert_eq!(q.pop(Some(0)), Some((1, false)));
        assert_eq!(q.pop(Some(0)), None);
    }

    #[test]
    fn depth_first_steals_fifo_side() {
        let q = ReadyQueues::new(SchedPolicy::DepthFirst, 2);
        q.push(1, Some(0));
        q.push(2, Some(0));
        assert_eq!(q.pop(Some(1)), Some((1, true)), "steal oldest");
    }

    #[test]
    fn global_before_steal() {
        let q = ReadyQueues::new(SchedPolicy::DepthFirst, 2);
        q.push(1, Some(0));
        q.push(9, None);
        assert_eq!(q.pop(Some(1)), Some((9, false)), "global FIFO first");
        assert_eq!(q.pop(Some(1)), Some((1, true)));
    }

    #[test]
    fn breadth_first_is_one_fifo() {
        let q = ReadyQueues::new(SchedPolicy::BreadthFirst, 4);
        q.push(1, Some(3));
        q.push(2, Some(0));
        q.push(3, None);
        assert_eq!(q.pop(Some(2)), Some((1, false)));
        assert_eq!(q.pop(None), Some((2, false)));
        assert_eq!(q.pop(Some(0)), Some((3, false)));
    }
}
