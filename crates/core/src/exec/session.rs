//! A discovery/execution session on the thread executor.

use super::executor::Executor;
use super::node::Node;
use crate::builder::TaskSubmitter;
use crate::graph::{DiscoveryEngine, DiscoveryStats, GraphSink, GraphTemplate, TemplateRecorder};
use crate::opts::OptConfig;
use crate::task::{TaskId, TaskSpec};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// The live-graph sink: materializes nodes, attaches (possibly pruned)
/// edges, optionally mirrors everything into a template recorder.
struct LiveSink {
    pool: Arc<super::executor::Pool>,
    nodes: Vec<Arc<Node>>,
    capture: Option<TemplateRecorder>,
    iter: u64,
}

impl GraphSink for LiveSink {
    fn add_task(&mut self, spec: &TaskSpec) -> TaskId {
        let id = TaskId(self.nodes.len() as u32);
        self.pool.live.fetch_add(1, Ordering::SeqCst);
        self.nodes
            .push(Node::new(id, spec.name, spec.body.clone(), self.iter));
        if let Some(rec) = &mut self.capture {
            let cap_id = rec.add_task(spec);
            debug_assert_eq!(cap_id, id);
        }
        id
    }

    fn add_redirect(&mut self) -> TaskId {
        let id = TaskId(self.nodes.len() as u32);
        self.pool.live.fetch_add(1, Ordering::SeqCst);
        self.nodes.push(Node::new(id, "<redirect>", None, 0));
        if let Some(rec) = &mut self.capture {
            let cap_id = rec.add_redirect();
            debug_assert_eq!(cap_id, id);
        }
        id
    }

    fn add_edge(&mut self, pred: TaskId, succ: TaskId) -> bool {
        let created = self.nodes[pred.index()].attach_succ(&self.nodes[succ.index()]);
        if let Some(rec) = &mut self.capture {
            // Persistent capture creates *every* edge (paper §3.2): the
            // live execution may prune, but the template must not.
            rec.add_edge(pred, succ);
            return true;
        }
        created
    }

    fn seal(&mut self, task: TaskId) {
        let node = &self.nodes[task.index()];
        if node.seal() {
            self.pool.make_ready(Arc::clone(node), None);
        }
    }
}

/// One sequential discovery stream plus the right to wait for its tasks.
///
/// Obtained from [`Executor::session`] (overlapped),
/// [`Executor::session_non_overlapped`] (paper Table 1 configuration), or
/// internally by a persistent region's first iteration.
pub struct Session<'e> {
    exec: &'e Executor,
    engine: DiscoveryEngine,
    sink: LiveSink,
    discovery_t0_ns: Option<u64>,
    discovery_t1_ns: u64,
}

impl<'e> Session<'e> {
    pub(crate) fn new(
        exec: &'e Executor,
        opts: OptConfig,
        non_overlapped: bool,
        capture: bool,
    ) -> Session<'e> {
        if non_overlapped {
            exec.pool().gate_held.store(true, Ordering::SeqCst);
        }
        Session {
            exec,
            engine: DiscoveryEngine::new(opts),
            sink: LiveSink {
                pool: Arc::clone(exec.pool()),
                nodes: Vec::new(),
                capture: capture.then(|| TemplateRecorder::new(true)),
                iter: 0,
            },
            discovery_t0_ns: None,
            discovery_t1_ns: 0,
        }
    }

    /// Submit one task; may execute tasks inline if throttling thresholds
    /// are exceeded.
    pub fn submit(&mut self, spec: TaskSpec) -> TaskId {
        let pool = Arc::clone(&self.sink.pool);
        let now = pool.now_ns();
        self.discovery_t0_ns.get_or_insert(now);
        let id = self.engine.submit(&mut self.sink, &spec);
        self.discovery_t1_ns = pool.now_ns();
        let throttle = self.exec.config().throttle;
        while throttle.should_help(
            pool.ready.load(Ordering::SeqCst),
            pool.live.load(Ordering::SeqCst),
        ) {
            if !pool.help_once() {
                break;
            }
        }
        id
    }

    /// Set the iteration number stamped on subsequently created tasks
    /// (what their bodies observe as [`crate::task::TaskCtx::iter`]).
    pub fn set_iter(&mut self, iter: u64) {
        self.sink.iter = iter;
    }

    /// Block until every task submitted *so far* has completed, without
    /// ending the session — the analogue of `#pragma omp taskwait` at the
    /// submission point (used by codes that fence their communication
    /// sequences, §4.1 of the paper).
    pub fn taskwait(&mut self) {
        let pool = Arc::clone(&self.sink.pool);
        pool.release_gate();
        loop {
            if pool.help_once() {
                continue;
            }
            if pool.live.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }

    /// Discovery statistics so far.
    pub fn stats(&self) -> DiscoveryStats {
        self.engine.stats()
    }

    /// Producer-side discovery span (first to last submission), ns.
    pub fn discovery_ns(&self) -> u64 {
        match self.discovery_t0_ns {
            Some(t0) => self.discovery_t1_ns.saturating_sub(t0),
            None => 0,
        }
    }

    /// Release any held tasks and run until every submitted task has
    /// completed (the producer helps execute).
    pub fn wait_all(&mut self) {
        let pool = Arc::clone(&self.sink.pool);
        pool.release_gate();
        pool.last_discovery_ns
            .store(self.discovery_ns(), Ordering::SeqCst);
        loop {
            if pool.help_once() {
                continue;
            }
            if pool.live.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }

    /// Wait for completion, then return the captured template and the
    /// discovery statistics (capturing sessions only).
    pub(crate) fn finish_capture(mut self) -> (GraphTemplate, DiscoveryStats) {
        self.wait_all();
        let stats = self.engine.stats();
        let rec = self
            .sink
            .capture
            .take()
            .expect("finish_capture on a non-capturing session");
        (rec.finish(), stats)
    }
}

impl TaskSubmitter for Session<'_> {
    fn submit(&mut self, spec: TaskSpec) -> TaskId {
        Session::submit(self, spec)
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        // Never leave the gate closed: a dropped non-overlapped session
        // must not wedge the executor.
        self.sink.pool.release_gate();
    }
}
