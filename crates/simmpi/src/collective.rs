//! All-reduce collective state.

use crate::{Rank, ReqId};
use ptdg_simcore::SimTime;

/// One in-flight all-reduce "round".
///
/// Ranks join rounds in program order; round *k* on every rank matches
/// round *k* on every other (MPI collective matching semantics). The
/// operation's tree phase starts when the last rank joins.
#[derive(Clone, Debug)]
pub struct CollectiveState {
    /// Per-rank request id once that rank joined.
    pub joined: Vec<Option<(ReqId, SimTime)>>,
    /// Payload size (taken from the first joiner; asserted equal).
    pub bytes: u64,
    /// Number of ranks that have joined so far.
    pub n_joined: u32,
}

impl CollectiveState {
    /// New round awaiting `n_ranks` participants.
    pub fn new(n_ranks: u32) -> Self {
        CollectiveState {
            joined: vec![None; n_ranks as usize],
            bytes: 0,
            n_joined: 0,
        }
    }

    /// Record `rank` joining at `now`; returns whether the round is full.
    pub fn join(&mut self, rank: Rank, req: ReqId, bytes: u64, now: SimTime) -> bool {
        assert!(
            self.joined[rank as usize].is_none(),
            "rank {rank} joined the same collective round twice"
        );
        if self.n_joined == 0 {
            self.bytes = bytes;
        } else {
            assert_eq!(self.bytes, bytes, "mismatched collective payload sizes");
        }
        self.joined[rank as usize] = Some((req, now));
        self.n_joined += 1;
        self.n_joined as usize == self.joined.len()
    }

    /// Latest join time (the straggler that the whole job waits for).
    pub fn last_join(&self) -> SimTime {
        self.joined
            .iter()
            .flatten()
            .map(|&(_, t)| t)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// All request ids in the round.
    pub fn requests(&self) -> impl Iterator<Item = ReqId> + '_ {
        self.joined.iter().flatten().map(|&(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_completes_when_all_join() {
        let mut c = CollectiveState::new(3);
        assert!(!c.join(0, ReqId(0), 8, SimTime::from_ns(10)));
        assert!(!c.join(2, ReqId(1), 8, SimTime::from_ns(30)));
        assert!(c.join(1, ReqId(2), 8, SimTime::from_ns(20)));
        assert_eq!(c.last_join().as_ns(), 30);
        assert_eq!(c.requests().count(), 3);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_join_panics() {
        let mut c = CollectiveState::new(2);
        c.join(0, ReqId(0), 8, SimTime::ZERO);
        c.join(0, ReqId(1), 8, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn size_mismatch_panics() {
        let mut c = CollectiveState::new(2);
        c.join(0, ReqId(0), 8, SimTime::ZERO);
        c.join(1, ReqId(1), 16, SimTime::ZERO);
    }
}
