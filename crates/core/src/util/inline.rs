//! A small-vector with inline storage — the allocation-free buffer the
//! discovery hot path is built on (DESIGN.md §4.4).
//!
//! The first `N` elements live inline in the owning struct; pushing past
//! `N` *spills* to a heap `Vec` once and stays spilled from then on —
//! [`InlineVec::clear`] keeps the heap capacity, so a buffer that spilled
//! during warm-up never allocates again in steady state. This is exactly
//! the amortization the zero-alloc invariant relies on: per-node
//! successor lists and per-handle reader lists either fit inline
//! (typical stencil fan-outs) or reach a high-water capacity after the
//! first iteration.

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A growable vector whose first `N` elements need no heap allocation.
pub struct InlineVec<T, const N: usize> {
    /// Number of live elements in `inline` (meaningless once spilled).
    len: usize,
    /// Inline storage; `inline[..len]` is initialized when not spilled.
    inline: [MaybeUninit<T>; N],
    /// Heap storage; holds *all* elements once spilled.
    heap: Vec<T>,
    /// Sticky: once true, all elements live in `heap` (even across
    /// `clear`, to retain its capacity).
    spilled: bool,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    pub const fn new() -> Self {
        InlineVec {
            len: 0,
            // SAFETY: an array of MaybeUninit needs no initialization.
            inline: unsafe { MaybeUninit::uninit().assume_init() },
            heap: Vec::new(),
            spilled: false,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.len
        }
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the contents have spilled to the heap.
    #[inline]
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// Move the inline elements to the heap. Called once, on the first
    /// push past `N`; afterwards the vector behaves like a plain `Vec`
    /// whose capacity only grows.
    #[cold]
    fn spill(&mut self) {
        debug_assert!(!self.spilled);
        self.heap.reserve(N + N);
        for slot in &mut self.inline[..self.len] {
            // SAFETY: inline[..len] is initialized; we move each value
            // out exactly once and then forget the region by len = 0.
            self.heap.push(unsafe { slot.as_ptr().read() });
        }
        self.len = 0;
        self.spilled = true;
    }

    /// Append an element.
    #[inline]
    pub fn push(&mut self, value: T) {
        if !self.spilled {
            if self.len < N {
                self.inline[self.len].write(value);
                self.len += 1;
                return;
            }
            self.spill();
        }
        self.heap.push(value);
    }

    /// Remove and return the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.spilled {
            return self.heap.pop();
        }
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // SAFETY: inline[len] was initialized and is now forgotten.
        Some(unsafe { self.inline[self.len].as_ptr().read() })
    }

    /// Drop all elements. Heap capacity (if any) is retained — the
    /// steady-state zero-allocation invariant depends on this.
    pub fn clear(&mut self) {
        if self.spilled {
            self.heap.clear();
        } else {
            let live = self.len;
            self.len = 0;
            for slot in &mut self.inline[..live] {
                // SAFETY: slots [..live] were initialized; len is
                // already 0 so a panic in a Drop impl cannot double-drop.
                unsafe { slot.as_mut_ptr().drop_in_place() };
            }
        }
    }

    /// View as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.spilled {
            &self.heap
        } else {
            // SAFETY: inline[..len] is initialized.
            unsafe { std::slice::from_raw_parts(self.inline.as_ptr().cast::<T>(), self.len) }
        }
    }

    /// View as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spilled {
            &mut self.heap
        } else {
            // SAFETY: inline[..len] is initialized.
            unsafe {
                std::slice::from_raw_parts_mut(self.inline.as_mut_ptr().cast::<T>(), self.len)
            }
        }
    }

    /// Ensure room for `extra` more elements without allocating later.
    /// Spills eagerly if the total would exceed the inline capacity.
    pub fn reserve(&mut self, extra: usize) {
        if !self.spilled {
            if self.len + extra <= N {
                return;
            }
            self.spill();
        }
        self.heap.reserve(extra);
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Drop for InlineVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = InlineVec::new();
        out.extend_from_slice(self.as_slice());
        out
    }
}

impl<T: Clone, const N: usize> InlineVec<T, N> {
    /// Append a clone of every element of `items`.
    pub fn extend_from_slice(&mut self, items: &[T]) {
        self.reserve(items.len());
        for it in items {
            self.push(it.clone());
        }
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for it in iter {
            self.push(it);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = InlineVec::new();
        out.extend(iter);
        out
    }
}

/// Consuming iterator over an [`InlineVec`].
pub struct IntoIter<T, const N: usize> {
    vec: InlineVec<T, N>,
    front: usize,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.vec.spilled {
            if self.front < self.vec.heap.len() {
                // SAFETY: each heap element is read exactly once; the
                // Drop impl skips [..front], and `heap.set_len(0)` in
                // Drop prevents Vec from double-dropping.
                let v = unsafe { self.vec.heap.as_ptr().add(self.front).read() };
                self.front += 1;
                Some(v)
            } else {
                None
            }
        } else if self.front < self.vec.len {
            // SAFETY: same single-read protocol as the heap arm.
            let v = unsafe { self.vec.inline[self.front].as_ptr().read() };
            self.front += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len() - self.front;
        (rem, Some(rem))
    }
}

impl<T, const N: usize> Drop for IntoIter<T, N> {
    fn drop(&mut self) {
        // Drop the elements not yet yielded, then defuse the vector so
        // its own Drop does not double-drop what we already moved out.
        if self.vec.spilled {
            let len = self.vec.heap.len();
            // SAFETY: elements [..front] were moved out by next();
            // [front..len] are still live and dropped exactly once here.
            unsafe {
                self.vec.heap.set_len(0);
                for i in self.front..len {
                    std::ptr::drop_in_place(self.vec.heap.as_mut_ptr().add(i));
                }
            }
        } else {
            let len = self.vec.len;
            self.vec.len = 0;
            for slot in &mut self.vec.inline[self.front..len] {
                // SAFETY: slots [front..len] are live; len is already 0.
                unsafe { slot.as_mut_ptr().drop_in_place() };
            }
        }
    }
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter {
            vec: self,
            front: 0,
        }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn inline_then_spill() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        v.push(4);
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn clear_keeps_heap_capacity() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..100 {
            v.push(i);
        }
        let cap = v.heap.capacity();
        v.clear();
        assert!(v.is_empty());
        assert!(v.spilled());
        assert_eq!(v.heap.capacity(), cap);
        // refilling within capacity must not grow
        for i in 0..100 {
            v.push(i);
        }
        assert_eq!(v.heap.capacity(), cap);
    }

    #[test]
    fn pop_both_regimes() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.pop(), Some(2));
        v.push(2);
        v.push(3); // spills
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn drop_counts_are_exact() {
        let token = Rc::new(());
        {
            let mut v: InlineVec<Rc<()>, 2> = InlineVec::new();
            for _ in 0..5 {
                v.push(token.clone());
            }
            assert_eq!(Rc::strong_count(&token), 6);
        }
        assert_eq!(Rc::strong_count(&token), 1);
    }

    #[test]
    fn into_iter_inline_and_spilled() {
        let v: InlineVec<u32, 4> = (0..3).collect();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let v: InlineVec<u32, 2> = (0..6).collect();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn partial_into_iter_drops_rest() {
        let token = Rc::new(());
        let mut v: InlineVec<Rc<()>, 2> = InlineVec::new();
        for _ in 0..5 {
            v.push(token.clone());
        }
        let mut it = v.into_iter();
        let first = it.next().unwrap();
        drop(it);
        assert_eq!(Rc::strong_count(&token), 2);
        drop(first);
        assert_eq!(Rc::strong_count(&token), 1);
    }

    #[test]
    fn clone_and_eq() {
        let v: InlineVec<u32, 2> = (0..5).collect();
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(format!("{v:?}"), "[0, 1, 2, 3, 4]");
    }

    #[test]
    fn reserve_keeps_small_sets_inline() {
        let mut v: InlineVec<u32, 8> = InlineVec::new();
        v.reserve(8);
        assert!(!v.spilled());
        v.reserve(9);
        assert!(v.spilled());
    }
}
