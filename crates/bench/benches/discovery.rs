//! Discovery-engine micro-benchmarks: task-submission throughput under
//! each optimization set, and a full re-discovery vs a persistent
//! template rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ptdg_core::access::AccessMode;
use ptdg_core::graph::{DiscoveryEngine, GraphTemplate, TemplateRecorder};
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::opts::OptConfig;
use ptdg_core::task::TaskSpec;
use std::hint::black_box;

const N_TASKS: usize = 2_000;

fn make_specs() -> (HandleSpace, Vec<TaskSpec>) {
    let mut space = HandleSpace::new();
    let handles: Vec<DataHandle> = (0..64).map(|_| space.region("h", 4096)).collect();
    let shared = space.region("shared", 4096);
    let specs = (0..N_TASKS)
        .map(|i| {
            let mut spec = TaskSpec::new("bench")
                .depend(handles[i % 64], AccessMode::InOut)
                .depend(handles[(i + 1) % 64], AccessMode::In);
            // every 8th task touches the shared region as inoutset, giving
            // (c) something to do
            if i % 8 == 0 {
                spec = spec.depend(shared, AccessMode::InOutSet);
            } else if i % 8 == 1 {
                spec = spec.depend(shared, AccessMode::In);
            }
            spec
        })
        .collect();
    (space, specs)
}

fn bench_discovery(c: &mut Criterion) {
    let (_space, specs) = make_specs();
    let mut group = c.benchmark_group("discovery_throughput");
    group.throughput(Throughput::Elements(N_TASKS as u64));
    group.sample_size(20);
    for (label, opts) in [
        ("none", OptConfig::none()),
        ("dedup_b", OptConfig::dedup_only()),
        ("redirect_c", OptConfig::redirect_only()),
        ("all_bc", OptConfig::all()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, &opts| {
            b.iter(|| {
                let mut eng = DiscoveryEngine::new(opts);
                let mut rec = TemplateRecorder::new(false);
                for spec in &specs {
                    eng.submit(&mut rec, black_box(spec));
                }
                black_box(eng.stats())
            })
        });
    }
    group.finish();
}

fn bench_persistent_reinstance(c: &mut Criterion) {
    let (_space, specs) = make_specs();
    // capture once
    let mut eng = DiscoveryEngine::new(OptConfig::all());
    let mut rec = TemplateRecorder::new(false);
    for spec in &specs {
        eng.submit(&mut rec, spec);
    }
    let template: GraphTemplate = rec.finish();

    let mut group = c.benchmark_group("rediscover_vs_reinstance");
    group.throughput(Throughput::Elements(N_TASKS as u64));
    group.sample_size(20);
    group.bench_function("full_rediscovery", |b| {
        b.iter(|| {
            let mut eng = DiscoveryEngine::new(OptConfig::all());
            let mut rec = TemplateRecorder::new(false);
            for spec in &specs {
                eng.submit(&mut rec, black_box(spec));
            }
            black_box(rec.finish().n_edges())
        })
    });
    group.bench_function("template_reset_walk", |b| {
        // the persistent re-instance analogue: walk every node, read its
        // indegree (the counter reset) and firstprivate size (the memcpy)
        b.iter(|| {
            let mut total = 0u64;
            for id in template.ids() {
                total += template.indegree(id) as u64 + template.node(id).fp_bytes as u64;
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_discovery, bench_persistent_reinstance);
criterion_main!(benches);
