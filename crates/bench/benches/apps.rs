//! Application-level benchmarks on the *real* thread executor: a LULESH
//! time step, an HPCG CG iteration, and a tile-Cholesky factorization,
//! each with real numerics.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ptdg_cholesky::{CholeskyConfig, CholeskyTask};
use ptdg_core::exec::{ExecConfig, Executor, SchedPolicy};
use ptdg_core::opts::OptConfig;
use ptdg_core::throttle::ThrottleConfig;
use ptdg_hpcg::{HpcgConfig, HpcgTask};
use ptdg_lulesh::{LuleshConfig, LuleshTask};
use ptdg_simrt::RankProgram;
use std::hint::black_box;

fn executor() -> Executor {
    Executor::new(ExecConfig {
        n_workers: 2,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::mpc_default(),
        profile: false,
        record_events: false,
    })
}

fn bench_lulesh_step(c: &mut Criterion) {
    let cfg = LuleshConfig::single(10, u64::MAX, 16);
    let prog = LuleshTask::with_state(cfg);
    let exec = executor();
    let mut region = exec.persistent_region(OptConfig::all());
    let mut iter = 0u64;
    region.run(0, |sub| prog.build_iteration(0, 0, sub));
    let mut group = c.benchmark_group("apps");
    group.sample_size(20);
    group.throughput(Throughput::Elements(
        prog.cfg.compute_tasks_per_iteration() as u64
    ));
    group.bench_function("lulesh_step_s10_tpl16", |b| {
        b.iter(|| {
            iter += 1;
            region.run(iter, |_| unreachable!());
            black_box(prog.state.as_ref().unwrap().total_energy())
        })
    });
    group.finish();
}

fn bench_hpcg_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps");
    group.sample_size(20);
    group.bench_function("hpcg_cg_iteration_nx8_tpl8", |b| {
        // CG converges; bench a fixed number of iterations per fresh state
        b.iter(|| {
            let cfg = HpcgConfig::single(8, 4, 8);
            let prog = HpcgTask::with_state(cfg.clone());
            let exec = executor();
            let mut session = exec.session(OptConfig::all());
            for iter in 0..cfg.iterations {
                prog.build_iteration(0, iter, &mut session);
            }
            session.wait_all();
            black_box(prog.state.as_ref().unwrap().residual())
        })
    });
    group.finish();
}

fn bench_cholesky_factorization(c: &mut Criterion) {
    let cfg = CholeskyConfig::single(4, 16, u64::MAX);
    let prog = CholeskyTask::with_matrix(cfg, 1);
    let exec = executor();
    let mut region = exec.persistent_region(OptConfig::all());
    let mut iter = 0u64;
    region.run(0, |sub| prog.build_iteration(0, 0, sub));
    let mut group = c.benchmark_group("apps");
    group.sample_size(20);
    group.bench_function("cholesky_factor_nt4_b16", |b| {
        b.iter(|| {
            iter += 1;
            region.run(iter, |_| unreachable!());
            black_box(prog.matrix.as_ref().unwrap().digest())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lulesh_step,
    bench_hpcg_iteration,
    bench_cholesky_factorization
);
criterion_main!(benches);
