//! In-process, shared-memory multi-rank communication for the Threads
//! backend.
//!
//! This is what makes `CommOp`'s detach contract real on wall-clock
//! threads: a comm task's body runs, the request is *posted* into a
//! [`CommWorld`] at body end, the core is released immediately, and the
//! task's `RtNode` completes (releasing successors) only when the request
//! matches — mirroring the OpenMP `detach(event)` + `MPI_Test` progress
//! loop of the paper's Listing 1, with the progress engine polled from
//! the executor's idle paths instead of a dedicated thread.
//!
//! Layout: [`CommWorld`] (engine.rs) owns one endpoint per rank — a
//! lock-free envelope inbox, a lock-free completion queue back to the
//! owning pool, and a mutex-guarded mailbox (mailbox.rs) doing
//! (peer, tag) matching with an unexpected-message queue. `Iallreduce`
//! runs a dissemination algorithm over the same mailboxes. Unmatchable
//! programs surface as a structured [`CommError`] (error.rs) shared with
//! the DES backend, via a timeout-free distributed-termination detector.

mod engine;
mod error;
mod mailbox;

pub use engine::{CommConfig, CommWorld};
pub use error::{CommError, UnmatchedComm, NO_PEER};
pub use mailbox::CommCompletion;
