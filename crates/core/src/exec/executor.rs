//! Worker pool and scheduling policies.

use super::node::Node;
use super::persistent::PersistentRegion;
use super::session::Session;
use crate::opts::OptConfig;
use crate::profile::{Span, SpanKind, Trace};
use crate::task::TaskCtx;
use crate::throttle::ThrottleConfig;
use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scheduling policy of the worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// The paper's heuristic: newly-ready successors go to the completing
    /// worker's LIFO deque (run next, reusing warm data); other workers
    /// steal from the FIFO end. This is what makes fine task grains pay
    /// off through cache reuse.
    DepthFirst,
    /// A single global FIFO queue: tasks run roughly in discovery order.
    /// This is what a depth-first scheduler degrades into when discovery
    /// is too slow to keep successors visible (paper §2.3.3).
    BreadthFirst,
}

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Worker threads (the producer thread is additional and only helps
    /// during throttling and `wait_all`).
    pub n_workers: usize,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Producer throttling thresholds.
    pub throttle: ThrottleConfig,
    /// Record per-task spans for post-mortem analysis.
    pub profile: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            n_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            policy: SchedPolicy::DepthFirst,
            throttle: ThrottleConfig::default(),
            profile: false,
        }
    }
}

pub(crate) struct Pool {
    pub injector: Injector<Arc<Node>>,
    pub stealers: Vec<Stealer<Arc<Node>>>,
    pub policy: SchedPolicy,
    /// Tasks created and not yet completed.
    pub live: AtomicUsize,
    /// Approximate count of ready, not-yet-started tasks.
    pub ready: AtomicUsize,
    pub shutdown: AtomicBool,
    /// Non-overlapped mode: buffer ready tasks until released.
    pub gate_held: AtomicBool,
    pub held: Mutex<Vec<Arc<Node>>>,
    pub profile: bool,
    /// Span buffers: one per worker plus one for the producer (last).
    pub spans: Vec<Mutex<Vec<Span>>>,
    pub start: Instant,
    pub last_discovery_ns: AtomicU64,
}

impl Pool {
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Publish a task that just became ready.
    pub fn make_ready(&self, node: Arc<Node>, local: Option<&Deque<Arc<Node>>>) {
        if self.gate_held.load(Ordering::SeqCst) {
            self.held.lock().push(node);
            return;
        }
        self.ready.fetch_add(1, Ordering::SeqCst);
        match (self.policy, local) {
            (SchedPolicy::DepthFirst, Some(deque)) => deque.push(node),
            _ => self.injector.push(node),
        }
    }

    /// Open the gate, flushing buffered ready tasks in discovery order.
    pub fn release_gate(&self) {
        if self.gate_held.swap(false, Ordering::SeqCst) {
            let held = std::mem::take(&mut *self.held.lock());
            for node in held {
                self.ready.fetch_add(1, Ordering::SeqCst);
                self.injector.push(node);
            }
        }
    }

    fn steal_global(&self) -> Option<Arc<Node>> {
        loop {
            match self.injector.steal() {
                Steal::Success(n) => return Some(n),
                Steal::Empty => return None,
                Steal::Retry => {}
            }
        }
    }

    fn steal_from(&self, victim: usize) -> Option<Arc<Node>> {
        loop {
            match self.stealers[victim].steal() {
                Steal::Success(n) => return Some(n),
                Steal::Empty => return None,
                Steal::Retry => {}
            }
        }
    }

    /// Find a ready task from the perspective of worker `idx` (or the
    /// producer if `local` is `None`).
    pub fn find_task(
        &self,
        local: Option<&Deque<Arc<Node>>>,
        idx: usize,
    ) -> Option<Arc<Node>> {
        let found = match self.policy {
            SchedPolicy::DepthFirst => local
                .and_then(|d| d.pop())
                .or_else(|| self.steal_global())
                .or_else(|| {
                    (0..self.stealers.len())
                        .map(|k| (idx + 1 + k) % self.stealers.len())
                        .find_map(|v| self.steal_from(v))
                }),
            SchedPolicy::BreadthFirst => self.steal_global(),
        };
        if found.is_some() {
            self.ready.fetch_sub(1, Ordering::SeqCst);
        }
        found
    }

    /// Execute one task on behalf of `worker_idx`.
    pub fn run_task(
        &self,
        node: Arc<Node>,
        local: Option<&Deque<Arc<Node>>>,
        worker_idx: usize,
    ) {
        let ctx = TaskCtx {
            task: node.id,
            iter: node.iter.load(Ordering::SeqCst),
            worker: worker_idx,
        };
        let t0 = if self.profile { self.now_ns() } else { 0 };
        if let Some(body) = &node.body {
            body(&ctx);
        }
        if self.profile {
            let t1 = self.now_ns();
            self.spans[worker_idx].lock().push(Span {
                worker: worker_idx as u32,
                start_ns: t0,
                end_ns: t1,
                kind: SpanKind::Work,
                name: node.name,
                iter: ctx.iter,
            });
        }
        // Release successors: streaming edges (taken) then persistent ones.
        let taken = node.complete();
        for succ in taken {
            if succ.release_one() {
                self.make_ready(succ, local);
            }
        }
        if let Some(persistent) = node.persistent_succs.get() {
            for succ in persistent {
                if succ.release_one() {
                    self.make_ready(Arc::clone(succ), local);
                }
            }
        }
        self.live.fetch_sub(1, Ordering::SeqCst);
    }

    /// Try to execute one task from outside the worker pool (producer
    /// helping). Returns whether a task was run.
    pub fn help_once(&self) -> bool {
        let n_workers = self.stealers.len();
        if let Some(node) = self.find_task(None, 0) {
            self.run_task(node, None, n_workers);
            true
        } else {
            false
        }
    }
}

fn worker_loop(pool: Arc<Pool>, idx: usize, deque: Deque<Arc<Node>>) {
    loop {
        if let Some(node) = pool.find_task(Some(&deque), idx) {
            pool.run_task(node, Some(&deque), idx);
        } else if pool.shutdown.load(Ordering::SeqCst) {
            // Drain once more to avoid losing tasks racing with shutdown.
            if let Some(node) = pool.find_task(Some(&deque), idx) {
                pool.run_task(node, Some(&deque), idx);
            } else {
                return;
            }
        } else {
            std::thread::sleep(Duration::from_micros(20));
        }
    }
}

/// The work-stealing executor: a pool of worker threads plus entry points
/// for sessions and persistent regions.
pub struct Executor {
    pool: Arc<Pool>,
    cfg: ExecConfig,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawn an executor with `cfg.n_workers` worker threads.
    pub fn new(cfg: ExecConfig) -> Executor {
        assert!(cfg.n_workers >= 1, "need at least one worker");
        let deques: Vec<Deque<Arc<Node>>> = (0..cfg.n_workers).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let pool = Arc::new(Pool {
            injector: Injector::new(),
            stealers,
            policy: cfg.policy,
            live: AtomicUsize::new(0),
            ready: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            gate_held: AtomicBool::new(false),
            held: Mutex::new(Vec::new()),
            profile: cfg.profile,
            spans: (0..cfg.n_workers + 1).map(|_| Mutex::new(Vec::new())).collect(),
            start: Instant::now(),
            last_discovery_ns: AtomicU64::new(0),
        });
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(idx, deque)| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("ptdg-worker-{idx}"))
                    .spawn(move || worker_loop(pool, idx, deque))
                    .expect("spawn worker")
            })
            .collect();
        Executor { pool, cfg, workers }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.cfg.n_workers
    }

    /// The configuration this executor was built with.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    pub(crate) fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Start a discovery/execution session (overlapped: tasks run while
    /// later tasks are still being discovered).
    pub fn session(&self, opts: OptConfig) -> Session<'_> {
        Session::new(self, opts, false, false)
    }

    /// Start a *non-overlapped* session (paper Table 1): all ready tasks
    /// are held until `wait_all`, so the graph is fully discovered before
    /// execution starts.
    pub fn session_non_overlapped(&self, opts: OptConfig) -> Session<'_> {
        Session::new(self, opts, true, false)
    }

    /// Start a persistent region (optimization (p)).
    pub fn persistent_region(&self, opts: OptConfig) -> PersistentRegion<'_> {
        PersistentRegion::new(self, opts)
    }

    /// Collect and clear the recorded trace (requires `cfg.profile`).
    pub fn take_trace(&self) -> Trace {
        let mut trace = Trace {
            n_workers: self.cfg.n_workers + 1,
            discovery_ns: self.pool.last_discovery_ns.load(Ordering::SeqCst),
            ..Default::default()
        };
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        for buf in &self.pool.spans {
            for span in buf.lock().drain(..) {
                t_min = t_min.min(span.start_ns);
                t_max = t_max.max(span.end_ns);
                trace.spans.push(span);
            }
        }
        if t_max > 0 && t_min != u64::MAX {
            trace.span_ns = t_max - t_min;
            // Rebase to the first span for readable Gantt output.
            for s in &mut trace.spans {
                s.start_ns -= t_min;
                s.end_ns -= t_min;
            }
        }
        trace
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.pool.release_gate();
        self.pool.shutdown.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
