//! Tile-Cholesky command line: factor a seeded SPD matrix with dependent
//! tasks and verify the factorization.
//!
//! ```sh
//! cargo run --release -p ptdg-cholesky --bin cholesky -- --nt 6 --b 16 --repeats 4
//! ```

use ptdg_cholesky::{CholeskyConfig, CholeskyTask};
use ptdg_core::exec::{ExecConfig, Executor, SchedPolicy};
use ptdg_core::opts::OptConfig;
use ptdg_core::throttle::ThrottleConfig;
use ptdg_simrt::RankProgram;

fn main() {
    let mut nt = 6usize;
    let mut b = 16usize;
    let mut repeats = 3u64;
    let mut seed = 42u64;
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut k = 0;
    while k < argv.len() {
        let val = argv.get(k + 1).and_then(|v| v.parse::<u64>().ok());
        match (argv[k].as_str(), val) {
            ("--nt", Some(v)) => nt = v as usize,
            ("--b", Some(v)) => b = v as usize,
            ("--repeats", Some(v)) => repeats = v,
            ("--seed", Some(v)) => seed = v,
            ("--workers", Some(v)) => workers = v as usize,
            ("-h", _) | ("--help", _) => {
                eprintln!(
                    "usage: cholesky [--nt T] [--b B] [--repeats R] [--seed S] [--workers W]"
                );
                return;
            }
            (flag, _) => {
                eprintln!("bad flag/value: {flag} (try --help)");
                std::process::exit(2);
            }
        }
        k += 2;
    }

    let cfg = CholeskyConfig::single(nt, b, repeats);
    let prog = CholeskyTask::with_matrix(cfg.clone(), seed);
    let exec = Executor::new(ExecConfig {
        n_workers: workers,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::mpc_default(),
        profile: false,
    });
    let t0 = std::time::Instant::now();
    let mut region = exec.persistent_region(OptConfig::all());
    for iter in 0..repeats {
        region.run(iter, |sub| prog.build_iteration(0, iter, sub));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let err = prog.matrix.as_ref().unwrap().factorization_error();
    let t = region.template().unwrap();
    println!(
        "Cholesky {}x{} ({}x{} tiles of {}x{}), {} repeats on {} workers:",
        nt * b,
        nt * b,
        nt,
        nt,
        b,
        b,
        repeats,
        workers
    );
    println!(
        "  max |L·Lᵀ − A| = {err:.3e}   {} tasks / {} edges per factorization   {elapsed:.3}s",
        t.n_tasks(),
        t.n_edges()
    );
    assert!(err < 1e-8, "factorization failed verification");
}
