//! Discovery-throughput A/B: the zero-allocation hot path (node arena +
//! inline successor/depend buffers + recycled `SpecBuf`) against a
//! baseline sink that replicates the pre-arena allocation profile — one
//! `Arc` node per task with a `Mutex<Vec<Arc<..>>>` successor list, and a
//! fresh owned `TaskSpec` (depend + footprint `Vec`s) per submission.
//!
//! Both sides drive the *same* `DiscoveryEngine` over the same fig. 1/2
//! style workload: a multi-phase 1-D stencil whose phase width is the
//! tasks-per-loop (TPL) knob. As TPL refines, tasks shrink and the
//! producer's discovery rate (tasks/s materialized into the graph) becomes
//! the bound — exactly the regime where per-task allocations dominate.
//!
//! A second section measures the persistent-graph replay path: whole
//! re-instanced iterations (bulk re-arm + root publication) against full
//! rediscovery of the same graph every iteration.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin discovery_throughput [--json out.json]
//! ```

use ptdg_bench::{arr, emit_json, obj, quick, rule, Json};
use ptdg_core::builder::SpecBuf;
use ptdg_core::graph::{DiscoveryEngine, GraphSink, TemplateRecorder};
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::opts::OptConfig;
use ptdg_core::rt::{
    GraphInstance, InstanceOptions, NodeRef, NullProbe, PersistentInstance, ReadyTracker,
};
use ptdg_core::task::{SpecView, TaskId, TaskSpec};
use ptdg_core::workdesc::{HandleSlice, WorkDesc};
use ptdg_core::AccessMode;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const REPS: usize = 3;

// ---- baseline sink -------------------------------------------------------

/// What every discovered node cost before the arena refactor: a separate
/// `Arc` allocation carrying the task payload, a heap `Vec` behind a
/// mutex for the successor list, and an `Arc` clone per edge.
struct BaselineNode {
    pending: AtomicU32,
    succs: Mutex<Vec<Arc<BaselineNode>>>,
    // The payload the pre-arena node carried (bodies off in this A/B).
    #[allow(dead_code)]
    name: &'static str,
    #[allow(dead_code)]
    fp_bytes: u32,
    #[allow(dead_code)]
    iter: std::sync::atomic::AtomicU64,
}

impl BaselineNode {
    fn new(name: &'static str, fp_bytes: u32) -> Arc<BaselineNode> {
        Arc::new(BaselineNode {
            pending: AtomicU32::new(1), // creation token
            succs: Mutex::new(Vec::new()),
            name,
            fp_bytes,
            iter: std::sync::atomic::AtomicU64::new(0),
        })
    }
}

/// A [`GraphSink`] with the old allocation behaviour but the *same*
/// runtime obligations as [`GraphInstance`] — tracker accounting and
/// probe lifecycle checks — so the A/B isolates the allocation strategy,
/// not ancillary bookkeeping.
struct BaselineSink {
    nodes: Vec<Arc<BaselineNode>>,
    ready: Vec<Arc<BaselineNode>>,
    tracker: Arc<ReadyTracker>,
    probe: Arc<dyn ptdg_core::rt::RtProbe>,
}

impl BaselineSink {
    fn new() -> BaselineSink {
        BaselineSink {
            nodes: Vec::new(),
            ready: Vec::new(),
            tracker: Arc::new(ReadyTracker::new()),
            probe: Arc::new(NullProbe),
        }
    }
}

impl GraphSink for BaselineSink {
    fn add_task(&mut self, spec: &SpecView<'_>) -> TaskId {
        self.tracker.created(1);
        self.nodes.push(BaselineNode::new(spec.name, spec.fp_bytes));
        if self.probe.lifecycle_enabled() {
            self.probe
                .task_created(TaskId(self.nodes.len() as u32 - 1), 0);
        }
        TaskId(self.nodes.len() as u32 - 1)
    }

    fn add_redirect(&mut self) -> TaskId {
        self.tracker.created(1);
        self.nodes.push(BaselineNode::new("<redirect>", 0));
        TaskId(self.nodes.len() as u32 - 1)
    }

    fn add_edge(&mut self, pred: TaskId, succ: TaskId) -> bool {
        let s = Arc::clone(&self.nodes[succ.index()]);
        s.pending.fetch_add(1, Ordering::Relaxed);
        self.nodes[pred.index()].succs.lock().unwrap().push(s);
        true
    }

    fn seal(&mut self, task: TaskId) {
        let n = &self.nodes[task.index()];
        if n.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            if self.probe.lifecycle_enabled() {
                self.probe.task_ready(task, 0);
            }
            self.ready.push(Arc::clone(n));
        }
    }

    fn wants_bodies(&self) -> bool {
        false
    }
}

// ---- workload ------------------------------------------------------------

/// Ping-pong slice arrays for a 1-D three-point stencil: phase `p` writes
/// one array from the other, task `t` reading slices `t-1..=t+1`.
struct Stencil {
    a: Vec<DataHandle>,
    b: Vec<DataHandle>,
}

fn stencil(tpl: usize) -> Stencil {
    let mut space = HandleSpace::new();
    Stencil {
        a: (0..tpl).map(|_| space.region("a", 4096)).collect(),
        b: (0..tpl).map(|_| space.region("b", 4096)).collect(),
    }
}

/// Describe task `t` of phase `p` into `buf` — dep order and a cost-model
/// footprint over the same slices, as the apps declare them.
#[allow(clippy::needless_range_loop)] // j is the stencil slice index
fn describe(buf: &mut SpecBuf, st: &Stencil, p: usize, t: usize, tpl: usize) {
    let (src, dst) = if p.is_multiple_of(2) {
        (&st.a, &st.b)
    } else {
        (&st.b, &st.a)
    };
    buf.begin("stencil");
    for j in t.saturating_sub(1)..=(t + 1).min(tpl - 1) {
        buf.dep(src[j], AccessMode::In)
            .touch(HandleSlice::whole(src[j], 4096));
    }
    buf.dep(dst[t], AccessMode::Out)
        .touch(HandleSlice::whole(dst[t], 4096))
        .flops(4096.0);
}

// ---- streaming A/B -------------------------------------------------------

/// Baseline: owned `TaskSpec` per task into the `Arc`/`Mutex` sink.
#[allow(clippy::needless_range_loop)] // t/j are stencil slice indices
fn baseline_tasks_per_s(tpl: usize, phases: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let st = stencil(tpl);
        let mut engine = DiscoveryEngine::new(OptConfig::all());
        engine.reserve(2 * tpl * phases, 2 * tpl);
        let mut sink = BaselineSink::new();
        sink.nodes.reserve(2 * tpl * phases); // table growth is not under test
        let t0 = Instant::now();
        for p in 0..phases {
            let (src, dst) = if p.is_multiple_of(2) {
                (&st.a, &st.b)
            } else {
                (&st.b, &st.a)
            };
            for t in 0..tpl {
                let mut spec = TaskSpec::new("stencil");
                let mut footprint = Vec::new();
                for j in t.saturating_sub(1)..=(t + 1).min(tpl - 1) {
                    spec = spec.depend(src[j], AccessMode::In);
                    footprint.push(HandleSlice::whole(src[j], 4096));
                }
                spec = spec.depend(dst[t], AccessMode::Out);
                footprint.push(HandleSlice::whole(dst[t], 4096));
                spec = spec.work(WorkDesc {
                    flops: 4096.0,
                    footprint,
                });
                engine.submit(&mut sink, &spec);
                sink.ready.clear();
            }
        }
        best = best.max((tpl * phases) as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// Arena path: recycled `SpecBuf` into the kernel's `GraphInstance`.
fn arena_tasks_per_s(tpl: usize, phases: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let st = stencil(tpl);
        let mut engine = DiscoveryEngine::new(OptConfig::all());
        engine.reserve(2 * tpl * phases, 2 * tpl);
        let tracker = Arc::new(ReadyTracker::new());
        let mut inst = GraphInstance::new(
            Arc::clone(&tracker),
            InstanceOptions {
                want_bodies: false,
                keep_work: false,
                capture: false,
            },
        );
        inst.reserve(2 * tpl * phases);
        let mut buf = SpecBuf::new();
        let mut ready: Vec<NodeRef> = Vec::new();
        let t0 = Instant::now();
        for p in 0..phases {
            for t in 0..tpl {
                describe(&mut buf, &st, p, t, tpl);
                engine.submit_view(&mut inst, &buf.view());
                inst.drain_ready_into(&mut ready);
                ready.clear();
            }
        }
        best = best.max((tpl * phases) as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

// ---- persistent replay A/B -----------------------------------------------

/// (rediscover_tasks_per_s, replay_tasks_per_s) for `iters` iterations of
/// the same `tpl × phases` stencil graph.
fn replay_tasks_per_s(tpl: usize, phases: usize, iters: u64) -> (f64, f64) {
    let st = stencil(tpl);
    let total = tpl * phases;

    // Rediscovery: pay full streaming discovery (engine + instance +
    // nodes + edges) every iteration, as a non-persistent runtime does.
    let mut redisc = 0.0f64;
    for _ in 0..REPS {
        let mut buf = SpecBuf::new();
        let mut ready: Vec<NodeRef> = Vec::new();
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut engine = DiscoveryEngine::new(OptConfig::all());
            let mut inst = GraphInstance::new(
                Arc::new(ReadyTracker::new()),
                InstanceOptions {
                    want_bodies: false,
                    keep_work: false,
                    capture: false,
                },
            );
            for p in 0..phases {
                for t in 0..tpl {
                    describe(&mut buf, &st, p, t, tpl);
                    engine.submit_view(&mut inst, &buf.view());
                    inst.drain_ready_into(&mut ready);
                    ready.clear();
                }
            }
        }
        redisc = redisc.max((total as u64 * iters) as f64 / t0.elapsed().as_secs_f64());
    }

    // Replay: capture once, then per iteration only the bulk re-arm and
    // the root publication sweep.
    let template = {
        let mut engine = DiscoveryEngine::new(OptConfig::all());
        let mut rec = TemplateRecorder::new(false);
        let mut buf = SpecBuf::new();
        for p in 0..phases {
            for t in 0..tpl {
                describe(&mut buf, &st, p, t, tpl);
                engine.submit_view(&mut rec, &buf.view());
            }
        }
        Arc::new(rec.finish())
    };
    let mut replay = 0.0f64;
    for _ in 0..REPS {
        let pinst = PersistentInstance::new(Arc::clone(&template), false);
        let tracker = ReadyTracker::new();
        let mut ready: Vec<NodeRef> = Vec::new();
        let t0 = Instant::now();
        for iter in 0..iters {
            pinst.begin_iteration_with(iter, &tracker, &NullProbe, 0);
            pinst.publish_into(0..pinst.len(), &NullProbe, 0, &mut ready);
            ready.clear();
        }
        replay = replay.max((total as u64 * iters) as f64 / t0.elapsed().as_secs_f64());
    }
    (redisc, replay)
}

fn main() {
    let quick = quick();
    let total_tasks: usize = if quick { 16_384 } else { 98_304 };
    let replay_iters: u64 = if quick { 24 } else { 128 };
    let tpl_sweep: &[usize] = &[64, 128, 256, 512, 1024];

    println!("discovery throughput — arena/SpecBuf hot path vs pre-arena baseline sink");
    println!("three-point stencil, {total_tasks} tasks per measurement, best of {REPS}\n");
    println!(
        "{:>8} {:>8} {:>15} {:>15} {:>9}",
        "TPL", "phases", "baseline(t/s)", "arena(t/s)", "speedup"
    );
    rule(60);

    let mut rows: Vec<Json> = Vec::new();
    let mut fine_speedup = 0.0f64;
    for &tpl in tpl_sweep {
        let phases = (total_tasks / tpl).max(2);
        let base = baseline_tasks_per_s(tpl, phases);
        let arena = arena_tasks_per_s(tpl, phases);
        let speedup = arena / base;
        if tpl == *tpl_sweep.last().unwrap() {
            fine_speedup = speedup;
        }
        println!("{tpl:>8} {phases:>8} {base:>15.0} {arena:>15.0} {speedup:>8.2}x");
        rows.push(obj([
            ("tpl", (tpl as u64).into()),
            ("phases", (phases as u64).into()),
            ("baseline_tasks_per_s", base.into()),
            ("arena_tasks_per_s", arena.into()),
            ("speedup", speedup.into()),
        ]));
    }
    rule(60);
    let wins = fine_speedup >= 1.3;
    println!(
        "arena speedup at finest TPL ({}): {fine_speedup:.2}x (target >= 1.30x): {}",
        tpl_sweep.last().unwrap(),
        if wins { "yes" } else { "NO" }
    );

    // Persistent replay at a representative fine-TPL point.
    let (tpl, phases) = (512usize, (total_tasks / 512).max(2));
    let (redisc, replay) = replay_tasks_per_s(tpl, phases, replay_iters);
    let replay_speedup = replay / redisc;
    println!("\npersistent replay, TPL {tpl} x {phases} phases x {replay_iters} iterations:");
    println!("  rediscover every iteration: {redisc:>14.0} tasks/s");
    println!("  bulk re-arm + publish:      {replay:>14.0} tasks/s  ({replay_speedup:.1}x)");

    emit_json(
        "discovery_throughput",
        obj([
            ("total_tasks", (total_tasks as u64).into()),
            ("rows", arr(rows)),
            ("fine_tpl_speedup", fine_speedup.into()),
            ("arena_wins_fine_tpl", wins.into()),
            (
                "replay",
                obj([
                    ("tpl", (tpl as u64).into()),
                    ("phases", (phases as u64).into()),
                    ("iters", replay_iters.into()),
                    ("rediscover_tasks_per_s", redisc.into()),
                    ("replay_tasks_per_s", replay.into()),
                    ("speedup", replay_speedup.into()),
                ]),
            ),
        ]),
    );
}
