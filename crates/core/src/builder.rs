//! Back-end-agnostic task submission.
//!
//! Applications describe one iteration of their computation as a stream of
//! [`TaskSpec`]s pushed into a [`TaskSubmitter`]. The same description runs
//! on the real thread executor (`crate::exec`), on the virtual-time
//! executor (`ptdg-simrt`), or into a [`crate::graph::TemplateRecorder`] —
//! the analogue of the same OpenMP pragmas executing on different runtimes.

use crate::task::{TaskId, TaskSpec};

/// Receives the producer thread's sequential task stream.
pub trait TaskSubmitter {
    /// Submit one task.
    fn submit(&mut self, spec: TaskSpec) -> TaskId;

    /// Whether closures are needed — cost-model-only back-ends return
    /// `false` so applications can skip building bodies.
    fn wants_bodies(&self) -> bool {
        true
    }
}

/// An application kernel that can generate its task graph iteration by
/// iteration (the body of the paper's annotated `ptsg` loop).
///
/// Implementations must generate tasks **in the same order and with the
/// same dependency scheme on every iteration** — the precondition of the
/// persistent-graph optimization (paper Fig. 5). Bodies must read the
/// iteration number from [`crate::task::TaskCtx::iter`], never capture it.
pub trait IterationBuilder {
    /// Generate all tasks of iteration `iter`.
    fn build_iteration(&self, sub: &mut dyn TaskSubmitter, iter: u64);

    /// Number of iterations this program wants to run.
    fn iterations(&self) -> u64;
}

/// A submitter that simply counts tasks — useful for sizing and tests.
#[derive(Debug, Default)]
pub struct CountingSubmitter {
    /// Tasks seen.
    pub tasks: u64,
    /// Depend items seen.
    pub depend_items: u64,
}

impl TaskSubmitter for CountingSubmitter {
    fn submit(&mut self, spec: TaskSpec) -> TaskId {
        let id = TaskId(self.tasks as u32);
        self.tasks += 1;
        self.depend_items += spec.depends.len() as u64;
        id
    }

    fn wants_bodies(&self) -> bool {
        false
    }
}

/// A submitter that records full specs (testing aid).
#[derive(Default)]
pub struct RecordingSubmitter {
    /// Every submitted spec, in order.
    pub specs: Vec<TaskSpec>,
}

impl TaskSubmitter for RecordingSubmitter {
    fn submit(&mut self, spec: TaskSpec) -> TaskId {
        let id = TaskId(self.specs.len() as u32);
        self.specs.push(spec);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessMode;
    use crate::handle::HandleSpace;

    #[test]
    fn counting_submitter_counts() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 8);
        let mut c = CountingSubmitter::default();
        let id0 = c.submit(TaskSpec::new("a").depend(x, AccessMode::Out));
        let id1 = c.submit(TaskSpec::new("b").depend(x, AccessMode::In));
        assert_eq!(id0, TaskId(0));
        assert_eq!(id1, TaskId(1));
        assert_eq!(c.tasks, 2);
        assert_eq!(c.depend_items, 2);
        assert!(!c.wants_bodies());
    }

    #[test]
    fn recording_submitter_preserves_order_and_bodies() {
        let mut r = RecordingSubmitter::default();
        assert!(r.wants_bodies());
        r.submit(TaskSpec::new("first").body(|_| {}));
        r.submit(TaskSpec::new("second"));
        assert_eq!(r.specs.len(), 2);
        assert_eq!(r.specs[0].name, "first");
        assert!(r.specs[0].body.is_some());
        assert!(r.specs[1].body.is_none());
    }
}
