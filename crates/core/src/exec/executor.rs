//! Worker pool: the *thread-pool policy* over the runtime kernel.
//!
//! Everything semantic — readiness, queue placement/steal order, hold
//! gate, throttling, profiling — lives in [`crate::rt`]; this file only
//! decides *which OS thread* consumes the queues and when the producer
//! helps.

use super::persistent::PersistentRegion;
use super::session::Session;
use crate::obs::{EventRecorder, ObsReport};
use crate::opts::OptConfig;
use crate::profile::{Span, SpanKind, Trace};
use crate::rt::{HoldGate, NodeRef, Parker, ReadyQueues, ReadyTracker, RtProbe};
use crate::task::TaskCtx;
use crate::throttle::{ThrottleConfig, ThrottleGate};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub use crate::rt::{QueueBackend, SchedPolicy};

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Worker threads (the producer thread is additional and only helps
    /// during throttling and `wait_all`).
    pub n_workers: usize,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Producer throttling thresholds.
    pub throttle: ThrottleConfig,
    /// Record per-task spans for post-mortem analysis.
    pub profile: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            n_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            policy: SchedPolicy::DepthFirst,
            throttle: ThrottleConfig::default(),
            profile: false,
        }
    }
}

pub(crate) struct Pool {
    pub queues: ReadyQueues<NodeRef>,
    pub tracker: Arc<ReadyTracker>,
    /// Non-overlapped mode: buffer ready tasks until released.
    pub gate: HoldGate<NodeRef>,
    pub throttle: ThrottleGate,
    pub shutdown: AtomicBool,
    /// Eventcount all idle threads (workers and the waiting producer)
    /// block on instead of sleep-polling. Wake discipline: `notify_one`
    /// per task pushed, `notify_all` on one-to-many events — gate
    /// release, reaching quiescence, shutdown.
    pub parker: Parker,
    /// Park/unpark telemetry (Relaxed: stats only).
    pub parks: AtomicU64,
    pub unparks: AtomicU64,
    pub profile: bool,
    /// Lock-free span/event sink; one lane per worker plus one for the
    /// producer (last). Implements [`RtProbe`], so it is also the probe
    /// the kernel emit sites narrate through.
    pub recorder: Arc<EventRecorder>,
    pub start: Instant,
    pub last_discovery_ns: AtomicU64,
    /// Producer throttle stalls (count and helping time, ns).
    pub throttle_stalls: AtomicU64,
    pub throttle_stall_ns: AtomicU64,
    /// Communication tasks whose side effect was posted.
    pub comms_posted: AtomicU64,
    n_workers: usize,
}

impl Pool {
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Clock read for lifecycle narration: free when profiling is off.
    fn probe_now(&self) -> u64 {
        if self.profile {
            self.now_ns()
        } else {
            0
        }
    }

    /// Publish a task that just became ready; `local` is the core whose
    /// deque should receive it under depth-first (`None` = producer).
    ///
    /// Redirect nodes (optimization (c)) never queue: they carry no body,
    /// so they complete inline, immediately releasing their successors —
    /// the same shortcut the simulator takes, which keeps both back-ends'
    /// lifecycle streams identical (`Created → Ready → Completed`, no
    /// `Scheduled`, gate bypassed: a redirect "runs" the moment its
    /// predecessors are done even in non-overlapped mode, because its
    /// successors are still held by the gate).
    ///
    /// Iterative, not recursive: a chain of redirect nodes completing
    /// into one another is walked with an explicit worklist, so graphs
    /// with arbitrarily deep redirect chains cannot overflow the stack.
    /// The common case — one non-redirect node — allocates nothing.
    pub fn make_ready(&self, node: NodeRef, local: Option<usize>) {
        let mut next = Some(node);
        let mut worklist: Vec<NodeRef> = Vec::new();
        while let Some(node) = next.take().or_else(|| worklist.pop()) {
            if node.is_redirect {
                let core = local.unwrap_or(self.n_workers);
                let done = node.complete_with(&*self.recorder, core, self.probe_now());
                if self.tracker.completed() {
                    self.parker.notify_all();
                }
                worklist.extend(done.ready);
            } else if let Some(node) = self.gate.offer(node) {
                self.tracker.became_ready();
                self.queues.push(node, local);
                self.parker.notify_one();
            }
        }
    }

    /// Open the gate, flushing buffered ready tasks in discovery order.
    pub fn release_gate(&self) {
        let mut flushed = false;
        for node in self.gate.release() {
            self.tracker.became_ready();
            self.queues.push(node, None);
            flushed = true;
        }
        if flushed {
            self.parker.notify_all();
        }
    }

    /// Find a ready task from the perspective of worker `idx`
    /// (`None` = the producer).
    pub fn find_task(&self, idx: Option<usize>) -> Option<NodeRef> {
        let found = self.queues.pop_with(idx, &*self.recorder, self.probe_now());
        if found.is_some() {
            self.tracker.scheduled();
        }
        found.map(|(node, _stolen)| node)
    }

    /// Execute one task on behalf of `worker_idx` (the producer uses index
    /// `n_workers`); `local` is the deque for newly-ready successors.
    pub fn run_task(&self, node: NodeRef, local: Option<usize>, worker_idx: usize) {
        let ctx = TaskCtx {
            task: node.id,
            // Relaxed: `iter` is stamped before the node is published to a
            // queue; the queue transfer (mutex, or Release push → Acquire
            // pop/steal) is the happens-before edge that makes it visible.
            iter: node.iter.load(Ordering::Relaxed),
            worker: worker_idx,
        };
        let t0 = if self.profile { self.now_ns() } else { 0 };
        if let Some(body) = &node.body {
            body(&ctx);
        }
        let t1 = if self.profile { self.now_ns() } else { 0 };
        if self.profile {
            self.recorder.span(Span {
                worker: worker_idx as u32,
                start_ns: t0,
                end_ns: t1,
                kind: SpanKind::Work,
                name: node.name,
                iter: ctx.iter,
            });
        }
        if node.comm.is_some() {
            // Relaxed: statistic, read after the run quiesces.
            self.comms_posted.fetch_add(1, Ordering::Relaxed);
        }
        for succ in node.complete_with(&*self.recorder, worker_idx, t1).ready {
            self.make_ready(succ, local);
        }
        if self.tracker.completed() {
            // Last live task: wake everything blocked on quiescence (the
            // producer in `wait_all`/`taskwait`/persistent barriers, and
            // workers waiting out a shutdown drain).
            self.parker.notify_all();
        }
    }

    /// Try to execute one task from outside the worker pool (producer
    /// helping). Returns whether a task was run.
    pub fn help_once(&self) -> bool {
        if let Some(node) = self.find_task(None) {
            self.run_task(node, None, self.n_workers);
            true
        } else {
            false
        }
    }

    /// Help execute until the tracker reports quiescence, parking — not
    /// sleep-polling — when no work is available. The producer-side
    /// implicit barrier behind `wait_all`, `taskwait`, and persistent
    /// iteration boundaries.
    pub fn barrier(&self) {
        loop {
            if self.help_once() {
                continue;
            }
            if self.tracker.quiescent() {
                return;
            }
            // Two-phase park (see `worker_loop`): re-check quiescence
            // and the queues after taking the ticket, so neither the
            // completion nor a push racing with us can be missed — the
            // notify it performs invalidates our ticket.
            let ticket = self.parker.prepare();
            if self.tracker.quiescent() {
                return;
            }
            if self.help_once() {
                continue;
            }
            self.parks.fetch_add(1, Ordering::Relaxed);
            self.parker.park(ticket);
            self.unparks.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(pool: Arc<Pool>, idx: usize) {
    loop {
        if let Some(node) = pool.find_task(Some(idx)) {
            pool.run_task(node, Some(idx), idx);
            continue;
        }
        // Two-phase park: take a ticket, re-check every wake condition,
        // then sleep. Any notify between `prepare` and `park` makes
        // `park` return immediately, so a task pushed (or shutdown
        // raised) in that window cannot be missed.
        let ticket = pool.parker.prepare();
        if let Some(node) = pool.find_task(Some(idx)) {
            pool.run_task(node, Some(idx), idx);
            continue;
        }
        // Exit only once the pool is both shutting down *and* drained:
        // `quiescent` (not just an empty queue) means no in-flight task
        // can spawn more work, so nothing is abandoned by leaving.
        // Acquire pairs with the Release store in `Executor::drop`.
        if pool.shutdown.load(Ordering::Acquire) && pool.tracker.quiescent() {
            return;
        }
        pool.parks.fetch_add(1, Ordering::Relaxed);
        pool.parker.park(ticket);
        pool.unparks.fetch_add(1, Ordering::Relaxed);
    }
}

/// The work-stealing executor: a pool of worker threads plus entry points
/// for sessions and persistent regions.
pub struct Executor {
    pool: Arc<Pool>,
    cfg: ExecConfig,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawn an executor with `cfg.n_workers` worker threads on the
    /// lock-free scheduler fast path (Chase–Lev deques + injector).
    pub fn new(cfg: ExecConfig) -> Executor {
        Self::with_queue_backend(cfg, QueueBackend::LockFree)
    }

    /// Spawn an executor with an explicit [`QueueBackend`] — the mutex
    /// baseline is kept selectable so `scheduler_throughput` (and any
    /// future A/B) can measure the lock-free path against it.
    pub fn with_queue_backend(cfg: ExecConfig, backend: QueueBackend) -> Executor {
        assert!(cfg.n_workers >= 1, "need at least one worker");
        let pool = Arc::new(Pool {
            queues: ReadyQueues::with_backend(cfg.policy, cfg.n_workers, backend),
            tracker: Arc::new(ReadyTracker::new()),
            gate: HoldGate::new(false),
            throttle: ThrottleGate::new(cfg.throttle),
            shutdown: AtomicBool::new(false),
            parker: Parker::new(),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            profile: cfg.profile,
            recorder: Arc::new(EventRecorder::new(cfg.n_workers + 1, cfg.profile)),
            start: Instant::now(),
            last_discovery_ns: AtomicU64::new(0),
            throttle_stalls: AtomicU64::new(0),
            throttle_stall_ns: AtomicU64::new(0),
            comms_posted: AtomicU64::new(0),
            n_workers: cfg.n_workers,
        });
        let workers = (0..cfg.n_workers)
            .map(|idx| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("ptdg-worker-{idx}"))
                    .spawn(move || worker_loop(pool, idx))
                    .expect("spawn worker")
            })
            .collect();
        Executor { pool, cfg, workers }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.cfg.n_workers
    }

    /// The configuration this executor was built with.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    pub(crate) fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Start a discovery/execution session (overlapped: tasks run while
    /// later tasks are still being discovered).
    pub fn session(&self, opts: OptConfig) -> Session<'_> {
        Session::new(self, opts, false, false)
    }

    /// Start a *non-overlapped* session (paper Table 1): all ready tasks
    /// are held until `wait_all`, so the graph is fully discovered before
    /// execution starts.
    pub fn session_non_overlapped(&self, opts: OptConfig) -> Session<'_> {
        Session::new(self, opts, true, false)
    }

    /// Start a capturing session: streams and executes normally while a
    /// [`crate::graph::TemplateRecorder`] mirrors every node and edge.
    /// Used by persistent regions, graph equivalence checks, and
    /// post-mortem critical-path analysis (which needs the executed DAG).
    pub fn session_capturing(&self, opts: OptConfig) -> Session<'_> {
        Session::new(self, opts, false, true)
    }

    /// Start a persistent region (optimization (p)).
    pub fn persistent_region(&self, opts: OptConfig) -> PersistentRegion<'_> {
        PersistentRegion::new(self, opts)
    }

    /// Collect and clear the recorded trace (requires `cfg.profile`).
    pub fn take_trace(&self) -> Trace {
        self.take_obs().trace
    }

    /// Collect and clear everything observability recorded — spans,
    /// lifecycle events, and the kernel counters this executor can fill
    /// on its own (discovery statistics are the session's to add via
    /// [`crate::obs::RtCounters::absorb_discovery`]). Wall-clock
    /// timestamps are rebased to the earliest record.
    pub fn take_obs(&self) -> ObsReport {
        // Relaxed loads throughout: these are post-quiescence statistics;
        // the `wait_all` barrier that preceded this call is the
        // synchronization point.
        let mut obs = self.pool.recorder.finish(
            true,
            self.cfg.n_workers + 1,
            self.pool.last_discovery_ns.load(Ordering::Relaxed),
        );
        let c = &mut obs.counters;
        let created = self.pool.tracker.created_total() as u64;
        c.tasks_created = created;
        c.tasks_completed = created - self.pool.tracker.live() as u64;
        c.ready_hwm = self.pool.tracker.ready_hwm() as u64;
        c.live_hwm = self.pool.tracker.live_hwm() as u64;
        c.gate_held = self.pool.gate.held_total();
        c.throttle_stalls = self.pool.throttle_stalls.load(Ordering::Relaxed);
        c.throttle_stall_ns = self.pool.throttle_stall_ns.load(Ordering::Relaxed);
        c.comms_posted = self.pool.comms_posted.load(Ordering::Relaxed);
        let (attempts, successes) = self.pool.queues.steal_stats();
        c.steal_attempts = attempts;
        c.steal_successes = successes;
        c.parks = self.pool.parks.load(Ordering::Relaxed);
        c.unparks = self.pool.unparks.load(Ordering::Relaxed);
        obs
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.pool.release_gate();
        // Release pairs with the Acquire load in `worker_loop`; the
        // `notify_all` epoch bump (SeqCst) makes the store visible to
        // already-parked workers when they wake.
        self.pool.shutdown.store(true, Ordering::Release);
        self.pool.parker.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
