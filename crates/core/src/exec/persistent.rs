//! Persistent task sub-graph (optimization (p)) on the thread executor.

use super::executor::Executor;
use super::node::Node;
use super::session::Session;
use crate::builder::TaskSubmitter;
use crate::graph::{DiscoveryStats, GraphTemplate};
use crate::opts::OptConfig;
use crate::task::TaskId;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// The `#pragma omp ptsg` region of the paper (Fig. 5).
///
/// The first call to [`PersistentRegion::run`] discovers the iteration's
/// graph normally — concurrently with its execution — while capturing every
/// node and edge (no pruning). Subsequent calls re-instance the captured
/// graph: per node, reset the dependence counter and rewrite the
/// firstprivate payload. No task descriptors are allocated, no `depend`
/// clause is processed, no edge is created. An implicit barrier ends every
/// iteration (tasks of iteration *n+1* cannot start before all of *n*
/// completed — the behaviour visible in the paper's Gantt chart, Fig. 8).
pub struct PersistentRegion<'e> {
    exec: &'e Executor,
    opts: OptConfig,
    template: Option<Arc<GraphTemplate>>,
    instanced: Vec<Arc<Node>>,
    first_stats: DiscoveryStats,
    iterations_run: u64,
}

impl<'e> PersistentRegion<'e> {
    pub(crate) fn new(exec: &'e Executor, opts: OptConfig) -> Self {
        PersistentRegion {
            exec,
            opts,
            template: None,
            instanced: Vec::new(),
            first_stats: DiscoveryStats::default(),
            iterations_run: 0,
        }
    }

    /// Run one iteration. `build` is only invoked on *capturing* calls
    /// (the first one, and the first after [`PersistentRegion::invalidate`]);
    /// otherwise the captured graph is re-instanced and `build` is not
    /// called at all (its task stream is required to be identical, which
    /// the caller promises by using a persistent region).
    ///
    /// Task bodies observe the current iteration via
    /// [`crate::task::TaskCtx::iter`].
    pub fn run<F: FnOnce(&mut dyn TaskSubmitter)>(&mut self, iter: u64, build: F) {
        match &self.template {
            None => {
                let mut session = Session::new(self.exec, self.opts, false, true);
                session.set_iter(iter);
                build(&mut session);
                let (template, stats) = session.finish_capture();
                self.first_stats = stats;
                self.template = Some(Arc::new(template));
                self.instance_nodes();
            }
            Some(_) => self.run_instanced(iter),
        }
        self.iterations_run += 1;
    }

    /// Drop the captured graph so the next [`PersistentRegion::run`]
    /// rediscovers and recaptures it.
    ///
    /// This is the hook for adaptive applications (the paper's §3.2
    /// "Applicability"): when the mesh changes — e.g. an AMR step — the
    /// dependency scheme changes with it, and the capture cost is paid
    /// again, amortized over the iterations until the next adaptation.
    pub fn invalidate(&mut self) {
        self.template = None;
        self.instanced.clear();
    }

    /// Build the instanced node set once, from the captured template.
    fn instance_nodes(&mut self) {
        let template = self.template.as_ref().unwrap();
        self.instanced = template
            .ids()
            .map(|id| {
                let tn = template.node(id);
                Node::new(id, tn.name, tn.body.clone(), 0)
            })
            .collect();
        for id in template.ids() {
            let succs: Vec<Arc<Node>> = template
                .successors(id)
                .map(|s| Arc::clone(&self.instanced[s.index()]))
                .collect();
            self.instanced[id.index()]
                .persistent_succs
                .set(succs)
                .ok()
                .expect("instance_nodes runs once");
        }
    }

    /// Re-instance and execute one iteration from the template.
    fn run_instanced(&mut self, iter: u64) {
        let template = Arc::clone(self.template.as_ref().unwrap());
        let pool = Arc::clone(self.exec.pool());
        // The producer's whole per-iteration discovery work: counter reset
        // plus the firstprivate "memcpy" (the iteration payload).
        for id in template.ids() {
            self.instanced[id.index()].reset_for_iteration(template.indegree(id), iter);
        }
        pool.live.fetch_add(self.instanced.len(), Ordering::SeqCst);
        for id in template.roots() {
            pool.make_ready(Arc::clone(&self.instanced[id.index()]), None);
        }
        // Implicit end-of-iteration barrier.
        loop {
            if pool.help_once() {
                continue;
            }
            if pool.live.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }

    /// The captured template, if the first iteration has run.
    pub fn template(&self) -> Option<&Arc<GraphTemplate>> {
        self.template.as_ref()
    }

    /// Discovery statistics of the first (capturing) iteration.
    pub fn first_iteration_stats(&self) -> DiscoveryStats {
        self.first_stats
    }

    /// Iterations executed so far.
    pub fn iterations_run(&self) -> u64 {
        self.iterations_run
    }

    /// Ids of all captured tasks (for inspection).
    pub fn task_ids(&self) -> Vec<TaskId> {
        self.template
            .as_ref()
            .map(|t| t.ids().collect())
            .unwrap_or_default()
    }
}
