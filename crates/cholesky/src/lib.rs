//! # ptdg-cholesky — tile-based Cholesky factorization
//!
//! The classic dependent-task showcase (paper §4.4): a right-looking
//! blocked factorization `A = L·Lᵀ` over an `nt × nt` grid of `b × b`
//! tiles, with the standard four kernels (`potrf`, `trsm`, `syrk`,
//! `gemm`) and one dependency handle per tile. The dependency scheme is
//! *dense and regular* — which is precisely why the paper finds that the
//! edge optimizations (a)/(b)/(c) change nothing here, while the
//! persistent graph (p) accelerates discovery ~5× asymptotically across
//! repeated factorizations without moving end-to-end time (discovery is
//! <2% of total with such coarse tasks).
//!
//! Each "iteration" factors a fresh copy of the same SPD matrix
//! (re-initialized by per-tile reset tasks), matching the paper's
//! "iteratively decomposing matrices of same dimensions and tile size".

pub mod config;
pub mod program;
pub mod tiles;

pub use config::CholeskyConfig;
pub use program::CholeskyTask;
pub use tiles::TileMatrix;
