//! A minimal JSON value and writer.
//!
//! The workspace is offline (no serde); the bench harnesses' `--json`
//! output and the observability exporters share this one hand-rolled
//! writer. Formerly private to `ptdg-bench`; it lives here so the app
//! CLIs can emit Chrome traces without depending on the bench crate
//! (`ptdg-bench` re-exports it, its API is unchanged).

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Build a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Build a [`Json::Arr`].
pub fn arr(items: Vec<Json>) -> Json {
    Json::Arr(items)
}

impl Json {
    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 9e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_escapes() {
        let doc = obj([
            ("name", "fig\"1\"\n".into()),
            ("total_s", 1.5f64.into()),
            ("ok", true.into()),
            (
                "rows",
                arr(vec![obj([("tpl", 24usize.into())]), Json::Null]),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig\"1\"\n","total_s":1.5,"ok":true,"rows":[{"tpl":24},null]}"#
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(3.0f64).render(), "3");
        assert_eq!(Json::from(3.25f64).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
