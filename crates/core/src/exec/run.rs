//! Whole-program entry point for the thread back-end.
//!
//! Runs a [`RankProgram`] — the same value `ptdg_simrt::simulate_tasks`
//! accepts — on real threads. Each rank gets its own worker pool, all
//! ranks run *concurrently* (scoped threads), and they exchange messages
//! through a shared in-process [`CommWorld`]: `Isend`/`Irecv`/
//! `Iallreduce` tasks post real requests, detach, and complete off-core
//! when the request matches — the same contract the simulator models.

use super::executor::{ExecConfig, Executor, QueueBackend};
use crate::comm::{CommConfig, CommError, CommWorld};
use crate::graph::{DiscoveryStats, GraphTemplate};
use crate::obs::{RtCounters, RtEvent};
use crate::opts::OptConfig;
use crate::profile::Trace;
use crate::program::RankProgram;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a [`run_program`] call.
#[derive(Clone, Debug, Default)]
pub struct ThreadsConfig {
    /// Worker-pool configuration (applied per rank; profiling and event
    /// recording are honoured on rank 0, mirroring the simulator's
    /// `record_trace_rank`).
    pub exec: ExecConfig,
    /// Discovery optimizations.
    pub opts: OptConfig,
    /// In-process network tuning (eager/rendezvous threshold).
    pub comm: CommConfig,
    /// Use a persistent region per rank (optimization (p)) instead of
    /// streaming discovery every iteration.
    pub persistent: bool,
    /// Discover each rank's full stream before executing any task
    /// (paper Table 1, non-overlapped).
    pub non_overlapped: bool,
    /// Capture the discovered graph per rank (equivalence checks). In
    /// persistent mode the capture is the first-iteration template; in
    /// streaming mode it spans every iteration.
    pub capture_graph: bool,
}

/// What [`run_program`] reports.
#[derive(Clone, Debug, Default)]
pub struct ThreadsReport {
    /// Ranks executed.
    pub n_ranks: u32,
    /// Discovery statistics per rank.
    pub per_rank_stats: Vec<DiscoveryStats>,
    /// Producer-side discovery span per rank, nanoseconds.
    pub discovery_ns: Vec<u64>,
    /// Captured graph per rank (empty unless
    /// [`ThreadsConfig::capture_graph`]).
    pub graphs: Vec<GraphTemplate>,
    /// Wall-clock for the whole run, nanoseconds.
    pub elapsed_ns: u64,
    /// Per-worker span trace of rank 0 (present when
    /// [`ExecConfig::profile`]).
    pub trace: Option<Trace>,
    /// Rank 0's lifecycle event stream (empty unless profiling or
    /// [`ExecConfig::record_events`]).
    pub events: Vec<RtEvent>,
    /// Kernel counters, merged over ranks (always filled).
    pub counters: RtCounters,
    /// Kernel counters per rank.
    pub per_rank_counters: Vec<RtCounters>,
    /// Communication error: unmatched requests, either force-completed by
    /// the deadlock detector mid-run or left over at the end (an eager
    /// send nobody received). `None` on a well-formed run.
    pub comm_error: Option<CommError>,
}

impl ThreadsReport {
    /// Discovery statistics merged over ranks.
    pub fn stats(&self) -> DiscoveryStats {
        let mut total = DiscoveryStats::default();
        for s in &self.per_rank_stats {
            total.merge(s);
        }
        total
    }
}

/// One rank's slice of the run, produced on that rank's producer thread.
struct RankOutput {
    stats: DiscoveryStats,
    discovery_ns: u64,
    graph: Option<GraphTemplate>,
    counters: RtCounters,
    events: Vec<RtEvent>,
    trace: Option<Trace>,
}

fn run_rank<P: RankProgram + Sync + ?Sized>(
    program: &P,
    cfg: &ThreadsConfig,
    world: Arc<CommWorld>,
    rank: u32,
) -> RankOutput {
    // Only rank 0 records spans/events (the simulator records one rank
    // too); counters come from atomics and are always collected.
    let mut exec_cfg = cfg.exec.clone();
    if rank != 0 {
        exec_cfg.profile = false;
        exec_cfg.record_events = false;
    }
    let exec = Executor::with_comm_world(exec_cfg, QueueBackend::LockFree, world, rank);
    let mut out = RankOutput {
        stats: DiscoveryStats::default(),
        discovery_ns: 0,
        graph: None,
        counters: RtCounters::default(),
        events: Vec::new(),
        trace: None,
    };
    let mut persistent_reuses = 0u64;
    if cfg.persistent {
        let mut region = exec.persistent_region(cfg.opts);
        for iter in 0..program.n_iterations() {
            region.run(iter, |sub| program.build_iteration(rank, iter, sub));
        }
        persistent_reuses = region.reuses();
        out.stats = region.first_iteration_stats();
        if cfg.capture_graph {
            if let Some(t) = region.template() {
                out.graph = Some((**t).clone());
            }
        }
    } else {
        let mut session = if cfg.capture_graph {
            exec.session_capturing(cfg.opts)
        } else if cfg.non_overlapped {
            exec.session_non_overlapped(cfg.opts)
        } else {
            exec.session(cfg.opts)
        };
        for iter in 0..program.n_iterations() {
            session.set_iter(iter);
            program.build_iteration(rank, iter, &mut session);
        }
        out.stats = session.stats();
        out.discovery_ns = session.discovery_ns();
        if cfg.capture_graph {
            let (graph, _) = session.finish_capture();
            out.graph = Some(graph);
        } else {
            session.wait_all();
        }
    }
    // This rank will post nothing more — tell the world, so peers blocked
    // on "done or stalled" can resolve.
    exec.comm_world().note_done(rank);
    let obs = exec.take_obs();
    out.counters = obs.counters;
    // The tracker already counted every created task (discovery and
    // re-instanced); absorbing discovery stats would double-count it.
    let created = out.counters.tasks_created;
    out.counters.absorb_discovery(&out.stats);
    out.counters.tasks_created = created;
    out.counters.persistent_reuses = persistent_reuses;
    out.events = obs.events;
    if cfg.exec.profile && rank == 0 {
        out.trace = Some(obs.trace);
    }
    out
}

/// Execute `program` on the thread back-end: one executor pool per rank,
/// ranks concurrent, communication through a shared in-process world.
pub fn run_program<P: RankProgram + Sync + ?Sized>(
    program: &P,
    cfg: &ThreadsConfig,
) -> ThreadsReport {
    let n_ranks = program.n_ranks();
    let world = Arc::new(CommWorld::new(n_ranks, cfg.comm));
    let t0 = Instant::now();
    let outputs: Vec<RankOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_ranks)
            .map(|rank| {
                let world = Arc::clone(&world);
                scope.spawn(move || run_rank(program, cfg, world, rank))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });
    let mut report = ThreadsReport {
        n_ranks,
        elapsed_ns: t0.elapsed().as_nanos() as u64,
        comm_error: world.finish(),
        ..Default::default()
    };
    for out in outputs {
        report.per_rank_stats.push(out.stats);
        report.discovery_ns.push(out.discovery_ns);
        if let Some(g) = out.graph {
            report.graphs.push(g);
        }
        report.counters.merge(&out.counters);
        report.per_rank_counters.push(out.counters);
        if !out.events.is_empty() {
            report.events = out.events;
        }
        if out.trace.is_some() {
            report.trace = out.trace;
        }
    }
    report
}
