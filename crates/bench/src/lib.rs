//! # ptdg-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §6 and
//! `EXPERIMENTS.md`):
//!
//! | binary     | reproduces |
//! |------------|------------|
//! | `fig1`     | Fig. 1 — intra-node LULESH: execution vs discovery vs TPL |
//! | `fig2`     | Fig. 2 — tasks/edges, grains, breakdown, inflation, misses, stalls |
//! | `table1`   | Table 1 — overlapped vs non-overlapped discovery |
//! | `table2`   | Table 2 — optimization crossing (edges, discovery, total) |
//! | `fig6`     | Fig. 6 — breakdown with all optimizations |
//! | `fig7`     | Fig. 7 — distributed LULESH: breakdown + communication + overlap |
//! | `fig8`     | Fig. 8 — Gantt charts, optimized vs non-optimized |
//! | `table3`   | Table 3 — weak and strong scaling |
//! | `fig9`     | Fig. 9 — HPCG TPL sweep |
//! | `cholesky` | §4.4 — persistent-graph speedup on tile Cholesky |
//! | `metg`     | §3.3 — minimum effective task granularity |
//! | `throttle` | §5 — task-throttling ablation |
//!
//! Run them with `cargo run --release -p ptdg-bench --bin <name>`.
//! Criterion micro-benchmarks live under `benches/`.
//!
//! All runs are scaled-down but *regime-preserving* versions of the
//! paper's experiments (the knobs are chosen so the same mechanism —
//! discovery-boundness, cache thrash, rendezvous stalls — governs each
//! result; see `EXPERIMENTS.md` for the mapping and measured numbers).

use ptdg_core::handle::HandleSpace;
use ptdg_core::obs::{chrome_trace, critical_path};
use ptdg_core::program::RankProgram;
use ptdg_simrt::{simulate_tasks, MachineConfig, RankReport, SimConfig};
use std::path::PathBuf;

// The hand-rolled JSON writer moved into the core observability module
// (the Chrome-trace exporter needs it without a bench dependency); the
// harnesses keep using it from here.
pub use ptdg_core::obs::json::{arr, obj, Json};

/// Whether `PTDG_QUICK=1` is set: harnesses shrink their problem sizes
/// for smoke-testing (results keep their shape but lose fidelity).
///
/// Every harness calls this before doing any work, so it doubles as the
/// early CLI check: a malformed or unwritable `--json` / `--trace` target
/// fails here rather than after a multi-minute run.
pub fn quick() -> bool {
    for (flag, path) in [("--json", json_path()), ("--trace", trace_path())] {
        if let Some(path) = path {
            if let Err(e) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                eprintln!("cannot write {flag} target {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    std::env::var("PTDG_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

// ---- structured output ---------------------------------------------------

/// The value of a `--<name> <path>` (or `--<name>=<path>`) argument.
fn path_arg(name: &str) -> Option<PathBuf> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            match args.next() {
                Some(p) => return Some(PathBuf::from(p)),
                None => {
                    eprintln!("{flag} requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if let Some(p) = a.strip_prefix(&prefix) {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// The `--json <path>` argument, if present on the command line.
pub fn json_path() -> Option<PathBuf> {
    path_arg("json")
}

/// The `--trace <path>` argument, if present on the command line: every
/// harness then re-runs one representative configuration with full
/// observability and writes a Chrome trace-event JSON there (load it at
/// <https://ui.perfetto.dev>).
pub fn trace_path() -> Option<PathBuf> {
    path_arg("trace")
}

/// If `--trace <path>` was passed, re-run `program` under `cfg` with full
/// observability turned on (rank-0 lifecycle events + Gantt spans +
/// captured graph), write a Chrome trace-event JSON to the path, and print
/// the critical-path report. A no-op without the flag, so harnesses call
/// it unconditionally with their representative configuration.
pub fn maybe_trace(
    bench: &str,
    machine: &MachineConfig,
    cfg: &SimConfig,
    space: &HandleSpace,
    program: &dyn RankProgram,
) {
    let Some(path) = trace_path() else { return };
    let cfg = SimConfig {
        record_trace_rank: Some(0),
        capture_graph: true,
        ..cfg.clone()
    };
    let report = simulate_tasks(machine, &cfg, space, program);
    let rank = report.rank(0);
    let trace = report.trace.as_ref().expect("record_trace_rank was set");
    let doc = chrome_trace(trace, &report.events, &rank.counters);
    if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "\n[{bench}] chrome trace written to {} (load at https://ui.perfetto.dev)",
        path.display()
    );
    if let Some(graph) = report.graphs.first() {
        let cp = critical_path(graph, &report.events, rank.span_ns, machine.n_cores);
        println!("{}", cp.render(5));
    }
}

/// If `--json <path>` was passed, wrap `data` in a standard envelope
/// (`bench` name + `quick` flag) and write it to the path. The on-stdout
/// human tables are unaffected.
pub fn emit_json(bench: &str, data: Json) {
    if let Some(path) = json_path() {
        let doc = obj([
            ("bench", bench.into()),
            ("quick", quick().into()),
            ("data", data),
        ]);
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("(json written to {})", path.display());
    }
}

/// The breakdown columns both stdout tables and JSON rows share.
pub fn breakdown_json(r: &RankReport, total_s: f64) -> Json {
    obj([
        ("work_per_core_s", r.avg_work_s().into()),
        ("idle_per_core_s", r.avg_idle_s().into()),
        ("overhead_per_core_s", r.avg_overhead_s().into()),
        ("discovery_s", r.discovery_s().into()),
        ("total_s", total_s.into()),
        ("tasks", r.disc.tasks.into()),
        ("edges_created", r.disc.edges_created.into()),
    ])
}

/// The standard intra-node sweep of tasks-per-loop values (the paper
/// sweeps 48..4608 at `-s 384`; scaled to our `-s 96` mesh).
pub const TPL_SWEEP: &[usize] = &[24, 48, 96, 144, 192, 256, 384, 512, 768, 1024];

/// The intra-node LULESH problem used by fig1/fig2/fig6/table1/table2
/// (`-s 96 -i 4`: ~85 MB of arrays per iteration against a 33 MB L3, the
/// same arrays-to-L3 ratio regime as the paper's `-s 384` filling 78% of
/// DRAM).
pub const INTRA_S: usize = 96;
/// Iterations of the intra-node problem.
pub const INTRA_ITERS: u64 = 4;

/// Print a horizontal rule sized for `width` columns.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format seconds with 4 significant decimals.
pub fn s(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a count in millions.
pub fn millions(v: u64) -> String {
    format!("{:.2}M", v as f64 / 1e6)
}

/// Summarize the per-rank breakdown columns used by several harnesses.
pub fn breakdown_row(label: &str, r: &RankReport, total_s: f64) -> String {
    format!(
        "{label:>8} {:>9} {:>9} {:>9} {:>10} {:>9}",
        s(r.avg_work_s()),
        s(r.avg_idle_s()),
        s(r.avg_overhead_s()),
        s(r.discovery_s()),
        s(total_s),
    )
}

/// Header matching [`breakdown_row`].
pub fn breakdown_header(key: &str) -> String {
    format!(
        "{key:>8} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "work/c", "idle/c", "ovh/c", "discovery", "total"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_escapes() {
        let doc = obj([
            ("name", "fig\"1\"\n".into()),
            ("total_s", 1.5f64.into()),
            ("tasks", 42u64.into()),
            ("ok", true.into()),
            (
                "rows",
                arr(vec![obj([("tpl", 24usize.into())]), Json::Null]),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig\"1\"\n","total_s":1.5,"tasks":42,"ok":true,"rows":[{"tpl":24},null]}"#
        );
    }

    #[test]
    fn json_integers_render_without_fraction() {
        assert_eq!(Json::from(3.0f64).render(), "3");
        assert_eq!(Json::from(3.25f64).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn breakdown_json_has_the_table_columns() {
        let r = RankReport {
            n_cores: 2,
            work_ns: 2_000_000_000,
            ..Default::default()
        };
        let row = breakdown_json(&r, 1.5).render();
        assert!(row.contains("\"work_per_core_s\":1"));
        assert!(row.contains("\"total_s\":1.5"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(s(1.23456), "1.2346");
        assert_eq!(millions(2_500_000), "2.50M");
        assert!(breakdown_header("TPL").contains("discovery"));
        let r = RankReport {
            n_cores: 2,
            work_ns: 2_000_000_000,
            ..Default::default()
        };
        let row = breakdown_row("x", &r, 1.5);
        assert!(row.contains("1.0000"));
        assert!(row.contains("1.5000"));
    }
}
