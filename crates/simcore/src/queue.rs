//! The deterministic event queue.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in virtual time.
///
/// The `seq` field breaks ties between events at the same instant:
/// insertion order wins, making the whole simulation deterministic.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence number (unique per queue).
    pub seq: u64,
    /// The application payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-ordered queue of events in virtual time.
///
/// ```
/// use ptdg_simcore::{EventQueue, SimTime};
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(SimTime::from_ns(20), "late");
/// q.push(SimTime::from_ns(10), "early");
/// q.push(SimTime::from_ns(10), "early-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event fires "now" instead (the queue never
    /// travels backwards).
    pub fn push(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {:?} < {:?}",
            at,
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedule `payload` after a relative delay from `now()`.
    pub fn push_after(&mut self, delay: SimTime, payload: E) {
        self.push(self.now + delay, payload);
    }

    /// Pop the earliest event and advance the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some(ev)
    }

    /// Peek at the earliest event's time without advancing the clock.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.push(SimTime::from_ns(10), ());
        q.push(SimTime::from_ns(25), ());
        let mut last = SimTime::ZERO;
        while let Some(e) = q.pop() {
            assert!(e.time >= last);
            assert_eq!(q.now(), e.time);
            last = e.time;
        }
    }

    #[test]
    fn push_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(100), "a");
        q.pop();
        q.push_after(SimTime::from_ns(5), "b");
        let e = q.pop().unwrap();
        assert_eq!(e.time.as_ns(), 105);
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.push(SimTime::from_ns(1), 0u32);
            while let Some(e) = q.pop() {
                out.push((e.time.as_ns(), e.payload));
                if e.payload < 20 {
                    q.push_after(SimTime::from_ns(3), e.payload + 1);
                    q.push_after(SimTime::from_ns(3), e.payload + 100);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
