//! Dependency handles of the task-based LULESH.
//!
//! One handle per array slice at the chosen TPL — or, with optimization
//! (a) (`fused_deps`), one handle per *logical group* of arrays that are
//! always accessed together (positions x/y/z, velocities, the EOS fields,
//! the force arrays). Fusing removes both the redundant edges and the cost
//! of probing for them, exactly as the paper's Fig. 3 describes.

use crate::config::{LuleshConfig, EXCHANGE_FIELDS};
use crate::mesh::{slices, Mesh, RankGrid};
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::workdesc::HandleSlice;

/// All handles of one rank's task program.
#[derive(Clone, Debug)]
pub struct LuleshHandles {
    /// Element slice ranges `[lo, hi)`.
    pub elem_slices: Vec<(usize, usize)>,
    /// Node slice ranges `[lo, hi)`.
    pub node_slices: Vec<(usize, usize)>,
    /// Per element slice: stress.
    pub sig: Vec<DataHandle>,
    /// Per element slice: kinematics outputs (v, delv).
    pub kin: Vec<Vec<DataHandle>>,
    /// Per element slice: EOS fields (e, p, q, ss).
    pub eos: Vec<Vec<DataHandle>>,
    /// Whole-array monotonic-Q gradients (delv_xi, delv_eta). The
    /// gradient loop writes them through the mesh's element indirection,
    /// so the port cannot express sliced dependences: every gradient task
    /// declares `inoutset` on the whole arrays and every Q-region task
    /// reads them — the m·n pattern of the paper's Fig. 4.
    pub qgrad: Vec<DataHandle>,
    /// Per element slice: Q limiter fields (qq, ql).
    pub qq: Vec<Vec<DataHandle>>,
    /// Per element slice: energy-pass temporaries (e_old, work).
    pub epass: Vec<Vec<DataHandle>>,
    /// Per node slice: positions (x, y, z).
    pub pos: Vec<Vec<DataHandle>>,
    /// Per node slice: velocities (xd, yd, zd).
    pub vel: Vec<Vec<DataHandle>>,
    /// Per node slice: accelerations (xdd, ydd, zdd).
    pub acc: Vec<Vec<DataHandle>>,
    /// Per node slice: forces (fx, fy, fz) — the `inoutset` target of the
    /// force loop. Each slice is written concurrently by the 2–3
    /// neighbouring force tasks whose element slabs touch it (the
    /// concurrent-write groups of the paper's Fig. 4), and read by the
    /// acceleration task and, at rank frontiers, the pack task.
    pub force: Vec<Vec<DataHandle>>,
    /// Whole-array nodal mass (read-only; used for footprints).
    pub mass: DataHandle,
    /// The dt scratch vector (one slot per courant task).
    pub scratch: DataHandle,
    /// The global dt.
    pub dt: DataHandle,
    /// Send buffers, one per direction 0..26.
    pub sbuf: Vec<DataHandle>,
    /// Receive buffers, one per direction 0..26.
    pub rbuf: Vec<DataHandle>,
    /// Fence handle for the `taskwait` emulation.
    pub fence: DataHandle,
    /// Globally-allocated temporary work arrays (element-sized ×6): the
    /// backported optimization the paper mentions in §2.1. They carry no
    /// dependences (each loop fully rewrites its slab) but they are real
    /// memory traffic, so they appear in footprints.
    pub tmp_elem: DataHandle,
    /// Node-sized temporary work arrays (×2).
    pub tmp_node: DataHandle,
    /// Bytes per node-slice group (for footprints): 8 per array.
    pub n_nodes: usize,
    /// Elements of the mesh.
    pub n_elems: usize,
}

impl LuleshHandles {
    /// Register every region of one rank in `space`.
    pub fn build(space: &mut HandleSpace, cfg: &LuleshConfig) -> LuleshHandles {
        let mesh = Mesh::new(cfg.s);
        let ne = mesh.n_elems();
        let nn = mesh.n_nodes();
        let elem_slices = slices(ne, cfg.tpl);
        let node_slices = slices(nn, cfg.tpl);
        let fused = cfg.fused_deps;

        let group = |space: &mut HandleSpace, name, len: usize, arrays: usize| -> Vec<DataHandle> {
            if fused {
                vec![space.region(name, (len * 8 * arrays) as u64)]
            } else {
                (0..arrays)
                    .map(|_| space.region(name, (len * 8) as u64))
                    .collect()
            }
        };

        let sig = elem_slices
            .iter()
            .map(|&(a, b)| space.region("sig", ((b - a) * 8) as u64))
            .collect();
        let kin = elem_slices
            .iter()
            .map(|&(a, b)| group(space, "kin", b - a, 2))
            .collect();
        let eos = elem_slices
            .iter()
            .map(|&(a, b)| group(space, "eos", b - a, 4))
            .collect();
        let qgrad = group(space, "qgrad", ne, 2);
        let qq = elem_slices
            .iter()
            .map(|&(a, b)| group(space, "qq", b - a, 2))
            .collect();
        let epass = elem_slices
            .iter()
            .map(|&(a, b)| group(space, "epass", b - a, 2))
            .collect();
        let pos = node_slices
            .iter()
            .map(|&(a, b)| group(space, "pos", b - a, 3))
            .collect();
        let vel = node_slices
            .iter()
            .map(|&(a, b)| group(space, "vel", b - a, 3))
            .collect();
        let acc = node_slices
            .iter()
            .map(|&(a, b)| group(space, "acc", b - a, 3))
            .collect();
        let force = node_slices
            .iter()
            .map(|&(a, b)| group(space, "force", b - a, 3))
            .collect();
        let mass = space.region("mass", (nn * 8) as u64);
        let scratch = space.region("scratch", (elem_slices.len() * 8) as u64);
        let dt = space.region("dt", 8);
        let dirs = RankGrid::directions();
        let sbuf = dirs
            .iter()
            .map(|&(dx, dy, dz)| {
                let axes = (dx != 0) as usize + (dy != 0) as usize + (dz != 0) as usize;
                space.region(
                    "sbuf",
                    RankGrid::message_bytes(cfg.s, axes, EXCHANGE_FIELDS),
                )
            })
            .collect();
        let rbuf = dirs
            .iter()
            .map(|&(dx, dy, dz)| {
                let axes = (dx != 0) as usize + (dy != 0) as usize + (dz != 0) as usize;
                space.region(
                    "rbuf",
                    RankGrid::message_bytes(cfg.s, axes, EXCHANGE_FIELDS),
                )
            })
            .collect();
        let fence = space.region("fence", 8);
        let tmp_elem = space.region("tmp_elem", (ne * 8 * 6) as u64);
        let tmp_node = space.region("tmp_node", (nn * 8 * 2) as u64);
        LuleshHandles {
            elem_slices,
            node_slices,
            sig,
            kin,
            eos,
            qgrad,
            qq,
            epass,
            pos,
            vel,
            acc,
            force,
            mass,
            scratch,
            dt,
            sbuf,
            rbuf,
            fence,
            tmp_elem,
            tmp_node,
            n_nodes: nn,
            n_elems: ne,
        }
    }

    /// Footprint of the whole-array qgrad fields restricted to element
    /// range `[a, b)`.
    pub fn qgrad_footprint(&self, a: usize, b: usize, fused: bool) -> Vec<HandleSlice> {
        let ne = self.n_elems as u64;
        let (a, b) = (a as u64, b as u64);
        if fused {
            (0..2)
                .map(|k| HandleSlice {
                    handle: self.qgrad[0],
                    offset: k * ne * 8 + a * 8,
                    len: (b - a) * 8,
                })
                .collect()
        } else {
            self.qgrad
                .iter()
                .map(|&h| HandleSlice {
                    handle: h,
                    offset: a * 8,
                    len: (b - a) * 8,
                })
                .collect()
        }
    }

    /// Footprint slabs of `arrays` temp arrays over item range `[a, b)`
    /// of a region holding `total` items.
    pub fn tmp_footprint(
        &self,
        handle: DataHandle,
        total: usize,
        arrays: usize,
        a: usize,
        b: usize,
    ) -> Vec<HandleSlice> {
        (0..arrays as u64)
            .map(|k| HandleSlice {
                handle,
                offset: k * total as u64 * 8 + a as u64 * 8,
                len: (b - a) as u64 * 8,
            })
            .collect()
    }

    /// Whole-group footprint of a handle group (lengths from `space`).
    pub fn group_footprint(space: &HandleSpace, handles: &[DataHandle]) -> Vec<HandleSlice> {
        handles
            .iter()
            .map(|&h| HandleSlice::whole(h, space.info(h).bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_vs_unfused_handle_counts() {
        let mut cfg = LuleshConfig::single(8, 1, 16);
        let mut sp_f = HandleSpace::new();
        let hf = LuleshHandles::build(&mut sp_f, &cfg);
        cfg.fused_deps = false;
        let mut sp_u = HandleSpace::new();
        let hu = LuleshHandles::build(&mut sp_u, &cfg);
        assert_eq!(hf.pos[0].len(), 1);
        assert_eq!(hu.pos[0].len(), 3);
        assert_eq!(hf.eos[0].len(), 1);
        assert_eq!(hu.eos[0].len(), 4);
        assert_eq!(hf.force[0].len(), 1);
        assert_eq!(hu.force[0].len(), 3);
        assert!(sp_u.len() > sp_f.len());
        // Total registered bytes are identical: fusion changes naming, not
        // data (block counts differ slightly from per-region rounding).
        assert!(sp_u.total_blocks() >= sp_f.total_blocks());
        assert!(sp_u.total_blocks() <= sp_f.total_blocks() + sp_u.len() as u64);
    }

    #[test]
    fn buffers_follow_message_classes() {
        let cfg = LuleshConfig::single(8, 1, 4);
        let mut sp = HandleSpace::new();
        let h = LuleshHandles::build(&mut sp, &cfg);
        let dirs = RankGrid::directions();
        for (i, &(dx, dy, dz)) in dirs.iter().enumerate() {
            let axes = (dx != 0) as usize + (dy != 0) as usize + (dz != 0) as usize;
            let expect = RankGrid::message_bytes(8, axes, EXCHANGE_FIELDS);
            assert_eq!(sp.info(h.sbuf[i]).bytes, expect);
            assert_eq!(sp.info(h.rbuf[i]).bytes, expect);
        }
    }
}
