//! Tile storage and the four dense kernels.
//!
//! Naive `O(b³)` loops — clarity over BLAS speed; correctness tests
//! factor small matrices and verify `L·Lᵀ = A` directly.

use ptdg_core::data::SharedVec;
use ptdg_simcore::SplitRng;

/// The lower-triangular tiles of an SPD matrix, plus a pristine copy used
/// to re-initialize between repeated factorizations.
#[derive(Clone)]
pub struct TileMatrix {
    /// Tiles per edge.
    pub nt: usize,
    /// Tile edge.
    pub b: usize,
    /// Working tiles, row-major within each `b×b` tile; indexed by
    /// [`TileMatrix::t`] for `i ≥ j`.
    pub tiles: Vec<SharedVec<f64>>,
    /// The original matrix content (for resets and verification).
    pub original: Vec<Vec<f64>>,
}

impl TileMatrix {
    /// Linear index of tile `(i, j)`, `i ≥ j`.
    pub fn t(&self, i: usize, j: usize) -> usize {
        debug_assert!(i >= j && i < self.nt);
        i * (i + 1) / 2 + j
    }

    /// Generate a random SPD matrix `A = M·Mᵀ + n·I` with a fixed seed.
    pub fn new_spd(nt: usize, b: usize, seed: u64) -> TileMatrix {
        let n = nt * b;
        let mut rng = SplitRng::new(seed);
        let m: Vec<f64> = (0..n * n).map(|_| 2.0 * rng.next_f64() - 1.0).collect();
        // A = M Mᵀ + n I (dense, then tiled)
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..n {
                    s += m[i * n + k] * m[j * n + k];
                }
                a[i * n + j] = s + if i == j { n as f64 } else { 0.0 };
            }
        }
        let mut tiles = Vec::new();
        let mut original = Vec::new();
        for ti in 0..nt {
            for tj in 0..=ti {
                let mut tile = vec![0.0f64; b * b];
                for r in 0..b {
                    for c in 0..b {
                        let (gi, gj) = (ti * b + r, tj * b + c);
                        if gi >= gj {
                            tile[r * b + c] = a[gi * n + gj];
                        }
                    }
                }
                original.push(tile.clone());
                tiles.push(SharedVec::from_vec(tile));
            }
        }
        TileMatrix {
            nt,
            b,
            tiles,
            original,
        }
    }

    /// Reset one tile to its original content.
    pub fn k_reset(&self, idx: usize) {
        let b2 = self.b * self.b;
        let dst = self.tiles[idx].slice_mut(0..b2);
        dst.copy_from_slice(&self.original[idx]);
    }

    /// `potrf`: in-place Cholesky of the diagonal tile `(k, k)`.
    pub fn k_potrf(&self, k: usize) {
        let b = self.b;
        let a = self.tiles[self.t(k, k)].slice_mut(0..b * b);
        for j in 0..b {
            let mut d = a[j * b + j];
            for p in 0..j {
                d -= a[j * b + p] * a[j * b + p];
            }
            assert!(d > 0.0, "matrix is not positive definite at ({k},{j})");
            let d = d.sqrt();
            a[j * b + j] = d;
            for i in (j + 1)..b {
                let mut s = a[i * b + j];
                for p in 0..j {
                    s -= a[i * b + p] * a[j * b + p];
                }
                a[i * b + j] = s / d;
            }
            for i in 0..j {
                a[i * b + j] = 0.0; // zero the upper triangle for clean L
            }
        }
    }

    /// `trsm`: `A(i,k) ← A(i,k) · L(k,k)⁻ᵀ`.
    pub fn k_trsm(&self, i: usize, k: usize) {
        let b = self.b;
        let lkk = self.tiles[self.t(k, k)].slice(0..b * b);
        let aik = self.tiles[self.t(i, k)].slice_mut(0..b * b);
        for r in 0..b {
            for c in 0..b {
                let mut s = aik[r * b + c];
                for p in 0..c {
                    s -= aik[r * b + p] * lkk[c * b + p];
                }
                aik[r * b + c] = s / lkk[c * b + c];
            }
        }
    }

    /// `syrk`/`gemm`: `A(i,j) ← A(i,j) − A(i,k)·A(j,k)ᵀ`.
    pub fn k_update(&self, i: usize, j: usize, k: usize) {
        let b = self.b;
        let aik = self.tiles[self.t(i, k)].slice(0..b * b);
        let ajk = self.tiles[self.t(j, k)].slice(0..b * b);
        let aij = self.tiles[self.t(i, j)].slice_mut(0..b * b);
        for r in 0..b {
            for c in 0..b {
                let mut s = 0.0;
                for p in 0..b {
                    s += aik[r * b + p] * ajk[c * b + p];
                }
                aij[r * b + c] -= s;
            }
        }
    }

    /// Sequential right-looking factorization (reference).
    pub fn factor_sequential(&self) {
        for k in 0..self.nt {
            self.k_potrf(k);
            for i in (k + 1)..self.nt {
                self.k_trsm(i, k);
            }
            for i in (k + 1)..self.nt {
                for j in (k + 1)..=i {
                    self.k_update(i, j, k);
                }
            }
        }
    }

    /// Maximum absolute error of `L·Lᵀ` against the original matrix
    /// (lower triangle).
    pub fn factorization_error(&self) -> f64 {
        let (nt, b) = (self.nt, self.b);
        let n = nt * b;
        // reconstruct dense L
        let mut l = vec![0.0f64; n * n];
        for ti in 0..nt {
            for tj in 0..=ti {
                let tile = self.tiles[self.t(ti, tj)].slice(0..b * b);
                for r in 0..b {
                    for c in 0..b {
                        let (gi, gj) = (ti * b + r, tj * b + c);
                        if gi >= gj {
                            l[gi * n + gj] = tile[r * b + c];
                        }
                    }
                }
            }
        }
        // compare L·Lᵀ with the original
        let mut max_err = 0.0f64;
        for ti in 0..nt {
            for tj in 0..=ti {
                let orig = &self.original[self.t(ti, tj)];
                for r in 0..b {
                    for c in 0..b {
                        let (gi, gj) = (ti * b + r, tj * b + c);
                        if gi < gj {
                            continue;
                        }
                        let mut s = 0.0;
                        for p in 0..=gj {
                            s += l[gi * n + p] * l[gj * n + p];
                        }
                        max_err = max_err.max((s - orig[r * b + c]).abs());
                    }
                }
            }
        }
        max_err
    }

    /// FNV digest of all tiles.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let b2 = self.b * self.b;
        for t in &self.tiles {
            for &v in t.slice(0..b2) {
                h ^= v.to_bits();
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_factorization_is_correct() {
        let m = TileMatrix::new_spd(4, 6, 42);
        m.factor_sequential();
        let err = m.factorization_error();
        assert!(err < 1e-9, "L·Lᵀ must equal A: max err {err}");
    }

    #[test]
    fn reset_restores_original() {
        let m = TileMatrix::new_spd(3, 4, 7);
        let before = m.digest();
        m.factor_sequential();
        assert_ne!(m.digest(), before);
        for idx in 0..m.tiles.len() {
            m.k_reset(idx);
        }
        assert_eq!(m.digest(), before);
    }

    #[test]
    fn repeated_factorizations_are_identical() {
        let m = TileMatrix::new_spd(3, 5, 9);
        m.factor_sequential();
        let d1 = m.digest();
        for idx in 0..m.tiles.len() {
            m.k_reset(idx);
        }
        m.factor_sequential();
        assert_eq!(m.digest(), d1);
    }

    #[test]
    fn generator_is_seeded() {
        let a = TileMatrix::new_spd(2, 4, 1).digest();
        let b = TileMatrix::new_spd(2, 4, 1).digest();
        let c = TileMatrix::new_spd(2, 4, 2).digest();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tile_indexing() {
        let m = TileMatrix::new_spd(4, 2, 0);
        assert_eq!(m.t(0, 0), 0);
        assert_eq!(m.t(1, 0), 1);
        assert_eq!(m.t(1, 1), 2);
        assert_eq!(m.t(3, 3), 9);
    }
}
