//! Persistent graph re-instancing — optimization (p), shared kernel side.
//!
//! A [`PersistentInstance`] materializes a captured [`GraphTemplate`] into
//! live [`RtNode`]s exactly once; every later iteration reuses the same
//! nodes and the same successor lists. `begin_iteration` re-arms each node
//! to `indegree + 1` — the extra unit is a *visibility token* — and
//! [`PersistentInstance::publish`] drops tokens in whatever batching the
//! back-end chooses: the thread executor publishes everything at once, the
//! simulator publishes [`REINSTANCE_BATCH`]-sized chunks so re-instance
//! cost is paid incrementally in virtual time.
//!
//! The re-arm is a **bulk sweep**: one dense pass zipping the node table
//! with the template's precomputed in-degree array, two plain stores per
//! node and no lock (instanced persistent nodes never receive streaming
//! edges, so the links lock guards nothing here — see
//! [`RtNode::rearm_persistent`]). This is the paper's "later iterations
//! cost a memcpy" story made literal.

use super::arena::{NodeArena, NodeRef};
use super::probe::{NullProbe, RtProbe};
use super::{ReadyTracker, RtNode};
use crate::graph::GraphTemplate;
use crate::task::TaskId;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Batch size back-ends use when paying re-instance cost incrementally.
pub const REINSTANCE_BATCH: usize = 16;

/// A captured graph, instanced once, re-armed per iteration.
pub struct PersistentInstance {
    template: Arc<GraphTemplate>,
    /// Keeps the arena chunks alive; nodes are referenced via `nodes`.
    _arena: NodeArena,
    nodes: Vec<NodeRef>,
    reuses: AtomicU64,
}

impl PersistentInstance {
    /// Instance every template node and wire the persistent successor
    /// lists. This is the only allocation the persistent path ever does.
    pub fn new(template: Arc<GraphTemplate>, keep_work: bool) -> Self {
        let mut arena = NodeArena::new();
        arena.reserve(template.n_nodes());
        let nodes: Vec<NodeRef> = template
            .ids()
            .map(|id| arena.alloc(RtNode::from_template(id, template.node(id), keep_work)))
            .collect();
        for id in template.ids() {
            let succs: Vec<NodeRef> = template
                .successors(id)
                .map(|s| nodes[s.index()].clone())
                .collect();
            nodes[id.index()].set_persistent_succs(succs);
        }
        PersistentInstance {
            template,
            _arena: arena,
            nodes,
            reuses: AtomicU64::new(0),
        }
    }

    /// The captured template.
    pub fn template(&self) -> &Arc<GraphTemplate> {
        &self.template
    }

    /// All instanced nodes.
    pub fn nodes(&self) -> &[NodeRef] {
        &self.nodes
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node for `id`.
    pub fn node(&self, id: TaskId) -> &NodeRef {
        &self.nodes[id.index()]
    }

    /// Re-arm every node for `iter` (counters to `indegree + 1`, the
    /// firstprivate rewrite) and account the whole graph as live. No node
    /// is visible to scheduling until its token is dropped by `publish`.
    pub fn begin_iteration(&self, iter: u64, tracker: &ReadyTracker) {
        self.begin_iteration_with(iter, tracker, &NullProbe, 0);
    }

    /// [`PersistentInstance::begin_iteration`] narrated through a probe:
    /// the re-instanced nodes count as *created* again — same lifecycle
    /// narration as streaming discovery, so both probe streams align.
    pub fn begin_iteration_with(
        &self,
        iter: u64,
        tracker: &ReadyTracker,
        probe: &dyn RtProbe,
        now_ns: u64,
    ) {
        // Bulk re-arm: dense sweep over (node, indegree) pairs. Safe to
        // skip the per-node lock — see RtNode::rearm_persistent.
        for (node, &indeg) in self.nodes.iter().zip(self.template.indegrees()) {
            node.rearm_persistent(indeg, iter);
        }
        tracker.created(self.nodes.len());
        // Relaxed: statistic, read between iterations.
        self.reuses.fetch_add(1, Ordering::Relaxed);
        if probe.lifecycle_enabled() {
            for node in &self.nodes {
                probe.task_created(node.id, now_ns);
            }
        }
    }

    /// Drop the visibility tokens of `range`, returning the nodes that
    /// became ready (roots of the template, once all their — zero —
    /// predecessors plus the token are gone).
    pub fn publish(&self, range: Range<usize>) -> Vec<NodeRef> {
        self.publish_with(range, &NullProbe, 0)
    }

    /// [`PersistentInstance::publish`] narrated through a probe: emits
    /// `task_ready` for each node whose token drop made it ready.
    pub fn publish_with(
        &self,
        range: Range<usize>,
        probe: &dyn RtProbe,
        now_ns: u64,
    ) -> Vec<NodeRef> {
        let mut ready = Vec::new();
        self.publish_into(range, probe, now_ns, &mut ready);
        ready
    }

    /// [`PersistentInstance::publish_with`] into a caller-recycled buffer
    /// — the steady-state replay path: the buffer reaches the template's
    /// root-count high-water mark once and never grows again.
    pub fn publish_into(
        &self,
        range: Range<usize>,
        probe: &dyn RtProbe,
        now_ns: u64,
        ready: &mut Vec<NodeRef>,
    ) {
        for node in &self.nodes[range] {
            if node.seal() {
                if probe.lifecycle_enabled() {
                    probe.task_ready(node.id, now_ns);
                }
                ready.push(node.clone());
            }
        }
    }

    /// Number of iterations re-instanced through this template.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DiscoveryEngine, TemplateRecorder};
    use crate::opts::OptConfig;
    use crate::task::TaskSpec;
    use crate::{AccessMode, HandleSpace};

    fn diamond_template() -> GraphTemplate {
        // w -> (a, b) -> r
        let mut space = HandleSpace::new();
        let x = space.region("x", 4096);
        let y = space.region("y", 4096);
        let mut engine = DiscoveryEngine::new(OptConfig::none());
        let mut rec = TemplateRecorder::new(false);
        for spec in [
            TaskSpec::new("w").depend(x, AccessMode::Out),
            TaskSpec::new("a")
                .depend(x, AccessMode::In)
                .depend(y, AccessMode::Out),
            TaskSpec::new("b").depend(x, AccessMode::InOutSet),
            TaskSpec::new("r")
                .depend(x, AccessMode::In)
                .depend(y, AccessMode::In),
        ] {
            engine.submit(&mut rec, &spec);
        }
        rec.finish()
    }

    #[test]
    fn reinstance_runs_two_iterations() {
        let tmpl = Arc::new(diamond_template());
        let n = tmpl.n_nodes();
        let pinst = PersistentInstance::new(Arc::clone(&tmpl), false);
        let tracker = ReadyTracker::new();

        for iter in 1..=2u64 {
            pinst.begin_iteration(iter, &tracker);
            assert_eq!(tracker.live(), n);
            let mut frontier = pinst.publish(0..n);
            assert!(!frontier.is_empty(), "template has roots");
            let mut executed = 0usize;
            while let Some(node) = frontier.pop() {
                executed += 1;
                tracker.completed();
                frontier.extend(node.complete().ready);
            }
            assert_eq!(executed, n, "all nodes run each iteration");
            assert!(tracker.quiescent());
        }
    }

    #[test]
    fn unpublished_nodes_stay_invisible() {
        let tmpl = Arc::new(diamond_template());
        let pinst = PersistentInstance::new(Arc::clone(&tmpl), false);
        let tracker = ReadyTracker::new();
        pinst.begin_iteration(1, &tracker);
        // Completing a published prefix cannot ready an unpublished node:
        // its visibility token is still held.
        let frontier = pinst.publish(0..1);
        assert_eq!(frontier.len(), 1, "node 0 is the template's first root");
        assert!(
            frontier[0].complete().ready.is_empty(),
            "released successors still hold their visibility token"
        );
        let rest = pinst.publish(1..pinst.len());
        assert!(!rest.is_empty(), "successors become ready on publish");
    }

    #[test]
    fn publish_into_recycles_and_matches_publish() {
        let tmpl = Arc::new(diamond_template());
        let n = tmpl.n_nodes();
        let pinst = PersistentInstance::new(Arc::clone(&tmpl), false);
        let tracker = ReadyTracker::new();
        let mut buf = Vec::new();
        for iter in 1..=3u64 {
            pinst.begin_iteration(iter, &tracker);
            buf.clear();
            let cap_before = buf.capacity();
            pinst.publish_into(0..n, &NullProbe, 0, &mut buf);
            if iter > 1 {
                assert_eq!(buf.capacity(), cap_before, "warm buffer never regrows");
            }
            let mut frontier: Vec<NodeRef> = buf.clone();
            while let Some(node) = frontier.pop() {
                tracker.completed();
                frontier.extend(node.complete().ready);
            }
            assert!(tracker.quiescent());
        }
        assert_eq!(pinst.reuses(), 3);
    }
}
