//! # ptdg-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §6 and
//! `EXPERIMENTS.md`):
//!
//! | binary     | reproduces |
//! |------------|------------|
//! | `fig1`     | Fig. 1 — intra-node LULESH: execution vs discovery vs TPL |
//! | `fig2`     | Fig. 2 — tasks/edges, grains, breakdown, inflation, misses, stalls |
//! | `table1`   | Table 1 — overlapped vs non-overlapped discovery |
//! | `table2`   | Table 2 — optimization crossing (edges, discovery, total) |
//! | `fig6`     | Fig. 6 — breakdown with all optimizations |
//! | `fig7`     | Fig. 7 — distributed LULESH: breakdown + communication + overlap |
//! | `fig8`     | Fig. 8 — Gantt charts, optimized vs non-optimized |
//! | `table3`   | Table 3 — weak and strong scaling |
//! | `fig9`     | Fig. 9 — HPCG TPL sweep |
//! | `cholesky` | §4.4 — persistent-graph speedup on tile Cholesky |
//! | `metg`     | §3.3 — minimum effective task granularity |
//! | `throttle` | §5 — task-throttling ablation |
//!
//! Run them with `cargo run --release -p ptdg-bench --bin <name>`.
//! Criterion micro-benchmarks live under `benches/`.
//!
//! All runs are scaled-down but *regime-preserving* versions of the
//! paper's experiments (the knobs are chosen so the same mechanism —
//! discovery-boundness, cache thrash, rendezvous stalls — governs each
//! result; see `EXPERIMENTS.md` for the mapping and measured numbers).

use ptdg_simrt::RankReport;

/// Whether `PTDG_QUICK=1` is set: harnesses shrink their problem sizes
/// for smoke-testing (results keep their shape but lose fidelity).
pub fn quick() -> bool {
    std::env::var("PTDG_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The standard intra-node sweep of tasks-per-loop values (the paper
/// sweeps 48..4608 at `-s 384`; scaled to our `-s 96` mesh).
pub const TPL_SWEEP: &[usize] = &[24, 48, 96, 144, 192, 256, 384, 512, 768, 1024];

/// The intra-node LULESH problem used by fig1/fig2/fig6/table1/table2
/// (`-s 96 -i 4`: ~85 MB of arrays per iteration against a 33 MB L3, the
/// same arrays-to-L3 ratio regime as the paper's `-s 384` filling 78% of
/// DRAM).
pub const INTRA_S: usize = 96;
/// Iterations of the intra-node problem.
pub const INTRA_ITERS: u64 = 4;

/// Print a horizontal rule sized for `width` columns.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format seconds with 4 significant decimals.
pub fn s(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a count in millions.
pub fn millions(v: u64) -> String {
    format!("{:.2}M", v as f64 / 1e6)
}

/// Summarize the per-rank breakdown columns used by several harnesses.
pub fn breakdown_row(label: &str, r: &RankReport, total_s: f64) -> String {
    format!(
        "{label:>8} {:>9} {:>9} {:>9} {:>10} {:>9}",
        s(r.avg_work_s()),
        s(r.avg_idle_s()),
        s(r.avg_overhead_s()),
        s(r.discovery_s()),
        s(total_s),
    )
}

/// Header matching [`breakdown_row`].
pub fn breakdown_header(key: &str) -> String {
    format!(
        "{key:>8} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "work/c", "idle/c", "ovh/c", "discovery", "total"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(s(1.23456), "1.2346");
        assert_eq!(millions(2_500_000), "2.50M");
        assert!(breakdown_header("TPL").contains("discovery"));
        let r = RankReport {
            n_cores: 2,
            work_ns: 2_000_000_000,
            ..Default::default()
        };
        let row = breakdown_row("x", &r, 1.5);
        assert!(row.contains("1.0000"));
        assert!(row.contains("1.5000"));
    }
}
