//! # Runtime observability
//!
//! Everything the kernel can tell you about a run, in four layers (see
//! `DESIGN.md` §4.2):
//!
//! 1. **Lifecycle event stream** ([`RtEvent`], [`EventKind`]) — every
//!    task's `Created → Ready → Scheduled → [CommPosted →] Completed`
//!    narration, emitted from the shared kernel (`crate::rt`) so both
//!    back-ends produce the identical per-task sequence; recorded by the
//!    lock-free [`EventRecorder`];
//! 2. **Kernel counters** ([`RtCounters`]) — discovery stats, queue-depth
//!    high-water marks, throttle/hold stalls, persistent reuse, comms;
//! 3. **Exporters** — [`chrome_trace`] renders a Perfetto-loadable Chrome
//!    trace-event JSON document with the hand-rolled [`Json`] writer;
//! 4. **Critical-path analysis** ([`critical_path`], [`CritPath`]) —
//!    post-mortem longest path over the executed DAG vs. makespan vs.
//!    ideal `T1/p`.
//!
//! Everything is zero-cost when disabled: the kernel's emit sites check
//! [`crate::rt::RtProbe::lifecycle_enabled`] (a `NullProbe` reports
//! `false` and back-ends then skip even the clock read).

mod chrome;
mod counters;
mod critpath;
mod event;
pub mod json;
mod recorder;

pub use chrome::chrome_trace;
pub use counters::RtCounters;
pub use critpath::{critical_path, CritPath};
pub use event::{sequences_by_task, EventKind, RtEvent};
pub use json::{arr, obj, Json};
pub use recorder::{EventRecorder, ObsReport, EVENT_RING_CAPACITY, SPAN_RING_CAPACITY};
