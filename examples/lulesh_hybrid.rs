//! LULESH three ways: sequential reference, real task execution, and a
//! simulated distributed MPI+tasks run with communication overlap.
//!
//! ```sh
//! cargo run --release --example lulesh_hybrid
//! ```

use ptdg::core::exec::{ExecConfig, Executor, SchedPolicy};
use ptdg::core::opts::OptConfig;
use ptdg::core::throttle::ThrottleConfig;
use ptdg::lulesh::sequential::run_sequential;
use ptdg::lulesh::{LuleshBsp, LuleshConfig, LuleshTask, RankGrid};
use ptdg::simrt::{simulate_bsp, simulate_tasks, MachineConfig, RankProgram, SimConfig};

fn main() {
    // --- 1. real execution: task version vs sequential reference -------
    let (s, iters, tpl) = (10usize, 10u64, 24usize);
    let reference = run_sequential(s, iters, tpl);

    let cfg = LuleshConfig::single(s, iters, tpl);
    let prog = LuleshTask::with_state(cfg.clone());
    let exec = Executor::new(ExecConfig {
        n_workers: 4,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::mpc_default(),
        profile: false,
        record_events: false,
    });
    let mut region = exec.persistent_region(OptConfig::all());
    for iter in 0..iters {
        region.run(iter, |sub| prog.build_iteration(0, iter, sub));
    }
    let st = prog.state.as_ref().unwrap();
    println!("LULESH -s {s} -i {iters} (tasks per loop = {tpl})");
    println!(
        "  task runtime vs sequential reference: bitwise {}",
        if st.digest() == reference.digest() {
            "IDENTICAL"
        } else {
            "DIFFERENT (bug!)"
        }
    );
    println!("  total energy: {:.6}", st.total_energy());
    let t = region.template().unwrap();
    println!(
        "  persistent graph: {} tasks, {} edges per iteration",
        t.n_tasks(),
        t.n_edges()
    );

    // --- 2. simulated intra-node study: tasks vs parallel-for ----------
    let m = MachineConfig::skylake_24();
    let s = 96;
    let bsp_prog = LuleshBsp::new(LuleshConfig::single(s, 2, 1));
    let bsp = simulate_bsp(&m, &SimConfig::default(), &bsp_prog.space, &bsp_prog);
    let task_prog = LuleshTask::new(LuleshConfig::single(s, 2, 128));
    let tasks = simulate_tasks(&m, &SimConfig::default(), &task_prog.space, &task_prog);
    println!("\nsimulated 24-core node, -s {s} -i 2:");
    println!(
        "  parallel-for: {:.3}s   ({} ML3 misses)",
        bsp.total_time_s(),
        bsp.rank(0).cache.l3_misses / 1_000_000
    );
    println!(
        "  tasks TPL=128: {:.3}s   ({} ML3 misses)  => {:.2}x",
        tasks.total_time_s(),
        tasks.rank(0).cache.l3_misses / 1_000_000,
        bsp.total_time_s() / tasks.total_time_s()
    );

    // --- 3. simulated distributed run: 8 ranks, overlap ----------------
    // The optimized task configuration of the paper: persistent TDG so
    // discovery does not bound the 16-core ranks.
    let cfg = LuleshConfig {
        grid: RankGrid::cube(8),
        ..LuleshConfig::single(96, 2, 128)
    };
    let sim = SimConfig {
        n_ranks: 8,
        persistent: true,
        ..Default::default()
    };
    let em = MachineConfig::epyc_16();
    let tp = LuleshTask::new(cfg.clone());
    let dist = simulate_tasks(&em, &sim, &tp.space, &tp);
    let bp = LuleshBsp::new(cfg);
    let dist_bsp = simulate_bsp(&em, &sim, &bp.space, &bp);
    println!("\nsimulated 8 ranks × 16 cores, -s 96/rank (persistent TDG):");
    println!(
        "  tasks: {:.3}s, overlap ratio {:.0}% (comm {:.1} ms/rank)",
        dist.total_time_s(),
        100.0 * dist.mean_over_ranks(|r| r.overlap_ratio()),
        1e3 * dist.mean_over_ranks(|r| r.comm_s())
    );
    println!(
        "  parallel-for: {:.3}s, overlap ratio 0% by construction",
        dist_bsp.total_time_s()
    );
}
