//! Persistent task sub-graph (optimization (p)) on the thread executor.

use super::executor::Executor;
use crate::builder::TaskSubmitter;
use crate::graph::{DiscoveryStats, GraphTemplate};
use crate::opts::OptConfig;
use crate::rt::{NodeRef, PersistentInstance};
use crate::task::TaskId;
use std::sync::Arc;

/// The `#pragma omp ptsg` region of the paper (Fig. 5).
///
/// The first call to [`PersistentRegion::run`] discovers the iteration's
/// graph normally — concurrently with its execution — while capturing every
/// node and edge (no pruning). Subsequent calls re-instance the captured
/// graph through the kernel's [`PersistentInstance`]: per node, reset the
/// dependence counter and rewrite the firstprivate payload. No task
/// descriptors are allocated, no `depend` clause is processed, no edge is
/// created. An implicit barrier ends every iteration (tasks of iteration
/// *n+1* cannot start before all of *n* completed — the behaviour visible
/// in the paper's Gantt chart, Fig. 8).
pub struct PersistentRegion<'e> {
    exec: &'e Executor,
    opts: OptConfig,
    instance: Option<PersistentInstance>,
    /// Recycled publish buffer: reaches the template's root count once
    /// and never regrows, so re-instanced iterations allocate nothing.
    ready_buf: Vec<NodeRef>,
    first_stats: DiscoveryStats,
    iterations_run: u64,
}

impl<'e> PersistentRegion<'e> {
    pub(crate) fn new(exec: &'e Executor, opts: OptConfig) -> Self {
        PersistentRegion {
            exec,
            opts,
            instance: None,
            ready_buf: Vec::new(),
            first_stats: DiscoveryStats::default(),
            iterations_run: 0,
        }
    }

    /// Run one iteration. `build` is only invoked on *capturing* calls
    /// (the first one, and the first after [`PersistentRegion::invalidate`]);
    /// otherwise the captured graph is re-instanced and `build` is not
    /// called at all (its task stream is required to be identical, which
    /// the caller promises by using a persistent region).
    ///
    /// Task bodies observe the current iteration via
    /// [`crate::task::TaskCtx::iter`].
    pub fn run<F: FnOnce(&mut dyn TaskSubmitter)>(&mut self, iter: u64, build: F) {
        match &self.instance {
            None => {
                let mut session = self.exec.session_capturing(self.opts);
                session.set_iter(iter);
                build(&mut session);
                let (template, stats) = session.finish_capture();
                self.first_stats = stats;
                self.instance = Some(PersistentInstance::new(Arc::new(template), false));
            }
            Some(_) => self.run_instanced(iter),
        }
        self.iterations_run += 1;
    }

    /// Drop the captured graph so the next [`PersistentRegion::run`]
    /// rediscovers and recaptures it.
    ///
    /// This is the hook for adaptive applications (the paper's §3.2
    /// "Applicability"): when the mesh changes — e.g. an AMR step — the
    /// dependency scheme changes with it, and the capture cost is paid
    /// again, amortized over the iterations until the next adaptation.
    pub fn invalidate(&mut self) {
        self.instance = None;
    }

    /// Re-instance and execute one iteration from the template.
    fn run_instanced(&mut self, iter: u64) {
        let Self {
            exec,
            instance,
            ready_buf,
            ..
        } = self;
        let pinst = instance.as_ref().unwrap();
        let pool = Arc::clone(exec.pool());
        // The producer's whole per-iteration discovery work: counter reset
        // plus the firstprivate "memcpy" (the iteration payload). The
        // thread back-end publishes the whole graph at once; only the
        // template's roots come back ready.
        let now = pool.now_ns();
        pinst.begin_iteration_with(iter, &pool.tracker, &*pool.recorder, now);
        pinst.publish_into(0..pinst.len(), &*pool.recorder, now, ready_buf);
        for node in ready_buf.drain(..) {
            pool.make_ready(node, None);
        }
        // Implicit end-of-iteration barrier (help, then park — never
        // sleep-poll).
        pool.barrier();
    }

    /// The captured template, if the first iteration has run.
    pub fn template(&self) -> Option<&Arc<GraphTemplate>> {
        self.instance.as_ref().map(|i| i.template())
    }

    /// Discovery statistics of the first (capturing) iteration.
    pub fn first_iteration_stats(&self) -> DiscoveryStats {
        self.first_stats
    }

    /// Iterations executed so far.
    pub fn iterations_run(&self) -> u64 {
        self.iterations_run
    }

    /// Iterations served by re-instancing the captured template (paid no
    /// discovery). The capturing iterations are `iterations_run - reuses`.
    pub fn reuses(&self) -> u64 {
        self.instance.as_ref().map_or(0, |i| i.reuses())
    }

    /// Ids of all captured tasks (for inspection).
    pub fn task_ids(&self) -> Vec<TaskId> {
        self.instance
            .as_ref()
            .map(|i| i.template().ids().collect())
            .unwrap_or_default()
    }
}
