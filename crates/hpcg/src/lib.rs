//! # ptdg-hpcg — the High Performance Conjugate Gradient benchmark
//!
//! A from-scratch conjugate-gradient solver over the standard HPCG
//! operator: the 27-point stencil on an `n³` grid (diagonal 26,
//! off-diagonals −1 — symmetric positive definite), with the paper's two
//! parallelizations (§4.3):
//!
//! * [`HpcgTask`] — the dependent-task version: vector-wise loops sliced
//!   into TPL blocks, SpMV row-blocks depending on the neighbouring
//!   vector blocks, partial dot-products concurrently writing a scratch
//!   vector (`inoutset`) reduced by a single task carrying the MPI
//!   `Iallreduce`, and 6-face halo exchanges of the search direction;
//! * [`HpcgBsp`] — the reference `parallel for` version with barriers and
//!   blocking communication.
//!
//! Like the LULESH crate, the task program runs with real arrays on the
//! thread executor (single rank, bitwise equal to the sequential
//! reference) or as a cost model on the virtual executor (any rank
//! count).

pub mod bsp_program;
pub mod config;
pub mod handles;
pub mod state;
pub mod task_program;

pub use bsp_program::HpcgBsp;
pub use config::HpcgConfig;
pub use handles::HpcgHandles;
pub use state::HpcgState;
pub use task_program::HpcgTask;
