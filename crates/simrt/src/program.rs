//! Program abstractions consumed by the virtual executors.
//!
//! [`RankProgram`] now lives in `ptdg-core` (it is the input type of both
//! back-ends — see `ptdg_core::program`); it is re-exported here so existing
//! imports keep working. The fork-join reference model stays local.

use ptdg_core::workdesc::HandleSlice;

pub use ptdg_core::program::{Rank, RankProgram};

/// One phase of a fork-join (`parallel for`) program.
#[derive(Clone, Debug)]
pub enum BspPhase {
    /// A mesh-wide parallel loop, statically chunked over cores.
    Loop {
        /// Loop name (profiling).
        name: &'static str,
        /// Total flops of the loop.
        flops: f64,
        /// Total footprint; each core touches its 1/n_cores contiguous
        /// chunk of every slice (static scheduling).
        footprint: Vec<HandleSlice>,
    },
    /// Post all non-blocking P2P requests, then wait for all of them
    /// (the paper's "communications outside OpenMP constructs").
    Exchange {
        /// `(peer, bytes, tag)` per send.
        sends: Vec<(Rank, u64, u32)>,
        /// `(peer, bytes, tag)` per receive.
        recvs: Vec<(Rank, u64, u32)>,
    },
    /// A blocking all-reduce.
    Allreduce {
        /// Payload bytes.
        bytes: u64,
    },
}

/// A fork-join application: the reference `parallel for` versions.
pub trait BspProgram {
    /// Iterations to run.
    fn n_iterations(&self) -> u64;
    /// The phases of `iter` on `rank`, executed in order with an implicit
    /// barrier after each.
    fn phases(&self, rank: Rank, iter: u64) -> Vec<BspPhase>;
}
