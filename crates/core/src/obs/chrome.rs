//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! One process, one track per worker, a dedicated producer/discovery
//! track, plus counter tracks for the live and ready task populations
//! derived from the lifecycle event stream. Detached communication
//! requests are exported as async `"b"`/`"e"` pairs keyed by request id:
//! the begin rides the posting core's track at CommPosted, the end lands
//! at CommCompleted — visibly *after* the core moved on to other work,
//! which is the detach contract in picture form. `"X"` complete events
//! carry microsecond `ts`/`dur` (the format's convention); the kernel
//! counters ride along in `otherData` so a trace file is a
//! self-contained record of the run.

use super::counters::RtCounters;
use super::event::{EventKind, RtEvent};
use super::json::{arr, obj, Json};
use crate::profile::{SpanKind, Trace};

/// Cap on emitted samples per counter track (Perfetto chokes far later,
/// but traces should stay mailable).
const MAX_COUNTER_SAMPLES: usize = 4_000;

fn us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1_000.0)
}

fn meta_thread(tid: usize, name: &str) -> Json {
    obj([
        ("ph", "M".into()),
        ("pid", 0usize.into()),
        ("tid", tid.into()),
        ("name", "thread_name".into()),
        ("args", obj([("name", name.into())])),
    ])
}

fn counter_sample(name: &str, t_ns: u64, value: i64) -> Json {
    obj([
        ("ph", "C".into()),
        ("pid", 0usize.into()),
        ("name", name.into()),
        ("ts", us(t_ns)),
        ("args", obj([("tasks", Json::Num(value as f64))])),
    ])
}

/// Running population samples for one `(+1 kind, -1 kind)` pair.
fn counter_track(events: &[RtEvent], name: &str, up: EventKind, down: EventKind) -> Vec<Json> {
    let mut samples: Vec<(u64, i64)> = Vec::new();
    let mut value = 0i64;
    for e in events {
        if e.kind == up {
            value += 1;
        } else if e.kind == down {
            value -= 1;
        } else {
            continue;
        }
        match samples.last_mut() {
            Some(last) if last.0 == e.t_ns => last.1 = value,
            _ => samples.push((e.t_ns, value)),
        }
    }
    if samples.is_empty() {
        samples.push((0, 0)); // the track must exist even without events
    }
    let stride = samples.len().div_ceil(MAX_COUNTER_SAMPLES);
    let last = samples.len() - 1;
    samples
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i == last)
        .map(|(_, (t, v))| counter_sample(name, *t, *v))
        .collect()
}

/// Render a trace + event stream + counters as a Chrome trace-event JSON
/// document. `trace.n_workers` sizes the worker tracks; discovery spans
/// are remapped onto the dedicated producer/discovery track regardless of
/// the lane that recorded them (the simulator's producer is core 0, the
/// thread executor's is lane `n_workers` — the exported view is uniform).
pub fn chrome_trace(trace: &Trace, events: &[RtEvent], counters: &RtCounters) -> Json {
    let disc_tid = trace.n_workers;
    let mut ev: Vec<Json> = Vec::with_capacity(trace.spans.len() + events.len() / 8 + 8);
    ev.push(obj([
        ("ph", "M".into()),
        ("pid", 0usize.into()),
        ("name", "process_name".into()),
        ("args", obj([("name", "ptdg".into())])),
    ]));
    for w in 0..trace.n_workers {
        ev.push(meta_thread(w, &format!("worker {w}")));
    }
    ev.push(meta_thread(disc_tid, "producer/discovery"));

    for s in &trace.spans {
        let (tid, name, cat) = match s.kind {
            SpanKind::Discovery => (
                disc_tid,
                if s.name.is_empty() {
                    "<discovery>"
                } else {
                    s.name
                },
                "discovery",
            ),
            SpanKind::Work => (
                s.worker as usize,
                if s.name.is_empty() { "(work)" } else { s.name },
                "work",
            ),
            SpanKind::Overhead => (s.worker as usize, "(sched)", "overhead"),
            SpanKind::Idle => (s.worker as usize, "(idle)", "idle"),
        };
        ev.push(obj([
            ("ph", "X".into()),
            ("pid", 0usize.into()),
            ("tid", tid.into()),
            ("ts", us(s.start_ns)),
            ("dur", us(s.dur_ns())),
            ("name", name.into()),
            ("cat", cat.into()),
            ("args", obj([("iter", s.iter.into())])),
        ]));
    }

    for e in events {
        let ph = match e.kind {
            EventKind::CommPosted => "b",
            EventKind::CommCompleted => "e",
            _ => continue,
        };
        ev.push(obj([
            ("ph", ph.into()),
            ("pid", 0usize.into()),
            ("tid", usize::min(e.core as usize, disc_tid).into()),
            ("ts", us(e.t_ns)),
            ("name", "comm request".into()),
            ("cat", "comm".into()),
            ("id", (e.aux as usize).into()),
            ("args", obj([("task", (e.id.0 as usize).into())])),
        ]));
    }

    ev.extend(counter_track(
        events,
        "live_tasks",
        EventKind::Created,
        EventKind::Completed,
    ));
    ev.extend(counter_track(
        events,
        "ready_tasks",
        EventKind::Ready,
        EventKind::Scheduled,
    ));

    let other: Vec<(String, Json)> = counters
        .pairs()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.into()))
        .collect();
    obj([
        ("displayTimeUnit", "ms".into()),
        ("traceEvents", arr(ev)),
        ("otherData", Json::Obj(other)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Span;
    use crate::task::TaskId;

    fn span(worker: u32, s: u64, e: u64, kind: SpanKind) -> Span {
        Span {
            worker,
            start_ns: s,
            end_ns: e,
            kind,
            name: "t",
            iter: 0,
        }
    }

    #[test]
    fn export_has_worker_discovery_and_counter_tracks() {
        let trace = Trace {
            spans: vec![
                span(0, 0, 100, SpanKind::Work),
                span(1, 0, 50, SpanKind::Idle),
                span(0, 100, 160, SpanKind::Discovery),
            ],
            n_workers: 2,
            discovery_ns: 60,
            span_ns: 100,
        };
        let ev = |t_ns, core, kind| RtEvent {
            t_ns,
            aux: u64::MAX,
            id: TaskId(0),
            core,
            kind,
        };
        let events = vec![
            ev(0, u32::MAX, EventKind::Created),
            ev(10, u32::MAX, EventKind::Ready),
            ev(20, 0, EventKind::Scheduled),
            ev(100, 0, EventKind::Completed),
        ];
        let doc = chrome_trace(&trace, &events, &RtCounters::default()).render();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("worker 0"));
        assert!(doc.contains("worker 1"));
        assert!(doc.contains("producer/discovery"));
        assert!(doc.contains("live_tasks"));
        assert!(doc.contains("ready_tasks"));
        assert!(doc.contains("\"otherData\""));
        // discovery span rides the dedicated track (tid == n_workers)
        assert!(doc.contains("\"cat\":\"discovery\""));
    }

    #[test]
    fn counter_tracks_exist_even_without_events() {
        let doc = chrome_trace(&Trace::default(), &[], &RtCounters::default()).render();
        assert!(doc.contains("live_tasks"));
        assert!(doc.contains("ready_tasks"));
    }

    #[test]
    fn counter_samples_are_decimated() {
        let events: Vec<RtEvent> = (0..100_000u32)
            .map(|i| RtEvent {
                t_ns: i as u64,
                aux: u64::MAX,
                id: TaskId(i),
                core: u32::MAX,
                kind: EventKind::Created,
            })
            .collect();
        let doc = chrome_trace(&Trace::default(), &events, &RtCounters::default());
        let rendered = doc.render();
        let n_samples = rendered.matches("live_tasks").count();
        assert!(n_samples <= MAX_COUNTER_SAMPLES + 1, "{n_samples} samples");
    }
}
