//! Fig. 6 — intra-node LULESH with *all* optimizations (a)+(b)+(c)+(p):
//! the breakdown sweep of Fig. 2(c) after the discovery wall moved right.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin fig6
//! ```

use ptdg_bench::{
    arr, emit_json, maybe_trace, obj, quick, rule, s, INTRA_ITERS, INTRA_S, TPL_SWEEP,
};
use ptdg_core::opts::OptConfig;
use ptdg_lulesh::{LuleshBsp, LuleshConfig, LuleshTask};
use ptdg_simrt::{simulate_bsp, simulate_tasks, MachineConfig, SimConfig};

fn main() {
    let machine = MachineConfig::skylake_24();
    let (mesh_s, iters) = if quick() {
        (48, 2)
    } else {
        (INTRA_S, INTRA_ITERS)
    };

    let bsp_prog = LuleshBsp::new(LuleshConfig::single(mesh_s, iters, 1));
    let bsp = simulate_bsp(&machine, &SimConfig::default(), &bsp_prog.space, &bsp_prog);
    println!("Fig. 6 — LULESH -s {mesh_s} -i {iters}, all optimizations (a)+(b)+(c)+(p)");
    println!("parallel-for reference: {} s\n", s(bsp.total_time_s()));

    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10}",
        "TPL", "work/c", "idle/c", "ovh/c", "discovery", "total", "L3CM(M)"
    );
    rule(68);
    let mut best = (0usize, f64::INFINITY);
    let mut best_nonopt = f64::INFINITY;
    let mut rows = Vec::new();
    for &tpl in TPL_SWEEP {
        // optimized: fused deps + (b)+(c) + persistent
        let cfg = LuleshConfig::single(mesh_s, iters, tpl); // fused_deps = true
        let prog = LuleshTask::new(cfg);
        let sim = SimConfig {
            opts: OptConfig::all(),
            persistent: true,
            ..Default::default()
        };
        let r = simulate_tasks(&machine, &sim, &prog.space, &prog);
        let rank = r.rank(0);
        let total = r.total_time_s();
        println!(
            "{tpl:>6} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10.2}",
            s(rank.avg_work_s()),
            s(rank.avg_idle_s()),
            s(rank.avg_overhead_s()),
            s(rank.discovery_s()),
            s(total),
            rank.cache.l3_misses as f64 / 1e6
        );
        rows.push(obj([
            ("tpl", tpl.into()),
            ("breakdown", ptdg_bench::breakdown_json(rank, total)),
            ("l3_misses", rank.cache.l3_misses.into()),
        ]));
        if total < best.1 {
            best = (tpl, total);
        }
        // non-optimized comparison point (LLVM-like, unfused, streaming)
        let cfg = LuleshConfig {
            fused_deps: false,
            ..LuleshConfig::single(mesh_s, iters, tpl)
        };
        let prog = LuleshTask::new(cfg);
        let sim = SimConfig {
            opts: OptConfig::redirect_only(),
            ..Default::default()
        };
        let r = simulate_tasks(&machine, &sim, &prog.space, &prog);
        best_nonopt = best_nonopt.min(r.total_time_s());
    }
    rule(68);
    println!(
        "best optimized TPL = {} at {} s: {:.2}x vs parallel-for, {:.2}x vs\n\
         the best non-optimized task version ({} s)",
        best.0,
        s(best.1),
        bsp.total_time_s() / best.1,
        best_nonopt / best.1,
        s(best_nonopt),
    );
    println!("(paper: 56 s vs 86 s parallel-for = 1.56x, and 1.27x vs 70 s non-optimized)");
    emit_json(
        "fig6",
        obj([
            ("mesh_s", mesh_s.into()),
            ("iterations", iters.into()),
            ("parallel_for_s", bsp.total_time_s().into()),
            ("best_tpl", best.0.into()),
            ("best_total_s", best.1.into()),
            ("best_nonopt_total_s", best_nonopt.into()),
            ("rows", arr(rows)),
        ]),
    );
    let prog = LuleshTask::new(LuleshConfig::single(mesh_s, iters, best.0));
    let sim = SimConfig {
        opts: OptConfig::all(),
        persistent: true,
        ..Default::default()
    };
    maybe_trace("fig6", &machine, &sim, &prog.space, &prog);
}
