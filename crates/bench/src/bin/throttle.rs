//! §5 ablation — task throttling: a tight ready-task bound (GCC/LLVM
//! style) limits the scheduler's vision of the TDG and defeats the
//! depth-first heuristic; the total-task bound (MPC style) does not.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin throttle
//! ```

use ptdg_bench::{arr, emit_json, maybe_trace, obj, quick, rule, s};
use ptdg_core::opts::OptConfig;
use ptdg_core::throttle::ThrottleConfig;
use ptdg_lulesh::{LuleshConfig, LuleshTask};
use ptdg_simrt::{simulate_tasks, MachineConfig, SimConfig};

fn main() {
    let machine = MachineConfig::skylake_24();
    let (mesh_s, iters, tpl) = if quick() { (48, 2, 96) } else { (96, 4, 192) };

    println!("Throttling ablation — LULESH -s {mesh_s} -i {iters}, TPL={tpl}, all opts");
    println!(
        "{:>24} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "throttle", "work/c", "idle/c", "ovh/c", "total(s)", "L3CM(M)"
    );
    rule(76);
    let configs: [(&str, ThrottleConfig); 5] = [
        ("unbounded", ThrottleConfig::unbounded()),
        ("ready <= 32", ThrottleConfig::ready_bound(32)),
        ("ready <= 128", ThrottleConfig::ready_bound(128)),
        ("ready <= 512", ThrottleConfig::ready_bound(512)),
        ("total <= 10M (MPC)", ThrottleConfig::mpc_default()),
    ];
    let mut rows = Vec::new();
    for (label, throttle) in configs {
        let cfg = LuleshConfig::single(mesh_s, iters, tpl);
        let prog = LuleshTask::new(cfg);
        let sim = SimConfig {
            opts: OptConfig::all(),
            persistent: true,
            throttle,
            ..Default::default()
        };
        let r = simulate_tasks(&machine, &sim, &prog.space, &prog);
        let rank = r.rank(0);
        println!(
            "{label:>24} {:>9} {:>9} {:>9} {:>10} {:>10.2}",
            s(rank.avg_work_s()),
            s(rank.avg_idle_s()),
            s(rank.avg_overhead_s()),
            s(r.total_time_s()),
            rank.cache.l3_misses as f64 / 1e6
        );
        rows.push(obj([
            ("throttle", label.into()),
            ("work_per_core_s", rank.avg_work_s().into()),
            ("idle_per_core_s", rank.avg_idle_s().into()),
            ("overhead_per_core_s", rank.avg_overhead_s().into()),
            ("total_s", r.total_time_s().into()),
            ("l3_misses", rank.cache.l3_misses.into()),
        ]));
    }
    rule(76);
    println!(
        "(paper §5: GCC/LLVM-style ready-task throttling would deny the\n\
         scheduler the in-depth TDG vision that fine grains need — ~100,000\n\
         live tasks per LULESH iteration at the best configuration — while\n\
         MPC-OMP's total-task bound preserves it)"
    );
    emit_json(
        "throttle",
        obj([
            ("mesh_s", mesh_s.into()),
            ("iterations", iters.into()),
            ("tpl", tpl.into()),
            ("rows", arr(rows)),
        ]),
    );
    // Trace the tight ready-bound run: throttle_stalls shows up in the
    // counter metadata and the producer track goes quiet at the bound.
    let prog = LuleshTask::new(LuleshConfig::single(mesh_s, iters, tpl));
    let sim = SimConfig {
        opts: OptConfig::all(),
        persistent: true,
        throttle: ThrottleConfig::ready_bound(32),
        ..Default::default()
    };
    maybe_trace("throttle", &machine, &sim, &prog.space, &prog);
}
