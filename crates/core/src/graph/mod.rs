//! Task-dependency-graph discovery.
//!
//! Discovery is the sequential, producer-thread process that turns a stream
//! of submitted [`crate::TaskSpec`]s into graph nodes and precedence edges — the
//! activity whose *speed* the paper identifies as the limiting factor of
//! task-based applications. The logic is factored as:
//!
//! * [`DiscoveryEngine`] — the per-handle dependence state machine with the
//!   edge optimizations (b) and (c). It is back-end agnostic and writes to a
//!   [`GraphSink`].
//! * [`GraphSink`] — implemented by the live thread executor
//!   ([`crate::exec`]), by the virtual-time executor in `ptdg-simrt`, and by
//!   [`TemplateRecorder`] which captures a persistent [`GraphTemplate`].
//!
//! ```
//! use ptdg_core::graph::{DiscoveryEngine, TemplateRecorder};
//! use ptdg_core::{AccessMode, HandleSpace, OptConfig, TaskSpec};
//!
//! let mut space = HandleSpace::new();
//! let x = space.region("x", 4096);
//!
//! let mut engine = DiscoveryEngine::new(OptConfig::all());
//! let mut recorder = TemplateRecorder::new(false);
//! engine.submit(&mut recorder, &TaskSpec::new("w").depend(x, AccessMode::Out));
//! engine.submit(&mut recorder, &TaskSpec::new("r1").depend(x, AccessMode::In));
//! engine.submit(&mut recorder, &TaskSpec::new("r2").depend(x, AccessMode::In));
//!
//! let graph = recorder.finish();
//! assert_eq!(graph.n_tasks(), 3);
//! assert_eq!(graph.n_edges(), 2); // w -> r1, w -> r2
//! assert!(graph.is_acyclic());
//! ```

mod discovery;
mod template;

pub use discovery::DiscoveryEngine;
pub use template::{GraphTemplate, TemplateNode, TemplateRecorder};

use crate::task::{SpecView, TaskId};

/// Where discovery writes nodes and edges.
///
/// `add_edge` returns `false` when the edge was *pruned*: the predecessor
/// has already been consumed, so no precedence constraint is needed. This
/// matches production OpenMP runtimes, where a slow discovery racing with a
/// fast execution produces fewer edges (paper §2.3.3) — and where persistent
/// capture must disable pruning to keep the graph reusable.
pub trait GraphSink {
    /// Materialize a task node from a borrowed view (the allocation-free
    /// submission currency; sinks that must retain the data clone what
    /// they need). Edges follow, then [`GraphSink::seal`].
    fn add_task(&mut self, spec: &SpecView<'_>) -> TaskId;

    /// Materialize an empty redirect node (optimization (c)).
    fn add_redirect(&mut self) -> TaskId;

    /// Add a precedence edge; returns `false` if pruned.
    fn add_edge(&mut self, pred: TaskId, succ: TaskId) -> bool;

    /// All edges of `task` have been added; it may become ready.
    fn seal(&mut self, task: TaskId);

    /// Whether task bodies are wanted (`false` lets cost-model-only
    /// back-ends skip closure allocation).
    fn wants_bodies(&self) -> bool {
        true
    }
}

/// Counters accumulated by a [`DiscoveryEngine`].
///
/// These are the quantities the paper reports in Fig. 2(a) and Table 2, and
/// the inputs to the simulated discovery cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Application tasks submitted.
    pub tasks: u64,
    /// Redirect nodes inserted by optimization (c).
    pub redirect_nodes: u64,
    /// `depend` items processed.
    pub depend_items: u64,
    /// Edges materialized in the sink.
    pub edges_created: u64,
    /// Edges skipped because the predecessor was already consumed.
    pub edges_pruned: u64,
    /// Duplicate-edge probes performed (optimization (b) bookkeeping).
    pub dup_probes: u64,
    /// Duplicate edges elided by optimization (b).
    pub dup_skipped: u64,
}

impl DiscoveryStats {
    /// Edges that would exist with no pruning and no dedup: a structural
    /// upper bound used in tests.
    pub fn edges_attempted(&self) -> u64 {
        self.edges_created + self.edges_pruned + self.dup_skipped
    }

    /// Total nodes including redirects.
    pub fn nodes(&self) -> u64 {
        self.tasks + self.redirect_nodes
    }

    /// Merge counters (e.g. across iterations).
    pub fn merge(&mut self, o: &DiscoveryStats) {
        self.tasks += o.tasks;
        self.redirect_nodes += o.redirect_nodes;
        self.depend_items += o.depend_items;
        self.edges_created += o.edges_created;
        self.edges_pruned += o.edges_pruned;
        self.dup_probes += o.dup_probes;
        self.dup_skipped += o.dup_skipped;
    }
}
