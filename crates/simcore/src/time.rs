//! Fixed-point virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, counted in nanoseconds from simulation start.
///
/// `SimTime` is also used to express durations (a point relative to zero);
/// the arithmetic operators below are saturating-free and will panic on
/// overflow in debug builds, which a simulation bug would deserve.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds.
    ///
    /// Negative inputs clamp to zero: durations in the cost model are
    /// computed from physical quantities and must not be negative.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimTime {
        if s <= 0.0 {
            SimTime(0)
        } else {
            SimTime((s * 1e9).round() as u64)
        }
    }

    /// Nanoseconds since the origin.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in seconds (for reporting only; never used for ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction, useful when computing non-negative spans.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Multiply a duration by an integer factor.
    #[inline]
    pub fn scaled(self, k: u64) -> SimTime {
        SimTime(self.0 * k)
    }

    /// Multiply a duration by a float factor (rounds to nearest ns).
    #[inline]
    pub fn scaled_f64(self, k: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_ns(), 1_500_000_000);
        assert!((SimTime::from_ns(250).as_secs_f64() - 250e-9).abs() < 1e-15);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(40);
        assert_eq!((a + b).as_ns(), 140);
        assert_eq!((a - b).as_ns(), 60);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(b.scaled(3).as_ns(), 120);
    }

    #[test]
    fn ordering_is_by_nanoseconds() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimTime::MAX > SimTime::from_ms(1));
    }
}
