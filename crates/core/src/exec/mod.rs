//! The shared-memory work-stealing executor.
//!
//! This is the "runtime" half of the paper's study, on real threads:
//!
//! * one **producer** (the thread owning a [`Session`]) discovers the TDG
//!   sequentially through [`crate::graph::DiscoveryEngine`], concurrently
//!   with execution — exactly the single-producer discovery whose speed the
//!   paper measures;
//! * `n_workers` **workers** execute ready tasks. The default scheduling
//!   policy is the paper's depth-first heuristic: a completing worker
//!   pushes newly-ready successors onto its own LIFO deque, so the tasks
//!   that reuse just-produced data run next on the same core; other workers
//!   steal from the opposite (FIFO) end. A breadth-first mode (global FIFO
//!   queue) is provided for comparison;
//! * **throttling** ([`crate::throttle::ThrottleConfig`]) can turn the
//!   producer into a consumer when ready/live bounds are exceeded;
//! * a **hold gate** supports the paper's *non-overlapped* configuration
//!   (Table 1): the whole graph is discovered before any task runs;
//! * [`PersistentRegion`] implements optimization **(p)**: iteration 0 is
//!   discovered once (concurrently with its execution) while a
//!   [`crate::graph::TemplateRecorder`] captures every node and edge; later
//!   iterations re-instance the captured graph by resetting dependence
//!   counters and re-writing firstprivate data — no allocation, no depend
//!   processing, no edge creation.

mod executor;
mod node;
mod persistent;
mod session;
#[cfg(test)]
mod tests;

pub use executor::{ExecConfig, Executor, SchedPolicy};
pub use persistent::PersistentRegion;
pub use session::Session;
