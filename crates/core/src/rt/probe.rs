//! Unified profiling hooks for the runtime kernel.
//!
//! Both back-ends report the same task-lifecycle events through one
//! [`RtProbe`]; the wall-clock executor timestamps them itself, the
//! simulator stamps them with virtual time. The emit sites live in this
//! module's siblings — [`super::GraphInstance`] (creation, root
//! readiness), [`super::RtNode::complete_with`] (completion, successor
//! readiness), [`super::ReadyQueues::pop_with`] (scheduling) and
//! [`super::PersistentInstance`] (re-instanced creation and publication)
//! — so a back-end cannot diverge from the shared narration. The two
//! comm hooks are the one exception: posting and request completion
//! happen inside each back-end's network layer (`crate::comm::CommWorld`
//! post/progress paths on threads, the DES network in `ptdg-simrt`), so
//! those layers emit them, with a shared request id correlating the
//! pair. The result feeds one analysis pipeline
//! ([`crate::profile::Trace`], [`crate::obs`]).

use crate::profile::{Span, SpanKind, Trace};
use crate::task::TaskId;
use std::sync::Mutex;

/// Observer of kernel-level task events. All hooks default to no-ops so a
/// backend only implements what it measures. Timestamps are nanoseconds
/// on the back-end's clock (wall offset or virtual time).
pub trait RtProbe: Send + Sync {
    /// A task was created by discovery or re-instancing.
    fn task_created(&self, _id: TaskId, _t_ns: u64) {}
    /// A task's last dependence was satisfied.
    fn task_ready(&self, _id: TaskId, _t_ns: u64) {}
    /// A task was handed to a core.
    fn task_scheduled(&self, _id: TaskId, _core: usize, _t_ns: u64) {}
    /// A task finished.
    fn task_completed(&self, _id: TaskId, _core: usize, _t_ns: u64) {}
    /// A communication request was posted (detached task releases its
    /// core). `req` is the back-end's request id, shared with the
    /// matching [`RtProbe::comm_completed`].
    fn comm_posted(&self, _id: TaskId, _req: u64, _core: usize, _t_ns: u64) {}
    /// A posted communication request completed (matched / reduced);
    /// the detached task now completes off-core.
    fn comm_completed(&self, _id: TaskId, _req: u64, _core: usize, _t_ns: u64) {}
    /// A timed span was measured on a lane.
    fn span(&self, _span: Span) {}
    /// Whether the lifecycle hooks observe anything. Emit sites check
    /// this before reading their clock, so a disabled probe costs
    /// nothing but one predictable branch.
    fn lifecycle_enabled(&self) -> bool {
        false
    }
}

/// The probe that measures nothing.
#[derive(Default, Clone, Copy)]
pub struct NullProbe;

impl RtProbe for NullProbe {}

/// A probe that collects [`Span`]s into per-lane buffers (lane =
/// worker/core index, plus one extra lane for the producer).
///
/// This is the simple mutex-per-lane collector; the executors' hot path
/// uses the lock-free [`crate::obs::EventRecorder`] instead. Kept for
/// tests and lightweight ad-hoc collection.
pub struct SpanCollector {
    bufs: Vec<Mutex<Vec<Span>>>,
}

impl SpanCollector {
    /// A collector with `lanes` buffers — size it from the kernel's
    /// worker count (workers plus one producer lane).
    pub fn new(lanes: usize) -> Self {
        SpanCollector {
            bufs: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// All collected spans, unordered (virtual-time back-end: timestamps
    /// are already zero-based).
    pub fn take_spans(&self) -> Vec<Span> {
        let mut all = Vec::new();
        for b in &self.bufs {
            all.append(&mut b.lock().unwrap_or_else(|e| e.into_inner()));
        }
        all
    }

    /// Build a [`Trace`], rebasing all timestamps so the earliest span
    /// starts at zero (wall-clock back-end: spans carry `Instant`-derived
    /// offsets from an arbitrary origin). `span_ns` measures the extent
    /// of *execution* spans; a discovery-only trace falls back to the
    /// full extent so it stays zero-based and well-formed.
    pub fn take_trace(&self, n_workers: usize, discovery_ns: u64) -> Trace {
        let mut spans = self.take_spans();
        let t_min = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        for s in &mut spans {
            s.start_ns -= t_min;
            s.end_ns -= t_min;
        }
        let extent = |pred: &dyn Fn(&Span) -> bool| {
            let lo = spans.iter().filter(|s| pred(s)).map(|s| s.start_ns).min();
            let hi = spans.iter().filter(|s| pred(s)).map(|s| s.end_ns).max();
            match (lo, hi) {
                (Some(lo), Some(hi)) => Some(hi - lo),
                _ => None,
            }
        };
        let span_ns = extent(&|s: &Span| s.kind != SpanKind::Discovery)
            .or_else(|| extent(&|_| true))
            .unwrap_or(0);
        Trace {
            spans,
            n_workers,
            discovery_ns,
            span_ns,
        }
    }
}

impl RtProbe for SpanCollector {
    fn span(&self, span: Span) {
        let lane = span.worker as usize;
        debug_assert!(
            lane < self.bufs.len(),
            "span from out-of-range lane {lane} (collector has {})",
            self.bufs.len()
        );
        let lane = lane.min(self.bufs.len().saturating_sub(1));
        self.bufs[lane]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SpanKind;

    #[test]
    fn collector_rebases_trace() {
        let c = SpanCollector::new(2);
        c.span(Span {
            worker: 0,
            start_ns: 1_000,
            end_ns: 1_500,
            kind: SpanKind::Work,
            name: "a",
            iter: 0,
        });
        c.span(Span {
            worker: 1,
            start_ns: 1_200,
            end_ns: 2_000,
            kind: SpanKind::Work,
            name: "b",
            iter: 0,
        });
        let t = c.take_trace(2, 42);
        assert_eq!(t.span_ns, 1_000);
        assert_eq!(t.discovery_ns, 42);
        assert_eq!(t.spans.iter().map(|s| s.start_ns).min(), Some(0));
    }

    #[test]
    fn discovery_only_trace_is_zero_based() {
        // Regression: wall-clock offsets are huge; a trace holding only
        // discovery spans must still be rebased to zero.
        let c = SpanCollector::new(1);
        c.span(Span {
            worker: 0,
            start_ns: 7_000_000_000,
            end_ns: 7_000_000_500,
            kind: SpanKind::Discovery,
            name: "<discovery>",
            iter: 0,
        });
        c.span(Span {
            worker: 0,
            start_ns: 7_000_000_500,
            end_ns: 7_000_001_000,
            kind: SpanKind::Discovery,
            name: "<discovery>",
            iter: 0,
        });
        let t = c.take_trace(1, 1_000);
        assert_eq!(t.spans.iter().map(|s| s.start_ns).min(), Some(0));
        assert_eq!(t.spans.iter().map(|s| s.end_ns).max(), Some(1_000));
        assert_eq!(t.span_ns, 1_000, "falls back to the discovery extent");
    }

    #[test]
    fn execution_extent_excludes_discovery() {
        let c = SpanCollector::new(2);
        // discovery from 0..1000, work only 400..600
        c.span(Span {
            worker: 1,
            start_ns: 0,
            end_ns: 1_000,
            kind: SpanKind::Discovery,
            name: "<discovery>",
            iter: 0,
        });
        c.span(Span {
            worker: 0,
            start_ns: 400,
            end_ns: 600,
            kind: SpanKind::Work,
            name: "t",
            iter: 0,
        });
        let t = c.take_trace(2, 1_000);
        assert_eq!(t.span_ns, 200, "span_ns is the execution extent");
    }
}
