//! Tile Cholesky: factor a real SPD matrix with dependent tasks, verify
//! `L·Lᵀ = A`, and measure the persistent-graph discovery speedup across
//! repeated factorizations (paper §4.4).
//!
//! ```sh
//! cargo run --release --example cholesky_tiled
//! ```

use ptdg::cholesky::{CholeskyConfig, CholeskyTask};
use ptdg::core::exec::{ExecConfig, Executor, SchedPolicy};
use ptdg::core::opts::OptConfig;
use ptdg::core::throttle::ThrottleConfig;
use ptdg::simrt::{simulate_tasks, MachineConfig, RankProgram, SimConfig};

fn main() {
    // --- real factorization ---------------------------------------------
    let cfg = CholeskyConfig::single(6, 8, 3);
    let prog = CholeskyTask::with_matrix(cfg.clone(), 2024);
    let exec = Executor::new(ExecConfig {
        n_workers: 4,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::mpc_default(),
        profile: false,
        record_events: false,
    });
    let mut region = exec.persistent_region(OptConfig::all());
    for iter in 0..cfg.iterations {
        region.run(iter, |sub| prog.build_iteration(0, iter, sub));
    }
    let m = prog.matrix.as_ref().unwrap();
    println!(
        "factored a {}×{} SPD matrix ({}×{} tiles of {}×{}) {} times",
        cfg.n(),
        cfg.n(),
        cfg.nt,
        cfg.nt,
        cfg.b,
        cfg.b,
        cfg.iterations
    );
    println!("  max |L·Lᵀ − A| = {:.3e}", m.factorization_error());
    let t = region.template().unwrap();
    println!(
        "  persistent graph: {} tasks, {} edges per factorization",
        t.n_tasks(),
        t.n_edges()
    );

    // --- simulated discovery speedup vs iteration count ------------------
    println!("\nsimulated discovery time, streaming vs persistent (nt=24, b=128):");
    println!(
        "{:>6} {:>16} {:>16} {:>9}",
        "iters", "streaming (ms)", "persistent (ms)", "speedup"
    );
    let machine = MachineConfig::skylake_24();
    for iters in [1u64, 2, 4, 8, 16] {
        let cfg = CholeskyConfig::single(24, 128, iters);
        let prog = CholeskyTask::new(cfg);
        let base = simulate_tasks(&machine, &SimConfig::default(), &prog.space, &prog);
        let pers = simulate_tasks(
            &machine,
            &SimConfig {
                persistent: true,
                ..Default::default()
            },
            &prog.space,
            &prog,
        );
        let b_ms = base.rank(0).discovery_ns as f64 / 1e6;
        let p_ms = pers.rank(0).discovery_ns as f64 / 1e6;
        println!(
            "{:>6} {:>16.2} {:>16.2} {:>8.1}x",
            iters,
            b_ms,
            p_ms,
            b_ms / p_ms
        );
    }
    println!("\n(the asymptotic speedup is the paper's ~5x; total time is");
    println!(" unaffected because coarse tiles make discovery <2% of the run)");
}
