//! Cross-crate simulation scenarios: the applications on the virtual
//! executor must reproduce the paper's qualitative effects at small scale.

use ptdg::cholesky::{CholeskyConfig, CholeskyTask};
use ptdg::core::opts::OptConfig;
use ptdg::hpcg::{HpcgBsp, HpcgConfig, HpcgTask};
use ptdg::lulesh::{LuleshBsp, LuleshConfig, LuleshTask, RankGrid};
use ptdg::simrt::{simulate_bsp, simulate_tasks, MachineConfig, SimConfig};

fn machine() -> MachineConfig {
    MachineConfig::skylake_24()
}

#[test]
fn lulesh_sim_runs_and_counts_tasks() {
    let cfg = LuleshConfig::single(16, 2, 64);
    let prog = LuleshTask::new(cfg.clone());
    let r = simulate_tasks(&machine(), &SimConfig::default(), &prog.space, &prog);
    let rank = r.rank(0);
    assert_eq!(
        rank.disc.tasks as usize,
        2 * cfg.compute_tasks_per_iteration()
    );
    assert!(rank.work_ns > 0);
    assert!(rank.span_ns > 0);
}

#[test]
fn lulesh_fused_deps_speed_up_discovery() {
    // Optimization (a): fewer depend items and edges -> faster discovery.
    let mk = |fused| {
        let cfg = LuleshConfig {
            fused_deps: fused,
            ..LuleshConfig::single(16, 2, 128)
        };
        let prog = LuleshTask::new(cfg);
        simulate_tasks(&machine(), &SimConfig::default(), &prog.space, &prog)
    };
    let fused = mk(true);
    let unfused = mk(false);
    assert!(
        fused.rank(0).discovery_ns < unfused.rank(0).discovery_ns,
        "(a) must accelerate discovery: {} vs {}",
        fused.rank(0).discovery_ns,
        unfused.rank(0).discovery_ns
    );
    assert!(fused.rank(0).disc.depend_items < unfused.rank(0).disc.depend_items);
}

#[test]
fn lulesh_optimizations_cut_edges_like_table2() {
    // Non-overlapped discovery: no pruning, so edge counts reflect the
    // graph structure (normal mode at this tiny scale prunes everything —
    // predecessors finish long before their successors are discovered).
    let mk = |fused: bool, opts: OptConfig| {
        let cfg = LuleshConfig {
            fused_deps: fused,
            ..LuleshConfig::single(12, 2, 96)
        };
        let prog = LuleshTask::new(cfg);
        let sim = SimConfig {
            opts,
            non_overlapped: true,
            ..Default::default()
        };
        let r = simulate_tasks(&machine(), &sim, &prog.space, &prog);
        r.rank(0).disc.edges_created
    };
    let none = mk(false, OptConfig::none());
    let a = mk(true, OptConfig::none());
    let b = mk(false, OptConfig::dedup_only());
    let c = mk(false, OptConfig::redirect_only());
    let abc = mk(true, OptConfig::all());
    assert!(a < none, "(a): {a} < {none}");
    assert!(b < none, "(b): {b} < {none}");
    assert!(c < none, "(c): {c} < {none}");
    assert!(abc < a && abc < b && abc < c, "(a)+(b)+(c) is the smallest");
}

#[test]
fn lulesh_persistent_discovery_speedup_is_large() {
    let cfg = LuleshConfig::single(12, 8, 96);
    let prog = LuleshTask::new(cfg);
    let base = simulate_tasks(&machine(), &SimConfig::default(), &prog.space, &prog);
    let pers_cfg = SimConfig {
        persistent: true,
        ..Default::default()
    };
    let pers = simulate_tasks(&machine(), &pers_cfg, &prog.space, &prog);
    let speedup = base.rank(0).discovery_ns as f64 / pers.rank(0).discovery_ns as f64;
    assert!(
        speedup > 4.0,
        "persistent discovery speedup too small: {speedup:.1}"
    );
    // first iteration dominates the persistent discovery total
    let first = pers.rank(0).discovery_first_iter_ns as f64;
    let total = pers.rank(0).discovery_ns as f64;
    assert!(first / total > 0.4, "first iter {first} of {total}");
}

#[test]
fn lulesh_task_version_beats_parallel_for_intranode() {
    // The headline intra-node effect (Fig. 6): tasks at a good TPL beat
    // the parallel-for version through cache reuse. The mesh must be
    // large enough that the per-loop footprints exceed the shared L3
    // (s = 96 ≈ 85 MB of arrays vs 33 MB L3).
    let s = 96;
    let bsp_prog = LuleshBsp::new(LuleshConfig::single(s, 2, 1));
    let bsp = simulate_bsp(
        &machine(),
        &SimConfig::default(),
        &bsp_prog.space,
        &bsp_prog,
    );
    let task_prog = LuleshTask::new(LuleshConfig::single(s, 2, 128));
    let tasks = simulate_tasks(
        &machine(),
        &SimConfig::default(),
        &task_prog.space,
        &task_prog,
    );
    let speedup = bsp.total_time_s() / tasks.total_time_s();
    assert!(
        speedup > 1.08,
        "tasks must beat parallel-for: {:.3}s vs {:.3}s (x{speedup:.2})",
        bsp.total_time_s(),
        tasks.total_time_s()
    );
    assert!(
        (tasks.rank(0).cache.l3_misses as f64) < 0.8 * bsp.rank(0).cache.l3_misses as f64,
        "the win must come from cache reuse: {} vs {}",
        tasks.rank(0).cache.l3_misses,
        bsp.rank(0).cache.l3_misses
    );
}

#[test]
fn lulesh_distributed_overlap_beats_bsp() {
    let grid = RankGrid::cube(8);
    let cfg = LuleshConfig {
        grid,
        ..LuleshConfig::single(48, 2, 96)
    };
    let sim = SimConfig {
        n_ranks: 8,
        ..Default::default()
    };
    let task_prog = LuleshTask::new(cfg.clone());
    let tasks = simulate_tasks(
        &MachineConfig::epyc_16(),
        &sim,
        &task_prog.space,
        &task_prog,
    );
    let bsp_prog = LuleshBsp::new(cfg);
    let bsp = simulate_bsp(&MachineConfig::epyc_16(), &sim, &bsp_prog.space, &bsp_prog);
    // overlap exists for tasks, none for BSP
    let t_ov = tasks.mean_over_ranks(|r| r.overlap_ratio());
    let b_ov = bsp.mean_over_ranks(|r| r.overlap_ratio());
    assert!(t_ov > 0.1, "task version must overlap: {t_ov}");
    assert_eq!(b_ov, 0.0);
    // every rank exchanged messages
    for r in 0..8 {
        assert!(tasks.rank(r).comm_ns > 0);
    }
}

#[test]
fn hpcg_sim_runs_both_versions() {
    let cfg = HpcgConfig {
        px: 2,
        ..HpcgConfig::single(12, 4, 48)
    };
    let sim = SimConfig {
        n_ranks: 8,
        ..Default::default()
    };
    let task_prog = HpcgTask::new(cfg.clone());
    let tasks = simulate_tasks(&machine(), &sim, &task_prog.space, &task_prog);
    let bsp_prog = HpcgBsp::new(cfg);
    let bsp = simulate_bsp(&machine(), &sim, &bsp_prog.space, &bsp_prog);
    assert!(tasks.total_time_s() > 0.0);
    assert!(bsp.total_time_s() > 0.0);
    // HPCG has little comm relative to work: overlap ratio is low but
    // defined
    let ov = tasks.mean_over_ranks(|r| r.overlap_ratio());
    assert!((0.0..=1.0).contains(&ov));
}

#[test]
fn cholesky_persistent_speedup_with_negligible_total_impact() {
    let cfg = CholeskyConfig::single(24, 128, 4);
    let prog = CholeskyTask::new(cfg);
    let base = simulate_tasks(&machine(), &SimConfig::default(), &prog.space, &prog);
    let pers_cfg = SimConfig {
        persistent: true,
        ..Default::default()
    };
    let pers = simulate_tasks(&machine(), &pers_cfg, &prog.space, &prog);
    let disc_speedup = base.rank(0).discovery_ns as f64 / pers.rank(0).discovery_ns as f64;
    assert!(disc_speedup > 2.0, "discovery speedup: {disc_speedup:.1}");
    // but total time barely moves: coarse tasks dominate
    let ratio = pers.total_time_s() / base.total_time_s();
    assert!(
        (0.8..1.25).contains(&ratio),
        "total time must be nearly unchanged: ratio {ratio:.3}"
    );
    // discovery is a small share of total time (paper: <2%)
    assert!(base.rank(0).discovery_ns as f64 / (base.rank(0).span_ns as f64) < 0.20);
}

#[test]
fn deterministic_end_to_end() {
    let cfg = LuleshConfig::single(10, 2, 32);
    let prog = LuleshTask::new(cfg);
    let a = simulate_tasks(&machine(), &SimConfig::default(), &prog.space, &prog);
    let b = simulate_tasks(&machine(), &SimConfig::default(), &prog.space, &prog);
    assert_eq!(a.rank(0).span_ns, b.rank(0).span_ns);
    assert_eq!(a.rank(0).work_ns, b.rank(0).work_ns);
    assert_eq!(a.rank(0).cache.l3_misses, b.rank(0).cache.l3_misses);
}
