//! Hierarchy geometry and timing parameters.

/// Configuration of the modelled memory hierarchy.
///
/// Defaults approximate the paper's Intel Xeon Platinum 8168 (Skylake)
/// node: 24 cores, 32 KiB L1D + 1 MiB L2 private, 33 MiB shared L3,
/// ~2.7 GHz, and a node DRAM bandwidth around 100 GB/s.
///
/// Capacities are expressed in *blocks* of [`MemConfig::block_bytes`]
/// (default 512 B), the granularity at which task footprints are tracked.
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// Footprint/caching granularity in bytes.
    pub block_bytes: u64,
    /// Private L1 data-cache capacity per core, in bytes.
    pub l1_bytes: u64,
    /// Private L2 capacity per core, in bytes.
    pub l2_bytes: u64,
    /// Shared L3 capacity, in bytes.
    pub l3_bytes: u64,
    /// Core clock frequency in Hz (converts stall cycles to time).
    pub freq_hz: f64,
    /// Stall cycles charged per L1 miss served by L2.
    pub l1_miss_cycles: u64,
    /// Stall cycles charged per L2 miss served by L3.
    pub l2_miss_cycles: u64,
    /// Stall cycles charged per L3 miss served by DRAM (uncontended).
    pub l3_miss_cycles: u64,
    /// Peak DRAM bandwidth of the node, bytes per second.
    pub dram_bw_bytes_per_s: f64,
    /// Achievable scalar flop rate per core, flops per second.
    pub flops_per_s: f64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            block_bytes: 512,
            l1_bytes: 32 << 10,
            l2_bytes: 1 << 20,
            l3_bytes: 33 << 20,
            freq_hz: 2.7e9,
            l1_miss_cycles: 12,
            l2_miss_cycles: 60,
            // Effective cost of pulling one 512 B footprint block from
            // DRAM under the irregular, gather-heavy access patterns of
            // the modelled applications (~330 ns/block ≈ 1.5 GB/s/core) —
            // calibrated so LULESH-like loops are memory-bound as measured.
            l3_miss_cycles: 900,
            // Effective node DRAM bandwidth for such patterns.
            dram_bw_bytes_per_s: 30e9,
            flops_per_s: 4.0e9,
        }
    }
}

impl MemConfig {
    /// Configuration approximating the AMD EPYC 7763 NUMA domain used for
    /// the distributed experiments (16 cores per MPI process, larger L3).
    pub fn epyc_numa_domain() -> Self {
        MemConfig {
            block_bytes: 512,
            l1_bytes: 32 << 10,
            l2_bytes: 512 << 10,
            l3_bytes: 32 << 20,
            freq_hz: 2.45e9,
            l1_miss_cycles: 12,
            l2_miss_cycles: 65,
            l3_miss_cycles: 900,
            dram_bw_bytes_per_s: 20e9, // effective per-NUMA-domain share
            flops_per_s: 3.5e9,
        }
    }

    /// L1 capacity in blocks.
    pub fn l1_blocks(&self) -> usize {
        (self.l1_bytes / self.block_bytes) as usize
    }

    /// L2 capacity in blocks.
    pub fn l2_blocks(&self) -> usize {
        (self.l2_bytes / self.block_bytes) as usize
    }

    /// L3 capacity in blocks.
    pub fn l3_blocks(&self) -> usize {
        (self.l3_bytes / self.block_bytes) as usize
    }

    /// Duration of `cycles` stall cycles, in seconds.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz
    }

    /// Number of blocks covering `bytes` (rounded up, at least 1 for a
    /// non-empty region).
    pub fn blocks_for_bytes(&self, bytes: u64) -> u32 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.block_bytes).max(1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacities_are_sane() {
        let c = MemConfig::default();
        assert_eq!(c.l1_blocks(), 64);
        assert_eq!(c.l2_blocks(), 2048);
        assert!(c.l3_blocks() > c.l2_blocks());
    }

    #[test]
    fn blocks_for_bytes_rounds_up() {
        let c = MemConfig::default();
        assert_eq!(c.blocks_for_bytes(0), 0);
        assert_eq!(c.blocks_for_bytes(1), 1);
        assert_eq!(c.blocks_for_bytes(512), 1);
        assert_eq!(c.blocks_for_bytes(513), 2);
    }

    #[test]
    fn cycles_convert_to_time() {
        let c = MemConfig::default();
        let s = c.cycles_to_secs(2_700_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
