//! Fig. 2 — profiled intra-node LULESH on the MPC-like runtime, all six
//! panels: (a) tasks & edges, (b) per-task grain & overhead, (c) time
//! breakdown + discovery, (d) work-time inflation, (e) cache misses,
//! (f) stall cycles.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin fig2
//! ```

use ptdg_bench::{
    arr, emit_json, maybe_trace, obj, quick, rule, s, INTRA_ITERS, INTRA_S, TPL_SWEEP,
};
use ptdg_lulesh::{LuleshConfig, LuleshTask};
use ptdg_simrt::{simulate_tasks, MachineConfig, RankReport, SimConfig};

fn main() {
    let machine = MachineConfig::skylake_24();
    let (mesh_s, iters) = if quick() {
        (48, 2)
    } else {
        (INTRA_S, INTRA_ITERS)
    };
    println!(
        "Fig. 2 — LULESH -s {mesh_s} -i {iters}, MPC-like runtime (opts (b)+(c), unfused deps)"
    );

    let mut rows: Vec<(usize, RankReport, f64)> = Vec::new();
    for &tpl in TPL_SWEEP {
        let cfg = LuleshConfig {
            fused_deps: false,
            ..LuleshConfig::single(mesh_s, iters, tpl)
        };
        let prog = LuleshTask::new(cfg);
        let r = simulate_tasks(&machine, &SimConfig::default(), &prog.space, &prog);
        rows.push((tpl, r.rank(0).clone(), r.total_time_s()));
    }

    println!("\n(a) tasks and edges discovered");
    println!(
        "{:>6} {:>10} {:>12} {:>14}",
        "TPL", "tasks", "edges", "edges(struct.)"
    );
    rule(46);
    for (tpl, r, _) in &rows {
        println!(
            "{tpl:>6} {:>10} {:>12} {:>14}",
            r.disc.tasks,
            r.disc.edges_created,
            r.disc.edges_attempted()
        );
    }

    println!("\n(b) per-task grain and overhead (µs)");
    println!("{:>6} {:>10} {:>10}", "TPL", "work/task", "ovh/task");
    rule(28);
    for (tpl, r, _) in &rows {
        println!(
            "{tpl:>6} {:>10.1} {:>10.1}",
            r.mean_grain_s() * 1e6,
            r.mean_overhead_s() * 1e6
        );
    }

    println!("\n(c) time breakdown, averaged per core (s)");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "TPL", "work/c", "idle/c", "ovh/c", "discovery", "total"
    );
    rule(56);
    for (tpl, r, total) in &rows {
        println!(
            "{tpl:>6} {:>9} {:>9} {:>9} {:>10} {:>9}",
            s(r.avg_work_s()),
            s(r.avg_idle_s()),
            s(r.avg_overhead_s()),
            s(r.discovery_s()),
            s(*total)
        );
    }

    println!("\n(d) work-time inflation (vs the least-inflated TPL)");
    let min_work = rows
        .iter()
        .map(|(_, r, _)| r.work_ns as f64)
        .fold(f64::INFINITY, f64::min);
    println!("{:>6} {:>10}", "TPL", "inflation");
    rule(18);
    for (tpl, r, _) in &rows {
        println!("{tpl:>6} {:>10.3}", r.work_ns as f64 / min_work);
    }

    println!("\n(e) cache misses (millions)");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "TPL", "L1DCM", "L2DCM", "L3CM"
    );
    rule(40);
    for (tpl, r, _) in &rows {
        println!(
            "{tpl:>6} {:>10.2} {:>10.2} {:>10.2}",
            r.cache.l1_misses as f64 / 1e6,
            r.cache.l2_misses as f64 / 1e6,
            r.cache.l3_misses as f64 / 1e6
        );
    }

    println!("\n(f) stall cycles (billions)");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "TPL", "L1", "L2", "L3", "total"
    );
    rule(52);
    for (tpl, r, _) in &rows {
        println!(
            "{tpl:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            r.stalls.l1 as f64 / 1e9,
            r.stalls.l2 as f64 / 1e9,
            r.stalls.l3 as f64 / 1e9,
            r.stalls.total() as f64 / 1e9
        );
    }

    println!(
        "\n(paper shape: middle grains deflate work time via fewer L3 misses;\n\
         fine grains become discovery-bound — idle grows, reuse degrades)"
    );
    emit_json(
        "fig2",
        obj([
            ("mesh_s", mesh_s.into()),
            ("iterations", iters.into()),
            (
                "rows",
                arr(rows
                    .iter()
                    .map(|(tpl, r, total)| {
                        obj([
                            ("tpl", (*tpl).into()),
                            ("breakdown", ptdg_bench::breakdown_json(r, *total)),
                            ("edges_structural", r.disc.edges_attempted().into()),
                            ("grain_s", r.mean_grain_s().into()),
                            ("overhead_per_task_s", r.mean_overhead_s().into()),
                            ("work_ns", r.work_ns.into()),
                            ("l1_misses", r.cache.l1_misses.into()),
                            ("l2_misses", r.cache.l2_misses.into()),
                            ("l3_misses", r.cache.l3_misses.into()),
                            ("stall_cycles_l1", r.stalls.l1.into()),
                            ("stall_cycles_l2", r.stalls.l2.into()),
                            ("stall_cycles_l3", r.stalls.l3.into()),
                        ])
                    })
                    .collect()),
            ),
        ]),
    );
    let mid_tpl = TPL_SWEEP[TPL_SWEEP.len() / 2];
    let cfg = LuleshConfig {
        fused_deps: false,
        ..LuleshConfig::single(mesh_s, iters, mid_tpl)
    };
    let prog = LuleshTask::new(cfg);
    maybe_trace("fig2", &machine, &SimConfig::default(), &prog.space, &prog);
}
