//! Simulation results.

use ptdg_core::graph::DiscoveryStats;
use ptdg_core::obs::{RtCounters, RtEvent};
use ptdg_core::profile::Trace;
use ptdg_memsim::{AccessStats, StallCycles};

/// Per-rank measurements of one simulated run.
#[derive(Clone, Debug, Default)]
pub struct RankReport {
    /// Cores on this rank.
    pub n_cores: usize,
    /// Cumulated time inside task bodies (all cores), ns.
    pub work_ns: u64,
    /// Cumulated scheduling/discovery overhead, ns.
    pub overhead_ns: u64,
    /// Cumulated idle time, ns.
    pub idle_ns: u64,
    /// Rank wall-clock span, ns.
    pub span_ns: u64,
    /// Producer discovery span over all iterations, ns.
    pub discovery_ns: u64,
    /// Discovery span of the first iteration only, ns.
    pub discovery_first_iter_ns: u64,
    /// Discovery statistics (tasks, edges, probes...).
    pub disc: DiscoveryStats,
    /// Cache counters over the whole run.
    pub cache: AccessStats,
    /// Stall cycles per level.
    pub stalls: StallCycles,
    /// Tasks executed (including re-instanced persistent tasks).
    pub tasks_executed: u64,
    /// Edges *existing* over the run: streamed edges, or template edges ×
    /// iterations for persistent runs (the paper's Table 2 accounting).
    pub edges_existing: u64,
    /// Communication time `C` (tracked requests: sends + collectives), ns.
    pub comm_ns: u64,
    /// Collective part of `C`, ns.
    pub comm_coll_ns: u64,
    /// P2P-send part of `C`, ns.
    pub comm_p2p_ns: u64,
    /// Overlapped work `W`, ns (work executed while a tracked request was
    /// open).
    pub overlapped_ns: u64,
    /// Kernel counters — the same surface the thread back-end reports in
    /// [`ptdg_core::exec::ThreadsReport::counters`].
    pub counters: RtCounters,
}

impl RankReport {
    /// The paper's overlap ratio `W / (n_threads × C)` in `[0, 1]`.
    pub fn overlap_ratio(&self) -> f64 {
        let denom = self.n_cores as f64 * self.comm_ns as f64;
        if denom == 0.0 {
            0.0
        } else {
            (self.overlapped_ns as f64 / denom).min(1.0)
        }
    }

    /// Wall-clock span in seconds.
    pub fn span_s(&self) -> f64 {
        self.span_ns as f64 * 1e-9
    }

    /// Discovery span in seconds.
    pub fn discovery_s(&self) -> f64 {
        self.discovery_ns as f64 * 1e-9
    }

    /// Average work per core, seconds (paper's time-breakdown stacks).
    pub fn avg_work_s(&self) -> f64 {
        self.work_ns as f64 * 1e-9 / self.n_cores.max(1) as f64
    }

    /// Average overhead per core, seconds.
    pub fn avg_overhead_s(&self) -> f64 {
        self.overhead_ns as f64 * 1e-9 / self.n_cores.max(1) as f64
    }

    /// Average idle per core, seconds.
    pub fn avg_idle_s(&self) -> f64 {
        self.idle_ns as f64 * 1e-9 / self.n_cores.max(1) as f64
    }

    /// Mean task grain (work per executed task), seconds.
    pub fn mean_grain_s(&self) -> f64 {
        if self.tasks_executed == 0 {
            0.0
        } else {
            self.work_ns as f64 * 1e-9 / self.tasks_executed as f64
        }
    }

    /// Mean per-task overhead, seconds.
    pub fn mean_overhead_s(&self) -> f64 {
        if self.tasks_executed == 0 {
            0.0
        } else {
            self.overhead_ns as f64 * 1e-9 / self.tasks_executed as f64
        }
    }

    /// Communication time in seconds.
    pub fn comm_s(&self) -> f64 {
        self.comm_ns as f64 * 1e-9
    }
}

/// Whole-job results.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// One report per rank.
    pub ranks: Vec<RankReport>,
    /// Recorded trace of the requested rank, if any.
    pub trace: Option<Trace>,
    /// Captured graph per rank (empty unless `SimConfig::capture_graph`;
    /// in persistent mode this is the first-iteration template).
    pub graphs: Vec<ptdg_core::graph::GraphTemplate>,
    /// Lifecycle event stream of the rank selected by
    /// `SimConfig::record_trace_rank` (virtual time, already zero-based).
    pub events: Vec<RtEvent>,
    /// Communication requests that could never match (the run deadlocked
    /// on them, or finished with messages nobody received). `None` on a
    /// well-formed run. Same shape the thread back-end reports.
    pub comm_error: Option<ptdg_core::comm::CommError>,
}

impl SimReport {
    /// Job wall-clock: the slowest rank's span, seconds.
    pub fn total_time_s(&self) -> f64 {
        self.ranks.iter().map(|r| r.span_s()).fold(0.0, f64::max)
    }

    /// One rank's report.
    pub fn rank(&self, r: u32) -> &RankReport {
        &self.ranks[r as usize]
    }

    /// Mean over ranks of a per-rank quantity.
    pub fn mean_over_ranks<F: Fn(&RankReport) -> f64>(&self, f: F) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(f).sum::<f64>() / self.ranks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_ratio_definition() {
        let r = RankReport {
            n_cores: 16,
            comm_ns: 1_000,
            overlapped_ns: 8_000,
            ..Default::default()
        };
        assert!((r.overlap_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_clamps_and_handles_zero() {
        let mut r = RankReport {
            n_cores: 1,
            comm_ns: 10,
            overlapped_ns: 100,
            ..Default::default()
        };
        assert_eq!(r.overlap_ratio(), 1.0);
        r.comm_ns = 0;
        assert_eq!(r.overlap_ratio(), 0.0);
    }

    #[test]
    fn total_time_is_slowest_rank() {
        let report = SimReport {
            ranks: vec![
                RankReport {
                    span_ns: 5_000_000_000,
                    ..Default::default()
                },
                RankReport {
                    span_ns: 7_000_000_000,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert!((report.total_time_s() - 7.0).abs() < 1e-9);
        assert_eq!(report.rank(1).span_ns, 7_000_000_000);
    }

    #[test]
    fn grain_and_overhead_means() {
        let r = RankReport {
            work_ns: 4_000,
            overhead_ns: 400,
            tasks_executed: 4,
            ..Default::default()
        };
        assert!((r.mean_grain_s() - 1e-6).abs() < 1e-18);
        assert!((r.mean_overhead_s() - 1e-7).abs() < 1e-18);
    }
}
