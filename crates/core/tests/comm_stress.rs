//! Stress and semantics tests for the in-process communication engine.
//!
//! The engine's unit tests (comm/engine.rs) pin single-threaded matching
//! semantics; this suite attacks the concurrent surface: exactly-once
//! delivery under racing post/progress threads, the detach contract on a
//! live executor (a pending request must never occupy a core), structured
//! `CommError`s instead of hangs for malformed programs, and the
//! event-only tracing path recording real timestamps.

use ptdg_core::access::AccessMode;
use ptdg_core::builder::TaskSubmitter;
use ptdg_core::comm::{CommConfig, CommWorld};
use ptdg_core::exec::{run_program, ExecConfig, ThreadsConfig};
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::obs::EventKind;
use ptdg_core::program::{Rank, RankProgram};
use ptdg_core::rt::RtNode;
use ptdg_core::task::{TaskId, TaskSpec};
use ptdg_core::workdesc::CommOp;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(30);

/// Exactly-once delivery under fire: one thread posts eager and
/// rendezvous sends, one posts the matching recvs, and two more hammer
/// the receiver's progress path concurrently. Every request id must come
/// back exactly once on its owning side — a double delivery would
/// double-complete an `RtNode`, a lost one would hang a successor.
#[test]
fn mailbox_exactly_once_under_concurrent_post_match() {
    const M: u32 = 4000;
    let world = Arc::new(CommWorld::new(2, CommConfig::default()));
    let node = |id: u32| RtNode::bare(TaskId(id), "msg", None, 0);
    // Cycle tags and sizes so matching exercises the (peer, tag) map, the
    // unexpected queue, and both the eager and rendezvous paths at once.
    let tag_of = |i: u32| i % 8;
    let bytes_of = |i: u32| if i.is_multiple_of(3) { 64 * 1024 } else { 64 };

    let recv_seen = Arc::new(Mutex::new(Vec::<u64>::new()));
    let recv_count = Arc::new(AtomicUsize::new(0));

    let (send_reqs, recv_reqs) = std::thread::scope(|scope| {
        let w = Arc::clone(&world);
        let sender = scope.spawn(move || {
            let mut posted = Vec::with_capacity(M as usize);
            let mut seen = Vec::with_capacity(M as usize);
            for i in 0..M {
                let req = w.alloc_req();
                w.post(
                    0,
                    node(i),
                    CommOp::Isend {
                        peer: 1,
                        bytes: bytes_of(i),
                        tag: tag_of(i),
                    },
                    0,
                    req,
                );
                posted.push(req);
                while let Some(c) = w.pop_completion(0) {
                    seen.push(c.req);
                }
            }
            // Rendezvous completions arrive as the receiver matches.
            let t0 = Instant::now();
            while seen.len() < M as usize && t0.elapsed() < DEADLINE {
                match w.pop_completion(0) {
                    Some(c) => seen.push(c.req),
                    None => std::thread::yield_now(),
                }
            }
            (posted, seen)
        });

        let w = Arc::clone(&world);
        let recv_poster = scope.spawn(move || {
            let mut posted = Vec::with_capacity(M as usize);
            for i in 0..M {
                let req = w.alloc_req();
                w.post(
                    1,
                    node(M + i),
                    CommOp::Irecv {
                        peer: 0,
                        bytes: bytes_of(i),
                        tag: tag_of(i),
                    },
                    0,
                    req,
                );
                posted.push(req);
            }
            posted
        });

        for _ in 0..2 {
            let w = Arc::clone(&world);
            let seen = Arc::clone(&recv_seen);
            let count = Arc::clone(&recv_count);
            scope.spawn(move || {
                let t0 = Instant::now();
                while count.load(Ordering::SeqCst) < M as usize && t0.elapsed() < DEADLINE {
                    w.progress(1);
                    while let Some(c) = w.pop_completion(1) {
                        seen.lock().unwrap().push(c.req);
                        count.fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::yield_now();
                }
            });
        }

        let (send_posted, send_seen) = sender.join().unwrap();
        let recv_posted = recv_poster.join().unwrap();
        assert_eq!(send_seen.len(), M as usize, "every send completed");
        let mut sorted = send_seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), M as usize, "no send completed twice");
        let mut expect = send_posted.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect, "send completions are the posted ids");
        (send_posted, recv_posted)
    });
    assert_eq!(send_reqs.len(), M as usize);

    let mut got = recv_seen.lock().unwrap().clone();
    assert_eq!(got.len(), M as usize, "every recv completed");
    got.sort_unstable();
    got.dedup();
    assert_eq!(got.len(), M as usize, "no recv completed twice");
    let mut expect = recv_reqs;
    expect.sort_unstable();
    assert_eq!(got, expect, "recv completions are the posted ids");
    assert!(world.finish().is_none(), "clean world after the storm");
}

/// The detach proof: rank 0 posts an `Irecv` whose match is *withheld*
/// until rank 1 has watched every one of rank 0's independent tasks
/// complete. If a pending request occupied a core (no detach), rank 0's
/// single worker could never run those tasks and rank 1's watch would
/// time out — so a pass proves the delayed match blocked nobody.
struct DetachProof {
    _space: HandleSpace,
    recv_buf: DataHandle,
    free: Vec<DataHandle>,
    chain: DataHandle,
    send_buf: DataHandle,
    free_done: Arc<AtomicUsize>,
    snapshot: Arc<AtomicUsize>,
    gated_ran: Arc<AtomicBool>,
}

const FREE_TASKS: usize = 16;

impl DetachProof {
    fn new() -> DetachProof {
        let mut space = HandleSpace::new();
        DetachProof {
            recv_buf: space.region("recv", 64),
            free: (0..FREE_TASKS).map(|_| space.region("free", 64)).collect(),
            chain: space.region("chain", 64),
            send_buf: space.region("send", 64),
            _space: space,
            free_done: Arc::new(AtomicUsize::new(0)),
            snapshot: Arc::new(AtomicUsize::new(0)),
            gated_ran: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl RankProgram for DetachProof {
    fn n_ranks(&self) -> Rank {
        2
    }
    fn n_iterations(&self) -> u64 {
        1
    }
    fn build_iteration(&self, rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        if rank == 0 {
            sub.submit(
                TaskSpec::new("recv")
                    .depend(self.recv_buf, AccessMode::InOut)
                    .comm(CommOp::Irecv {
                        peer: 1,
                        bytes: 64,
                        tag: 0,
                    }),
            );
            for h in &self.free {
                let done = Arc::clone(&self.free_done);
                sub.submit(
                    TaskSpec::new("free")
                        .depend(*h, AccessMode::InOut)
                        .body(move |_| {
                            done.fetch_add(1, Ordering::SeqCst);
                        }),
                );
            }
            let ran = Arc::clone(&self.gated_ran);
            sub.submit(
                TaskSpec::new("gated")
                    .depend(self.recv_buf, AccessMode::In)
                    .body(move |_| ran.store(true, Ordering::SeqCst)),
            );
        } else {
            let done = Arc::clone(&self.free_done);
            let snap = Arc::clone(&self.snapshot);
            sub.submit(
                TaskSpec::new("watch")
                    .depend(self.chain, AccessMode::InOut)
                    .body(move |_| {
                        // Hold the send back until rank 0's independent
                        // tasks all finished (or a deadline passed).
                        let t0 = Instant::now();
                        while done.load(Ordering::SeqCst) < FREE_TASKS && t0.elapsed() < DEADLINE {
                            std::thread::yield_now();
                        }
                        snap.store(done.load(Ordering::SeqCst), Ordering::SeqCst);
                    }),
            );
            sub.submit(
                TaskSpec::new("send")
                    .depend(self.chain, AccessMode::In)
                    .depend(self.send_buf, AccessMode::InOut)
                    .comm(CommOp::Isend {
                        peer: 0,
                        bytes: 64,
                        tag: 0,
                    }),
            );
        }
    }
}

#[test]
fn delayed_recv_match_does_not_block_worker_progress() {
    let prog = DetachProof::new();
    let report = run_program(
        &prog,
        &ThreadsConfig {
            exec: ExecConfig {
                n_workers: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert!(report.comm_error.is_none(), "well-formed program");
    assert_eq!(
        prog.snapshot.load(Ordering::SeqCst),
        FREE_TASKS,
        "rank 0's worker ran every independent task while its Irecv was \
         still unmatched — the pending request held no core"
    );
    assert!(
        prog.gated_ran.load(Ordering::SeqCst),
        "the recv's successor ran after the match"
    );
    assert_eq!(report.counters.comms_posted, 2);
    assert_eq!(report.counters.comms_completed, 2);
}

/// A two-rank program where `malformed` selects the failure shape.
struct Lopsided {
    _space: HandleSpace,
    buf: Vec<DataHandle>,
    work: Vec<DataHandle>,
    op: CommOp,
}

impl Lopsided {
    fn new(op: CommOp) -> Lopsided {
        let mut space = HandleSpace::new();
        Lopsided {
            buf: (0..2).map(|_| space.region("buf", 64)).collect(),
            work: (0..2).map(|_| space.region("work", 64)).collect(),
            _space: space,
            op,
        }
    }
}

impl RankProgram for Lopsided {
    fn n_ranks(&self) -> Rank {
        2
    }
    fn n_iterations(&self) -> u64 {
        1
    }
    fn build_iteration(&self, rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        let r = rank as usize;
        sub.submit(TaskSpec::new("work").depend(self.work[r], AccessMode::InOut));
        if rank == 0 {
            sub.submit(
                TaskSpec::new("lonely")
                    .depend(self.buf[r], AccessMode::InOut)
                    .comm(self.op),
            );
        }
    }
}

/// An `Irecv` nobody answers must end as a structured error naming the
/// exact (rank, peer, tag) triple — via the termination detector, since
/// the receiver would otherwise block in its end-of-run barrier forever.
#[test]
fn unmatched_recv_is_a_structured_error_not_a_hang() {
    let prog = Lopsided::new(CommOp::Irecv {
        peer: 1,
        bytes: 64,
        tag: 9,
    });
    let report = run_program(&prog, &ThreadsConfig::default());
    let err = report.comm_error.expect("detector reported the orphan");
    assert_eq!(err.unmatched.len(), 1);
    let u = &err.unmatched[0];
    assert_eq!((u.rank, u.peer, u.tag, u.op), (0, 1, 9, "Irecv"));
}

/// An eager send nobody receives completes its *sender*, so no deadlock
/// ever forms — the leftover envelope must still surface as the same
/// structured error at the end of the run.
#[test]
fn unreceived_eager_send_is_a_structured_error() {
    let prog = Lopsided::new(CommOp::Isend {
        peer: 1,
        bytes: 64,
        tag: 4,
    });
    let report = run_program(&prog, &ThreadsConfig::default());
    assert_eq!(report.counters.comms_posted, 1);
    assert_eq!(report.counters.comms_completed, 1, "eager sender completed");
    let err = report.comm_error.expect("leftover envelope reported");
    assert_eq!(err.unmatched.len(), 1);
    let u = &err.unmatched[0];
    assert_eq!((u.rank, u.peer, u.tag, u.op), (0, 1, 4, "Isend"));
}

/// Event-only tracing regression: with `record_events` on but `profile`
/// off, lifecycle events must carry real clock readings. (The old code
/// gated the clock on `profile` alone and stamped every event 0.)
struct Tiny {
    _space: HandleSpace,
    h: DataHandle,
}

impl RankProgram for Tiny {
    fn n_iterations(&self) -> u64 {
        1
    }
    fn build_iteration(&self, _rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        for _ in 0..3 {
            sub.submit(
                TaskSpec::new("t")
                    .depend(self.h, AccessMode::InOut)
                    .body(|_| std::thread::yield_now()),
            );
        }
    }
}

#[test]
fn event_only_tracing_records_real_timestamps() {
    let mut space = HandleSpace::new();
    let prog = Tiny {
        h: space.region("h", 64),
        _space: space,
    };
    let report = run_program(
        &prog,
        &ThreadsConfig {
            exec: ExecConfig {
                record_events: true,
                profile: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert!(report.trace.is_none(), "no span trace without profiling");
    assert!(
        !report.events.is_empty(),
        "events recorded without profiling"
    );
    for e in &report.events {
        if matches!(e.kind, EventKind::Scheduled | EventKind::Completed) {
            assert!(
                e.t_ns > 0,
                "{:?} for task {} stamped t=0 — the event clock must not \
                 be gated on profiling",
                e.kind,
                e.id.0
            );
        }
    }
}
