//! Allocation accounting for the discovery hot path (DESIGN.md §4.4).
//!
//! A counting global allocator wraps the system allocator; each test warms
//! the producer-side buffers up to their high-water mark, snapshots the
//! allocation counter, drives the steady-state path, and asserts the
//! counter did not move. This pins the tentpole claim — *zero* heap
//! allocations per task — rather than "few": any regression that
//! reintroduces a per-task `Vec`, `Arc`, or boxed node shows up as a
//! nonzero delta, not as a slow drift in a benchmark.
//!
//! Both windows run with profiling off and no task bodies, on the
//! unbounded throttle, so the only code measured is submission itself:
//! depend resolution, node arming, edge wiring, and readiness routing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ptdg_core::access::AccessMode;
use ptdg_core::builder::SpecBuf;
use ptdg_core::exec::{ExecConfig, Executor};
use ptdg_core::handle::HandleSpace;
use ptdg_core::opts::OptConfig;
use ptdg_core::rt::ThrottleConfig;

/// Counts every allocation-side call; frees are uncounted (recycling is
/// allowed to release memory late, it just must not *acquire* any).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    // SeqCst snapshot: the windows measure across our own thread only —
    // workers are parked (streaming) or quiesced at a barrier (persistent)
    // at both fence points.
    ALLOC_CALLS.load(Ordering::SeqCst)
}

fn quiet_executor(n_workers: usize) -> Executor {
    Executor::new(ExecConfig {
        n_workers,
        throttle: ThrottleConfig::unbounded(),
        profile: false,
        ..Default::default()
    })
}

/// Streaming discovery: after [`ptdg_core::exec::Session::reserve`] and a
/// warmup burst, every further `SpecBuf` submission must perform zero heap
/// allocations end to end. Non-overlapped session: all ready tasks land in
/// the (reserved) hold gate and the workers stay parked, so the measured
/// window is single-threaded by construction.
#[test]
fn streaming_submission_is_allocation_free_in_steady_state() {
    const N_HANDLES: usize = 8;
    const WARM: usize = 512;
    const MEASURED: usize = 512;

    let exec = quiet_executor(2);
    let mut space = HandleSpace::new();
    let handles: Vec<_> = (0..N_HANDLES).map(|_| space.region("h", 256)).collect();

    let mut s = exec.session_non_overlapped(OptConfig::all());
    // Generous node headroom: redirect nodes ride on top of the task count.
    s.reserve(2 * (WARM + MEASURED), N_HANDLES);
    let mut buf = SpecBuf::new();

    // Rotating writer/reader stencil: every handle keeps a short, bounded
    // reader window between writers, so per-handle discovery state stays
    // within its inline capacity the way real iterative codes do.
    for k in 0..WARM {
        buf.begin("warm")
            .dep(handles[k % N_HANDLES], AccessMode::InOut)
            .dep(handles[(k + 1) % N_HANDLES], AccessMode::In)
            .flops(1.0)
            .submit(&mut s);
    }

    let before = alloc_calls();
    for k in WARM..WARM + MEASURED {
        buf.begin("steady")
            .dep(handles[k % N_HANDLES], AccessMode::InOut)
            .dep(handles[(k + 1) % N_HANDLES], AccessMode::In)
            .flops(1.0)
            .submit(&mut s);
    }
    let after = alloc_calls();

    s.wait_all();
    assert_eq!(
        after - before,
        0,
        "steady-state streaming submission must not allocate \
         ({MEASURED} tasks cost {} allocations)",
        after - before
    );
}

/// Persistent re-instancing: once the template is captured and the replay
/// machinery (publish buffer, injector segment pool, worker deques) has
/// reached its high-water mark, whole re-instanced iterations — bulk
/// re-arm, root publication, execution, barrier — allocate nothing.
#[test]
fn persistent_replay_is_allocation_free_in_steady_state() {
    const CHAIN: usize = 64;
    const WARM_ITERS: u64 = 8;
    const MEASURED_ITERS: u64 = 16;

    let exec = quiet_executor(1);
    let mut space = HandleSpace::new();
    let h = space.region("chain", 64);

    let mut region = exec.persistent_region(OptConfig::all());
    // Capturing first iteration, then warm replays.
    for iter in 0..WARM_ITERS {
        region.run(iter, |sub| {
            let mut buf = SpecBuf::new();
            for _ in 0..CHAIN {
                buf.begin("link")
                    .dep(h, AccessMode::InOut)
                    .flops(1.0)
                    .submit(sub);
            }
        });
    }

    let before = alloc_calls();
    for iter in WARM_ITERS..WARM_ITERS + MEASURED_ITERS {
        region.run(iter, |_: &mut dyn ptdg_core::builder::TaskSubmitter| {
            unreachable!("replayed iterations never rebuild")
        });
    }
    let after = alloc_calls();

    assert_eq!(
        after - before,
        0,
        "re-instanced iterations must not allocate \
         ({MEASURED_ITERS} iterations cost {} allocations)",
        after - before
    );
    assert_eq!(
        region.reuses(),
        WARM_ITERS + MEASURED_ITERS - 1,
        "all but the capturing iteration replayed the template"
    );
}
