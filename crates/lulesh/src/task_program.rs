//! The dependent-task LULESH (paper Listing 1).
//!
//! Every mesh-wide loop becomes `TPL` tasks over contiguous slices, with
//! dependences inferred from the slice handles. MPI communications are
//! tasks in the graph with detached completion, posted as soon as their
//! frontier predecessors complete. The structure follows the Ferat et al.
//! port studied by the paper: a `dt` reduction task, seven sliced compute
//! loops, and a 26-neighbor exchange of frontier nodes.

use crate::config::*;
use crate::handles::LuleshHandles;
use crate::mesh::{overlapping_slices, Mesh, RankGrid};
use crate::state::LuleshState;
use ptdg_core::access::AccessMode;
use ptdg_core::builder::{SpecBuf, TaskSubmitter};
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::workdesc::{CommOp, HandleSlice};
use ptdg_simrt::{Rank, RankProgram};

/// The task-based LULESH program for one job (all ranks share the
/// structure; each rank builds its own identical-shaped local graph).
pub struct LuleshTask {
    /// Run configuration.
    pub cfg: LuleshConfig,
    /// Slice handles.
    pub handles: LuleshHandles,
    /// The handle space (needed for region sizes; also what the simulator
    /// must be given).
    pub space: HandleSpace,
    /// Real arrays — present when running on the thread executor
    /// (single-rank only); `None` for cost-model simulation.
    pub state: Option<LuleshState>,
}

impl LuleshTask {
    /// Build the program (no real arrays: simulation use).
    pub fn new(cfg: LuleshConfig) -> LuleshTask {
        let mut space = HandleSpace::new();
        let handles = LuleshHandles::build(&mut space, &cfg);
        LuleshTask {
            cfg,
            handles,
            space,
            state: None,
        }
    }

    /// Attach real arrays for execution on the thread executor.
    ///
    /// Only single-rank configurations can be executed for real (the
    /// multi-rank exchange exists as graph structure for the simulator).
    pub fn with_state(cfg: LuleshConfig) -> LuleshTask {
        assert_eq!(
            cfg.n_ranks(),
            1,
            "real execution supports single-rank runs; multi-rank is simulated"
        );
        let state = LuleshState::new(Mesh::new(cfg.s), cfg.tpl.min(cfg.s * cfg.s * cfg.s));
        let mut t = LuleshTask::new(cfg);
        t.state = Some(state);
        t
    }

    fn mesh(&self) -> Mesh {
        Mesh::new(self.cfg.s)
    }

    /// Elem-slice indices whose `sig` a force task over nodes `[a, b)`
    /// reads: the elements adjacent to those nodes.
    fn elem_slices_for_nodes(&self, a: usize, b: usize) -> (usize, usize) {
        let mesh = self.mesh();
        let np2 = mesh.np() * mesh.np();
        let s2 = mesh.s * mesh.s;
        let za = a / np2;
        let zb = (b - 1) / np2;
        let lo = za.saturating_sub(1) * s2;
        let hi = ((zb + 1).min(mesh.s)) * s2;
        let hi = hi.max(lo + 1).min(mesh.n_elems());
        overlapping_slices(&self.handles.elem_slices, lo, hi)
    }

    /// Node-slice indices a kinematics task over elems `[a, b)` reads.
    fn node_slices_for_elems(&self, a: usize, b: usize) -> (usize, usize) {
        let mesh = self.mesh();
        let np2 = mesh.np() * mesh.np();
        let s2 = mesh.s * mesh.s;
        let za = a / s2;
        let zb = (b - 1) / s2;
        let lo = za * np2;
        let hi = ((zb + 2) * np2).min(mesh.n_nodes());
        overlapping_slices(&self.handles.node_slices, lo, hi)
    }

    /// Node flat range of the frontier toward `dir`.
    fn frontier_range(&self, dir: usize) -> (usize, usize) {
        let mesh = self.mesh();
        let np2 = mesh.np() * mesh.np();
        let (_, _, dz) = RankGrid::directions()[dir];
        match dz {
            -1 => (0, np2),
            1 => (mesh.s * np2, mesh.n_nodes()),
            _ => (0, mesh.n_nodes()),
        }
    }

    /// Append one depend item per handle of a group to the buffer.
    fn dep_group(buf: &mut SpecBuf, handles: &[DataHandle], mode: AccessMode) {
        for &h in handles {
            buf.dep(h, mode);
        }
    }
}

impl RankProgram for LuleshTask {
    fn n_iterations(&self) -> u64 {
        self.cfg.iterations
    }

    fn n_ranks(&self) -> Rank {
        self.cfg.n_ranks()
    }

    fn build_iteration(&self, rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        use AccessMode::*;
        let h = &self.handles;
        let cfg = &self.cfg;
        let space = &self.space;
        let fused = cfg.fused_deps;
        let want = sub.wants_bodies() && self.state.is_some();
        let multi = cfg.n_ranks() > 1;
        // One recycled construction buffer for the whole iteration: after
        // the widest task warms it up, submissions build no Vecs.
        let mut buf = SpecBuf::new();
        let dg = Self::dep_group;
        let tg = |buf: &mut SpecBuf, hs: &[DataHandle]| {
            for &hd in hs {
                buf.touch(HandleSlice::whole(hd, space.info(hd).bytes));
            }
        };
        let tmp = |buf: &mut SpecBuf, handle: DataHandle, total: usize, arrays, a: usize, b| {
            for k in 0..arrays as u64 {
                buf.touch(HandleSlice {
                    handle,
                    offset: k * total as u64 * 8 + a as u64 * 8,
                    len: (b - a) as u64 * 8,
                });
            }
        };
        let qg = |buf: &mut SpecBuf, a: usize, b: usize| {
            let (a, b) = (a as u64, b as u64);
            if fused {
                for k in 0..2u64 {
                    buf.touch(HandleSlice {
                        handle: h.qgrad[0],
                        offset: k * h.n_elems as u64 * 8 + a * 8,
                        len: (b - a) * 8,
                    });
                }
            } else {
                for &hd in &h.qgrad {
                    buf.touch(HandleSlice {
                        handle: hd,
                        offset: a * 8,
                        len: (b - a) * 8,
                    });
                }
            }
        };

        // 1. dynamic time step: reads every courant slot, reduced globally.
        {
            buf.begin("CalcTimeStep")
                .dep(h.scratch, In)
                .dep(h.dt, Out)
                .flops(h.elem_slices.len() as f64 * 2.0)
                .touch(HandleSlice::whole(h.scratch, space.info(h.scratch).bytes))
                .touch(HandleSlice::whole(h.dt, 8))
                .fp_bytes(16);
            if multi {
                buf.comm(CommOp::Iallreduce { bytes: 8 });
            }
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_dt());
            }
            buf.submit(sub);
        }

        // 2. stress: σ from the EOS fields of the same slice.
        for (i, &(a, b)) in h.elem_slices.iter().enumerate() {
            buf.begin("CalcStressForElems");
            dg(&mut buf, &h.eos[i], In);
            buf.dep(h.sig[i], Out).flops((b - a) as f64 * F_STRESS);
            tg(&mut buf, &h.eos[i]);
            buf.touch(HandleSlice::whole(h.sig[i], space.info(h.sig[i]).bytes));
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_stress(a..b));
            }
            buf.submit(sub);
        }

        // 3. CalcForceForNodes: zero the nodal force slices before the
        // gather (the group opener the hourglass inoutset members follow).
        for (i, &(a, b)) in h.node_slices.iter().enumerate() {
            buf.begin("CalcForceForNodes");
            dg(&mut buf, &h.force[i], Out);
            buf.flops((b - a) as f64 * F_ZEROF);
            tg(&mut buf, &h.force[i]);
            buf.submit(sub);
        }

        // 4. force gather: task i computes the forces of node slab i from
        // the adjacent sig slices. Because its elements also touch nodes
        // of the neighbouring slabs, the *declared* writes cover slices
        // i−1..i+1 with `inoutset` — the concurrent-write groups of the
        // paper's Fig. 4 (the body writes only its own slab, so members
        // are race-free, as in the real port).
        let n_ns = h.node_slices.len();
        for (i, &(a, b)) in h.node_slices.iter().enumerate() {
            let (e0, e1) = self.elem_slices_for_nodes(a, b);
            buf.begin("CalcFBHourglassForceForElems");
            for j in e0..=e1 {
                buf.dep(h.sig[j], In);
            }
            let j0 = i.saturating_sub(1);
            let j1 = (i + 1).min(n_ns - 1);
            for j in j0..=j1 {
                dg(&mut buf, &h.force[j], InOutSet);
            }
            // the hourglass control reads the nodal coordinates too
            dg(&mut buf, &h.pos[i], In);
            buf.flops((b - a) as f64 * F_FORCE);
            for j in e0..=e1 {
                buf.touch(HandleSlice::whole(h.sig[j], space.info(h.sig[j]).bytes));
            }
            tg(&mut buf, &h.force[i]);
            tg(&mut buf, &h.pos[i]);
            tmp(
                &mut buf,
                h.tmp_elem,
                h.n_elems,
                4,
                a.min(h.n_elems - 1),
                b.min(h.n_elems),
            );
            tmp(&mut buf, h.tmp_node, h.n_nodes, 2, a, b);
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_force(a..b));
            }
            buf.submit(sub);
        }

        // 5. acceleration solve: F/m plus the symmetry boundary
        // conditions, into the acceleration arrays.
        for (i, &(a, b)) in h.node_slices.iter().enumerate() {
            buf.begin("CalcAccelerationForNodes");
            dg(&mut buf, &h.force[i], In);
            buf.dep(h.dt, In);
            dg(&mut buf, &h.acc[i], Out);
            buf.flops((b - a) as f64 * F_ACCSOLVE);
            tg(&mut buf, &h.force[i]);
            tg(&mut buf, &h.acc[i]);
            buf.touch(HandleSlice {
                handle: h.mass,
                offset: a as u64 * 8,
                len: (b - a) as u64 * 8,
            });
            buf.submit(sub);
        }

        // 6. velocity integration (carries the real k_accel body: its
        // force reads are ordered transitively through the acceleration
        // slice).
        for (i, &(a, b)) in h.node_slices.iter().enumerate() {
            buf.begin("CalcVelocityForNodes");
            dg(&mut buf, &h.acc[i], In);
            dg(&mut buf, &h.vel[i], InOut);
            buf.flops((b - a) as f64 * F_ACCEL);
            tg(&mut buf, &h.acc[i]);
            tg(&mut buf, &h.vel[i]);
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_accel(a..b));
            }
            buf.submit(sub);
        }

        // 5. positions.
        for (i, &(a, b)) in h.node_slices.iter().enumerate() {
            buf.begin("CalcPositionForNodes");
            dg(&mut buf, &h.vel[i], In);
            buf.dep(h.dt, In);
            dg(&mut buf, &h.pos[i], InOut);
            buf.flops((b - a) as f64 * F_POS);
            tg(&mut buf, &h.vel[i]);
            tg(&mut buf, &h.pos[i]);
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_pos(a..b));
            }
            buf.submit(sub);
        }

        // Optional taskwait fence before the communication sequence.
        if cfg.taskwait_fenced {
            buf.begin("taskwait").dep(h.fence, InOut);
            for i in 0..h.node_slices.len() {
                dg(&mut buf, &h.pos[i], InOut);
                dg(&mut buf, &h.vel[i], InOut);
            }
            buf.submit(sub);
        }

        // Frontier exchange with the 26 neighbors.
        if multi {
            for nb in cfg.grid.neighbors(rank) {
                let bytes = RankGrid::message_bytes(cfg.s, nb.axes, EXCHANGE_FIELDS);
                let dir = nb.dir;
                let (fa, fb) = self.frontier_range(dir);
                let (s0, s1) = overlapping_slices(&h.node_slices, fa, fb);
                // Receive: the buffer write-dependence orders it after the
                // previous iteration's unpack (WAR through rbuf).
                buf.begin("MPI_Irecv")
                    .dep(h.rbuf[dir], Out)
                    .comm(CommOp::Irecv {
                        peer: nb.rank,
                        bytes,
                        tag: RankGrid::opposite(dir) as u32,
                    })
                    .submit(sub);
                // Pack frontier values (positions, velocities and the
                // boundary forces — the second reader of the force
                // inoutset groups, where optimization (c) pays off).
                buf.begin("Pack");
                for i in s0..=s1 {
                    dg(&mut buf, &h.pos[i], In);
                    dg(&mut buf, &h.vel[i], In);
                    dg(&mut buf, &h.force[i], In);
                }
                buf.dep(h.sbuf[dir], Out)
                    .flops(bytes as f64 / 8.0 * 2.0)
                    .touch(HandleSlice::whole(h.sbuf[dir], bytes))
                    .fp_bytes(48)
                    .submit(sub);
                buf.begin("MPI_Isend")
                    .dep(h.sbuf[dir], In)
                    .comm(CommOp::Isend {
                        peer: nb.rank,
                        bytes,
                        tag: dir as u32,
                    })
                    .submit(sub);
                // Unpack into the frontier slices.
                buf.begin("Unpack").dep(h.rbuf[dir], In);
                for i in s0..=s1 {
                    dg(&mut buf, &h.pos[i], InOut);
                    dg(&mut buf, &h.vel[i], InOut);
                }
                buf.flops(bytes as f64 / 8.0 * 2.0)
                    .touch(HandleSlice::whole(h.rbuf[dir], bytes))
                    .fp_bytes(48)
                    .submit(sub);
            }
        }

        if cfg.taskwait_fenced {
            buf.begin("taskwait").dep(h.fence, InOut);
            for i in 0..h.node_slices.len() {
                dg(&mut buf, &h.pos[i], InOut);
                dg(&mut buf, &h.vel[i], InOut);
            }
            buf.submit(sub);
        }

        // 6. kinematics: element volumes from the updated positions.
        for (i, &(a, b)) in h.elem_slices.iter().enumerate() {
            let (n0, n1) = self.node_slices_for_elems(a, b);
            buf.begin("CalcLagrangeElements");
            for j in n0..=n1 {
                dg(&mut buf, &h.pos[j], In);
            }
            dg(&mut buf, &h.kin[i], Out);
            for j in n0..=n1 {
                dg(&mut buf, &h.vel[j], In);
            }
            buf.flops((b - a) as f64 * F_KIN);
            for j in n0..=n1 {
                tg(&mut buf, &h.pos[j]);
                tg(&mut buf, &h.vel[j]);
            }
            tg(&mut buf, &h.kin[i]);
            tmp(&mut buf, h.tmp_elem, h.n_elems, 1, a, b);
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_kin(a..b));
            }
            buf.submit(sub);
        }

        // 9. monotonic Q gradient: writes the gradient arrays through the
        // mesh indirection, so the whole arrays are declared `inoutset` —
        // the m writers of the Fig. 4 pattern.
        for (i, &(a, b)) in h.elem_slices.iter().enumerate() {
            let (n0, n1) = self.node_slices_for_elems(a, b);
            buf.begin("CalcMonotonicQGradientsForElems");
            for j in n0..=n1 {
                dg(&mut buf, &h.pos[j], In);
                dg(&mut buf, &h.vel[j], In);
            }
            dg(&mut buf, &h.kin[i], In);
            dg(&mut buf, &h.qgrad, InOutSet);
            buf.flops((b - a) as f64 * F_QGRAD);
            for j in n0..=n1 {
                tg(&mut buf, &h.pos[j]);
                tg(&mut buf, &h.vel[j]);
            }
            tg(&mut buf, &h.kin[i]);
            qg(&mut buf, a, b);
            tmp(&mut buf, h.tmp_elem, h.n_elems, 1, a, b);
            buf.submit(sub);
        }

        // 10. monotonic Q region: reads neighbour gradients through the
        // same indirection — the n readers of the m·n pattern (without
        // optimization (c) this costs TPL² edges).
        for (i, &(a, b)) in h.elem_slices.iter().enumerate() {
            buf.begin("CalcMonotonicQRegionForElems");
            dg(&mut buf, &h.qgrad, In);
            dg(&mut buf, &h.qq[i], Out);
            buf.flops((b - a) as f64 * F_QREGION);
            qg(&mut buf, a.saturating_sub(1), (b + 1).min(h.n_elems));
            tg(&mut buf, &h.qq[i]);
            buf.submit(sub);
        }

        // 11. first energy pass.
        for (i, &(a, b)) in h.elem_slices.iter().enumerate() {
            buf.begin("CalcEnergyForElems");
            dg(&mut buf, &h.kin[i], In);
            dg(&mut buf, &h.qq[i], In);
            dg(&mut buf, &h.epass[i], Out);
            buf.flops((b - a) as f64 * F_EPASS);
            tg(&mut buf, &h.kin[i]);
            tg(&mut buf, &h.qq[i]);
            tg(&mut buf, &h.epass[i]);
            tmp(&mut buf, h.tmp_elem, h.n_elems, 1, a, b);
            buf.submit(sub);
        }

        // 12. EOS (the real material update body).
        for (i, &(a, b)) in h.elem_slices.iter().enumerate() {
            buf.begin("EvalEOSForElems");
            dg(&mut buf, &h.kin[i], In);
            dg(&mut buf, &h.qq[i], In);
            dg(&mut buf, &h.epass[i], In);
            dg(&mut buf, &h.eos[i], InOut);
            buf.flops((b - a) as f64 * F_EOS);
            tg(&mut buf, &h.kin[i]);
            tg(&mut buf, &h.qq[i]);
            tg(&mut buf, &h.epass[i]);
            tg(&mut buf, &h.eos[i]);
            tmp(&mut buf, h.tmp_elem, h.n_elems, 2, a, b);
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_eos(a..b));
            }
            buf.submit(sub);
        }

        // 13. UpdateVolumesForElems.
        for (i, &(a, b)) in h.elem_slices.iter().enumerate() {
            buf.begin("UpdateVolumesForElems");
            dg(&mut buf, &h.eos[i], In);
            dg(&mut buf, &h.kin[i], InOut);
            buf.flops((b - a) as f64 * F_UPDVOL);
            tg(&mut buf, &h.eos[i]);
            tg(&mut buf, &h.kin[i]);
            buf.submit(sub);
        }

        // 8. courant: concurrent writes into the scratch vector.
        for (i, &(a, b)) in h.elem_slices.iter().enumerate() {
            buf.begin("CalcCourantConstraintForElems");
            dg(&mut buf, &h.eos[i], In);
            buf.dep(h.scratch, InOutSet)
                .flops((b - a) as f64 * F_COURANT);
            tg(&mut buf, &h.eos[i]);
            buf.touch(HandleSlice {
                handle: h.scratch,
                offset: i as u64 * 8,
                len: 8,
            });
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |ctx| {
                    let _ = ctx;
                    st.k_courant(a..b, i)
                });
            }
            buf.submit(sub);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdg_core::builder::{CountingSubmitter, RecordingSubmitter};

    #[test]
    fn task_count_matches_config() {
        let cfg = LuleshConfig::single(8, 2, 16);
        let prog = LuleshTask::new(cfg.clone());
        let mut c = CountingSubmitter::default();
        prog.build_iteration(0, 0, &mut c);
        assert_eq!(c.tasks as usize, cfg.compute_tasks_per_iteration());
    }

    #[test]
    fn multi_rank_adds_comm_tasks() {
        let cfg = LuleshConfig {
            grid: RankGrid::cube(8),
            ..LuleshConfig::single(8, 1, 16)
        };
        let prog = LuleshTask::new(cfg.clone());
        let mut c = RecordingSubmitter::default();
        // rank 0 is a corner: 7 neighbors × 4 tasks each
        prog.build_iteration(0, 0, &mut c);
        let comm_tasks = c
            .specs
            .iter()
            .filter(|s| s.name.starts_with("MPI_") || s.name == "Pack" || s.name == "Unpack")
            .count();
        assert_eq!(comm_tasks, 7 * 4);
        // the dt task became a collective
        assert!(c.specs[0].comm.is_some());
        let isends = c
            .specs
            .iter()
            .filter(|s| matches!(s.comm, Some(CommOp::Isend { .. })))
            .count();
        assert_eq!(isends, 7);
    }

    #[test]
    fn taskwait_fence_adds_two_fence_tasks() {
        let cfg = LuleshConfig {
            taskwait_fenced: true,
            grid: RankGrid::cube(8),
            ..LuleshConfig::single(8, 1, 8)
        };
        let prog = LuleshTask::new(cfg);
        let mut c = RecordingSubmitter::default();
        prog.build_iteration(0, 0, &mut c);
        assert_eq!(c.specs.iter().filter(|s| s.name == "taskwait").count(), 2);
    }

    #[test]
    fn send_recv_tags_pair_up() {
        let cfg = LuleshConfig {
            grid: RankGrid::cube(27),
            ..LuleshConfig::single(6, 1, 8)
        };
        let prog = LuleshTask::new(cfg.clone());
        // For every (sender, dir) Isend there must be a matching Irecv on
        // the peer with the same tag and size.
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for rank in 0..27u32 {
            let mut c = RecordingSubmitter::default();
            prog.build_iteration(rank, 0, &mut c);
            for s in &c.specs {
                match s.comm {
                    Some(CommOp::Isend { peer, bytes, tag }) => {
                        sends.push((rank, peer, tag, bytes))
                    }
                    Some(CommOp::Irecv { peer, bytes, tag }) => {
                        recvs.push((peer, rank, tag, bytes))
                    }
                    _ => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs, "every send must have a matching recv");
        assert!(!sends.is_empty());
    }

    #[test]
    fn fused_deps_reduce_depend_items() {
        let cfg_f = LuleshConfig::single(8, 1, 16);
        let cfg_u = LuleshConfig {
            fused_deps: false,
            ..cfg_f.clone()
        };
        let mut cf = CountingSubmitter::default();
        LuleshTask::new(cfg_f).build_iteration(0, 0, &mut cf);
        let mut cu = CountingSubmitter::default();
        LuleshTask::new(cfg_u).build_iteration(0, 0, &mut cu);
        assert_eq!(cf.tasks, cu.tasks);
        assert!(
            cf.depend_items * 2 < cu.depend_items,
            "(a) must cut depend items: fused {} vs unfused {}",
            cf.depend_items,
            cu.depend_items
        );
    }
}
