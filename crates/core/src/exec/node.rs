//! Runtime task nodes.

use crate::task::{TaskBody, TaskId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Mutable graph-side state of a node, guarded by one small lock.
///
/// The lock serializes the completion of the predecessor against the
/// producer attaching new successor edges — the race that makes edge
/// *pruning* well-defined: an edge requested after completion is pruned.
#[derive(Default)]
pub(crate) struct NodeLinks {
    /// Successors to release on completion.
    pub succs: Vec<Arc<Node>>,
    /// Whether the task has completed (this iteration).
    pub completed: bool,
}

/// A live task instance.
pub(crate) struct Node {
    /// Dense id (profiling / debugging).
    pub id: TaskId,
    /// Task name.
    pub name: &'static str,
    /// Body to run (None for redirect nodes).
    pub body: Option<TaskBody>,
    /// Predecessors not yet completed, plus one "creation token" held by
    /// the producer until the node is sealed.
    pub pending: AtomicU32,
    /// Links + completion flag.
    pub links: Mutex<NodeLinks>,
    /// Current iteration (the firstprivate payload a persistent
    /// re-instance rewrites).
    pub iter: AtomicU64,
    /// Successor list of an instanced persistent node. Set once when the
    /// captured template is instanced; unlike streaming edges these
    /// survive completion, so re-instancing allocates nothing.
    pub persistent_succs: OnceLock<Vec<Arc<Node>>>,
}

impl Node {
    /// A new node holding its creation token.
    pub fn new(id: TaskId, name: &'static str, body: Option<TaskBody>, iter: u64) -> Arc<Node> {
        Arc::new(Node {
            id,
            name,
            body,
            pending: AtomicU32::new(1), // creation token
            links: Mutex::new(NodeLinks::default()),
            iter: AtomicU64::new(iter),
            persistent_succs: OnceLock::new(),
        })
    }

    /// Reset an instanced persistent node for a new iteration: restore its
    /// dependence counter and rewrite its firstprivate payload (here, the
    /// iteration number) — the paper's "single memcpy" re-instance cost.
    pub fn reset_for_iteration(&self, indegree: u32, iter: u64) {
        self.links.lock().completed = false;
        self.pending.store(indegree, Ordering::SeqCst);
        self.iter.store(iter, Ordering::SeqCst);
    }

    /// Attach an edge `self -> succ`, unless `self` already completed.
    /// Returns whether the edge was created.
    pub fn attach_succ(self: &Arc<Node>, succ: &Arc<Node>) -> bool {
        let mut links = self.links.lock();
        if links.completed {
            return false; // pruned
        }
        succ.pending.fetch_add(1, Ordering::SeqCst);
        links.succs.push(Arc::clone(succ));
        true
    }

    /// Drop the creation token; returns `true` if the node became ready.
    pub fn seal(&self) -> bool {
        self.pending.fetch_sub(1, Ordering::SeqCst) == 1
    }

    /// Mark completed and take the successor list. Each taken successor's
    /// `pending` must then be decremented by the caller.
    pub fn complete(&self) -> Vec<Arc<Node>> {
        let mut links = self.links.lock();
        links.completed = true;
        std::mem::take(&mut links.succs)
    }

    /// Notify that one predecessor finished; `true` if now ready.
    pub fn release_one(&self) -> bool {
        self.pending.fetch_sub(1, Ordering::SeqCst) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creation_token_prevents_premature_ready() {
        let a = Node::new(TaskId(0), "a", None, 0);
        let b = Node::new(TaskId(1), "b", None, 0);
        assert!(a.attach_succ(&b));
        // b has token + 1 pred = 2 pending; sealing only drops the token.
        assert!(!b.seal());
        let succs = a.complete();
        assert_eq!(succs.len(), 1);
        assert!(succs[0].release_one(), "b ready after its only pred");
    }

    #[test]
    fn edge_to_completed_node_is_pruned() {
        let a = Node::new(TaskId(0), "a", None, 0);
        let b = Node::new(TaskId(1), "b", None, 0);
        a.complete();
        assert!(!a.attach_succ(&b));
        assert!(b.seal(), "b is a root: ready on seal");
    }

    #[test]
    fn root_ready_on_seal() {
        let a = Node::new(TaskId(0), "a", None, 0);
        assert!(a.seal());
    }

    #[test]
    fn multiple_preds_release_in_any_order() {
        let p1 = Node::new(TaskId(0), "p1", None, 0);
        let p2 = Node::new(TaskId(1), "p2", None, 0);
        let s = Node::new(TaskId(2), "s", None, 0);
        p1.attach_succ(&s);
        p2.attach_succ(&s);
        assert!(!s.seal());
        for succ in p2.complete() {
            assert!(!succ.release_one());
        }
        for succ in p1.complete() {
            assert!(succ.release_one());
        }
    }

    #[test]
    fn duplicate_edges_require_duplicate_releases() {
        // Without optimization (b), the same (pred, succ) pair may carry
        // two edges; correctness demands both be released.
        let p = Node::new(TaskId(0), "p", None, 0);
        let s = Node::new(TaskId(1), "s", None, 0);
        p.attach_succ(&s);
        p.attach_succ(&s);
        s.seal();
        let succs = p.complete();
        assert_eq!(succs.len(), 2);
        assert!(!succs[0].release_one());
        assert!(succs[1].release_one());
    }
}
