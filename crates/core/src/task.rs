//! Task identity, specification and bodies.

use crate::access::{AccessMode, Depend};
use crate::handle::DataHandle;
use crate::workdesc::{CommOp, WorkDesc};
use std::fmt;
use std::sync::Arc;

/// Identifier of a task within one discovery session / template.
///
/// Ids are dense and assigned in submission order, which the discovery
/// engine exploits for its O(1) duplicate-edge probe.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Execution context passed to task bodies.
///
/// With a persistent graph, the same body closure runs once per iteration;
/// `iter` is the firstprivate data that the runtime re-instances — bodies
/// must read the iteration from here, never capture it by value at
/// discovery time.
#[derive(Clone, Copy, Debug)]
pub struct TaskCtx {
    /// The task being executed.
    pub task: TaskId,
    /// Current iteration of the enclosing (persistent) region; 0 for
    /// non-iterative submission.
    pub iter: u64,
    /// Worker executing the task.
    pub worker: usize,
}

/// A task body: the actual computation.
pub type TaskBody = Arc<dyn Fn(&TaskCtx) + Send + Sync + 'static>;

/// Full description of one task, as submitted by the producer thread.
#[derive(Clone)]
pub struct TaskSpec {
    /// Debug/profiling name (also used to group Gantt rows).
    pub name: &'static str,
    /// The `depend` clause.
    pub depends: Vec<Depend>,
    /// Cost-model description (used by the virtual executor).
    pub work: WorkDesc,
    /// Optional communication side effect (detached semantics).
    pub comm: Option<CommOp>,
    /// Optional real computation (used by the thread executor).
    pub body: Option<TaskBody>,
    /// Size of the task's firstprivate payload in bytes; this is what a
    /// persistent re-instance must memcpy (paper: 8–100 B for LULESH).
    pub fp_bytes: u32,
}

impl TaskSpec {
    /// A new task with no dependences, unit-less work, and no body.
    pub fn new(name: &'static str) -> Self {
        TaskSpec {
            name,
            depends: Vec::new(),
            work: WorkDesc::default(),
            comm: None,
            body: None,
            fp_bytes: 16,
        }
    }

    /// Add one depend item.
    pub fn depend(mut self, handle: DataHandle, mode: AccessMode) -> Self {
        self.depends.push(Depend::new(handle, mode));
        self
    }

    /// Add many depend items.
    pub fn depends(mut self, items: impl IntoIterator<Item = Depend>) -> Self {
        self.depends.extend(items);
        self
    }

    /// Set the work descriptor.
    pub fn work(mut self, work: WorkDesc) -> Self {
        self.work = work;
        self
    }

    /// Attach a communication operation (detached-task semantics).
    pub fn comm(mut self, op: CommOp) -> Self {
        self.comm = Some(op);
        self
    }

    /// Attach the computational body.
    pub fn body<F: Fn(&TaskCtx) + Send + Sync + 'static>(mut self, f: F) -> Self {
        self.body = Some(Arc::new(f));
        self
    }

    /// Set the firstprivate payload size.
    pub fn firstprivate_bytes(mut self, bytes: u32) -> Self {
        self.fp_bytes = bytes;
        self
    }
}

impl TaskSpec {
    /// Borrow this spec as a [`SpecView`] — the form the discovery hot
    /// path consumes.
    pub fn view(&self) -> SpecView<'_> {
        SpecView {
            name: self.name,
            depends: &self.depends,
            flops: self.work.flops,
            footprint: &self.work.footprint,
            comm: self.comm,
            body: self.body.as_ref(),
            fp_bytes: self.fp_bytes,
        }
    }

    /// Materialize an owned spec from a view (allocates; used by sinks
    /// that must retain the data, e.g. the recording submitter).
    pub fn from_view(view: &SpecView<'_>) -> TaskSpec {
        TaskSpec {
            name: view.name,
            depends: view.depends.to_vec(),
            work: WorkDesc {
                flops: view.flops,
                footprint: view.footprint.to_vec(),
            },
            comm: view.comm,
            body: view.body.cloned(),
            fp_bytes: view.fp_bytes,
        }
    }
}

/// A borrowed view of one task submission — what [`TaskSpec`] describes,
/// without owning any of it.
///
/// This is the currency of the allocation-free submission path
/// (DESIGN.md §4.4): the depend list and footprint are slices into a
/// recycled buffer ([`crate::builder::SpecBuf`]), so submitting a task
/// creates no `Vec`s. `WorkDesc` is decomposed into `flops` +
/// `footprint` because its owned footprint vector is exactly the
/// allocation this type exists to avoid.
#[derive(Clone, Copy)]
pub struct SpecView<'a> {
    /// Debug/profiling name.
    pub name: &'static str,
    /// The `depend` clause.
    pub depends: &'a [Depend],
    /// Cost-model flop count.
    pub flops: f64,
    /// Cost-model memory footprint.
    pub footprint: &'a [crate::workdesc::HandleSlice],
    /// Optional communication side effect.
    pub comm: Option<CommOp>,
    /// Optional real computation (cloned — a refcount bump — by sinks
    /// that keep it).
    pub body: Option<&'a TaskBody>,
    /// Firstprivate payload size in bytes.
    pub fp_bytes: u32,
}

impl fmt::Debug for SpecView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecView")
            .field("name", &self.name)
            .field("depends", &self.depends)
            .field("flops", &self.flops)
            .field("comm", &self.comm)
            .field("has_body", &self.body.is_some())
            .field("fp_bytes", &self.fp_bytes)
            .finish()
    }
}

impl fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskSpec")
            .field("name", &self.name)
            .field("depends", &self.depends)
            .field("flops", &self.work.flops)
            .field("comm", &self.comm)
            .field("has_body", &self.body.is_some())
            .field("fp_bytes", &self.fp_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleSpace;
    use crate::workdesc::HandleSlice;

    #[test]
    fn builder_accumulates() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 8);
        let y = s.region("y", 8);
        let spec = TaskSpec::new("demo")
            .depend(x, AccessMode::Out)
            .depends([Depend::read(y)])
            .work(WorkDesc::compute(42.0))
            .comm(CommOp::Iallreduce { bytes: 8 })
            .firstprivate_bytes(24)
            .body(|_| {});
        assert_eq!(spec.depends.len(), 2);
        assert_eq!(spec.work.flops, 42.0);
        assert!(spec.comm.is_some());
        assert!(spec.body.is_some());
        assert_eq!(spec.fp_bytes, 24);
        assert!(format!("{spec:?}").contains("demo"));
    }

    #[test]
    fn view_round_trips() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 8);
        let spec = TaskSpec::new("rt")
            .depend(x, AccessMode::InOut)
            .work(WorkDesc::compute(3.0).touching(HandleSlice::whole(x, 8)))
            .firstprivate_bytes(32)
            .body(|_| {});
        let back = TaskSpec::from_view(&spec.view());
        assert_eq!(back.name, spec.name);
        assert_eq!(back.depends, spec.depends);
        assert_eq!(back.work.flops, spec.work.flops);
        assert_eq!(back.work.footprint.len(), 1);
        assert!(back.body.is_some());
        assert_eq!(back.fp_bytes, 32);
        assert!(format!("{:?}", spec.view()).contains("rt"));
    }

    #[test]
    fn task_ids_order_by_index() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(TaskId(7).index(), 7);
        assert_eq!(format!("{:?}", TaskId(3)), "t3");
    }
}
