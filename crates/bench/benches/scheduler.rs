//! Thread-executor micro-benchmarks: end-to-end graph execution under
//! both scheduling policies, and persistent re-instancing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ptdg_core::access::AccessMode;
use ptdg_core::exec::{ExecConfig, Executor, QueueBackend, SchedPolicy};
use ptdg_core::handle::HandleSpace;
use ptdg_core::opts::OptConfig;
use ptdg_core::task::TaskSpec;
use ptdg_core::throttle::ThrottleConfig;
use std::hint::black_box;

const N_TASKS: usize = 1_000;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_e2e");
    group.throughput(Throughput::Elements(N_TASKS as u64));
    group.sample_size(10);
    for policy in [SchedPolicy::DepthFirst, SchedPolicy::BreadthFirst] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let mut space = HandleSpace::new();
                let handles: Vec<_> = (0..32).map(|_| space.region("h", 64)).collect();
                let exec = Executor::new(ExecConfig {
                    n_workers: 2,
                    policy,
                    throttle: ThrottleConfig::unbounded(),
                    profile: false,
                    record_events: false,
                });
                b.iter(|| {
                    let mut session = exec.session(OptConfig::all());
                    for i in 0..N_TASKS {
                        session.submit(
                            TaskSpec::new("t")
                                .depend(handles[i % 32], AccessMode::InOut)
                                .body(|ctx| {
                                    black_box(ctx.task);
                                }),
                        );
                    }
                    session.wait_all();
                })
            },
        );
    }
    group.finish();
}

/// Lock-free vs mutex `ReadyQueues` backends on the same empty-body
/// fan-out: one root releasing `N_TASKS` successors, so the steal path
/// (workers draining the completing worker's deque) dominates.
fn bench_queue_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_backend");
    group.throughput(Throughput::Elements(N_TASKS as u64));
    group.sample_size(10);
    for backend in [QueueBackend::Locked, QueueBackend::LockFree] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                let mut space = HandleSpace::new();
                let root = space.region("root", 64);
                let leaves: Vec<_> = (0..N_TASKS).map(|_| space.region("l", 64)).collect();
                let exec = Executor::with_queue_backend(
                    ExecConfig {
                        n_workers: 4,
                        policy: SchedPolicy::DepthFirst,
                        throttle: ThrottleConfig::unbounded(),
                        profile: false,
                        record_events: false,
                    },
                    backend,
                );
                b.iter(|| {
                    let mut session = exec.session(OptConfig::all());
                    session.submit(
                        TaskSpec::new("root")
                            .depend(root, AccessMode::Out)
                            .body(|_| {}),
                    );
                    for &leaf in &leaves {
                        session.submit(
                            TaskSpec::new("leaf")
                                .depend(root, AccessMode::In)
                                .depend(leaf, AccessMode::Out)
                                .body(|ctx| {
                                    black_box(ctx.task);
                                }),
                        );
                    }
                    session.wait_all();
                })
            },
        );
    }
    group.finish();
}

fn bench_persistent_region(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistent_region");
    group.throughput(Throughput::Elements(N_TASKS as u64));
    group.sample_size(10);
    group.bench_function("reinstance_iteration", |b| {
        let mut space = HandleSpace::new();
        let handles: Vec<_> = (0..32).map(|_| space.region("h", 64)).collect();
        let exec = Executor::new(ExecConfig {
            n_workers: 2,
            policy: SchedPolicy::DepthFirst,
            throttle: ThrottleConfig::unbounded(),
            profile: false,
            record_events: false,
        });
        let mut region = exec.persistent_region(OptConfig::all());
        let mut iter = 0u64;
        // capture on the first iteration (outside the timed loop)
        region.run(0, |sub| {
            for i in 0..N_TASKS {
                sub.submit(
                    TaskSpec::new("t")
                        .depend(handles[i % 32], AccessMode::InOut)
                        .body(|ctx| {
                            black_box(ctx.iter);
                        }),
                );
            }
        });
        b.iter(|| {
            iter += 1;
            region.run(iter, |_| unreachable!("template already captured"));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_queue_backends,
    bench_persistent_region
);
criterion_main!(benches);
