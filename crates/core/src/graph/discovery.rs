//! The per-handle dependence state machine.

use super::{DiscoveryStats, GraphSink};
use crate::access::AccessMode;
use crate::opts::OptConfig;
use crate::task::{SpecView, TaskId, TaskSpec};
use crate::util::InlineVec;

const NO_SUCC: u32 = u32::MAX;

/// Inline capacity of the writer/group lists: a handle usually has one
/// writer; `inoutset` groups beyond 4 members spill once and keep their
/// capacity across [`DiscoveryEngine::reset_handle_state`].
const WRITERS_INLINE: usize = 4;
/// Inline capacity of the per-handle reader list: slice handles see a
/// handful of readers between writes in the bundled apps.
const READERS_INLINE: usize = 8;

/// Dependence state of one data region during sequential discovery.
#[derive(Clone, Debug, Default)]
struct HandleState {
    /// The task(s) whose write this region last saw: a single writer for
    /// `out`/`inout`, or every member of the current `inoutset` group.
    last_writers: InlineVec<TaskId, WRITERS_INLINE>,
    /// Whether `last_writers` is an `inoutset` group.
    writers_are_set: bool,
    /// Whether the group can still accept members (no other-mode access has
    /// been seen on this region since the group opened).
    group_open: bool,
    /// Redirect node materialized for this group by optimization (c).
    redirect: Option<TaskId>,
    /// Predecessors each *new member* of the open group must depend on.
    group_base: InlineVec<TaskId, WRITERS_INLINE>,
    /// Readers since the last write.
    readers: InlineVec<TaskId, READERS_INLINE>,
}

/// Sequential task-dependency-graph discovery.
///
/// One engine instance embodies one producer thread's discovery of one
/// graph (or one iteration of a persistent region). It owns the per-handle
/// dependence state and the duplicate-edge probe table, and emits nodes and
/// edges into a [`GraphSink`].
#[derive(Debug)]
pub struct DiscoveryEngine {
    opts: OptConfig,
    handles: Vec<HandleState>,
    /// `last_succ[pred]` = most recent successor attached to `pred`; the
    /// O(1) duplicate probe of optimization (b). Valid because submission
    /// is sequential: duplicate edges from one task's depend list are
    /// attached consecutively.
    last_succ: Vec<u32>,
    stats: DiscoveryStats,
    scratch_preds: Vec<TaskId>,
    /// Scratch for redirect materialization: the group members being
    /// funneled into the redirect node (recycled — never cloned from the
    /// handle state).
    scratch_members: Vec<TaskId>,
}

impl DiscoveryEngine {
    /// New engine with the given optimization switches.
    pub fn new(opts: OptConfig) -> Self {
        DiscoveryEngine {
            opts,
            handles: Vec::new(),
            last_succ: Vec::new(),
            stats: DiscoveryStats::default(),
            scratch_preds: Vec::new(),
            scratch_members: Vec::new(),
        }
    }

    /// The optimization configuration in use.
    pub fn opts(&self) -> OptConfig {
        self.opts
    }

    /// Pre-size the engine's tables so discovering up to `nodes` more
    /// nodes over up to `handles` registered regions allocates nothing
    /// (the inline per-handle lists may still spill on first use; see
    /// DESIGN.md §4.4 for the warm-up protocol).
    pub fn reserve(&mut self, nodes: usize, handles: usize) {
        self.last_succ.reserve(nodes);
        if handles > self.handles.len() {
            self.handles.resize_with(handles, HandleState::default);
        }
        self.scratch_preds.reserve(16);
        self.scratch_members.reserve(16);
    }

    /// Counters so far.
    pub fn stats(&self) -> DiscoveryStats {
        self.stats
    }

    /// Reset the per-handle dependence state (e.g. at an iteration barrier)
    /// while keeping cumulative statistics.
    ///
    /// The persistent-region implementation calls this between iterations:
    /// the implicit barrier guarantees every task completed, so carrying
    /// dependence state across the barrier would only create the
    /// inter-iteration edges that the paper notes are removed (§3.3).
    pub fn reset_handle_state(&mut self) {
        for h in &mut self.handles {
            h.last_writers.clear();
            h.writers_are_set = false;
            h.group_open = false;
            h.redirect = None;
            h.group_base.clear();
            h.readers.clear();
        }
        // The duplicate-edge probe table must reset too: if the sink's ids
        // restart (a fresh graph instance after the barrier), a stale
        // `last_succ[pred] == succ` entry from the previous graph would
        // wrongly suppress the first real `pred -> succ` edge of the new
        // one.
        self.last_succ.fill(NO_SUCC);
    }

    fn handle_mut(&mut self, idx: usize) -> &mut HandleState {
        if idx >= self.handles.len() {
            self.handles.resize_with(idx + 1, HandleState::default);
        }
        &mut self.handles[idx]
    }

    fn note_node(&mut self, id: TaskId) {
        let idx = id.index();
        if idx >= self.last_succ.len() {
            self.last_succ.resize(idx + 1, NO_SUCC);
        }
    }

    /// Add edge `pred -> succ` with the optimization-(b) probe and
    /// self-edge suppression.
    fn edge(&mut self, sink: &mut dyn GraphSink, pred: TaskId, succ: TaskId) {
        if pred == succ {
            // A task reading and writing the same region does not depend on
            // itself (OpenMP orders *distinct* sibling tasks).
            return;
        }
        if self.opts.dedup_edges {
            self.stats.dup_probes += 1;
            let slot = &mut self.last_succ[pred.index()];
            if *slot == succ.0 {
                self.stats.dup_skipped += 1;
                return;
            }
            *slot = succ.0;
        }
        if sink.add_edge(pred, succ) {
            self.stats.edges_created += 1;
        } else {
            self.stats.edges_pruned += 1;
        }
    }

    /// Resolve the predecessors representing "the last write" of handle
    /// `hidx`, materializing the optimization-(c) redirect node when
    /// profitable. The result is left in `self.scratch_preds`.
    fn writer_preds(&mut self, sink: &mut dyn GraphSink, hidx: usize) {
        self.scratch_preds.clear();
        let st = &self.handles[hidx];
        if st.last_writers.is_empty() {
            return;
        }
        if st.writers_are_set && st.last_writers.len() >= 2 && self.opts.inoutset_redirect {
            if let Some(r) = st.redirect {
                self.scratch_preds.push(r);
                return;
            }
            // Materialize R: members -> R, successors will attach to R.
            // The member list is staged through a recycled scratch buffer
            // (a borrow-splitting move, not a clone: `edge` needs `&mut
            // self` while the members live in `self.handles`).
            let mut members = std::mem::take(&mut self.scratch_members);
            members.clear();
            members.extend_from_slice(&st.last_writers);
            let r = sink.add_redirect();
            self.stats.redirect_nodes += 1;
            self.note_node(r);
            for &m in &members {
                self.edge(sink, m, r);
            }
            self.scratch_members = members;
            sink.seal(r);
            self.handles[hidx].redirect = Some(r);
            self.scratch_preds.push(r);
        } else {
            self.scratch_preds.extend_from_slice(&st.last_writers);
        }
    }

    /// Submit one task from an owned [`TaskSpec`] (convenience wrapper
    /// over [`DiscoveryEngine::submit_view`]).
    pub fn submit(&mut self, sink: &mut dyn GraphSink, spec: &TaskSpec) -> TaskId {
        self.submit_view(sink, &spec.view())
    }

    /// Submit one task: create its node, resolve its `depend` clause into
    /// edges, and seal it. Returns the new task's id.
    ///
    /// This is the allocation-free entry point: the view borrows its
    /// depend list and footprint (typically from a recycled
    /// [`crate::builder::SpecBuf`]), and the engine stages everything
    /// through its own recycled scratch buffers.
    pub fn submit_view(&mut self, sink: &mut dyn GraphSink, view: &SpecView<'_>) -> TaskId {
        let id = sink.add_task(view);
        self.note_node(id);
        self.stats.tasks += 1;
        self.stats.depend_items += view.depends.len() as u64;

        for d in view.depends {
            let hidx = d.handle.index();
            self.handle_mut(hidx); // ensure exists
            match d.mode {
                AccessMode::In => {
                    self.writer_preds(sink, hidx);
                    let preds = std::mem::take(&mut self.scratch_preds);
                    for p in &preds {
                        self.edge(sink, *p, id);
                    }
                    self.scratch_preds = preds;
                    let st = &mut self.handles[hidx];
                    st.group_open = false;
                    st.readers.push(id);
                }
                AccessMode::Out | AccessMode::InOut => {
                    if self.handles[hidx].readers.is_empty() {
                        self.writer_preds(sink, hidx);
                    } else {
                        self.scratch_preds.clear();
                        let readers = std::mem::take(&mut self.handles[hidx].readers);
                        self.scratch_preds.extend_from_slice(&readers);
                        self.handles[hidx].readers = readers;
                    }
                    let preds = std::mem::take(&mut self.scratch_preds);
                    for p in &preds {
                        self.edge(sink, *p, id);
                    }
                    self.scratch_preds = preds;
                    let st = &mut self.handles[hidx];
                    st.last_writers.clear();
                    st.last_writers.push(id);
                    st.writers_are_set = false;
                    st.group_open = false;
                    st.redirect = None;
                    st.group_base.clear();
                    st.readers.clear();
                }
                AccessMode::InOutSet => {
                    let joinable = {
                        let st = &self.handles[hidx];
                        st.writers_are_set && st.group_open && st.readers.is_empty()
                    };
                    if joinable {
                        // Join the open group: same base predecessors, no
                        // ordering against fellow members.
                        let base = std::mem::take(&mut self.handles[hidx].group_base);
                        for p in &base {
                            self.edge(sink, *p, id);
                        }
                        self.handles[hidx].group_base = base;
                        self.handles[hidx].last_writers.push(id);
                    } else {
                        // Open a new group.
                        if self.handles[hidx].readers.is_empty() {
                            self.writer_preds(sink, hidx);
                        } else {
                            self.scratch_preds.clear();
                            let readers = std::mem::take(&mut self.handles[hidx].readers);
                            self.scratch_preds.extend_from_slice(&readers);
                            self.handles[hidx].readers = readers;
                        }
                        let preds = std::mem::take(&mut self.scratch_preds);
                        for p in &preds {
                            self.edge(sink, *p, id);
                        }
                        let st = &mut self.handles[hidx];
                        st.group_base.clear();
                        st.group_base.extend_from_slice(&preds);
                        self.scratch_preds = preds;
                        st.last_writers.clear();
                        st.last_writers.push(id);
                        st.writers_are_set = true;
                        st.group_open = true;
                        st.redirect = None;
                        st.readers.clear();
                    }
                }
            }
        }
        sink.seal(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleSpace;
    use std::collections::HashSet;

    /// A sink that records the graph in memory; `consumed` simulates tasks
    /// already executed (for pruning tests).
    #[derive(Default)]
    struct MemSink {
        n_nodes: u32,
        redirects: HashSet<u32>,
        edges: Vec<(u32, u32)>,
        consumed: HashSet<u32>,
        sealed: Vec<u32>,
    }

    impl GraphSink for MemSink {
        fn add_task(&mut self, _spec: &SpecView<'_>) -> TaskId {
            let id = self.n_nodes;
            self.n_nodes += 1;
            TaskId(id)
        }
        fn add_redirect(&mut self) -> TaskId {
            let id = self.n_nodes;
            self.n_nodes += 1;
            self.redirects.insert(id);
            TaskId(id)
        }
        fn add_edge(&mut self, pred: TaskId, succ: TaskId) -> bool {
            if self.consumed.contains(&pred.0) {
                return false;
            }
            self.edges.push((pred.0, succ.0));
            true
        }
        fn seal(&mut self, task: TaskId) {
            self.sealed.push(task.0);
        }
    }

    fn space2() -> (
        HandleSpace,
        crate::handle::DataHandle,
        crate::handle::DataHandle,
    ) {
        let mut s = HandleSpace::new();
        let x = s.region("x", 64);
        let y = s.region("y", 64);
        (s, x, y)
    }

    #[test]
    fn write_then_read_creates_one_edge() {
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        let w = eng.submit(&mut sink, &TaskSpec::new("w").depend(x, AccessMode::Out));
        let r = eng.submit(&mut sink, &TaskSpec::new("r").depend(x, AccessMode::In));
        assert_eq!(sink.edges, vec![(w.0, r.0)]);
        assert_eq!(eng.stats().edges_created, 1);
    }

    #[test]
    fn independent_reads_share_no_edges() {
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        eng.submit(&mut sink, &TaskSpec::new("w").depend(x, AccessMode::Out));
        eng.submit(&mut sink, &TaskSpec::new("r1").depend(x, AccessMode::In));
        eng.submit(&mut sink, &TaskSpec::new("r2").depend(x, AccessMode::In));
        // two reader edges, no edge between readers
        assert_eq!(sink.edges.len(), 2);
        assert!(sink.edges.iter().all(|&(p, _)| p == 0));
    }

    #[test]
    fn write_after_reads_depends_on_all_readers() {
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        eng.submit(&mut sink, &TaskSpec::new("w0").depend(x, AccessMode::Out));
        eng.submit(&mut sink, &TaskSpec::new("r1").depend(x, AccessMode::In));
        eng.submit(&mut sink, &TaskSpec::new("r2").depend(x, AccessMode::In));
        let w = eng.submit(&mut sink, &TaskSpec::new("w1").depend(x, AccessMode::Out));
        // w1 depends on r1, r2 (not directly on w0: transitive through readers)
        let to_w: Vec<u32> = sink
            .edges
            .iter()
            .filter(|&&(_, s)| s == w.0)
            .map(|&(p, _)| p)
            .collect();
        assert_eq!(to_w, vec![1, 2]);
    }

    #[test]
    fn write_after_write_chains() {
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        eng.submit(&mut sink, &TaskSpec::new("w0").depend(x, AccessMode::Out));
        eng.submit(&mut sink, &TaskSpec::new("w1").depend(x, AccessMode::InOut));
        eng.submit(&mut sink, &TaskSpec::new("w2").depend(x, AccessMode::Out));
        assert_eq!(sink.edges, vec![(0, 1), (1, 2)]);
    }

    /// Paper Fig. 3: a task writing (x, y) followed by a task reading
    /// (x, y). Without optimizations this is two edges; (b) elides the
    /// duplicate; user-side (a) would avoid even the probes.
    #[test]
    fn opt_b_elides_duplicate_edges_fig3() {
        let (_s, x, y) = space2();
        let run = |opts: OptConfig| {
            let mut eng = DiscoveryEngine::new(opts);
            let mut sink = MemSink::default();
            eng.submit(
                &mut sink,
                &TaskSpec::new("w")
                    .depend(x, AccessMode::Out)
                    .depend(y, AccessMode::Out),
            );
            eng.submit(
                &mut sink,
                &TaskSpec::new("r")
                    .depend(x, AccessMode::In)
                    .depend(y, AccessMode::In),
            );
            (sink.edges.len(), eng.stats())
        };
        let (edges_none, stats_none) = run(OptConfig::none());
        let (edges_b, stats_b) = run(OptConfig::dedup_only());
        assert_eq!(edges_none, 2, "duplicate edge materialized without (b)");
        assert_eq!(edges_b, 1, "(b) elides the duplicate");
        assert_eq!(stats_none.dup_probes, 0);
        assert_eq!(stats_b.dup_probes, 2);
        assert_eq!(stats_b.dup_skipped, 1);
    }

    /// Paper Fig. 4: m inoutset writers then n readers — m·n edges without
    /// (c), m+n with (c).
    #[test]
    fn opt_c_redirect_reduces_mn_to_m_plus_n_fig4() {
        let (m, n) = (5usize, 7usize);
        let run = |opts: OptConfig| {
            let mut s = HandleSpace::new();
            let x = s.region("x", 64);
            let mut eng = DiscoveryEngine::new(opts);
            let mut sink = MemSink::default();
            for _ in 0..m {
                eng.submit(
                    &mut sink,
                    &TaskSpec::new("X").depend(x, AccessMode::InOutSet),
                );
            }
            for _ in 0..n {
                eng.submit(&mut sink, &TaskSpec::new("Y").depend(x, AccessMode::In));
            }
            (sink.edges.len(), sink.redirects.len(), eng.stats())
        };
        let (edges_plain, r_plain, _) = run(OptConfig::none());
        let (edges_c, r_c, stats_c) = run(OptConfig::redirect_only());
        assert_eq!(edges_plain, m * n);
        assert_eq!(r_plain, 0);
        assert_eq!(edges_c, m + n);
        assert_eq!(r_c, 1);
        assert_eq!(stats_c.redirect_nodes, 1);
    }

    #[test]
    fn inoutset_members_do_not_order_against_each_other() {
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        let w = eng.submit(&mut sink, &TaskSpec::new("w").depend(x, AccessMode::Out));
        let a = eng.submit(
            &mut sink,
            &TaskSpec::new("a").depend(x, AccessMode::InOutSet),
        );
        let b = eng.submit(
            &mut sink,
            &TaskSpec::new("b").depend(x, AccessMode::InOutSet),
        );
        // a and b each depend on w only.
        assert_eq!(sink.edges, vec![(w.0, a.0), (w.0, b.0)]);
    }

    #[test]
    fn single_member_set_needs_no_redirect() {
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        let a = eng.submit(
            &mut sink,
            &TaskSpec::new("a").depend(x, AccessMode::InOutSet),
        );
        let r = eng.submit(&mut sink, &TaskSpec::new("r").depend(x, AccessMode::In));
        assert_eq!(sink.edges, vec![(a.0, r.0)]);
        assert_eq!(eng.stats().redirect_nodes, 0);
    }

    #[test]
    fn redirect_is_shared_by_all_successors() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 64);
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        for _ in 0..3 {
            eng.submit(
                &mut sink,
                &TaskSpec::new("X").depend(x, AccessMode::InOutSet),
            );
        }
        eng.submit(&mut sink, &TaskSpec::new("r1").depend(x, AccessMode::In));
        eng.submit(&mut sink, &TaskSpec::new("r2").depend(x, AccessMode::In));
        let w = eng.submit(&mut sink, &TaskSpec::new("w").depend(x, AccessMode::Out));
        // one redirect only; w depends on the readers. Ids: X=0,1,2, r1=3,
        // redirect R=4 (materialized while resolving r1's deps), r2=5.
        assert_eq!(eng.stats().redirect_nodes, 1);
        let to_w: Vec<u32> = sink
            .edges
            .iter()
            .filter(|&&(_, su)| su == w.0)
            .map(|&(p, _)| p)
            .collect();
        assert_eq!(to_w, vec![3, 5]);
        // both readers attach to the single redirect node 4
        let from_r: Vec<u32> = sink
            .edges
            .iter()
            .filter(|&&(p, _)| p == 4)
            .map(|&(_, su)| su)
            .collect();
        assert_eq!(from_r, vec![3, 5]);
    }

    #[test]
    fn readers_split_inoutset_groups() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 64);
        let mut eng = DiscoveryEngine::new(OptConfig::none());
        let mut sink = MemSink::default();
        let a = eng.submit(
            &mut sink,
            &TaskSpec::new("a").depend(x, AccessMode::InOutSet),
        );
        let r = eng.submit(&mut sink, &TaskSpec::new("r").depend(x, AccessMode::In));
        let b = eng.submit(
            &mut sink,
            &TaskSpec::new("b").depend(x, AccessMode::InOutSet),
        );
        // b opens a NEW group ordered after reader r, not joining a's group.
        assert!(sink.edges.contains(&(a.0, r.0)));
        assert!(sink.edges.contains(&(r.0, b.0)));
        assert!(!sink.edges.contains(&(a.0, b.0)));
    }

    #[test]
    fn pruning_skips_consumed_predecessors() {
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        let w = eng.submit(&mut sink, &TaskSpec::new("w").depend(x, AccessMode::Out));
        sink.consumed.insert(w.0); // w completed before r was discovered
        eng.submit(&mut sink, &TaskSpec::new("r").depend(x, AccessMode::In));
        assert!(sink.edges.is_empty());
        assert_eq!(eng.stats().edges_pruned, 1);
        assert_eq!(eng.stats().edges_created, 0);
    }

    #[test]
    fn no_self_edges() {
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::none());
        let mut sink = MemSink::default();
        eng.submit(
            &mut sink,
            &TaskSpec::new("rw")
                .depend(x, AccessMode::In)
                .depend(x, AccessMode::Out),
        );
        assert!(sink.edges.is_empty());
    }

    #[test]
    fn reset_handle_state_cuts_inter_iteration_edges() {
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        eng.submit(&mut sink, &TaskSpec::new("w").depend(x, AccessMode::Out));
        eng.reset_handle_state();
        eng.submit(&mut sink, &TaskSpec::new("r").depend(x, AccessMode::In));
        assert!(
            sink.edges.is_empty(),
            "barrier reset removes inter-iteration edges"
        );
    }

    #[test]
    fn reset_clears_duplicate_probe_table() {
        // With dedup on, discover `w -> r` (edge 0 -> 1), then reset and
        // replay the same pattern into a fresh sink whose ids restart at 0.
        // A stale `last_succ[0] == 1` entry would suppress the new graph's
        // only real edge.
        let (_s, x, _y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        eng.submit(&mut sink, &TaskSpec::new("w").depend(x, AccessMode::Out));
        eng.submit(&mut sink, &TaskSpec::new("r").depend(x, AccessMode::In));
        assert_eq!(sink.edges, vec![(0, 1)]);

        eng.reset_handle_state();
        let mut sink2 = MemSink::default();
        eng.submit(&mut sink2, &TaskSpec::new("w").depend(x, AccessMode::Out));
        eng.submit(&mut sink2, &TaskSpec::new("r").depend(x, AccessMode::In));
        assert_eq!(
            sink2.edges,
            vec![(0, 1)],
            "probe table from the previous graph must not prune a real edge"
        );
    }

    #[test]
    fn every_task_is_sealed_exactly_once() {
        let (_s, x, y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut sink = MemSink::default();
        for i in 0..10 {
            let mode = if i % 3 == 0 {
                AccessMode::Out
            } else {
                AccessMode::In
            };
            eng.submit(
                &mut sink,
                &TaskSpec::new("t").depend(x, mode).depend(y, AccessMode::In),
            );
        }
        let mut sealed = sink.sealed.clone();
        sealed.sort_unstable();
        sealed.dedup();
        assert_eq!(sealed.len(), sink.n_nodes as usize);
    }

    #[test]
    fn stats_edge_accounting_is_consistent() {
        let (_s, x, y) = space2();
        let mut eng = DiscoveryEngine::new(OptConfig::dedup_only());
        let mut sink = MemSink::default();
        eng.submit(
            &mut sink,
            &TaskSpec::new("w")
                .depend(x, AccessMode::Out)
                .depend(y, AccessMode::Out),
        );
        eng.submit(
            &mut sink,
            &TaskSpec::new("r")
                .depend(x, AccessMode::In)
                .depend(y, AccessMode::In),
        );
        let st = eng.stats();
        assert_eq!(st.edges_attempted(), 2);
        assert_eq!(st.edges_created, 1);
        assert_eq!(st.dup_skipped, 1);
        assert_eq!(st.tasks, 2);
        assert_eq!(st.depend_items, 4);
        assert_eq!(st.nodes(), 2);
    }
}
