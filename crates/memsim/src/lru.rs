//! O(1) fully-associative LRU cache over block ids.
//!
//! Implemented as a hash map into an intrusive doubly-linked list backed by
//! a slab `Vec`, so `access`/`insert`/`evict` are all constant-time and the
//! structure is reusable for every cache level.

use crate::BlockId;
use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    block: BlockId,
    prev: u32,
    next: u32,
}

/// A fixed-capacity LRU set of blocks.
#[derive(Debug)]
pub struct LruCache {
    map: HashMap<BlockId, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl LruCache {
    /// Create a cache holding at most `capacity` blocks.
    ///
    /// A zero capacity is allowed and behaves as "always miss".
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `block` is resident (does not touch recency).
    pub fn contains(&self, block: BlockId) -> bool {
        self.map.contains_key(&block)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Touch `block`: returns `true` on hit (and refreshes recency); on a
    /// miss the block is installed, evicting the LRU block if full.
    pub fn access(&mut self, block: BlockId) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&idx) = self.map.get(&block) {
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return true;
        }
        // Miss: evict if needed, then install.
        let idx = if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert!(victim != NIL);
            self.unlink(victim);
            let old = self.nodes[victim as usize].block;
            self.map.remove(&old);
            self.nodes[victim as usize].block = block;
            victim
        } else if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize].block = block;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                block,
                prev: NIL,
                next: NIL,
            });
            idx
        };
        self.push_front(idx);
        self.map.insert(block, idx);
        false
    }

    /// Remove `block` if resident (models invalidation); returns whether it
    /// was present.
    pub fn invalidate(&mut self, block: BlockId) -> bool {
        if let Some(idx) = self.map.remove(&block) {
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// Drop all contents (e.g. between independent simulation phases).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(4);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // refresh 1; now 2 is LRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut c = LruCache::new(0);
        assert!(!c.access(7));
        assert!(!c.access(7));
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = LruCache::new(4);
        c.access(5);
        assert!(c.invalidate(5));
        assert!(!c.invalidate(5));
        assert!(!c.contains(5));
        // freed slot is reused
        assert!(!c.access(6));
        assert!(c.contains(6));
    }

    #[test]
    fn stays_within_capacity_under_stream() {
        let mut c = LruCache::new(16);
        for i in 0..10_000u64 {
            c.access(i % 37);
            assert!(c.len() <= 16);
        }
    }

    #[test]
    fn working_set_within_capacity_hits_forever() {
        let mut c = LruCache::new(8);
        for i in 0..8 {
            c.access(i);
        }
        for round in 0..100 {
            for i in 0..8 {
                assert!(c.access(i), "round {round} block {i} should hit");
            }
        }
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        // Cyclic sweep over capacity+1 blocks with LRU = 100% miss.
        let mut c = LruCache::new(8);
        let mut misses = 0;
        for round in 0..10 {
            for i in 0..9u64 {
                if !c.access(i) {
                    misses += 1;
                }
            }
            let _ = round;
        }
        assert_eq!(misses, 90);
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(4);
        c.access(1);
        c.access(2);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.access(1));
    }

    #[test]
    fn matches_naive_model() {
        // Differential test against a straightforward Vec-based LRU.
        let mut fast = LruCache::new(6);
        let mut slow: Vec<BlockId> = Vec::new();
        let mut x = 12345u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (x >> 33) % 23;
            let hit_fast = fast.access(b);
            let hit_slow = if let Some(pos) = slow.iter().position(|&v| v == b) {
                slow.remove(pos);
                slow.insert(0, b);
                true
            } else {
                slow.insert(0, b);
                if slow.len() > 6 {
                    slow.pop();
                }
                false
            };
            assert_eq!(hit_fast, hit_slow);
        }
    }
}
