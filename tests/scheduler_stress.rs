//! Stress tests for the lock-free scheduler fast path: shutdown/drain
//! races, parking wakeups, and a property pinning the lock-free pop
//! order to the sequential locked model.
//!
//! The executor rounds are intentionally repeated (`STRESS_ROUNDS`, or
//! the `PTDG_STRESS_ROUNDS` env var — CI's release stress job raises
//! it) so scheduling races get many chances to fire.

use proptest::prelude::*;
use ptdg::core::exec::{ExecConfig, Executor, QueueBackend, SchedPolicy};
use ptdg::core::handle::HandleSpace;
use ptdg::core::opts::OptConfig;
use ptdg::core::rt::ReadyQueues;
use ptdg::core::task::TaskSpec;
use ptdg::core::throttle::ThrottleConfig;
use ptdg::core::AccessMode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const STRESS_ROUNDS: usize = 20;

fn rounds() -> usize {
    std::env::var("PTDG_STRESS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(STRESS_ROUNDS)
}

fn cfg(workers: usize) -> ExecConfig {
    ExecConfig {
        n_workers: workers,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::unbounded(),
        profile: false,
        record_events: false,
    }
}

/// Dropping the executor right after submission (no `wait_all`) must
/// still run every task exactly once: shutdown drains, never discards.
#[test]
fn drop_shutdown_loses_no_tasks() {
    for round in 0..rounds() {
        const TASKS: usize = 400;
        let runs: Arc<Vec<AtomicUsize>> =
            Arc::new((0..TASKS).map(|_| AtomicUsize::new(0)).collect());
        {
            let e = Executor::new(cfg(4));
            let mut space = HandleSpace::new();
            // A few shared handles so chains, fan-outs and independent
            // tasks all occur.
            let handles: Vec<_> = (0..8).map(|_| space.region("h", 64)).collect();
            let mut s = e.session(OptConfig::all());
            for i in 0..TASKS {
                let runs = Arc::clone(&runs);
                let h = handles[i % handles.len()];
                let mode = match i % 3 {
                    0 => AccessMode::InOut,
                    1 => AccessMode::In,
                    _ => AccessMode::Out,
                };
                s.submit(TaskSpec::new("t").depend(h, mode).body(move |_| {
                    runs[i].fetch_add(1, Ordering::Relaxed);
                }));
            }
            // Session and Executor dropped here, racing the workers.
        }
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::Relaxed),
                1,
                "round {round}: task {i} must run exactly once across shutdown"
            );
        }
    }
}

/// Workers that have gone idle (parked) must wake for work submitted
/// much later — the eventcount may not miss a push.
#[test]
fn parked_workers_wake_for_late_submissions() {
    let e = Executor::new(cfg(4));
    let mut space = HandleSpace::new();
    let h = space.region("h", 64);
    for burst in 0..10 {
        let ran = Arc::new(AtomicUsize::new(0));
        // Let the pool go fully idle so workers are parked, not spinning.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut s = e.session(OptConfig::all());
        for _ in 0..64 {
            let ran = Arc::clone(&ran);
            s.submit(
                TaskSpec::new("late")
                    .depend(h, AccessMode::In)
                    .body(move |_| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    }),
            );
        }
        s.wait_all();
        assert_eq!(ran.load(Ordering::Relaxed), 64, "burst {burst}");
    }
}

/// Persistent-region iteration barriers under parking: every iteration
/// runs the full graph, no iteration deadlocks.
#[test]
fn persistent_region_barriers_survive_parking() {
    let e = Executor::new(cfg(3));
    let mut space = HandleSpace::new();
    let x = space.region("x", 64);
    let slices: Vec<_> = (0..16).map(|_| space.region("s", 64)).collect();
    let count = Arc::new(AtomicUsize::new(0));
    let mut region = e.persistent_region(OptConfig::all());
    for iter in 0..20u64 {
        region.run(iter, |s| {
            s.submit(TaskSpec::new("w").depend(x, AccessMode::Out).body({
                let c = Arc::clone(&count);
                move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }));
            for &sl in &slices {
                s.submit(
                    TaskSpec::new("r")
                        .depend(x, AccessMode::In)
                        .depend(sl, AccessMode::Out)
                        .body({
                            let c = Arc::clone(&count);
                            move |_| {
                                c.fetch_add(1, Ordering::Relaxed);
                            }
                        }),
                );
            }
        });
    }
    assert_eq!(count.load(Ordering::Relaxed), 20 * 17);
    assert_eq!(region.reuses(), 19);
}

/// Steal/park observability: a threaded run fills the new counters
/// consistently (successes never exceed attempts; parks match unparks
/// once quiescent... workers still parked at `take_obs` keep the two
/// apart, so only the ordering inequality is asserted).
#[test]
fn steal_and_park_counters_are_consistent() {
    let e = Executor::new(cfg(4));
    let mut space = HandleSpace::new();
    let x = space.region("x", 64);
    let slices: Vec<_> = (0..64).map(|_| space.region("s", 64)).collect();
    let mut s = e.session(OptConfig::all());
    s.submit(TaskSpec::new("w").depend(x, AccessMode::Out).body(|_| {}));
    for &sl in &slices {
        s.submit(
            TaskSpec::new("r")
                .depend(x, AccessMode::In)
                .depend(sl, AccessMode::Out)
                .body(|_| {}),
        );
    }
    s.wait_all();
    drop(s);
    let obs = e.take_obs();
    assert!(obs.counters.steal_successes <= obs.counters.steal_attempts);
    assert!(obs.counters.unparks <= obs.counters.parks);
}

/// One op sequence applied to both `ReadyQueues` backends on a single
/// thread: identical pop results (value and stolen flag), identical
/// lengths throughout. Pin the lock-free structures to the sequential
/// model the simulator trusts.
#[derive(Clone, Debug)]
enum Op {
    Push { local: Option<usize> },
    Pop { worker: Option<usize> },
}

fn op_strategy(cores: usize) -> impl Strategy<Value = Op> {
    (0usize..2, 0..=cores).prop_map(move |(kind, c)| {
        let lane = (c < cores).then_some(c);
        if kind == 0 {
            Op::Push { local: lane }
        } else {
            Op::Pop { worker: lane }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lock_free_pop_order_matches_locked_model(
        cores in 1usize..5,
        ops in prop::collection::vec(op_strategy(4), 1..120),
        breadth in 0u8..2,
    ) {
        let policy = if breadth == 1 { SchedPolicy::BreadthFirst } else { SchedPolicy::DepthFirst };
        let locked = ReadyQueues::with_backend(policy, cores, QueueBackend::Locked);
        let lockfree = ReadyQueues::with_backend(policy, cores, QueueBackend::LockFree);
        let mut next = 0u32;
        for op in &ops {
            match *op {
                Op::Push { local } => {
                    let local = local.filter(|&c| c < cores);
                    locked.push(next, local);
                    lockfree.push(next, local);
                    next += 1;
                }
                Op::Pop { worker } => {
                    let worker = worker.filter(|&c| c < cores);
                    let a = locked.pop(worker);
                    let b = lockfree.pop(worker);
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(locked.len(), lockfree.len());
        }
        // Drain: both must hand back the remaining tasks in the same order.
        loop {
            let a = locked.pop(Some(0));
            let b = lockfree.pop(Some(0));
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
