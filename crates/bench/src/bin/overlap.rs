//! Overlap A/B on *real threads* — Table-1's question asked of the wall
//! clock: does overlapping discovery with execution beat unrolling the
//! full task graph first, once communication tasks really detach?
//!
//! A ring halo-exchange program (Isend/Irecv per neighbor per iteration
//! plus one small all-reduce, spin-loop compute bodies) runs multi-rank
//! on the thread back-end twice per TPL point: overlapped (streaming
//! discovery) and non-overlapped (full unroll first). The same program
//! is then fed to the DES simulator and the predicted direction is
//! cross-checked against the measured one.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin overlap -- --json overlap.json
//! cargo run --release -p ptdg-bench --bin overlap -- --trace overlap-trace.json
//! ```

use ptdg_bench::{arr, emit_json, obj, quick, rule, trace_path};
use ptdg_core::access::AccessMode;
use ptdg_core::builder::TaskSubmitter;
use ptdg_core::exec::{run_program, ExecConfig, ThreadsConfig};
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::obs::{chrome_trace, EventKind};
use ptdg_core::opts::OptConfig;
use ptdg_core::program::{Rank, RankProgram};
use ptdg_core::task::TaskSpec;
use ptdg_core::workdesc::{CommOp, WorkDesc};
use ptdg_simrt::{simulate_tasks, MachineConfig, SimConfig};
use std::time::Instant;

/// Ring message payload (eager-path sized: the interesting latency is the
/// match, not a rendezvous round-trip).
const HALO_BYTES: u64 = 8 * 1024;
/// Busy-spin per compute task, nanoseconds (small enough that discovery
/// is a visible fraction of the run — the regime Table 1 probes).
const SPIN_NS: u64 = 300;
/// Modeled flops for the same task on the simulator.
const SPIN_FLOPS: f64 = 1e3;

fn spin(ns: u64) {
    let t0 = Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Ring halo exchange with a per-iteration all-reduce: each rank runs
/// `tpl` compute tasks per iteration, sends one halo east, receives one
/// from the west, and the received halo gates *every* compute task of the
/// next iteration (a fan-out edge burst that makes discovery matter).
struct HaloRing {
    space: HandleSpace,
    n_ranks: u32,
    iters: u64,
    tpl: usize,
    /// `blocks[r][j]`: compute task j's working set on rank r.
    blocks: Vec<Vec<DataHandle>>,
    /// `halo[r]`: written by rank r's halo-consume task, read by all of
    /// its next-iteration compute tasks.
    halo: Vec<DataHandle>,
    send: Vec<DataHandle>,
    recv: Vec<DataHandle>,
    red: Vec<DataHandle>,
}

impl HaloRing {
    fn new(n_ranks: u32, iters: u64, tpl: usize) -> HaloRing {
        let mut space = HandleSpace::new();
        let blocks = (0..n_ranks)
            .map(|_| (0..tpl).map(|_| space.region("blk", 4096)).collect())
            .collect();
        let halo = (0..n_ranks).map(|_| space.region("halo", 64)).collect();
        let send = (0..n_ranks)
            .map(|_| space.region("send", HALO_BYTES))
            .collect();
        let recv = (0..n_ranks)
            .map(|_| space.region("recv", HALO_BYTES))
            .collect();
        let red = (0..n_ranks).map(|_| space.region("red", 64)).collect();
        HaloRing {
            space,
            n_ranks,
            iters,
            tpl,
            blocks,
            halo,
            send,
            recv,
            red,
        }
    }
}

impl RankProgram for HaloRing {
    fn n_ranks(&self) -> Rank {
        self.n_ranks
    }
    fn n_iterations(&self) -> u64 {
        self.iters
    }
    fn build_iteration(&self, rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        let r = rank as usize;
        let east = (rank + 1) % self.n_ranks;
        let west = (rank + self.n_ranks - 1) % self.n_ranks;
        for j in 0..self.tpl {
            sub.submit(
                TaskSpec::new("compute")
                    .depend(self.blocks[r][j], AccessMode::InOut)
                    .depend(self.halo[r], AccessMode::In)
                    .work(WorkDesc::compute(SPIN_FLOPS))
                    .body(move |_| spin(SPIN_NS)),
            );
        }
        sub.submit(
            TaskSpec::new("send")
                .depend(self.blocks[r][0], AccessMode::In)
                .depend(self.send[r], AccessMode::InOut)
                .comm(CommOp::Isend {
                    peer: east,
                    bytes: HALO_BYTES,
                    tag: 0,
                }),
        );
        sub.submit(
            TaskSpec::new("recv")
                .depend(self.recv[r], AccessMode::InOut)
                .comm(CommOp::Irecv {
                    peer: west,
                    bytes: HALO_BYTES,
                    tag: 0,
                }),
        );
        sub.submit(
            TaskSpec::new("consume")
                .depend(self.recv[r], AccessMode::In)
                .depend(self.halo[r], AccessMode::Out)
                .work(WorkDesc::compute(SPIN_FLOPS))
                .body(move |_| spin(SPIN_NS / 2)),
        );
        sub.submit(
            TaskSpec::new("reduce")
                .depend(self.red[r], AccessMode::InOut)
                .comm(CommOp::Iallreduce { bytes: 8 }),
        );
        sub.submit(
            TaskSpec::new("dt")
                .depend(self.red[r], AccessMode::In)
                .work(WorkDesc::compute(SPIN_FLOPS))
                .body(move |_| spin(SPIN_NS / 2)),
        );
    }
}

fn threads_cfg(workers: usize, non_overlapped: bool, profile: bool) -> ThreadsConfig {
    ThreadsConfig {
        exec: ExecConfig {
            n_workers: workers,
            profile,
            ..Default::default()
        },
        opts: OptConfig::all(),
        non_overlapped,
        ..Default::default()
    }
}

/// Min-of-`reps` wall clock of one configuration, seconds.
fn measure(prog: &HaloRing, workers: usize, non_overlapped: bool, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = run_program(prog, &threads_cfg(workers, non_overlapped, false));
        let dt = t0.elapsed().as_secs_f64();
        if let Some(err) = &report.comm_error {
            eprintln!("comm error: {err}");
            std::process::exit(1);
        }
        assert_eq!(
            report.counters.comms_posted, report.counters.comms_completed,
            "every posted request completed"
        );
        best = best.min(dt);
    }
    best
}

fn main() {
    let quick = quick();
    let (n_ranks, workers, iters, reps) = if quick { (2, 1, 24, 3) } else { (2, 1, 40, 5) };
    let tpls: &[usize] = if quick { &[32, 512] } else { &[16, 128, 1024] };
    // On threads the producer is one thread *beyond* the worker pool; the
    // simulator's core 0 doubles as the producer. Same machine shape ⇒
    // one extra simulated core.
    let machine = MachineConfig::tiny(workers + 1);

    println!(
        "Overlap A/B — ring halo exchange on real threads, {n_ranks} ranks x {workers} workers, \
         {iters} iterations"
    );
    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>12} {:>12}",
        "TPL", "overlapped(s)", "unroll1st(s)", "speedup", "sim ovl(s)", "sim unr(s)"
    );
    rule(76);
    let mut rows = Vec::new();
    let mut wins = 0usize;
    let mut sim_agrees = 0usize;
    for &tpl in tpls {
        let prog = HaloRing::new(n_ranks, iters, tpl);
        let overlapped = measure(&prog, workers, false, reps);
        let unrolled = measure(&prog, workers, true, reps);
        let sim_cfg = |non_overlapped| SimConfig {
            n_ranks,
            opts: OptConfig::all(),
            non_overlapped,
            ..Default::default()
        };
        let sim_ovl = simulate_tasks(&machine, &sim_cfg(false), &prog.space, &prog).total_time_s();
        let sim_unr = simulate_tasks(&machine, &sim_cfg(true), &prog.space, &prog).total_time_s();
        let speedup = unrolled / overlapped;
        if speedup > 1.0 {
            wins += 1;
        }
        if (speedup > 1.0) == (sim_unr > sim_ovl) {
            sim_agrees += 1;
        }
        println!(
            "{tpl:>8} {overlapped:>14.4} {unrolled:>14.4} {speedup:>8.2}x {sim_ovl:>12.5} \
             {sim_unr:>12.5}"
        );
        rows.push(obj([
            ("tpl", tpl.into()),
            ("overlapped_s", overlapped.into()),
            ("non_overlapped_s", unrolled.into()),
            ("speedup", speedup.into()),
            ("sim_overlapped_s", sim_ovl.into()),
            ("sim_non_overlapped_s", sim_unr.into()),
        ]));
    }
    rule(76);
    // Greppable verdicts (CI smoke checks these lines).
    println!(
        "overlap-threads: overlapped beats full-graph-first on {wins}/{} TPL points",
        tpls.len()
    );
    println!(
        "overlap-simrt: prediction agrees with measurement on {sim_agrees}/{} TPL points",
        tpls.len()
    );
    emit_json(
        "overlap",
        obj([
            ("n_ranks", (n_ranks as u64).into()),
            ("workers", workers.into()),
            ("iterations", iters.into()),
            ("wins", wins.into()),
            ("sim_agrees", sim_agrees.into()),
            ("points", tpls.len().into()),
            ("rows", arr(rows)),
        ]),
    );
    // --trace: re-run the finest overlapped point profiled and export
    // rank 0's Chrome trace — the comm tasks' CommPosted/CommCompleted
    // async pairs land there, completions off-core.
    if let Some(path) = trace_path() {
        let prog = HaloRing::new(n_ranks, iters, *tpls.last().unwrap());
        let report = run_program(&prog, &threads_cfg(workers, false, true));
        let posted = report
            .events
            .iter()
            .filter(|e| e.kind == EventKind::CommPosted)
            .count();
        let off_core = report
            .events
            .iter()
            .filter(|e| e.kind == EventKind::CommCompleted && e.core == u32::MAX)
            .count();
        let doc = chrome_trace(
            report.trace.as_ref().expect("profiled run has a trace"),
            &report.events,
            &report.counters,
        );
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "chrome trace of rank 0 written to {} ({posted} comm requests posted, \
             {off_core} completed off-core)",
            path.display()
        );
    }
}
