//! Property-based tests of the application kernels and their task
//! programs: geometric invariants, operator properties, and graph
//! self-consistency under randomized parameters.

use proptest::prelude::*;
use ptdg::cholesky::TileMatrix;
use ptdg::core::builder::{CountingSubmitter, RecordingSubmitter};
use ptdg::core::workdesc::CommOp;
use ptdg::hpcg::{HpcgConfig, HpcgState, HpcgTask};
use ptdg::lulesh::mesh::{overlapping_slices, slices, RankGrid};
use ptdg::lulesh::{LuleshConfig, LuleshTask};
use ptdg::simrt::RankProgram;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Slicing covers the index space exactly, in order, balanced.
    #[test]
    fn slices_partition_exactly(n in 1usize..10_000, k in 1usize..512) {
        let r = slices(n, k);
        prop_assert_eq!(r[0].0, 0);
        prop_assert_eq!(r.last().unwrap().1, n);
        for w in r.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &(a, b) in &r {
            prop_assert!(b > a);
            lo = lo.min(b - a);
            hi = hi.max(b - a);
        }
        prop_assert!(hi - lo <= 1, "balanced to within one item");
    }

    /// `overlapping_slices` returns exactly the slices intersecting the
    /// query range.
    #[test]
    fn overlap_query_is_exact(n in 10usize..5_000, k in 1usize..64, q in 0usize..4_999) {
        let r = slices(n, k);
        let lo = q % n;
        let hi = (lo + 1 + q % 37).min(n).max(lo + 1);
        let (first, last) = overlapping_slices(&r, lo, hi);
        for (i, &(a, b)) in r.iter().enumerate() {
            let intersects = a < hi && b > lo;
            if intersects {
                prop_assert!((first..=last).contains(&i), "slice {i} [{a},{b}) missing");
            }
        }
        // the returned endpoints really do intersect
        prop_assert!(r[first].1 > lo || first == last);
        prop_assert!(r[last].0 < hi);
    }

    /// Rank-grid neighbor relations are symmetric with opposite
    /// directions and consistent message classes, for any cube size.
    #[test]
    fn rank_grid_symmetry(px in 1usize..5) {
        let g = RankGrid::cube(px * px * px);
        for r in 0..g.n_ranks() as u32 {
            for nb in g.neighbors(r) {
                let back = g
                    .neighbors(nb.rank)
                    .into_iter()
                    .find(|x| x.rank == r)
                    .expect("symmetric");
                prop_assert_eq!(back.dir, RankGrid::opposite(nb.dir));
                prop_assert_eq!(back.axes, nb.axes);
            }
        }
    }

    /// LULESH task streams: every rank's sends match the peers' recvs in
    /// tag and size, for random cube sizes and TPL.
    #[test]
    fn lulesh_comm_matches_for_any_grid(px in 2usize..4, s in 4usize..10, tpl in 1usize..32) {
        let cfg = LuleshConfig {
            grid: RankGrid::cube(px * px * px),
            ..LuleshConfig::single(s, 1, tpl)
        };
        let prog = LuleshTask::new(cfg.clone());
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for r in 0..cfg.n_ranks() {
            let mut c = RecordingSubmitter::default();
            prog.build_iteration(r, 0, &mut c);
            for spec in &c.specs {
                match spec.comm {
                    Some(CommOp::Isend { peer, bytes, tag }) => sends.push((r, peer, tag, bytes)),
                    Some(CommOp::Irecv { peer, bytes, tag }) => recvs.push((peer, r, tag, bytes)),
                    _ => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        prop_assert_eq!(sends, recvs);
    }

    /// The LULESH task count formula holds for arbitrary (s, TPL).
    #[test]
    fn lulesh_task_count_formula(s in 3usize..12, tpl in 1usize..64) {
        let cfg = LuleshConfig::single(s, 1, tpl);
        let prog = LuleshTask::new(cfg.clone());
        let mut c = CountingSubmitter::default();
        prog.build_iteration(0, 0, &mut c);
        prop_assert_eq!(c.tasks as usize, cfg.compute_tasks_per_iteration());
    }

    /// The HPCG operator is symmetric positive definite: x'Ax > 0 for
    /// random non-zero x (using the SpMV kernel directly).
    #[test]
    fn hpcg_operator_is_spd(nx in 3usize..7, seed in 1u64..1000) {
        let cfg = HpcgConfig::single(nx, 1, 2);
        let st = HpcgState::new(&cfg);
        let n = cfg.n_rows();
        // pseudo-random x
        let mut x = seed;
        let mut norm = 0.0;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            st.p.set(i, v);
            norm += v * v;
        }
        prop_assume!(norm > 1e-9);
        st.k_spmv(0..n);
        let xtax: f64 = (0..n).map(|i| st.p.get(i) * st.ap.get(i)).sum();
        prop_assert!(xtax > 0.0, "x'Ax = {xtax} must be positive");
    }

    /// HPCG task streams also pair up for any 2x2x2.. process grid.
    #[test]
    fn hpcg_comm_matches(px in 2usize..4, nx in 4usize..8) {
        let cfg = HpcgConfig {
            px,
            ..HpcgConfig::single(nx, 1, 4)
        };
        let prog = HpcgTask::new(cfg.clone());
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for r in 0..cfg.n_ranks() {
            let mut c = RecordingSubmitter::default();
            prog.build_iteration(r, 0, &mut c);
            for spec in &c.specs {
                match spec.comm {
                    Some(CommOp::Isend { peer, bytes, tag }) => sends.push((r, peer, tag, bytes)),
                    Some(CommOp::Irecv { peer, bytes, tag }) => recvs.push((peer, r, tag, bytes)),
                    _ => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        prop_assert_eq!(sends, recvs);
    }

    /// Cholesky factorization is correct for any seed and small shape.
    #[test]
    fn cholesky_factors_random_spd(nt in 2usize..5, b in 2usize..6, seed in 0u64..500) {
        let m = TileMatrix::new_spd(nt, b, seed);
        m.factor_sequential();
        prop_assert!(m.factorization_error() < 1e-8);
    }
}
