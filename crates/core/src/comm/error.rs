//! Structured error for communication that can never complete.
//!
//! Shared by both back-ends: the Threads comm engine ([`super::CommWorld`])
//! reports it when its deadlock detector fires or when a run finishes with
//! unconsumed messages, and `ptdg-simrt` converts the DES network's
//! unmatched-request maps into the same shape instead of asserting.

use std::fmt;

/// Sentinel peer for operations with no single peer (collectives).
pub const NO_PEER: u32 = u32::MAX;

/// One communication request (or message) that could not be matched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnmatchedComm {
    /// Rank that owns the request (the poster; for an orphaned message,
    /// the sender).
    pub rank: u32,
    /// The peer the request names ([`NO_PEER`] for collectives).
    pub peer: u32,
    /// Match tag (for collectives: the dissemination round reached).
    pub tag: u32,
    /// Operation kind, e.g. `"Isend"`, `"Irecv"`, `"Iallreduce"`.
    pub op: &'static str,
}

impl fmt::Display for UnmatchedComm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.peer == NO_PEER {
            write!(f, "rank {} {} (round {})", self.rank, self.op, self.tag)
        } else {
            write!(
                f,
                "rank {} {} peer {} tag {}",
                self.rank, self.op, self.peer, self.tag
            )
        }
    }
}

/// A program posted communication requests that can never complete: the
/// run either deadlocked waiting on them (every rank idle with requests
/// pending) or finished with messages nobody received.
///
/// The triples name every endpoint the engine could still see: pending
/// receives, unmatched (rendezvous or undelivered) sends, and collectives
/// stuck mid-dissemination.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommError {
    /// Every unmatched request/message, in rank order.
    pub unmatched: Vec<UnmatchedComm>,
}

impl CommError {
    /// True if nothing was actually unmatched (should not normally be
    /// constructed in that state).
    pub fn is_empty(&self) -> bool {
        self.unmatched.is_empty()
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unmatched communication requests ({}): ",
            self.unmatched.len()
        )?;
        for (i, u) in self.unmatched.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{u}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_triples() {
        let e = CommError {
            unmatched: vec![
                UnmatchedComm {
                    rank: 0,
                    peer: 1,
                    tag: 7,
                    op: "Irecv",
                },
                UnmatchedComm {
                    rank: 2,
                    peer: NO_PEER,
                    tag: 1,
                    op: "Iallreduce",
                },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("rank 0 Irecv peer 1 tag 7"), "{s}");
        assert!(s.contains("rank 2 Iallreduce (round 1)"), "{s}");
        assert!(s.starts_with("unmatched communication requests (2)"), "{s}");
    }
}
