//! Ready-task queues implementing the paper's two scheduling heuristics.
//!
//! The *placement and steal order* — depth-first locality vs
//! breadth-first discovery order — is the shared policy; the storage
//! behind it comes in two flavours behind one API:
//!
//! * [`QueueBackend::Locked`] — `Mutex<VecDeque>` lanes. Sequential and
//!   deterministic; the DES simulator and the property-test model use it
//!   so simulated steal order stays reproducible.
//! * [`QueueBackend::LockFree`] — a Chase–Lev [`WorkDeque`] per core
//!   plus a segmented lock-free [`Injector`] FIFO. The thread executor's
//!   hot path: owner push/pop never contends, thieves and producers are
//!   lock-free.
//!
//! Both backends expose identical single-threaded pop order (pinned by
//! the unit tests below, which run every case against both), so
//! `tests/backend_equivalence.rs` keeps holding regardless of which one
//! a back-end picks.

use super::deque::{Steal, WorkDeque};
use super::injector::Injector;
use super::probe::RtProbe;
use crate::task::TaskId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Queue elements that can name the task they carry, so
/// [`ReadyQueues::pop_with`] can narrate scheduling through a probe.
/// The thread executor queues [`super::NodeRef`]s; the simulator queues
/// raw node indices.
pub trait TaskKey {
    fn task_id(&self) -> TaskId;
}

impl TaskKey for super::NodeRef {
    fn task_id(&self) -> TaskId {
        self.id
    }
}

impl TaskKey for u32 {
    fn task_id(&self) -> TaskId {
        TaskId(*self)
    }
}

/// Scheduling heuristic for ready tasks (paper §2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Newly-ready successors go to the completing core's local LIFO deque
    /// (data-reuse locality); other cores steal from the FIFO end.
    #[default]
    DepthFirst,
    /// One global FIFO queue: tasks run roughly in discovery order.
    BreadthFirst,
}

/// Storage strategy behind [`ReadyQueues`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// `Mutex<VecDeque>` lanes — sequential back-ends and models.
    Locked,
    /// Chase–Lev deques + lock-free injector — the thread executor.
    #[default]
    LockFree,
}

// One instance per executor; the injector's cache-line padding dominates
// the size and boxing it would put a pointer chase on the hot path.
#[allow(clippy::large_enum_variant)]
enum Lanes<T> {
    Locked {
        global: Mutex<VecDeque<T>>,
        local: Vec<Mutex<VecDeque<T>>>,
    },
    LockFree {
        injector: Injector<T>,
        local: Vec<WorkDeque<T>>,
    },
}

/// Per-core local deques plus a global queue, policy-driven. The thread
/// executor stores `Arc<RtNode>`; the simulator stores node indices —
/// the *placement and steal order* is the shared policy, the element type
/// is not.
///
/// # Ownership contract (lock-free backend)
///
/// `push(item, Some(c))` under depth-first targets core `c`'s Chase–Lev
/// deque, whose bottom end is single-owner: it must only be called from
/// the thread that also issues `pop(Some(c))`. The executor satisfies
/// this by construction — local pushes happen exclusively inside
/// `run_task` on the completing worker itself; producers, the hold gate
/// and persistent publishing all push with `local = None` (the
/// injector, which is MPMC). The locked backend has no such restriction.
pub struct ReadyQueues<T> {
    policy: SchedPolicy,
    lanes: Lanes<T>,
    /// Cached element count so `len`/`is_empty` diagnostics and the
    /// throttle/wait loops never sweep per-lane locks. Incremented
    /// *before* the push and decremented *after* a successful pop, so
    /// the count may transiently over-report but never under-reports a
    /// queued task — idle loops that see 0 here can trust it.
    count: AtomicUsize,
    /// Steal telemetry (Relaxed: monotone stats, no ordering role).
    steal_attempts: AtomicU64,
    steal_successes: AtomicU64,
}

impl<T> ReadyQueues<T> {
    /// Sequential-friendly queues (locked backend) for `n_cores` cores
    /// under `policy`. The DES simulator and model tests use this.
    pub fn new(policy: SchedPolicy, n_cores: usize) -> Self {
        Self::with_backend(policy, n_cores, QueueBackend::Locked)
    }

    /// Lock-free queues for the thread executor.
    pub fn new_lock_free(policy: SchedPolicy, n_cores: usize) -> Self {
        Self::with_backend(policy, n_cores, QueueBackend::LockFree)
    }

    pub fn with_backend(policy: SchedPolicy, n_cores: usize, backend: QueueBackend) -> Self {
        let lanes = match backend {
            QueueBackend::Locked => Lanes::Locked {
                global: Mutex::new(VecDeque::new()),
                local: (0..n_cores).map(|_| Mutex::new(VecDeque::new())).collect(),
            },
            QueueBackend::LockFree => Lanes::LockFree {
                injector: Injector::new(),
                local: (0..n_cores).map(|_| WorkDeque::new()).collect(),
            },
        };
        ReadyQueues {
            policy,
            lanes,
            count: AtomicUsize::new(0),
            steal_attempts: AtomicU64::new(0),
            steal_successes: AtomicU64::new(0),
        }
    }

    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    pub fn backend(&self) -> QueueBackend {
        match self.lanes {
            Lanes::Locked { .. } => QueueBackend::Locked,
            Lanes::LockFree { .. } => QueueBackend::LockFree,
        }
    }

    fn n_cores(&self) -> usize {
        match &self.lanes {
            Lanes::Locked { local, .. } => local.len(),
            Lanes::LockFree { local, .. } => local.len(),
        }
    }

    fn lock<'a>(m: &'a Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue a ready task. Under depth-first, a task made ready by core
    /// `local` lands on that core's deque (LIFO side); everything else —
    /// breadth-first, or producer-made-ready tasks — goes to the global
    /// FIFO. See the ownership contract in the type docs.
    pub fn push(&self, item: T, local: Option<usize>) {
        // Count up before the element is visible: a concurrent observer
        // may over-count, never under-count (see `count` docs). Relaxed:
        // the increment reaches any popper through the queue transfer
        // itself (it precedes the push in program order, and the pop that
        // later decrements happens-after the push), so the counter can
        // never go negative; no other ordering is relied on.
        self.count.fetch_add(1, Ordering::Relaxed);
        let to_local = matches!(
            (self.policy, local),
            (SchedPolicy::DepthFirst, Some(c)) if c < self.n_cores()
        );
        match &self.lanes {
            Lanes::Locked {
                global,
                local: lanes,
            } => {
                if to_local {
                    Self::lock(&lanes[local.unwrap()]).push_back(item);
                } else {
                    Self::lock(global).push_back(item);
                }
            }
            Lanes::LockFree {
                injector,
                local: lanes,
            } => {
                if to_local {
                    lanes[local.unwrap()].push(item);
                } else {
                    injector.push(item);
                }
            }
        }
    }

    /// Dequeue for core `worker`. Returns the task and whether it was
    /// *stolen* from another core's deque (the simulator charges a steal
    /// penalty). Depth-first order: own deque LIFO, then global FIFO, then
    /// round-robin steal from other cores' FIFO ends.
    pub fn pop(&self, worker: Option<usize>) -> Option<(T, bool)> {
        let popped = self.pop_inner(worker);
        if popped.is_some() {
            self.count.fetch_sub(1, Ordering::Relaxed);
        }
        popped
    }

    fn pop_inner(&self, worker: Option<usize>) -> Option<(T, bool)> {
        match &self.lanes {
            Lanes::Locked { global, local } => {
                if self.policy == SchedPolicy::DepthFirst {
                    if let Some(w) = worker {
                        if w < local.len() {
                            if let Some(item) = Self::lock(&local[w]).pop_back() {
                                return Some((item, false));
                            }
                        }
                    }
                }
                if let Some(item) = Self::lock(global).pop_front() {
                    return Some((item, false));
                }
                if self.policy == SchedPolicy::DepthFirst {
                    let n = local.len();
                    let start = worker.map_or(0, |w| w + 1);
                    for i in 0..n {
                        let victim = (start + i) % n;
                        if Some(victim) == worker {
                            continue;
                        }
                        self.steal_attempts.fetch_add(1, Ordering::Relaxed);
                        if let Some(item) = Self::lock(&local[victim]).pop_front() {
                            self.steal_successes.fetch_add(1, Ordering::Relaxed);
                            return Some((item, true));
                        }
                    }
                }
                None
            }
            Lanes::LockFree { injector, local } => {
                if self.policy == SchedPolicy::DepthFirst {
                    if let Some(w) = worker {
                        if w < local.len() {
                            if let Some(item) = local[w].pop() {
                                return Some((item, false));
                            }
                        }
                    }
                }
                if let Some(item) = injector.pop() {
                    return Some((item, false));
                }
                if self.policy == SchedPolicy::DepthFirst {
                    let n = local.len();
                    let start = worker.map_or(0, |w| w + 1);
                    for i in 0..n {
                        let victim = (start + i) % n;
                        if Some(victim) == worker {
                            continue;
                        }
                        // Retry the victim while the steal aborts on a
                        // CAS race — an abort means someone else took an
                        // element, so the deque may still hold more.
                        loop {
                            self.steal_attempts.fetch_add(1, Ordering::Relaxed);
                            match local[victim].steal() {
                                Steal::Success(item) => {
                                    self.steal_successes.fetch_add(1, Ordering::Relaxed);
                                    return Some((item, true));
                                }
                                Steal::Abort => continue,
                                Steal::Empty => break,
                            }
                        }
                    }
                }
                None
            }
        }
    }

    /// [`ReadyQueues::pop`] narrated through a probe: emits
    /// `task_scheduled` for the dequeued task. A `None` worker (the
    /// producer helping out) reports core `n_cores` — the producer lane.
    pub fn pop_with(
        &self,
        worker: Option<usize>,
        probe: &dyn RtProbe,
        now_ns: u64,
    ) -> Option<(T, bool)>
    where
        T: TaskKey,
    {
        let popped = self.pop(worker)?;
        if probe.lifecycle_enabled() {
            let core = worker.unwrap_or(self.n_cores());
            probe.task_scheduled(popped.0.task_id(), core, now_ns);
        }
        Some(popped)
    }

    /// Total queued tasks (diagnostics). O(1): reads the cached count.
    /// May transiently over-report while a push is in flight; a zero is
    /// authoritative.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(steal_attempts, steal_successes)` since construction.
    pub fn steal_stats(&self) -> (u64, u64) {
        (
            self.steal_attempts.load(Ordering::Relaxed),
            self.steal_successes.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [QueueBackend; 2] = [QueueBackend::Locked, QueueBackend::LockFree];

    #[test]
    fn depth_first_local_is_lifo() {
        for be in BACKENDS {
            let q = ReadyQueues::with_backend(SchedPolicy::DepthFirst, 2, be);
            q.push(1, Some(0));
            q.push(2, Some(0));
            assert_eq!(q.pop(Some(0)), Some((2, false)), "{be:?}");
            assert_eq!(q.pop(Some(0)), Some((1, false)), "{be:?}");
            assert_eq!(q.pop(Some(0)), None, "{be:?}");
        }
    }

    #[test]
    fn depth_first_steals_fifo_side() {
        for be in BACKENDS {
            let q = ReadyQueues::with_backend(SchedPolicy::DepthFirst, 2, be);
            q.push(1, Some(0));
            q.push(2, Some(0));
            assert_eq!(q.pop(Some(1)), Some((1, true)), "steal oldest ({be:?})");
            let (attempts, successes) = q.steal_stats();
            assert!(attempts >= 1, "{be:?}");
            assert_eq!(successes, 1, "{be:?}");
        }
    }

    #[test]
    fn global_before_steal() {
        for be in BACKENDS {
            let q = ReadyQueues::with_backend(SchedPolicy::DepthFirst, 2, be);
            q.push(1, Some(0));
            q.push(9, None);
            assert_eq!(
                q.pop(Some(1)),
                Some((9, false)),
                "global FIFO first ({be:?})"
            );
            assert_eq!(q.pop(Some(1)), Some((1, true)), "{be:?}");
        }
    }

    #[test]
    fn breadth_first_is_one_fifo() {
        for be in BACKENDS {
            let q = ReadyQueues::with_backend(SchedPolicy::BreadthFirst, 4, be);
            q.push(1, Some(3));
            q.push(2, Some(0));
            q.push(3, None);
            assert_eq!(q.pop(Some(2)), Some((1, false)), "{be:?}");
            assert_eq!(q.pop(None), Some((2, false)), "{be:?}");
            assert_eq!(q.pop(Some(0)), Some((3, false)), "{be:?}");
        }
    }

    #[test]
    fn cached_len_tracks_pushes_and_pops() {
        for be in BACKENDS {
            let q = ReadyQueues::with_backend(SchedPolicy::DepthFirst, 2, be);
            assert!(q.is_empty(), "{be:?}");
            q.push(1, Some(0));
            q.push(2, None);
            q.push(3, Some(1));
            assert_eq!(q.len(), 3, "{be:?}");
            q.pop(Some(0));
            assert_eq!(q.len(), 2, "{be:?}");
            while q.pop(Some(0)).is_some() {}
            assert!(q.is_empty(), "{be:?}");
            assert_eq!(q.len(), 0, "{be:?}");
        }
    }

    #[test]
    fn producer_pop_drains_all_lanes() {
        for be in BACKENDS {
            let q = ReadyQueues::with_backend(SchedPolicy::DepthFirst, 3, be);
            q.push(1, Some(0));
            q.push(2, Some(2));
            q.push(3, None);
            let mut got = Vec::new();
            while let Some((v, _)) = q.pop(None) {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, vec![1, 2, 3], "{be:?}");
        }
    }
}
