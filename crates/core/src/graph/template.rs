//! Persistent graph capture — optimization (p).
//!
//! A [`TemplateRecorder`] is a [`GraphSink`] that never prunes: it records
//! every node and edge of one iteration's discovery. The finished
//! [`GraphTemplate`] is a compact CSR graph that executors can re-instance
//! per iteration for the cost of resetting counters and re-copying
//! firstprivate data — no descriptor allocation, no `depend` processing, no
//! edge insertion.

use super::GraphSink;
use crate::task::{SpecView, TaskBody, TaskId};
use crate::workdesc::{CommOp, WorkDesc};

/// A captured task node.
#[derive(Clone)]
pub struct TemplateNode {
    /// Profiling name.
    pub name: &'static str,
    /// Body, if the recorder wanted bodies.
    pub body: Option<TaskBody>,
    /// Communication side effect.
    pub comm: Option<CommOp>,
    /// Cost-model description.
    pub work: WorkDesc,
    /// Firstprivate payload size (the per-iteration memcpy).
    pub fp_bytes: u32,
    /// Whether this is an optimization-(c) redirect node.
    pub is_redirect: bool,
}

impl std::fmt::Debug for TemplateNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemplateNode")
            .field("name", &self.name)
            .field("is_redirect", &self.is_redirect)
            .field("fp_bytes", &self.fp_bytes)
            .finish()
    }
}

/// Records one iteration's discovery into a [`GraphTemplate`].
pub struct TemplateRecorder {
    nodes: Vec<TemplateNode>,
    edges: Vec<(u32, u32)>,
    want_bodies: bool,
}

impl TemplateRecorder {
    /// A recorder; `want_bodies = false` skips closure retention for
    /// cost-model-only consumers.
    pub fn new(want_bodies: bool) -> Self {
        TemplateRecorder {
            nodes: Vec::new(),
            edges: Vec::new(),
            want_bodies,
        }
    }

    /// Finish recording and build the CSR template.
    pub fn finish(self) -> GraphTemplate {
        GraphTemplate::from_parts(self.nodes, &self.edges)
    }
}

impl GraphSink for TemplateRecorder {
    fn add_task(&mut self, spec: &SpecView<'_>) -> TaskId {
        let id = self.nodes.len() as u32;
        // Capture owns its data: clone out of the view (this allocation
        // is capture-only — the streaming hot path never records).
        self.nodes.push(TemplateNode {
            name: spec.name,
            body: if self.want_bodies {
                spec.body.cloned()
            } else {
                None
            },
            comm: spec.comm,
            work: WorkDesc {
                flops: spec.flops,
                footprint: spec.footprint.to_vec(),
            },
            fp_bytes: spec.fp_bytes,
            is_redirect: false,
        });
        TaskId(id)
    }

    fn add_redirect(&mut self) -> TaskId {
        let id = self.nodes.len() as u32;
        self.nodes.push(TemplateNode {
            name: "<redirect>",
            body: None,
            comm: None,
            work: WorkDesc::default(),
            fp_bytes: 0,
            is_redirect: true,
        });
        TaskId(id)
    }

    fn add_edge(&mut self, pred: TaskId, succ: TaskId) -> bool {
        // Persistent capture never prunes: every edge must exist for the
        // graph to be correct on later iterations (paper §3.2).
        self.edges.push((pred.0, succ.0));
        true
    }

    fn seal(&mut self, _task: TaskId) {}

    fn wants_bodies(&self) -> bool {
        self.want_bodies
    }
}

/// A captured, re-instantiable task dependency graph (CSR form).
#[derive(Clone, Debug)]
pub struct GraphTemplate {
    nodes: Vec<TemplateNode>,
    /// CSR offsets into `succs`; length `nodes.len() + 1`.
    succ_off: Vec<u32>,
    succs: Vec<u32>,
    indegree: Vec<u32>,
    n_edges: u64,
    /// Application tasks (excluding redirects) — cached at build time;
    /// counters and cost models query it per iteration.
    n_tasks: usize,
    /// Zero-indegree nodes, precomputed at build time: `roots()` is
    /// consulted every persistent iteration and must not rescan.
    roots: Vec<u32>,
}

impl GraphTemplate {
    fn from_parts(nodes: Vec<TemplateNode>, edges: &[(u32, u32)]) -> Self {
        let n = nodes.len();
        let mut succ_off = vec![0u32; n + 1];
        let mut indegree = vec![0u32; n];
        for &(p, s) in edges {
            succ_off[p as usize + 1] += 1;
            indegree[s as usize] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }
        let mut cursor = succ_off.clone();
        let mut succs = vec![0u32; edges.len()];
        for &(p, s) in edges {
            succs[cursor[p as usize] as usize] = s;
            cursor[p as usize] += 1;
        }
        let n_tasks = nodes.iter().filter(|n| !n.is_redirect).count();
        let roots = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        GraphTemplate {
            nodes,
            succ_off,
            succs,
            indegree,
            n_edges: edges.len() as u64,
            n_tasks,
            roots,
        }
    }

    /// Number of nodes (tasks + redirects).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of application tasks (excluding redirects; cached — O(1)).
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Number of edges.
    pub fn n_edges(&self) -> u64 {
        self.n_edges
    }

    /// Node metadata.
    pub fn node(&self, id: TaskId) -> &TemplateNode {
        &self.nodes[id.index()]
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.nodes.len() as u32).map(TaskId)
    }

    /// Successors of `id`.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        let lo = self.succ_off[id.index()] as usize;
        let hi = self.succ_off[id.index() + 1] as usize;
        self.succs[lo..hi].iter().map(|&s| TaskId(s))
    }

    /// In-degree of `id` (the pending-predecessor reset value).
    pub fn indegree(&self, id: TaskId) -> u32 {
        self.indegree[id.index()]
    }

    /// The dense in-degree array, indexed by node id — the source the
    /// persistent bulk re-arm sweeps (DESIGN.md §4.4).
    pub fn indegrees(&self) -> &[u32] {
        &self.indegree
    }

    /// Nodes with no predecessors — ready at the start of each iteration
    /// (precomputed at build time).
    pub fn roots(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.roots.iter().map(|&i| TaskId(i))
    }

    /// Total firstprivate bytes: what one persistent re-instance memcpys.
    pub fn firstprivate_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.fp_bytes as u64).sum()
    }

    /// Whether every edge goes from a lower to a higher id. Holds for
    /// redirect-free graphs (sequential discovery); an optimization-(c)
    /// redirect node is materialized while resolving its *successor's*
    /// depend list, so it can carry a higher id than that successor.
    pub fn is_topologically_ordered(&self) -> bool {
        self.ids().all(|p| self.successors(p).all(|s| s.0 > p.0))
    }

    /// Export the graph in Graphviz DOT format, one node per task
    /// (redirect nodes drawn as points), for the kind of TDG inspection
    /// tooling the paper notes is missing from the ecosystem.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph tdg {\n  rankdir=TB;\n");
        for id in self.ids() {
            let n = self.node(id);
            if n.is_redirect {
                out.push_str(&format!("  t{} [shape=point, label=\"\"];\n", id.0));
            } else {
                out.push_str(&format!(
                    "  t{} [shape=box, label=\"{}#{}\"];\n",
                    id.0, n.name, id.0
                ));
            }
        }
        for p in self.ids() {
            for s in self.successors(p) {
                out.push_str(&format!("  t{} -> t{};\n", p.0, s.0));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Whether the graph is acyclic (Kahn's algorithm) — the invariant
    /// that holds for *every* discovered graph, redirects included.
    pub fn is_acyclic(&self) -> bool {
        let n = self.n_nodes();
        let mut indeg: Vec<u32> = (0..n).map(|i| self.indegree(TaskId(i as u32))).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for v in self.successors(TaskId(u as u32)) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v.index());
                }
            }
        }
        seen == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessMode;
    use crate::graph::DiscoveryEngine;
    use crate::handle::HandleSpace;
    use crate::opts::OptConfig;
    use crate::task::TaskSpec;

    fn diamond() -> GraphTemplate {
        // w -> (r1, r2) -> w2
        let mut s = HandleSpace::new();
        let x = s.region("x", 64);
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut rec = TemplateRecorder::new(false);
        eng.submit(&mut rec, &TaskSpec::new("w").depend(x, AccessMode::Out));
        eng.submit(&mut rec, &TaskSpec::new("r1").depend(x, AccessMode::In));
        eng.submit(&mut rec, &TaskSpec::new("r2").depend(x, AccessMode::In));
        eng.submit(&mut rec, &TaskSpec::new("w2").depend(x, AccessMode::Out));
        rec.finish()
    }

    #[test]
    fn csr_structure_matches_diamond() {
        let t = diamond();
        assert_eq!(t.n_nodes(), 4);
        assert_eq!(t.n_tasks(), 4);
        assert_eq!(t.n_edges(), 4);
        assert_eq!(
            t.successors(TaskId(0)).collect::<Vec<_>>(),
            vec![TaskId(1), TaskId(2)]
        );
        assert_eq!(t.successors(TaskId(1)).collect::<Vec<_>>(), vec![TaskId(3)]);
        assert_eq!(t.indegree(TaskId(0)), 0);
        assert_eq!(t.indegree(TaskId(3)), 2);
        assert_eq!(t.roots().collect::<Vec<_>>(), vec![TaskId(0)]);
    }

    #[test]
    fn template_is_topologically_ordered() {
        assert!(diamond().is_topologically_ordered());
        assert!(diamond().is_acyclic());
    }

    #[test]
    fn redirect_graphs_are_acyclic_but_not_id_ordered() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 64);
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut rec = TemplateRecorder::new(false);
        eng.submit(
            &mut rec,
            &TaskSpec::new("a").depend(x, AccessMode::InOutSet),
        );
        eng.submit(
            &mut rec,
            &TaskSpec::new("b").depend(x, AccessMode::InOutSet),
        );
        eng.submit(&mut rec, &TaskSpec::new("r").depend(x, AccessMode::In));
        let t = rec.finish();
        assert!(t.is_acyclic());
        assert!(
            !t.is_topologically_ordered(),
            "the redirect (id 3) precedes the reader (id 2)"
        );
    }

    #[test]
    fn recorder_never_prunes() {
        use crate::graph::GraphSink;
        let mut rec = TemplateRecorder::new(false);
        let a = rec.add_task(&TaskSpec::new("a").view());
        let b = rec.add_task(&TaskSpec::new("b").view());
        assert!(rec.add_edge(a, b));
        let t = rec.finish();
        assert_eq!(t.n_edges(), 1);
    }

    #[test]
    fn redirect_nodes_are_marked_and_not_counted_as_tasks() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 64);
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut rec = TemplateRecorder::new(false);
        for _ in 0..3 {
            eng.submit(
                &mut rec,
                &TaskSpec::new("X").depend(x, AccessMode::InOutSet),
            );
        }
        eng.submit(&mut rec, &TaskSpec::new("Y").depend(x, AccessMode::In));
        let t = rec.finish();
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.n_tasks(), 4);
        let redirects: Vec<_> = t.ids().filter(|&id| t.node(id).is_redirect).collect();
        assert_eq!(redirects.len(), 1);
        // 3 member->R edges + 1 R->Y edge
        assert_eq!(t.n_edges(), 4);
    }

    #[test]
    fn dot_export_contains_all_nodes_and_edges() {
        let t = diamond();
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph tdg {"));
        for id in 0..4 {
            assert!(dot.contains(&format!("t{id} [")));
        }
        assert_eq!(dot.matches(" -> ").count(), t.n_edges() as usize);
        assert!(dot.contains("w#0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_marks_redirects_as_points() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 64);
        let mut eng = DiscoveryEngine::new(OptConfig::all());
        let mut rec = TemplateRecorder::new(false);
        for _ in 0..2 {
            eng.submit(
                &mut rec,
                &TaskSpec::new("X").depend(x, AccessMode::InOutSet),
            );
        }
        eng.submit(&mut rec, &TaskSpec::new("Y").depend(x, AccessMode::In));
        let dot = rec.finish().to_dot();
        assert!(dot.contains("shape=point"));
    }

    #[test]
    fn firstprivate_bytes_sum() {
        let mut rec = TemplateRecorder::new(false);
        use crate::graph::GraphSink;
        rec.add_task(&TaskSpec::new("a").firstprivate_bytes(8).view());
        rec.add_task(&TaskSpec::new("b").firstprivate_bytes(100).view());
        rec.add_redirect();
        let t = rec.finish();
        assert_eq!(t.firstprivate_bytes(), 108);
    }

    #[test]
    fn bodies_dropped_when_not_wanted() {
        use crate::graph::GraphSink;
        let mut rec = TemplateRecorder::new(false);
        assert!(!rec.wants_bodies());
        rec.add_task(&TaskSpec::new("a").body(|_| {}).view());
        let t = rec.finish();
        assert!(t.node(TaskId(0)).body.is_none());

        let mut rec = TemplateRecorder::new(true);
        assert!(rec.wants_bodies());
        rec.add_task(&TaskSpec::new("a").body(|_| {}).view());
        let t = rec.finish();
        assert!(t.node(TaskId(0)).body.is_some());
    }
}
