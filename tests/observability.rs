//! End-to-end observability contract: both back-ends narrate the same
//! kernel, so the same `RankProgram` must produce the *identical* per-task
//! lifecycle sequence on real threads and under the simulator; the Chrome
//! exporter must emit a self-contained document with worker, discovery and
//! counter tracks; and the critical-path analysis must respect its
//! invariants (`cp ≤ makespan`, `cp ≤ T1`) on a real application.

use ptdg::core::access::AccessMode;
use ptdg::core::builder::TaskSubmitter;
use ptdg::core::exec::{ExecConfig, ThreadsConfig};
use ptdg::core::handle::HandleSpace;
use ptdg::core::obs::{chrome_trace, critical_path, sequences_by_task, EventKind};
use ptdg::core::opts::OptConfig;
use ptdg::core::program::{Rank, RankProgram};
use ptdg::core::task::TaskSpec;
use ptdg::core::workdesc::{CommOp, WorkDesc};
use ptdg::lulesh::{LuleshConfig, LuleshTask};
use ptdg::simrt::{MachineConfig, SimConfig};
use ptdg::{run, Backend, RunOutcome};

fn threads_profiled(opts: OptConfig, persistent: bool) -> Backend {
    Backend::Threads(ThreadsConfig {
        exec: ExecConfig {
            n_workers: 2,
            profile: true,
            ..Default::default()
        },
        opts,
        persistent,
        ..Default::default()
    })
}

fn sim_profiled(opts: OptConfig, persistent: bool) -> Backend {
    Backend::Sim {
        machine: MachineConfig::tiny(4),
        cfg: SimConfig {
            opts,
            persistent,
            record_trace_rank: Some(0),
            ..Default::default()
        },
    }
}

/// A single-rank program exercising every lifecycle shape: ordinary
/// chained tasks, an `inoutset` fan (redirect nodes under optimization
/// (c)), and a detached all-reduce communication task.
struct Shapes {
    space: HandleSpace,
    a: ptdg::core::handle::DataHandle,
    b: ptdg::core::handle::DataHandle,
}

impl Shapes {
    fn new() -> Shapes {
        let mut space = HandleSpace::new();
        let a = space.region("a", 256);
        let b = space.region("b", 256);
        Shapes { space, a, b }
    }
}

impl RankProgram for Shapes {
    fn n_iterations(&self) -> u64 {
        2
    }
    fn build_iteration(&self, _rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        for _ in 0..3 {
            sub.submit(
                TaskSpec::new("chain")
                    .depend(self.a, AccessMode::InOut)
                    .work(WorkDesc::compute(1e4)),
            );
        }
        for _ in 0..4 {
            sub.submit(
                TaskSpec::new("set")
                    .depend(self.a, AccessMode::InOutSet)
                    .work(WorkDesc::compute(1e4)),
            );
        }
        sub.submit(
            TaskSpec::new("reduce")
                .depend(self.b, AccessMode::InOut)
                .comm(CommOp::Iallreduce { bytes: 8 }),
        );
        sub.submit(
            TaskSpec::new("after")
                .depend(self.a, AccessMode::In)
                .depend(self.b, AccessMode::In)
                .work(WorkDesc::compute(1e4)),
        );
    }
}

/// The cross-backend contract: identical per-task `EventKind` sequences.
fn assert_same_sequences(t: &RunOutcome, s: &RunOutcome) {
    let ts = sequences_by_task(t.events());
    let ss = sequences_by_task(s.events());
    assert!(!ts.is_empty(), "thread back-end recorded events");
    assert_eq!(
        ts, ss,
        "per-task lifecycle sequences differ across back-ends"
    );
}

#[test]
fn lifecycle_sequences_identical_across_backends() {
    let prog = Shapes::new();
    let t = run(
        &prog.space,
        &prog,
        threads_profiled(OptConfig::all(), false),
    );
    let s = run(&prog.space, &prog, sim_profiled(OptConfig::all(), false));
    assert_same_sequences(&t, &s);

    // All six kernel hooks fired on both back-ends.
    for (label, outcome) in [("threads", &t), ("sim", &s)] {
        let kinds: std::collections::HashSet<EventKind> =
            outcome.events().iter().map(|e| e.kind).collect();
        for kind in [
            EventKind::Created,
            EventKind::Ready,
            EventKind::Scheduled,
            EventKind::CommPosted,
            EventKind::CommCompleted,
            EventKind::Completed,
        ] {
            assert!(kinds.contains(&kind), "{label}: no {kind:?} event");
        }
    }

    // Per-shape sequences: ordinary tasks pass through all four ordinary
    // states; the comm task detaches (CommPosted) and completes off-core
    // when its request matches (CommCompleted) before the kernel retires
    // it; redirect nodes skip Scheduled entirely.
    let graphs = run(
        &prog.space,
        &prog,
        Backend::Threads(ThreadsConfig {
            capture_graph: true,
            opts: OptConfig::all(),
            ..Default::default()
        }),
    );
    let g = &graphs.graphs()[0];
    let seqs = sequences_by_task(t.events());
    let mut saw_redirect = false;
    for id in g.ids() {
        let node = g.node(id);
        let seq = &seqs[&id.0];
        if node.is_redirect {
            saw_redirect = true;
            assert_eq!(
                seq,
                &vec![EventKind::Created, EventKind::Ready, EventKind::Completed],
                "redirect {id:?}"
            );
        } else if node.name == "reduce" {
            assert_eq!(
                seq,
                &vec![
                    EventKind::Created,
                    EventKind::Ready,
                    EventKind::Scheduled,
                    EventKind::CommPosted,
                    EventKind::CommCompleted,
                    EventKind::Completed,
                ],
                "comm task {id:?}"
            );
        } else {
            assert_eq!(
                seq,
                &vec![
                    EventKind::Created,
                    EventKind::Ready,
                    EventKind::Scheduled,
                    EventKind::Completed,
                ],
                "ordinary task {id:?}"
            );
        }
    }
    assert!(saw_redirect, "optimization (c) produced redirect nodes");
}

#[test]
fn persistent_lifecycle_sequences_identical_across_backends() {
    let prog = Shapes::new();
    let t = run(&prog.space, &prog, threads_profiled(OptConfig::all(), true));
    let s = run(&prog.space, &prog, sim_profiled(OptConfig::all(), true));
    assert_same_sequences(&t, &s);
}

#[test]
fn lulesh_lifecycle_sequences_identical_across_backends() {
    let prog = LuleshTask::new(LuleshConfig::single(6, 2, 8));
    let t = run(
        &prog.space,
        &prog,
        threads_profiled(OptConfig::all(), false),
    );
    let s = run(&prog.space, &prog, sim_profiled(OptConfig::all(), false));
    assert_same_sequences(&t, &s);
}

#[test]
fn counters_agree_across_backends() {
    let prog = Shapes::new();
    let t = run(
        &prog.space,
        &prog,
        threads_profiled(OptConfig::all(), false),
    );
    let s = run(&prog.space, &prog, sim_profiled(OptConfig::all(), false));
    let (tc, sc) = (t.counters(), s.counters());
    assert!(tc.tasks_created > 0);
    assert_eq!(tc.tasks_created, sc.tasks_created, "created");
    assert_eq!(tc.tasks_completed, sc.tasks_completed, "completed");
    assert_eq!(
        tc.tasks_created, tc.tasks_completed,
        "drained at quiescence"
    );
    // edges_created alone is timing-dependent (an edge to an
    // already-retired producer is pruned, not created), but the
    // structural probe count created+pruned is backend-invariant.
    assert_eq!(
        tc.edges_created + tc.edges_pruned,
        sc.edges_created + sc.edges_pruned,
        "structural edges"
    );
    assert_eq!(tc.dup_skipped, sc.dup_skipped, "dedup skips");
    assert_eq!(tc.redirect_nodes, sc.redirect_nodes, "redirects");
    assert_eq!(tc.comms_posted, sc.comms_posted, "comm posts");
    assert_eq!(tc.comms_posted, 2, "one allreduce per iteration");
    for (label, c) in [("threads", &tc), ("sim", &sc)] {
        assert!(c.events_recorded > 0, "{label}: events recorded");
        assert_eq!(c.events_dropped, 0, "{label}: ring did not drop");
        assert!(c.live_hwm >= 1, "{label}: live high-water mark");
        assert!(c.ready_hwm >= 1, "{label}: ready high-water mark");
    }
}

#[test]
fn persistent_counters_report_reuse() {
    let prog = Shapes::new();
    let t = run(&prog.space, &prog, threads_profiled(OptConfig::all(), true));
    let s = run(&prog.space, &prog, sim_profiled(OptConfig::all(), true));
    assert!(t.counters().persistent_reuses > 0, "threads reuse counter");
    assert_eq!(
        t.counters().persistent_reuses,
        s.counters().persistent_reuses,
        "reuse counters agree"
    );
}

#[test]
fn critical_path_invariants_hold_on_lulesh() {
    let prog = LuleshTask::new(LuleshConfig::single(6, 2, 8));
    let machine = MachineConfig::tiny(4);
    let outcome = run(
        &prog.space,
        &prog,
        Backend::Sim {
            machine: machine.clone(),
            cfg: SimConfig {
                opts: OptConfig::all(),
                record_trace_rank: Some(0),
                capture_graph: true,
                ..Default::default()
            },
        },
    );
    let makespan = outcome.sim().unwrap().rank(0).span_ns;
    let cp = critical_path(
        &outcome.graphs()[0],
        outcome.events(),
        makespan,
        machine.n_cores,
    );
    assert!(cp.cp_ns > 0, "non-trivial critical path");
    assert!(cp.cp_tasks > 0);
    assert!(
        cp.cp_ns <= cp.makespan_ns,
        "cp {} must not exceed makespan {}",
        cp.cp_ns,
        cp.makespan_ns
    );
    assert!(cp.cp_ns <= cp.t1_ns, "cp bounded by total work");
    assert!(cp.ideal_ns() <= cp.makespan_ns, "T1/p bounds the makespan");
    assert!(!cp.top_tasks.is_empty());
    let report = cp.render(5);
    assert!(report.contains("critical path"));
    assert!(report.contains("makespan"));
}

#[test]
fn chrome_export_is_complete_on_both_backends() {
    let prog = LuleshTask::new(LuleshConfig::single(6, 1, 8));
    for backend in [
        threads_profiled(OptConfig::all(), false),
        sim_profiled(OptConfig::all(), false),
    ] {
        let outcome = run(&prog.space, &prog, backend);
        let trace = outcome.trace().expect("trace recorded");
        let doc = chrome_trace(trace, outcome.events(), &outcome.counters()).render();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"displayTimeUnit\":\"ms\""));
        assert!(doc.contains("worker 0"), "worker track metadata");
        assert!(doc.contains("producer/discovery"), "discovery track");
        assert!(doc.contains("live_tasks"), "live-task counter track");
        assert!(doc.contains("ready_tasks"), "ready-task counter track");
        assert!(
            doc.contains("\"tasks_created\""),
            "kernel counters ride along"
        );
    }
}

#[test]
fn unprofiled_runs_record_nothing() {
    let prog = Shapes::new();
    let outcome = run(
        &prog.space,
        &prog,
        Backend::Threads(ThreadsConfig {
            opts: OptConfig::all(),
            ..Default::default()
        }),
    );
    assert!(outcome.events().is_empty(), "no events without profiling");
    assert!(outcome.trace().is_none(), "no trace without profiling");
    assert_eq!(outcome.counters().events_recorded, 0);
}
