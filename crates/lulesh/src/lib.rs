//! # ptdg-lulesh — a LULESH-like hydrodynamics proxy application
//!
//! Reproduces the structure of the Livermore Unstructured Lagrangian
//! Explicit Shock Hydrodynamics proxy app as used by the paper: an `s³`
//! hexahedral mesh per MPI rank, a sequence of mesh-wide loops per time
//! step, 26-neighbor frontier exchanges (face/edge/corner messages of
//! O(s²)/O(s)/O(1) bytes), and a global reduction of the dynamic time
//! step. Three versions are provided:
//!
//! * [`sequential::run_sequential`] — the verification reference;
//! * [`LuleshTask`] — the dependent-task version (paper Listing 1):
//!   `taskloop`-style slicing with a TPL parameter, `inoutset` force
//!   accumulation, communication tasks with detached completion, optional
//!   `taskwait` fencing, and optimization (a) as the `fused_deps` flag.
//!   With [`LuleshTask::with_state`] it carries real arrays and runs on
//!   the `ptdg-core` thread executor producing bitwise-reproducible
//!   physics; without, it is a cost-model program for `ptdg-simrt`;
//! * [`LuleshBsp`] — the fork-join `parallel for` reference version.
//!
//! The physics is simplified (documented in `DESIGN.md`); the loop count,
//! dependency shape, footprints and message sizes — the quantities the
//! paper's study depends on — follow the original.

pub mod bsp_program;
pub mod config;
pub mod handles;
pub mod mesh;
pub mod sequential;
pub mod state;
pub mod task_program;

pub use bsp_program::LuleshBsp;
pub use config::LuleshConfig;
pub use handles::LuleshHandles;
pub use mesh::{Mesh, RankGrid};
pub use state::LuleshState;
pub use task_program::LuleshTask;
