//! Request objects and per-rank communication metrics.

use crate::Rank;
use ptdg_simcore::SimTime;

/// Identifier of one communication request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// What kind of request this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqKind {
    /// Point-to-point send.
    Send,
    /// Point-to-point receive.
    Recv,
    /// All-reduce collective.
    Allreduce,
}

/// One tracked request.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Its id.
    pub id: ReqId,
    /// Owning rank.
    pub rank: Rank,
    /// Kind.
    pub kind: ReqKind,
    /// Payload bytes.
    pub bytes: u64,
    /// When it was posted.
    pub posted_at: SimTime,
    /// When it completed (`None` while in flight).
    pub completed_at: Option<SimTime>,
}

impl Request {
    /// Communication time `c(r)` — defined for completed requests.
    pub fn comm_time(&self) -> Option<SimTime> {
        self.completed_at.map(|t| t.saturating_sub(self.posted_at))
    }

    /// Whether this request counts toward the paper's communication-time
    /// metric (send and collective requests only, §4.1).
    pub fn is_tracked(&self) -> bool {
        matches!(self.kind, ReqKind::Send | ReqKind::Allreduce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_time_is_post_to_completion() {
        let mut r = Request {
            id: ReqId(0),
            rank: 0,
            kind: ReqKind::Send,
            bytes: 10,
            posted_at: SimTime::from_ns(100),
            completed_at: None,
        };
        assert_eq!(r.comm_time(), None);
        r.completed_at = Some(SimTime::from_ns(250));
        assert_eq!(r.comm_time().unwrap().as_ns(), 150);
    }

    #[test]
    fn tracking_follows_the_paper() {
        let mk = |kind| Request {
            id: ReqId(0),
            rank: 0,
            kind,
            bytes: 0,
            posted_at: SimTime::ZERO,
            completed_at: None,
        };
        assert!(mk(ReqKind::Send).is_tracked());
        assert!(mk(ReqKind::Allreduce).is_tracked());
        assert!(!mk(ReqKind::Recv).is_tracked());
    }
}
