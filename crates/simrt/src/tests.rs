//! Behavioural tests of the virtual executors on synthetic programs.

use crate::*;
use ptdg_core::builder::TaskSubmitter;
use ptdg_core::exec::SchedPolicy;
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::task::TaskSpec;
use ptdg_core::throttle::ThrottleConfig;
use ptdg_core::workdesc::{CommOp, HandleSlice, WorkDesc};

/// A chain of `n` compute tasks on one handle, `iters` iterations.
struct Chain {
    x: DataHandle,
    n: usize,
    iters: u64,
    flops: f64,
}

impl RankProgram for Chain {
    fn n_iterations(&self) -> u64 {
        self.iters
    }
    fn build_iteration(&self, _rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        for _ in 0..self.n {
            sub.submit(
                TaskSpec::new("link")
                    .depend(self.x, ptdg_core::AccessMode::InOut)
                    .work(WorkDesc::compute(self.flops)),
            );
        }
    }
}

/// `width` independent tasks per iteration, each with its own handle and a
/// configurable footprint slice.
struct Wide {
    handles: Vec<DataHandle>,
    bytes_per_task: u64,
    iters: u64,
    flops: f64,
}

impl RankProgram for Wide {
    fn n_iterations(&self) -> u64 {
        self.iters
    }
    fn build_iteration(&self, _rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        for &h in &self.handles {
            sub.submit(
                TaskSpec::new("wide")
                    .depend(h, ptdg_core::AccessMode::InOut)
                    .work(
                        WorkDesc::compute(self.flops)
                            .touching(HandleSlice::whole(h, self.bytes_per_task)),
                    ),
            );
        }
    }
}

fn chain_setup(n: usize, iters: u64) -> (HandleSpace, Chain) {
    let mut space = HandleSpace::new();
    let x = space.region("x", 64);
    (
        space,
        Chain {
            x,
            n,
            iters,
            flops: 1e6,
        },
    )
}

#[test]
fn simulation_is_deterministic() {
    let (space, prog) = chain_setup(50, 3);
    let m = MachineConfig::tiny(4);
    let cfg = SimConfig::default();
    let a = simulate_tasks(&m, &cfg, &space, &prog);
    let b = simulate_tasks(&m, &cfg, &space, &prog);
    assert_eq!(a.rank(0).span_ns, b.rank(0).span_ns);
    assert_eq!(a.rank(0).work_ns, b.rank(0).work_ns);
    assert_eq!(a.rank(0).idle_ns, b.rank(0).idle_ns);
}

#[test]
fn all_tasks_execute() {
    let (space, prog) = chain_setup(100, 4);
    let m = MachineConfig::tiny(3);
    let r = simulate_tasks(&m, &SimConfig::default(), &space, &prog);
    assert_eq!(r.rank(0).tasks_executed, 400);
    assert_eq!(r.rank(0).disc.tasks, 400);
}

#[test]
fn chain_serializes_regardless_of_core_count() {
    // A pure chain cannot go faster with more cores.
    let (space, prog) = chain_setup(200, 1);
    let t2 = simulate_tasks(
        &MachineConfig::tiny(2),
        &SimConfig::default(),
        &space,
        &prog,
    );
    let t8 = simulate_tasks(
        &MachineConfig::tiny(8),
        &SimConfig::default(),
        &space,
        &prog,
    );
    let ratio = t8.total_time_s() / t2.total_time_s();
    assert!(
        (0.8..1.25).contains(&ratio),
        "chain must not scale with cores: {ratio}"
    );
}

#[test]
fn wide_program_scales_with_cores() {
    let mut space = HandleSpace::new();
    let handles = (0..64).map(|_| space.region("h", 64)).collect();
    let prog = Wide {
        handles,
        bytes_per_task: 0,
        iters: 4,
        flops: 4e6, // 1 ms at 4 Gflop/s: discovery (µs-scale) is negligible
    };
    let t1 = simulate_tasks(
        &MachineConfig::tiny(1),
        &SimConfig::default(),
        &space,
        &prog,
    );
    let t8 = simulate_tasks(
        &MachineConfig::tiny(8),
        &SimConfig::default(),
        &space,
        &prog,
    );
    let speedup = t1.total_time_s() / t8.total_time_s();
    assert!(
        speedup > 4.0,
        "64 independent 1 ms tasks on 8 cores should speed up well: {speedup}"
    );
}

#[test]
fn discovery_bound_execution_idles_workers() {
    // Tiny tasks: workers consume far faster than the producer discovers.
    let mut space = HandleSpace::new();
    let handles = (0..2000).map(|_| space.region("h", 64)).collect();
    let prog = Wide {
        handles,
        bytes_per_task: 0,
        iters: 1,
        flops: 1e3, // 0.25 µs per task — far below discovery cost
    };
    let m = MachineConfig::tiny(8);
    let r = simulate_tasks(&m, &SimConfig::default(), &space, &prog);
    let rank = r.rank(0);
    // Total time ≈ discovery span; idleness dominates the breakdown.
    assert!(
        rank.discovery_ns as f64 > 0.8 * rank.span_ns as f64,
        "tiny tasks must be discovery-bound: disc {} vs span {}",
        rank.discovery_ns,
        rank.span_ns
    );
    assert!(rank.idle_ns > rank.work_ns * 4);
}

#[test]
fn persistent_mode_cuts_discovery_time() {
    let mut space = HandleSpace::new();
    let handles: Vec<DataHandle> = (0..300).map(|_| space.region("h", 64)).collect();
    let prog = Wide {
        handles,
        bytes_per_task: 0,
        iters: 8,
        flops: 1e5,
    };
    let m = MachineConfig::tiny(4);
    let base = simulate_tasks(&m, &SimConfig::default(), &space, &prog);
    let cfg_p = SimConfig {
        persistent: true,
        ..Default::default()
    };
    let pers = simulate_tasks(&m, &cfg_p, &space, &prog);
    let speedup = base.rank(0).discovery_ns as f64 / pers.rank(0).discovery_ns.max(1) as f64;
    assert!(
        speedup > 3.0,
        "persistent discovery should be several times faster: {speedup}"
    );
    assert_eq!(pers.rank(0).tasks_executed, 2400, "all iterations re-run");
    // First iteration carries the full capture cost.
    assert!(pers.rank(0).discovery_first_iter_ns as f64 > 0.3 * pers.rank(0).discovery_ns as f64);
}

#[test]
fn persistent_dependencies_hold_every_iteration() {
    // Chain with persistence: span must still be >= n * task duration per
    // iteration (serialized), proving template edges are enforced.
    let (space, prog) = chain_setup(64, 4);
    let m = MachineConfig::tiny(4);
    let cfg = SimConfig {
        persistent: true,
        ..Default::default()
    };
    let r = simulate_tasks(&m, &cfg, &space, &prog);
    let task_s = 1e6 / m.mem.flops_per_s;
    let min_span = 4.0 * 64.0 * task_s;
    assert!(
        r.total_time_s() > min_span * 0.95,
        "chain must stay serialized under persistence: {} < {min_span}",
        r.total_time_s()
    );
    assert_eq!(r.rank(0).tasks_executed, 256);
}

#[test]
fn non_overlapped_mode_defers_execution() {
    let mut space = HandleSpace::new();
    let handles = (0..200).map(|_| space.region("h", 64)).collect();
    let prog = Wide {
        handles,
        bytes_per_task: 0,
        iters: 1,
        flops: 1e5,
    };
    let m = MachineConfig::tiny(4);
    let normal = simulate_tasks(&m, &SimConfig::default(), &space, &prog);
    let cfg_no = SimConfig {
        non_overlapped: true,
        ..Default::default()
    };
    let nover = simulate_tasks(&m, &cfg_no, &space, &prog);
    // Non-overlapped pays full serial discovery before any work: slower
    // total, but no pruned edges.
    assert!(nover.total_time_s() > normal.total_time_s());
    assert_eq!(nover.rank(0).disc.edges_pruned, 0);
}

#[test]
fn non_overlapped_discovery_prunes_nothing_while_normal_can() {
    let (space, prog) = chain_setup(400, 1);
    let m = MachineConfig::tiny(4);
    let normal = simulate_tasks(&m, &SimConfig::default(), &space, &prog);
    // Chain of 0.25 ms tasks vs ~3 µs discovery: predecessors of task k
    // are still alive at discovery (producer is far ahead), so pruning is
    // rare here; use tiny tasks to force pruning instead.
    let _ = normal;
    let mut space2 = HandleSpace::new();
    let x = space2.region("x", 64);
    let tiny = Chain {
        x,
        n: 400,
        iters: 1,
        flops: 1e2,
    };
    let pruned = simulate_tasks(&m, &SimConfig::default(), &space2, &tiny);
    assert!(
        pruned.rank(0).disc.edges_pruned > 0,
        "tiny chain tasks complete before their successor is discovered"
    );
}

#[test]
fn ready_throttling_keeps_ready_set_bounded_and_slows_nothing_fatal() {
    let mut space = HandleSpace::new();
    let handles = (0..500).map(|_| space.region("h", 64)).collect();
    let prog = Wide {
        handles,
        bytes_per_task: 0,
        iters: 1,
        flops: 1e5,
    };
    let m = MachineConfig::tiny(4);
    let cfg = SimConfig {
        throttle: ThrottleConfig::ready_bound(8),
        ..Default::default()
    };
    let r = simulate_tasks(&m, &cfg, &space, &prog);
    assert_eq!(r.rank(0).tasks_executed, 500);
}

#[test]
fn depth_first_beats_breadth_first_on_cache_reuse() {
    // Two-stage producer/consumer per slice: DF runs the consumer right
    // after its producer on the same core (L1/L2 hit); BF runs all
    // producers first (by discovery order), evicting everything.
    struct TwoStage {
        a: Vec<DataHandle>,
        bytes: u64,
        stages: usize,
    }
    impl RankProgram for TwoStage {
        fn n_iterations(&self) -> u64 {
            1
        }
        fn build_iteration(&self, _r: Rank, _i: u64, sub: &mut dyn TaskSubmitter) {
            for stage in 0..self.stages {
                for &h in &self.a {
                    let mode = if stage == 0 {
                        ptdg_core::AccessMode::Out
                    } else {
                        ptdg_core::AccessMode::InOut
                    };
                    sub.submit(
                        TaskSpec::new("stage").depend(h, mode).work(
                            WorkDesc::compute(1e5).touching(HandleSlice::whole(h, self.bytes)),
                        ),
                    );
                }
            }
        }
    }
    let mut space = HandleSpace::new();
    // 64 slices × 256 KiB = 16 MiB working set: fits L3 (33 MiB) but not
    // the 1 MiB L2; each slice fits L2 individually.
    let bytes = 256 << 10;
    let a: Vec<DataHandle> = (0..64).map(|_| space.region("a", bytes)).collect();
    let prog = TwoStage {
        a,
        bytes,
        stages: 2,
    };
    let m = MachineConfig::tiny(2);
    let df = simulate_tasks(
        &m,
        &SimConfig {
            policy: SchedPolicy::DepthFirst,
            ..Default::default()
        },
        &space,
        &prog,
    );
    let bf = simulate_tasks(
        &m,
        &SimConfig {
            policy: SchedPolicy::BreadthFirst,
            ..Default::default()
        },
        &space,
        &prog,
    );
    assert!(
        df.rank(0).cache.l2_misses < bf.rank(0).cache.l2_misses,
        "depth-first must reuse L2: DF {} vs BF {}",
        df.rank(0).cache.l2_misses,
        bf.rank(0).cache.l2_misses
    );
    assert!(df.rank(0).work_ns < bf.rank(0).work_ns);
}

/// Two ranks exchanging one rendezvous message per iteration plus an
/// allreduce, with independent work available for overlap.
struct PingPong {
    sbuf: DataHandle,
    rbuf: DataHandle,
    dt: DataHandle,
    indep: Vec<DataHandle>,
    iters: u64,
    msg_bytes: u64,
}

impl RankProgram for PingPong {
    fn n_iterations(&self) -> u64 {
        self.iters
    }
    fn build_iteration(&self, rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        use ptdg_core::AccessMode::*;
        let peer = 1 - rank;
        sub.submit(
            TaskSpec::new("allreduce")
                .depend(self.dt, Out)
                .comm(CommOp::Iallreduce { bytes: 8 }),
        );
        sub.submit(
            TaskSpec::new("irecv")
                .depend(self.rbuf, Out)
                .comm(CommOp::Irecv {
                    peer,
                    bytes: self.msg_bytes,
                    tag: 1,
                }),
        );
        sub.submit(
            TaskSpec::new("pack")
                .depend(self.dt, In)
                .depend(self.sbuf, Out)
                .work(WorkDesc::compute(1e5)),
        );
        sub.submit(
            TaskSpec::new("isend")
                .depend(self.sbuf, In)
                .comm(CommOp::Isend {
                    peer,
                    bytes: self.msg_bytes,
                    tag: 1,
                }),
        );
        for &h in &self.indep {
            sub.submit(
                TaskSpec::new("work")
                    .depend(h, InOut)
                    .depend(self.dt, In)
                    .work(WorkDesc::compute(2e6)),
            );
        }
        sub.submit(
            TaskSpec::new("unpack")
                .depend(self.rbuf, InOut)
                .work(WorkDesc::compute(1e5)),
        );
    }
}

fn pingpong(iters: u64, msg_bytes: u64) -> (HandleSpace, PingPong) {
    let mut space = HandleSpace::new();
    let sbuf = space.region("sbuf", msg_bytes.max(8));
    let rbuf = space.region("rbuf", msg_bytes.max(8));
    let dt = space.region("dt", 8);
    let indep = (0..8).map(|_| space.region("w", 64)).collect();
    (
        space,
        PingPong {
            sbuf,
            rbuf,
            dt,
            indep,
            iters,
            msg_bytes,
        },
    )
}

#[test]
fn two_rank_exchange_completes_and_overlaps() {
    let (space, prog) = pingpong(4, 64 << 10); // rendezvous-sized
    let m = MachineConfig::tiny(4);
    let cfg = SimConfig {
        n_ranks: 2,
        ..Default::default()
    };
    let r = simulate_tasks(&m, &cfg, &space, &prog);
    for rank in 0..2 {
        let rr = r.rank(rank);
        assert!(rr.comm_ns > 0, "rank {rank} has tracked comm time");
        assert!(
            rr.overlap_ratio() > 0.0,
            "independent tasks must overlap comm"
        );
        // 4 iters × (irecv + isend + allreduce + pack + unpack + 8 work)
        assert_eq!(rr.tasks_executed, 4 * 13);
    }
}

#[test]
fn eager_messages_complete_faster_than_rendezvous_for_sender() {
    let (space_e, prog_e) = pingpong(2, 1 << 10); // eager
    let (space_r, prog_r) = pingpong(2, 64 << 10); // rendezvous
    let m = MachineConfig::tiny(2);
    let cfg = SimConfig {
        n_ranks: 2,
        ..Default::default()
    };
    let eager = simulate_tasks(&m, &cfg, &space_e, &prog_e);
    let rdv = simulate_tasks(&m, &cfg, &space_r, &prog_r);
    assert!(
        eager.rank(0).comm_p2p_ns < rdv.rank(0).comm_p2p_ns,
        "eager sends complete locally; rendezvous waits for the receiver"
    );
}

#[test]
fn trace_capture_produces_gantt_rows() {
    let (space, prog) = chain_setup(32, 2);
    let m = MachineConfig::tiny(2);
    let cfg = SimConfig {
        record_trace_rank: Some(0),
        ..Default::default()
    };
    let r = simulate_tasks(&m, &cfg, &space, &prog);
    let trace = r.trace.expect("trace requested");
    assert_eq!(trace.n_tasks_run(), 64);
    let art = ptdg_core::profile::render_ascii_gantt(&trace, 60);
    assert!(art.lines().count() >= 2);
}

// ---- BSP -----------------------------------------------------------------

struct BspLoops {
    arr: DataHandle,
    bytes: u64,
    n_loops: usize,
    iters: u64,
    peer_exchange: bool,
}

impl BspProgram for BspLoops {
    fn n_iterations(&self) -> u64 {
        self.iters
    }
    fn phases(&self, rank: Rank, _iter: u64) -> Vec<BspPhase> {
        let mut v = Vec::new();
        v.push(BspPhase::Allreduce { bytes: 8 });
        for _ in 0..self.n_loops {
            v.push(BspPhase::Loop {
                name: "loop",
                flops: 1e7,
                footprint: vec![HandleSlice::whole(self.arr, self.bytes)],
            });
        }
        if self.peer_exchange {
            let peer = 1 - rank;
            v.push(BspPhase::Exchange {
                sends: vec![(peer, 32 << 10, 9)],
                recvs: vec![(peer, 32 << 10, 9)],
            });
        }
        v
    }
}

#[test]
fn bsp_runs_and_balances_work() {
    let mut space = HandleSpace::new();
    let bytes = 4 << 20;
    let arr = space.region("arr", bytes);
    let prog = BspLoops {
        arr,
        bytes,
        n_loops: 5,
        iters: 3,
        peer_exchange: true,
    };
    let m = MachineConfig::tiny(4);
    let cfg = SimConfig {
        n_ranks: 2,
        ..Default::default()
    };
    let r = simulate_bsp(&m, &cfg, &space, &prog);
    let rr = r.rank(0);
    assert!(rr.work_ns > 0);
    assert_eq!(rr.overlapped_ns, 0, "fork-join cannot overlap");
    assert_eq!(rr.overlap_ratio(), 0.0);
    assert!(rr.comm_ns > 0);
    assert!(r.total_time_s() > 0.0);
}

#[test]
fn bsp_is_deterministic() {
    let mut space = HandleSpace::new();
    let arr = space.region("arr", 1 << 20);
    let prog = BspLoops {
        arr,
        bytes: 1 << 20,
        n_loops: 3,
        iters: 2,
        peer_exchange: false,
    };
    let m = MachineConfig::tiny(2);
    let cfg = SimConfig {
        n_ranks: 1,
        ..Default::default()
    };
    let a = simulate_bsp(&m, &cfg, &space, &prog);
    let b = simulate_bsp(&m, &cfg, &space, &prog);
    assert_eq!(a.rank(0).span_ns, b.rank(0).span_ns);
}

#[test]
fn bsp_large_footprint_thrashes_and_tasks_with_small_slices_do_not() {
    // The central claim of the paper in miniature: the same total data,
    // processed as (a) full-array sweeps per loop (parallel for) vs (b)
    // per-slice task chains with depth-first scheduling, produces fewer L3
    // misses in (b).
    let total_bytes: u64 = 48 << 20; // larger than the 33 MiB L3
    let n_slices = 96usize;
    let mut space_bsp = HandleSpace::new();
    let arr = space_bsp.region("arr", total_bytes);
    let bsp_prog = BspLoops {
        arr,
        bytes: total_bytes,
        n_loops: 4,
        iters: 2,
        peer_exchange: false,
    };
    let mut space_t = HandleSpace::new();
    let slice_bytes = total_bytes / n_slices as u64;
    let handles: Vec<DataHandle> = (0..n_slices)
        .map(|_| space_t.region("s", slice_bytes))
        .collect();
    struct SliceChains {
        handles: Vec<DataHandle>,
        bytes: u64,
        n_loops: usize,
        iters: u64,
    }
    impl RankProgram for SliceChains {
        fn n_iterations(&self) -> u64 {
            self.iters
        }
        fn build_iteration(&self, _r: Rank, _i: u64, sub: &mut dyn TaskSubmitter) {
            for _ in 0..self.n_loops {
                for &h in &self.handles {
                    sub.submit(
                        TaskSpec::new("slice")
                            .depend(h, ptdg_core::AccessMode::InOut)
                            .work(
                                WorkDesc::compute(1e7 / self.handles.len() as f64)
                                    .touching(HandleSlice::whole(h, self.bytes)),
                            ),
                    );
                }
            }
        }
    }
    let task_prog = SliceChains {
        handles,
        bytes: slice_bytes,
        n_loops: 4,
        iters: 2,
    };
    // 4 cores: consumption stays slower than discovery, so depth-first
    // chains stay visible (24 cores would make this discovery-bound —
    // exactly the regime the paper's optimizations exist to escape).
    let m = MachineConfig::tiny(4);
    let cfg = SimConfig::default();
    let bsp = simulate_bsp(&m, &cfg, &space_bsp, &bsp_prog);
    let tasks = simulate_tasks(&m, &cfg, &space_t, &task_prog);
    assert!(
        tasks.rank(0).cache.l3_misses < bsp.rank(0).cache.l3_misses / 3,
        "sliced task chains must reuse caches: task L3CM {} vs BSP {}",
        tasks.rank(0).cache.l3_misses,
        bsp.rank(0).cache.l3_misses
    );
}

#[test]
fn jitter_is_deterministic_and_bounded() {
    let (space, prog) = chain_setup(100, 2);
    let m = MachineConfig::tiny(2);
    let cfg = SimConfig {
        work_jitter: 0.2,
        ..Default::default()
    };
    let a = simulate_tasks(&m, &cfg, &space, &prog);
    let b = simulate_tasks(&m, &cfg, &space, &prog);
    assert_eq!(
        a.rank(0).work_ns,
        b.rank(0).work_ns,
        "same seed, same times"
    );
    let other = SimConfig {
        work_jitter: 0.2,
        seed: 99,
        ..Default::default()
    };
    let c = simulate_tasks(&m, &other, &space, &prog);
    assert_ne!(
        a.rank(0).work_ns,
        c.rank(0).work_ns,
        "different seed differs"
    );
    // bounded: total work within ±20% of the jitter-free run
    let clean = simulate_tasks(&m, &SimConfig::default(), &space, &prog);
    let ratio = a.rank(0).work_ns as f64 / clean.rank(0).work_ns as f64;
    assert!((0.8..1.2).contains(&ratio), "jitter out of bounds: {ratio}");
}

#[test]
fn jitter_desynchronizes_collectives_for_bsp() {
    // With noise, the fork-join allreduce inherits the skew as idle time.
    let mut space = HandleSpace::new();
    let arr = space.region("arr", 1 << 20);
    struct NoisyBsp {
        arr: DataHandle,
    }
    impl BspProgram for NoisyBsp {
        fn n_iterations(&self) -> u64 {
            8
        }
        fn phases(&self, _r: Rank, _i: u64) -> Vec<BspPhase> {
            vec![
                BspPhase::Allreduce { bytes: 8 },
                BspPhase::Loop {
                    name: "work",
                    flops: 4e7,
                    footprint: vec![HandleSlice::whole(self.arr, 1 << 20)],
                },
            ]
        }
    }
    let prog = NoisyBsp { arr };
    let m = MachineConfig::tiny(4);
    let quiet = simulate_bsp(
        &m,
        &SimConfig {
            n_ranks: 4,
            ..Default::default()
        },
        &space,
        &prog,
    );
    let noisy = simulate_bsp(
        &m,
        &SimConfig {
            n_ranks: 4,
            work_jitter: 0.15,
            ..Default::default()
        },
        &space,
        &prog,
    );
    let quiet_idle = quiet.mean_over_ranks(|r| r.avg_idle_s());
    let noisy_idle = noisy.mean_over_ranks(|r| r.avg_idle_s());
    assert!(
        noisy_idle > quiet_idle,
        "noise must surface as collective-wait idle: {quiet_idle} vs {noisy_idle}"
    );
}

#[test]
fn overlap_never_exceeds_physical_bound() {
    // W <= n_cores * C by construction of the accounting.
    let (space, prog) = pingpong(6, 64 << 10);
    let m = MachineConfig::tiny(4);
    let cfg = SimConfig {
        n_ranks: 2,
        work_jitter: 0.1,
        ..Default::default()
    };
    let r = simulate_tasks(&m, &cfg, &space, &prog);
    for rank in 0..2 {
        let rr = r.rank(rank);
        assert!(rr.overlapped_ns <= rr.comm_ns * rr.n_cores as u64 + 1);
        assert!(rr.overlap_ratio() <= 1.0);
    }
}

#[test]
fn report_breakdown_accounts_for_core_time() {
    // work + idle + overhead per core should approximately fill the span
    // (producer barrier waits are the only untracked gaps).
    let (space, prog) = chain_setup(200, 2);
    let m = MachineConfig::tiny(4);
    let r = simulate_tasks(&m, &SimConfig::default(), &space, &prog);
    let rr = r.rank(0);
    let accounted = rr.avg_work_s() + rr.avg_idle_s() + rr.avg_overhead_s();
    let span = rr.span_s();
    assert!(
        accounted > 0.85 * span && accounted < 1.05 * span,
        "breakdown {accounted} vs span {span}"
    );
}

#[test]
fn persistent_reinstance_handles_redirect_nodes() {
    // inoutset group + readers under (c): the redirect node must be
    // re-instanced and re-executed correctly every iteration.
    struct SetThenRead {
        h: DataHandle,
        iters: u64,
    }
    impl RankProgram for SetThenRead {
        fn n_iterations(&self) -> u64 {
            self.iters
        }
        fn build_iteration(&self, _r: Rank, _i: u64, sub: &mut dyn TaskSubmitter) {
            use ptdg_core::AccessMode::*;
            for _ in 0..6 {
                sub.submit(
                    TaskSpec::new("member")
                        .depend(self.h, InOutSet)
                        .work(WorkDesc::compute(1e5)),
                );
            }
            for _ in 0..4 {
                sub.submit(
                    TaskSpec::new("reader")
                        .depend(self.h, In)
                        .work(WorkDesc::compute(1e5)),
                );
            }
        }
    }
    let mut space = HandleSpace::new();
    let h = space.region("x", 64);
    let prog = SetThenRead { h, iters: 5 };
    let m = MachineConfig::tiny(3);
    let cfg = SimConfig {
        persistent: true,
        opts: ptdg_core::OptConfig::all(),
        ..Default::default()
    };
    let r = simulate_tasks(&m, &cfg, &space, &prog);
    // 10 application tasks per iteration (redirects complete inline and
    // are not counted as executed tasks)
    assert_eq!(r.rank(0).tasks_executed, 50);
    assert_eq!(r.rank(0).disc.redirect_nodes, 1, "one redirect captured");
    // sanity: readers are ordered after the whole group each iteration,
    // so the span is at least members-then-readers long
    let task_s = 1e5 / m.mem.flops_per_s;
    let min_span = 5.0 * (2.0 * task_s + 2.0 * task_s / 3.0);
    assert!(r.total_time_s() > min_span * 0.5);
}

#[test]
fn non_overlapped_with_multiple_iterations_is_correct() {
    // The gate holds everything across ALL iterations (the paper's fully
    // unrolled configuration); the run must still execute every task.
    let (space, prog) = chain_setup(30, 3);
    let m = MachineConfig::tiny(2);
    let cfg = SimConfig {
        non_overlapped: true,
        ..Default::default()
    };
    let r = simulate_tasks(&m, &cfg, &space, &prog);
    assert_eq!(r.rank(0).tasks_executed, 90);
    assert_eq!(r.rank(0).disc.edges_pruned, 0);
}
