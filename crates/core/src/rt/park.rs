//! Worker parking: an eventcount so idle workers block instead of
//! sleep-polling.
//!
//! The old idle loops slept 20µs between queue polls, paying both idle
//! CPU burn and up-to-20µs wakeup latency every time a dependency chain
//! serialised the run. The eventcount turns the poll into a blocking
//! wait with a race-free re-check:
//!
//! ```text
//! waiter:  ticket = prepare();          // SeqCst load of epoch
//!          if work_available { return } // re-check AFTER prepare
//!          park(ticket);                // sleeps unless epoch moved
//! waker:   publish work (Release push); notify(); // SeqCst epoch bump
//! ```
//!
//! Lost-wakeup freedom: `prepare`'s epoch load and `notify`'s
//! `fetch_add` are both SeqCst, so they are totally ordered. If the
//! waiter's load comes first, the waker's bump lands after the ticket was
//! taken and `park` returns immediately (ticket != epoch under the
//! lock). If the bump comes first, then in the SC total order the
//! waiter's subsequent queue re-check observes the item published before
//! `notify` — SeqCst on both sides gives the needed reads-from edge —
//! and the waiter never parks. Either way a push cannot vanish while a
//! worker sleeps.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How long a parked worker sleeps before re-checking on its own, as a
/// belt-and-braces bound (the protocol above makes wakeups reliable; the
/// timeout only bounds the damage of a future protocol bug).
const PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(100);

/// A ticket returned by [`Parker::prepare`]; consumed by [`Parker::park`].
#[derive(Clone, Copy, Debug)]
pub struct ParkTicket(u64);

/// Condvar-backed eventcount shared by all workers of a pool.
pub struct Parker {
    /// Generation counter bumped by every notify. SeqCst (see module
    /// docs: totally ordered against `prepare`'s load).
    epoch: AtomicU64,
    /// Number of threads inside `park` (between registering under the
    /// lock and waking). Lets `notify` skip the mutex entirely on the
    /// hot path when nobody sleeps. Updated under `mutex`, read racily —
    /// a stale non-zero only costs an uncontended lock round-trip, and a
    /// stale zero is impossible because the waiter increments it before
    /// releasing the lock it will sleep on (see `notify`).
    waiters: AtomicUsize,
    mutex: Mutex<()>,
    condvar: Condvar,
}

impl Parker {
    pub fn new() -> Parker {
        Parker {
            epoch: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    /// First phase of the wait: capture the current epoch. The caller
    /// must re-check its wake condition (queues, shutdown, quiescence)
    /// *after* this call and before [`Parker::park`].
    pub fn prepare(&self) -> ParkTicket {
        ParkTicket(self.epoch.load(Ordering::SeqCst))
    }

    /// Second phase: block until the epoch moves past the ticket.
    /// Returns immediately if a notify landed since [`Parker::prepare`].
    pub fn park(&self, ticket: ParkTicket) {
        let mut guard = self.mutex.lock().unwrap();
        // Registered before sleeping: any notifier that observes
        // `waiters == 0` after this point also observes the epoch bump
        // ordering below.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        loop {
            if self.epoch.load(Ordering::SeqCst) != ticket.0 {
                break;
            }
            let (g, _timeout) = self.condvar.wait_timeout(guard, PARK_TIMEOUT).unwrap();
            guard = g;
            // Timeout or spurious wake: if the epoch moved we are done,
            // otherwise the caller's loop re-checks its condition anyway
            // once we return — but returning on every spurious wake
            // would degrade to polling, so only exit on epoch movement
            // or timeout.
            if self.epoch.load(Ordering::SeqCst) != ticket.0 {
                break;
            }
            if _timeout.timed_out() {
                break;
            }
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
    }

    /// Wake at least one parked thread (all current waiters re-check, but
    /// only one is signalled). Call after publishing one unit of work.
    pub fn notify_one(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Take the lock so the wake cannot slot between a waiter's
            // epoch check and its `condvar.wait` (the waiter holds the
            // lock across that window).
            drop(self.mutex.lock().unwrap());
            self.condvar.notify_one();
        }
    }

    /// Wake every parked thread. Call on state changes that may satisfy
    /// many waiters at once: shutdown, gate release, last completion.
    pub fn notify_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            drop(self.mutex.lock().unwrap());
            self.condvar.notify_all();
        }
    }
}

impl Default for Parker {
    fn default() -> Self {
        Parker::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn notify_before_park_prevents_sleep() {
        let p = Parker::new();
        let ticket = p.prepare();
        p.notify_one();
        let t0 = std::time::Instant::now();
        p.park(ticket); // must return immediately, not after the timeout
        assert!(t0.elapsed() < PARK_TIMEOUT / 2);
    }

    #[test]
    fn park_blocks_until_notified() {
        let p = Arc::new(Parker::new());
        let woke = Arc::new(AtomicBool::new(false));
        let th = {
            let p = Arc::clone(&p);
            let woke = Arc::clone(&woke);
            std::thread::spawn(move || {
                let ticket = p.prepare();
                p.park(ticket);
                woke.store(true, Ordering::SeqCst);
            })
        };
        // Give the thread a moment to actually park.
        while p.waiters.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert!(!woke.load(Ordering::SeqCst));
        p.notify_one();
        th.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let p = Arc::new(Parker::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let ticket = p.prepare();
                    p.park(ticket);
                })
            })
            .collect();
        while p.waiters.load(Ordering::SeqCst) < 4 {
            std::thread::yield_now();
        }
        p.notify_all();
        for th in threads {
            th.join().unwrap();
        }
    }

    /// Hammer the prepare/check/park vs publish/notify protocol: no
    /// iteration may hang (a lost wakeup would stall until the timeout;
    /// we assert well under it).
    #[test]
    fn no_lost_wakeups_under_races() {
        let p = Arc::new(Parker::new());
        let flag = Arc::new(AtomicBool::new(false));
        for _ in 0..200 {
            flag.store(false, Ordering::SeqCst);
            let waiter = {
                let p = Arc::clone(&p);
                let flag = Arc::clone(&flag);
                std::thread::spawn(move || loop {
                    let ticket = p.prepare();
                    if flag.load(Ordering::SeqCst) {
                        return;
                    }
                    p.park(ticket);
                })
            };
            flag.store(true, Ordering::SeqCst);
            p.notify_one();
            let t0 = std::time::Instant::now();
            waiter.join().unwrap();
            assert!(t0.elapsed() < PARK_TIMEOUT, "waiter stalled: lost wakeup");
        }
    }
}
