//! Hold gate for the paper's *non-overlapped* configuration (Table 1):
//! ready tasks are withheld until the whole graph is discovered.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// While closed, items offered to the gate are held; [`HoldGate::release`]
/// opens it and hands back everything held. Once open, offers pass
/// through untouched.
pub struct HoldGate<T> {
    closed: AtomicBool,
    held: Mutex<Vec<T>>,
    held_total: AtomicU64,
}

impl<T> HoldGate<T> {
    /// A gate in the given initial state.
    pub fn new(closed: bool) -> Self {
        HoldGate {
            closed: AtomicBool::new(closed),
            held: Mutex::new(Vec::new()),
            held_total: AtomicU64::new(0),
        }
    }

    fn held(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
        self.held.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the gate is currently holding items back.
    ///
    /// Relaxed: the flag alone never gates data. The fast path in
    /// [`HoldGate::offer`] may race a concurrent `close`/`release`, and
    /// either answer is acceptable there precisely because the slow path
    /// re-checks under `held`'s mutex — the mutex, not this load, is the
    /// synchronization.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }

    /// Close the gate: subsequent offers are held until `release`.
    pub fn close(&self) {
        let _held = self.held();
        self.closed.store(true, Ordering::Relaxed);
    }

    /// Pre-size the held buffer for `extra` more items, so a closed-gate
    /// submission burst of that size holds items without reallocating.
    pub fn reserve(&self, extra: usize) {
        self.held().reserve(extra);
    }

    /// Offer an item: returns it back if the gate is open, or holds it and
    /// returns `None`. The closed flag is re-checked under the lock so an
    /// item can never be stranded behind a concurrent `release`.
    pub fn offer(&self, item: T) -> Option<T> {
        if !self.is_closed() {
            return Some(item);
        }
        let mut held = self.held();
        if self.is_closed() {
            held.push(item);
            // Relaxed: statistic, read post-quiescence.
            self.held_total.fetch_add(1, Ordering::Relaxed);
            None
        } else {
            Some(item)
        }
    }

    /// Open the gate and take everything held.
    pub fn release(&self) -> Vec<T> {
        let mut held = self.held();
        self.closed.store(false, Ordering::Relaxed);
        std::mem::take(&mut held)
    }

    /// Total items ever held back (observability counter).
    pub fn held_total(&self) -> u64 {
        self.held_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_gate_passes_through() {
        let g: HoldGate<u32> = HoldGate::new(false);
        assert_eq!(g.offer(7), Some(7));
        assert!(g.release().is_empty());
    }

    #[test]
    fn closed_gate_holds_until_release() {
        let g: HoldGate<u32> = HoldGate::new(true);
        assert_eq!(g.offer(1), None);
        assert_eq!(g.offer(2), None);
        assert_eq!(g.release(), vec![1, 2]);
        assert_eq!(g.offer(3), Some(3), "stays open after release");
    }
}
