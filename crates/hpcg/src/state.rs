//! CG vectors and kernels over the 27-point stencil operator.
//!
//! The operator is the standard HPCG matrix: `A[i][i] = 26`, `A[i][j] =
//! -1` for the up-to-26 grid neighbours of `i` (rows at the local
//! boundary simply have fewer off-diagonals — the single-rank problem).
//! `b = A·1`, `x₀ = 0`, so the solver converges toward the all-ones
//! vector and every quantity is analytically checkable.

use crate::config::HpcgConfig;
use ptdg_core::data::SharedVec;
use std::ops::Range;

/// Solver state of one rank.
#[derive(Clone)]
pub struct HpcgState {
    /// Grid points per edge.
    pub nx: usize,
    /// Solution vector.
    pub x: SharedVec<f64>,
    /// Residual.
    pub r: SharedVec<f64>,
    /// Search direction.
    pub p: SharedVec<f64>,
    /// A·p.
    pub ap: SharedVec<f64>,
    /// Right-hand side.
    pub b: SharedVec<f64>,
    /// Partial dot products p·Ap (one slot per block).
    pub pap_scratch: SharedVec<f64>,
    /// Partial dot products r·r (one slot per block).
    pub rr_scratch: SharedVec<f64>,
    /// Scalars: [rr, alpha, beta, pap].
    pub scalars: SharedVec<f64>,
}

/// Indices into [`HpcgState::scalars`].
pub const S_RR: usize = 0;
/// alpha.
pub const S_ALPHA: usize = 1;
/// beta.
pub const S_BETA: usize = 2;
/// p·Ap.
pub const S_PAP: usize = 3;

impl HpcgState {
    /// Build the `b = A·1` problem with `x₀ = 0`.
    pub fn new(cfg: &HpcgConfig) -> HpcgState {
        let n = cfg.n_rows();
        let blocks = cfg.blocks();
        let st = HpcgState {
            nx: cfg.nx,
            x: SharedVec::new(n, 0.0),
            r: SharedVec::new(n, 0.0),
            p: SharedVec::new(n, 0.0),
            ap: SharedVec::new(n, 0.0),
            b: SharedVec::new(n, 0.0),
            pap_scratch: SharedVec::new(blocks, 0.0),
            rr_scratch: SharedVec::new(blocks, 0.0),
            scalars: SharedVec::new(4, 0.0),
        };
        // b = A·ones — computed via the SpMV kernel itself.
        for i in 0..n {
            st.p.set(i, 1.0);
        }
        st.k_spmv(0..n);
        for i in 0..n {
            st.b.set(i, *st.ap.get(i));
            // x0 = 0 -> r0 = b, p0 = r0
            st.r.set(i, *st.b.get(i));
            st.p.set(i, *st.b.get(i));
            st.ap.set(i, 0.0);
        }
        // rr = r·r
        let rr: f64 = (0..n).map(|i| st.r.get(i) * st.r.get(i)).sum();
        st.scalars.set(S_RR, rr);
        st
    }

    /// SpMV rows `[a, b)`: `ap = A·p` over the 27-point stencil.
    pub fn k_spmv(&self, rows: Range<usize>) {
        let nx = self.nx;
        let n = nx * nx * nx;
        let p = self.p.slice(0..n);
        let ap = self.ap.slice_mut(rows.clone());
        for (k, row) in rows.enumerate() {
            let ix = row % nx;
            let iy = (row / nx) % nx;
            let iz = row / (nx * nx);
            let mut sum = 27.0 * p[row]; // 26 (diag) + 1 to offset the self-neighbor below
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let (jx, jy, jz) = (ix as i64 + dx, iy as i64 + dy, iz as i64 + dz);
                        if jx < 0 || jy < 0 || jz < 0 {
                            continue;
                        }
                        let (jx, jy, jz) = (jx as usize, jy as usize, jz as usize);
                        if jx >= nx || jy >= nx || jz >= nx {
                            continue;
                        }
                        sum -= p[(jz * nx + jy) * nx + jx];
                    }
                }
            }
            ap[k] = sum;
        }
    }

    /// Partial dot `p·ap` over `[a, b)` into scratch `slot`.
    pub fn k_dot_pap(&self, rows: Range<usize>, slot: usize) {
        let p = self.p.slice(rows.clone());
        let ap = self.ap.slice(rows);
        let s: f64 = p.iter().zip(ap).map(|(a, b)| a * b).sum();
        self.pap_scratch.set(slot, s);
    }

    /// Reduce pap, compute `alpha = rr / pap`.
    pub fn k_alpha(&self) {
        let n = self.pap_scratch.len();
        let pap: f64 = self.pap_scratch.slice(0..n).iter().sum();
        self.scalars.set(S_PAP, pap);
        let rr = *self.scalars.get(S_RR);
        self.scalars.set(S_ALPHA, rr / pap.max(1e-300));
    }

    /// `x += alpha·p` over `[a, b)`.
    pub fn k_axpy_x(&self, rows: Range<usize>) {
        let alpha = *self.scalars.get(S_ALPHA);
        let p = self.p.slice(rows.clone());
        let x = self.x.slice_mut(rows);
        for i in 0..x.len() {
            x[i] += alpha * p[i];
        }
    }

    /// `r -= alpha·ap` over `[a, b)`.
    pub fn k_axpy_r(&self, rows: Range<usize>) {
        let alpha = *self.scalars.get(S_ALPHA);
        let ap = self.ap.slice(rows.clone());
        let r = self.r.slice_mut(rows);
        for i in 0..r.len() {
            r[i] -= alpha * ap[i];
        }
    }

    /// Partial dot `r·r` over `[a, b)` into scratch `slot`.
    pub fn k_dot_rr(&self, rows: Range<usize>, slot: usize) {
        let r = self.r.slice(rows);
        let s: f64 = r.iter().map(|v| v * v).sum();
        self.rr_scratch.set(slot, s);
    }

    /// Reduce rr_new, compute `beta = rr_new / rr`, store `rr = rr_new`.
    pub fn k_beta(&self) {
        let n = self.rr_scratch.len();
        let rr_new: f64 = self.rr_scratch.slice(0..n).iter().sum();
        let rr = *self.scalars.get(S_RR);
        self.scalars.set(S_BETA, rr_new / rr.max(1e-300));
        self.scalars.set(S_RR, rr_new);
    }

    /// `p = r + beta·p` over `[a, b)`.
    pub fn k_update_p(&self, rows: Range<usize>) {
        let beta = *self.scalars.get(S_BETA);
        let r = self.r.slice(rows.clone());
        let p = self.p.slice_mut(rows);
        for i in 0..p.len() {
            p[i] = r[i] + beta * p[i];
        }
    }

    /// One full sequential CG iteration at `blocks` granularity.
    pub fn sequential_iteration(&self, blocks: usize) {
        let n = self.x.len();
        let ranges: Vec<(usize, usize)> = (0..blocks)
            .map(|i| (n * i / blocks, n * (i + 1) / blocks))
            .collect();
        for &(a, b) in &ranges {
            self.k_spmv(a..b);
        }
        for (slot, &(a, b)) in ranges.iter().enumerate() {
            self.k_dot_pap(a..b, slot);
        }
        self.k_alpha();
        for &(a, b) in &ranges {
            self.k_axpy_x(a..b);
        }
        for &(a, b) in &ranges {
            self.k_axpy_r(a..b);
        }
        for (slot, &(a, b)) in ranges.iter().enumerate() {
            self.k_dot_rr(a..b, slot);
        }
        self.k_beta();
        for &(a, b) in &ranges {
            self.k_update_p(a..b);
        }
    }

    /// Current residual norm `√(r·r)` from the bookkeeping scalar.
    pub fn residual(&self) -> f64 {
        self.scalars.get(S_RR).sqrt()
    }

    /// True residual `‖b − A·x‖` recomputed from scratch (uses `p`/`ap`
    /// as temporaries — call only at quiescent points).
    pub fn true_residual(&self) -> f64 {
        let n = self.x.len();
        let saved_p = self.p.snapshot();
        let saved_ap = self.ap.snapshot();
        for i in 0..n {
            self.p.set(i, *self.x.get(i));
        }
        self.k_spmv(0..n);
        let mut s = 0.0;
        for i in 0..n {
            let d = self.b.get(i) - self.ap.get(i);
            s += d * d;
        }
        for i in 0..n {
            self.p.set(i, saved_p[i]);
            self.ap.set(i, saved_ap[i]);
        }
        s.sqrt()
    }

    /// FNV digest of the solver state (bitwise-equality tests).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |v: f64| {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x100000001b3);
        };
        let n = self.x.len();
        for &v in self.x.slice(0..n) {
            mix(v);
        }
        for &v in self.r.slice(0..n) {
            mix(v);
        }
        for &v in self.p.slice(0..n) {
            mix(v);
        }
        for &v in self.scalars.slice(0..4) {
            mix(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_of_ones_is_row_sum() {
        // A·1: interior rows sum to 27 - 27 = ... diag 26, minus 26
        // neighbors -> 0? No: 26 - 26·1·(-1)·... A·1 = 26 - (#neighbors).
        let cfg = HpcgConfig::single(4, 1, 2);
        let st = HpcgState::new(&cfg);
        // interior row (1..2 each axis has full 26 neighbors): b = 0
        let nx = 4;
        let interior = (nx + 1) * nx + 1;
        assert_eq!(*st.b.get(interior), 0.0);
        // corner row has 7 neighbors: b = 26 - 7 = 19
        assert_eq!(*st.b.get(0), 19.0);
    }

    #[test]
    fn cg_converges_on_small_problem() {
        let cfg = HpcgConfig::single(6, 30, 4);
        let st = HpcgState::new(&cfg);
        let r0 = st.residual();
        for _ in 0..30 {
            st.sequential_iteration(4);
        }
        let r_end = st.residual();
        assert!(r_end < r0 * 1e-6, "CG must converge: {r0} -> {r_end}");
        // bookkeeping matches the true residual
        let tr = st.true_residual();
        assert!((tr - r_end).abs() < 1e-6 * r0.max(1.0));
        // solution approaches all-ones
        let err: f64 = (0..st.x.len())
            .map(|i| (st.x.get(i) - 1.0).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-6, "x must approach ones: max err {err}");
    }

    #[test]
    fn block_count_does_not_change_results_bitwise_for_same_blocks() {
        let run = |blocks: usize| {
            let cfg = HpcgConfig::single(5, 10, blocks);
            let st = HpcgState::new(&cfg);
            for _ in 0..10 {
                st.sequential_iteration(blocks);
            }
            st.residual()
        };
        // different blockings change summation order (allowed); results
        // agree to tolerance
        let a = run(1);
        let b = run(8);
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn residual_is_monotone_for_spd_system() {
        let cfg = HpcgConfig::single(5, 12, 4);
        let st = HpcgState::new(&cfg);
        let mut prev = st.residual();
        for _ in 0..12 {
            st.sequential_iteration(4);
            let r = st.residual();
            assert!(r <= prev * 1.0001, "residual must not grow: {prev} -> {r}");
            prev = r;
        }
    }
}
