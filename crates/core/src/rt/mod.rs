//! The backend-agnostic runtime kernel.
//!
//! Everything semantic about executing a discovered task graph lives in
//! this module, shared verbatim by the wall-clock thread executor
//! ([`crate::exec`]) and the discrete-event simulator (`ptdg-simrt`):
//!
//! * [`RtNode`] / [`Completion`] — task state machine; the **only** place
//!   in the codebase that decrements dependence counters;
//! * [`GraphInstance`] — the [`crate::graph::GraphSink`] discovery writes
//!   into, with optional persistent capture;
//! * [`ReadyTracker`] — live/ready accounting;
//! * [`ThrottleGate`] / [`ThrottleConfig`] — producer throttling (§5);
//! * [`HoldGate`] — the *non-overlapped* configuration (Table 1);
//! * [`ReadyQueues`] / [`SchedPolicy`] — depth-first vs breadth-first
//!   ready-task placement and steal order;
//! * [`PersistentInstance`] — optimization (p) re-instancing with
//!   visibility tokens;
//! * [`RtProbe`] — unified profiling hooks.
//!
//! Back-ends are reduced to *policy*: when to run discovery, which core
//! consumes which queue, and what time means (wall-clock vs simulated).

mod arena;
mod deque;
mod gate;
mod injector;
mod instance;
mod node;
mod park;
mod persistent;
mod probe;
mod queue;
mod ready;
pub mod throttle;

pub use arena::{NodeArena, NodeRef};
pub use deque::{Steal, WorkDeque};
pub use gate::HoldGate;
pub use injector::Injector;
pub use instance::{GraphInstance, InstanceOptions};
pub use node::{Completion, RtNode};
pub use park::{ParkTicket, Parker};
pub use persistent::{PersistentInstance, REINSTANCE_BATCH};
pub use probe::{NullProbe, RtProbe, SpanCollector};
pub use queue::{QueueBackend, ReadyQueues, SchedPolicy, TaskKey};
pub use ready::ReadyTracker;
pub use throttle::{ThrottleConfig, ThrottleGate};
