//! Virtual node configuration.

use crate::costs::{DiscoveryCosts, ForkJoinCosts, SchedCosts};
use ptdg_memsim::MemConfig;

/// One simulated compute node (or NUMA domain bound to one MPI process).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Cores per rank (OpenMP threads, bound 1:1).
    pub n_cores: usize,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Discovery cost model.
    pub discovery: DiscoveryCosts,
    /// Scheduling cost model.
    pub sched: SchedCosts,
    /// Fork-join cost model (`parallel for` reference version).
    pub forkjoin: ForkJoinCosts,
}

impl MachineConfig {
    /// The paper's intra-node platform: 24 Skylake cores sharing a NUMA
    /// domain (Intel Xeon Platinum 8168, §2).
    pub fn skylake_24() -> Self {
        MachineConfig {
            n_cores: 24,
            mem: MemConfig::default(),
            discovery: DiscoveryCosts::default(),
            sched: SchedCosts::default(),
            forkjoin: ForkJoinCosts::default(),
        }
    }

    /// The paper's distributed platform: one MPI process per 16-core AMD
    /// EPYC 7763 NUMA domain (§4).
    pub fn epyc_16() -> Self {
        MachineConfig {
            n_cores: 16,
            mem: MemConfig::epyc_numa_domain(),
            discovery: DiscoveryCosts::default(),
            sched: SchedCosts::default(),
            forkjoin: ForkJoinCosts::default(),
        }
    }

    /// A small machine for fast unit tests.
    pub fn tiny(n_cores: usize) -> Self {
        MachineConfig {
            n_cores,
            mem: MemConfig::default(),
            discovery: DiscoveryCosts::default(),
            sched: SchedCosts::default(),
            forkjoin: ForkJoinCosts::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_platforms() {
        assert_eq!(MachineConfig::skylake_24().n_cores, 24);
        assert_eq!(MachineConfig::epyc_16().n_cores, 16);
        assert!(MachineConfig::epyc_16().mem.l2_bytes < MachineConfig::skylake_24().mem.l2_bytes);
    }
}
