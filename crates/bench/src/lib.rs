//! # ptdg-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §6 and
//! `EXPERIMENTS.md`):
//!
//! | binary     | reproduces |
//! |------------|------------|
//! | `fig1`     | Fig. 1 — intra-node LULESH: execution vs discovery vs TPL |
//! | `fig2`     | Fig. 2 — tasks/edges, grains, breakdown, inflation, misses, stalls |
//! | `table1`   | Table 1 — overlapped vs non-overlapped discovery |
//! | `table2`   | Table 2 — optimization crossing (edges, discovery, total) |
//! | `fig6`     | Fig. 6 — breakdown with all optimizations |
//! | `fig7`     | Fig. 7 — distributed LULESH: breakdown + communication + overlap |
//! | `fig8`     | Fig. 8 — Gantt charts, optimized vs non-optimized |
//! | `table3`   | Table 3 — weak and strong scaling |
//! | `fig9`     | Fig. 9 — HPCG TPL sweep |
//! | `cholesky` | §4.4 — persistent-graph speedup on tile Cholesky |
//! | `metg`     | §3.3 — minimum effective task granularity |
//! | `throttle` | §5 — task-throttling ablation |
//!
//! Run them with `cargo run --release -p ptdg-bench --bin <name>`.
//! Criterion micro-benchmarks live under `benches/`.
//!
//! All runs are scaled-down but *regime-preserving* versions of the
//! paper's experiments (the knobs are chosen so the same mechanism —
//! discovery-boundness, cache thrash, rendezvous stalls — governs each
//! result; see `EXPERIMENTS.md` for the mapping and measured numbers).

use ptdg_simrt::RankReport;
use std::path::PathBuf;

/// Whether `PTDG_QUICK=1` is set: harnesses shrink their problem sizes
/// for smoke-testing (results keep their shape but lose fidelity).
///
/// Every harness calls this before doing any work, so it doubles as the
/// early CLI check: a malformed or unwritable `--json` target fails here
/// rather than after a multi-minute run.
pub fn quick() -> bool {
    if let Some(path) = json_path() {
        if let Err(e) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            eprintln!("cannot write --json target {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    std::env::var("PTDG_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

// ---- structured output ---------------------------------------------------

/// A JSON value (the workspace is offline: no serde, so the harnesses
/// carry their own minimal writer).
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Build a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Build a [`Json::Arr`].
pub fn arr(items: Vec<Json>) -> Json {
    Json::Arr(items)
}

impl Json {
    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 9e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// The `--json <path>` argument, if present on the command line.
pub fn json_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            match args.next() {
                Some(p) => return Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if let Some(p) = a.strip_prefix("--json=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// If `--json <path>` was passed, wrap `data` in a standard envelope
/// (`bench` name + `quick` flag) and write it to the path. The on-stdout
/// human tables are unaffected.
pub fn emit_json(bench: &str, data: Json) {
    if let Some(path) = json_path() {
        let doc = obj([
            ("bench", bench.into()),
            ("quick", quick().into()),
            ("data", data),
        ]);
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("(json written to {})", path.display());
    }
}

/// The breakdown columns both stdout tables and JSON rows share.
pub fn breakdown_json(r: &RankReport, total_s: f64) -> Json {
    obj([
        ("work_per_core_s", r.avg_work_s().into()),
        ("idle_per_core_s", r.avg_idle_s().into()),
        ("overhead_per_core_s", r.avg_overhead_s().into()),
        ("discovery_s", r.discovery_s().into()),
        ("total_s", total_s.into()),
        ("tasks", r.disc.tasks.into()),
        ("edges_created", r.disc.edges_created.into()),
    ])
}

/// The standard intra-node sweep of tasks-per-loop values (the paper
/// sweeps 48..4608 at `-s 384`; scaled to our `-s 96` mesh).
pub const TPL_SWEEP: &[usize] = &[24, 48, 96, 144, 192, 256, 384, 512, 768, 1024];

/// The intra-node LULESH problem used by fig1/fig2/fig6/table1/table2
/// (`-s 96 -i 4`: ~85 MB of arrays per iteration against a 33 MB L3, the
/// same arrays-to-L3 ratio regime as the paper's `-s 384` filling 78% of
/// DRAM).
pub const INTRA_S: usize = 96;
/// Iterations of the intra-node problem.
pub const INTRA_ITERS: u64 = 4;

/// Print a horizontal rule sized for `width` columns.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format seconds with 4 significant decimals.
pub fn s(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a count in millions.
pub fn millions(v: u64) -> String {
    format!("{:.2}M", v as f64 / 1e6)
}

/// Summarize the per-rank breakdown columns used by several harnesses.
pub fn breakdown_row(label: &str, r: &RankReport, total_s: f64) -> String {
    format!(
        "{label:>8} {:>9} {:>9} {:>9} {:>10} {:>9}",
        s(r.avg_work_s()),
        s(r.avg_idle_s()),
        s(r.avg_overhead_s()),
        s(r.discovery_s()),
        s(total_s),
    )
}

/// Header matching [`breakdown_row`].
pub fn breakdown_header(key: &str) -> String {
    format!(
        "{key:>8} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "work/c", "idle/c", "ovh/c", "discovery", "total"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_escapes() {
        let doc = obj([
            ("name", "fig\"1\"\n".into()),
            ("total_s", 1.5f64.into()),
            ("tasks", 42u64.into()),
            ("ok", true.into()),
            (
                "rows",
                arr(vec![obj([("tpl", 24usize.into())]), Json::Null]),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig\"1\"\n","total_s":1.5,"tasks":42,"ok":true,"rows":[{"tpl":24},null]}"#
        );
    }

    #[test]
    fn json_integers_render_without_fraction() {
        assert_eq!(Json::from(3.0f64).render(), "3");
        assert_eq!(Json::from(3.25f64).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn breakdown_json_has_the_table_columns() {
        let r = RankReport {
            n_cores: 2,
            work_ns: 2_000_000_000,
            ..Default::default()
        };
        let row = breakdown_json(&r, 1.5).render();
        assert!(row.contains("\"work_per_core_s\":1"));
        assert!(row.contains("\"total_s\":1.5"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(s(1.23456), "1.2346");
        assert_eq!(millions(2_500_000), "2.50M");
        assert!(breakdown_header("TPL").contains("discovery"));
        let r = RankReport {
            n_cores: 2,
            work_ns: 2_000_000_000,
            ..Default::default()
        };
        let row = breakdown_row("x", &r, 1.5);
        assert!(row.contains("1.0000"));
        assert!(row.contains("1.5000"));
    }
}
