//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! implements the slice of the criterion API the workspace's `benches/`
//! use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`, `bench_function`/`bench_with_input`, and
//! `Bencher::iter`. Measurement is a straightforward
//! median-of-samples wall-clock loop — good enough for comparing orders
//! of magnitude and trends, with none of criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures and records their time.
pub struct Bencher {
    samples: u64,
    /// Median per-iteration time of the last `iter` call.
    pub last_ns: f64,
}

impl Bencher {
    /// Time `f`, storing the median per-iteration nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample iteration sizing: aim for ≥ ~1 ms per
        // sample so timer resolution does not dominate short closures.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let mut times: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            times.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2) as u64;
        self
    }

    /// Annotate the per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn report(&self, id: &str, ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.2} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.2} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("{}/{id}: {:.1} ns/iter{rate}", self.name, ns);
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_ns: 0.0,
        };
        f(&mut b);
        self.report(&id.id, b.last_ns);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id.id, b.last_ns);
        self
    }

    /// End the group (separator line).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
