//! Per-rank mailbox state: message envelopes and (peer, tag) matching.
//!
//! Cross-rank delivery is lock-free — senders push [`Envelope`]s into the
//! destination rank's [`crate::rt::Injector`] inbox — but *matching* is
//! owner-local: only threads of the owning rank drain the inbox, under
//! that rank's [`MatchState`] mutex, so per-(source, tag) FIFO order (MPI
//! non-overtaking) holds without any cross-rank locking.

use std::collections::{HashMap, VecDeque};

use crate::rt::NodeRef;

/// Tag bit reserved for collective round messages. User-visible p2p tags
/// must stay below `1 << 31`.
pub(crate) const COLL_TAG_BIT: u32 = 1 << 31;

/// Encode a collective round message tag. `seq` is the per-rank collective
/// sequence number (all ranks post collectives in the same order, the same
/// matching assumption the DES network makes), `round` the dissemination
/// round. The sequence is truncated; collisions would need 2^26 collectives
/// simultaneously in flight.
pub(crate) fn coll_tag(seq: u64, round: u32) -> u32 {
    debug_assert!(round < 32);
    COLL_TAG_BIT | (((seq as u32) & 0x03FF_FFFF) << 5) | round
}

/// Deferred completion of a comm task: everything the owning rank's pool
/// needs to finally complete the detached `RtNode` off-core.
pub struct CommCompletion {
    /// The detached task's node; `complete_with` is called on it by the
    /// owning rank's progress path, never by the matching thread.
    pub node: NodeRef,
    /// Engine-assigned request id (ties CommPosted/CommCompleted trace
    /// events together).
    pub req: u64,
    /// Post timestamp on the owning rank's clock (for `comm_wait_ns`).
    pub posted_ns: u64,
    /// True if this completion was forced by deadlock resolution rather
    /// than a real match.
    pub forced: bool,
}

/// A message in flight from `src` to the inbox owner.
pub(crate) struct Envelope {
    pub src: u32,
    pub tag: u32,
    #[allow(dead_code)] // recorded for symmetry with the DES network
    pub bytes: u64,
    /// Completion to route back to the sender when this message is
    /// consumed. `Some` only for rendezvous sends — eager senders complete
    /// at post time; collective round messages are always eager.
    pub sender_done: Option<CommCompletion>,
}

/// A dissemination all-reduce in flight on one rank.
pub(crate) struct CollState {
    /// Completion for this rank's `Iallreduce` node.
    pub done: CommCompletion,
    pub bytes: u64,
    /// Next round whose message this rank still waits for.
    pub round: u32,
    /// Total rounds = ceil(log2(n_ranks)).
    pub rounds: u32,
}

/// All matching state of one rank, guarded by the endpoint mutex.
#[derive(Default)]
pub(crate) struct MatchState {
    /// Envelopes that arrived before a matching recv: (src, tag) -> FIFO.
    unexpected: HashMap<(u32, u32), VecDeque<Envelope>>,
    /// Recvs posted before a matching envelope: (src, tag) -> FIFO.
    recvs: HashMap<(u32, u32), VecDeque<CommCompletion>>,
    /// In-flight collectives keyed by sequence number.
    pub colls: HashMap<u64, CollState>,
    /// (src, tag) a collective round is currently waiting on -> its seq.
    pub coll_waiting: HashMap<(u32, u32), u64>,
    /// Next collective sequence number (posting order on this rank).
    pub next_coll_seq: u64,
    /// Requests naming an out-of-range peer; kept only so deadlock/finish
    /// reporting can name them and force-complete their nodes.
    pub invalid: Vec<(u32, u32, &'static str, CommCompletion)>,
    /// Envelopes that had to be queued as unexpected (arrived before
    /// their recv was posted) — the `unexpected_msgs` counter.
    pub unexpected_msgs: u64,
}

impl MatchState {
    /// Pop the oldest unexpected envelope from `src` with `tag`.
    pub fn take_unexpected(&mut self, src: u32, tag: u32) -> Option<Envelope> {
        let q = self.unexpected.get_mut(&(src, tag))?;
        let env = q.pop_front();
        if q.is_empty() {
            self.unexpected.remove(&(src, tag));
        }
        env
    }

    /// Queue an envelope no recv was waiting for.
    pub fn queue_unexpected(&mut self, env: Envelope) {
        self.unexpected_msgs += 1;
        self.unexpected
            .entry((env.src, env.tag))
            .or_default()
            .push_back(env);
    }

    /// Pop the oldest pending recv matching (src, tag).
    pub fn take_recv(&mut self, src: u32, tag: u32) -> Option<CommCompletion> {
        let q = self.recvs.get_mut(&(src, tag))?;
        let done = q.pop_front();
        if q.is_empty() {
            self.recvs.remove(&(src, tag));
        }
        done
    }

    /// Queue a recv that found no matching envelope.
    pub fn queue_recv(&mut self, src: u32, tag: u32, done: CommCompletion) {
        self.recvs.entry((src, tag)).or_default().push_back(done);
    }

    /// True if no request or message is parked in this rank's state.
    pub fn is_clean(&self) -> bool {
        self.unexpected.is_empty()
            && self.recvs.is_empty()
            && self.colls.is_empty()
            && self.invalid.is_empty()
    }

    /// Drain every parked request/message for deadlock or end-of-run
    /// reporting: returns unmatched descriptions plus the completions to
    /// force, each tagged with the rank whose completion queue must
    /// receive it (a rendezvous sender's completion belongs to the
    /// *sender*, not to `rank`, the owner of this state).
    pub fn drain_pending(
        &mut self,
        rank: u32,
    ) -> (Vec<super::UnmatchedComm>, Vec<(u32, CommCompletion)>) {
        use super::{UnmatchedComm, NO_PEER};
        let mut unmatched = Vec::new();
        let mut forced = Vec::new();
        let mut keys: Vec<_> = self.recvs.keys().copied().collect();
        keys.sort_unstable();
        for (src, tag) in keys {
            for done in self.recvs.remove(&(src, tag)).unwrap() {
                unmatched.push(UnmatchedComm {
                    rank,
                    peer: src,
                    tag,
                    op: "Irecv",
                });
                forced.push((rank, done));
            }
        }
        let mut keys: Vec<_> = self.unexpected.keys().copied().collect();
        keys.sort_unstable();
        for (src, tag) in keys {
            for env in self.unexpected.remove(&(src, tag)).unwrap() {
                // Collective round messages are implied by the collective
                // entries themselves; don't report them separately.
                if tag & COLL_TAG_BIT == 0 {
                    unmatched.push(UnmatchedComm {
                        rank: env.src,
                        peer: rank,
                        tag,
                        op: "Isend",
                    });
                }
                if let Some(done) = env.sender_done {
                    forced.push((env.src, done));
                }
            }
        }
        let mut seqs: Vec<_> = self.colls.keys().copied().collect();
        seqs.sort_unstable();
        for seq in seqs {
            let coll = self.colls.remove(&seq).unwrap();
            unmatched.push(UnmatchedComm {
                rank,
                peer: NO_PEER,
                tag: coll.round,
                op: "Iallreduce",
            });
            forced.push((rank, coll.done));
        }
        self.coll_waiting.clear();
        for (peer, tag, op, done) in self.invalid.drain(..) {
            unmatched.push(UnmatchedComm {
                rank,
                peer,
                tag,
                op,
            });
            forced.push((rank, done));
        }
        (unmatched, forced)
    }
}
