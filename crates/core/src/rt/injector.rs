//! Lock-free global injector: an unbounded multi-producer multi-consumer
//! FIFO for ready tasks that have no home deque.
//!
//! Under depth-first scheduling this receives producer-made-ready tasks
//! (discovery, gate release, persistent publish); under breadth-first it
//! carries *every* ready task. It must therefore be strictly FIFO — the
//! breadth-first policy *is* "run in discovery order" — and cheap under
//! one producer plus many consumers.
//!
//! The implementation is a Michael–Scott-style linked queue of fixed
//! 32-slot segments (the widely used block-based refinement of the MS
//! queue, as in crossbeam's `SegQueue`): producers claim a slot by CAS on
//! a global tail index, consumers claim by CAS on a head index, and the
//! per-slot `WRITE`/`READ`/`DESTROY` state bits let the *last* consumer
//! out of a segment free it without any epoch or hazard-pointer scheme.
//! FIFO order is exact: a consumer that observes `head == tail` returns
//! `None` without claiming, so indices only advance when an element is
//! actually transferred.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Retired segments kept for reuse instead of being freed. A steady-state
/// stream churns through segments at one per [`SEG_CAP`] elements; the
/// pool turns that churn into reuse, making long pushes/pops
/// allocation-free once warm (DESIGN.md §4.4). Small on purpose: the
/// queue depth bound of a task runtime is the ready high-water mark, and
/// anything beyond a few segments of slack should be returned to the
/// allocator.
const SPARE_CAP: usize = 4;

type SparePool<T> = Mutex<Vec<*mut Segment<T>>>;

/// Slots per segment. One slot per segment is sacrificed as the
/// "install next segment" marker, so 31 values fit in each.
const LAP: usize = 32;
const SEG_CAP: usize = LAP - 1;

/// Indices advance in units of `1 << SHIFT`; the low bit marks "the head
/// lap has a successor segment" so consumers can skip the empty check.
const SHIFT: usize = 1;
const HAS_NEXT: usize = 1;

// Per-slot state bits.
const WRITE: usize = 1; // value written, safe to read
const READ: usize = 2; // value consumed
const DESTROY: usize = 4; // segment tear-down reached this slot first

struct Slot<T> {
    value: UnsafeCell<MaybeUninit<T>>,
    state: AtomicUsize,
}

impl<T> Slot<T> {
    /// Spin until the producer that claimed this slot has written it.
    /// The wait is bounded: the producer is past its index CAS and only
    /// has the value store left. After a short spin, yield — the writer
    /// may have been preempted on an oversubscribed machine, and a pure
    /// spin would burn its whole timeslice waiting for it.
    fn wait_write(&self) {
        let mut spins = 0u32;
        while self.state.load(Ordering::Acquire) & WRITE == 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

struct Segment<T> {
    next: AtomicPtr<Segment<T>>,
    slots: [Slot<T>; SEG_CAP],
}

impl<T> Segment<T> {
    fn new() -> Box<Segment<T>> {
        Box::new(Segment {
            next: AtomicPtr::new(ptr::null_mut()),
            slots: std::array::from_fn(|_| Slot {
                value: UnsafeCell::new(MaybeUninit::uninit()),
                state: AtomicUsize::new(0),
            }),
        })
    }

    /// Spin until the producer that filled the last slot has installed
    /// the successor segment.
    fn wait_next(&self) -> *mut Segment<T> {
        loop {
            let next = self.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            std::hint::spin_loop();
        }
    }

    /// Mark slots `start..` for tear-down; the segment is retired by
    /// whichever thread — this one or a still-reading consumer — touches
    /// the last live slot. `start` skips slots the caller already owns.
    /// The fully-drained segment goes to `spares` for reuse (freed only
    /// when the pool is full).
    unsafe fn destroy(this: *mut Segment<T>, start: usize, spares: &SparePool<T>) {
        // The last slot needs no DESTROY bit: its consumer initiated the
        // tear-down.
        for i in start..SEG_CAP - 1 {
            let slot = &(*this).slots[i];
            if slot.state.load(Ordering::Acquire) & READ == 0
                && slot.state.fetch_or(DESTROY, Ordering::AcqRel) & READ == 0
            {
                // A consumer still holds this slot; it sees DESTROY on its
                // READ fetch_or and continues the tear-down from i + 1.
                return;
            }
        }
        // Sole owner now. The pool mutex is the happens-before edge to
        // whichever producer later takes the segment out and resets it.
        let mut pool = spares.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < SPARE_CAP {
            pool.push(this);
        } else {
            drop(pool);
            drop(Box::from_raw(this));
        }
    }

    /// Return a retired segment to pristine state. `&mut` proves
    /// exclusive ownership, so plain stores suffice; the pool mutex
    /// already ordered us after the retiring consumer.
    fn reset(&mut self) {
        *self.next.get_mut() = ptr::null_mut();
        for slot in &mut self.slots {
            *slot.state.get_mut() = 0;
        }
    }
}

/// One end of the queue: a global slot index plus the segment it points
/// into. Padded so producers and consumers do not false-share.
#[repr(align(128))]
struct Position<T> {
    index: AtomicUsize,
    seg: AtomicPtr<Segment<T>>,
}

/// An unbounded lock-free MPMC FIFO.
pub struct Injector<T> {
    head: Position<T>,
    tail: Position<T>,
    /// Retired segments waiting for reuse (see [`SPARE_CAP`]).
    spares: SparePool<T>,
}

// SAFETY: values are handed across threads exactly once; `&T` is never
// exposed to more than the consuming thread.
unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Injector<T> {
    pub fn new() -> Injector<T> {
        Injector {
            head: Position {
                index: AtomicUsize::new(0),
                seg: AtomicPtr::new(ptr::null_mut()),
            },
            tail: Position {
                index: AtomicUsize::new(0),
                seg: AtomicPtr::new(ptr::null_mut()),
            },
            spares: Mutex::new(Vec::new()),
        }
    }

    /// A fresh segment, reusing a retired one when the pool has any.
    fn new_segment(&self) -> Box<Segment<T>> {
        let spare = self.spares.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match spare {
            // SAFETY: segments in the pool are exclusively owned by it.
            Some(ptr) => {
                let mut seg = unsafe { Box::from_raw(ptr) };
                seg.reset();
                seg
            }
            None => Segment::new(),
        }
    }

    /// Enqueue at the tail. Lock-free; any thread.
    pub fn push(&self, value: T) {
        let mut tail = self.tail.index.load(Ordering::Acquire);
        let mut seg = self.tail.seg.load(Ordering::Acquire);
        let mut next_seg: Option<Box<Segment<T>>> = None;
        loop {
            let offset = (tail >> SHIFT) % LAP;
            if offset == SEG_CAP {
                // Another producer is installing the next segment; wait
                // for the tail to move past the marker slot.
                std::hint::spin_loop();
                tail = self.tail.index.load(Ordering::Acquire);
                seg = self.tail.seg.load(Ordering::Acquire);
                continue;
            }
            // About to fill the last slot: pre-allocate the successor so
            // the post-CAS install is allocation-free.
            if offset + 1 == SEG_CAP && next_seg.is_none() {
                next_seg = Some(self.new_segment());
            }
            if seg.is_null() {
                // Very first push: race to install the initial segment.
                let new = Box::into_raw(next_seg.take().unwrap_or_else(|| self.new_segment()));
                match self.tail.seg.compare_exchange(
                    ptr::null_mut(),
                    new,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.head.seg.store(new, Ordering::Release);
                        seg = new;
                    }
                    Err(current) => {
                        // SAFETY: `new` was never shared.
                        next_seg = Some(unsafe { Box::from_raw(new) });
                        tail = self.tail.index.load(Ordering::Acquire);
                        seg = current;
                        continue;
                    }
                }
            }
            let new_tail = tail + (1 << SHIFT);
            match self.tail.index.compare_exchange_weak(
                tail,
                new_tail,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                // SAFETY: the CAS claimed slot `offset` of `seg`
                // exclusively for this producer.
                Ok(_) => unsafe {
                    if offset + 1 == SEG_CAP {
                        // Filling the last slot: install the successor and
                        // move the tail past the marker slot.
                        let next = Box::into_raw(next_seg.take().expect("pre-allocated above"));
                        self.tail.seg.store(next, Ordering::Release);
                        self.tail
                            .index
                            .store(new_tail + (1 << SHIFT), Ordering::Release);
                        (*seg).next.store(next, Ordering::Release);
                    }
                    let slot = &(*seg).slots[offset];
                    (*slot.value.get()).write(value);
                    slot.state.fetch_or(WRITE, Ordering::Release);
                    return;
                },
                Err(t) => {
                    tail = t;
                    seg = self.tail.seg.load(Ordering::Acquire);
                }
            }
        }
    }

    /// Dequeue from the head. Lock-free; any thread. Returns `None` only
    /// after observing an empty queue (`head == tail`) without claiming —
    /// FIFO order is exact across all producers and consumers.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.index.load(Ordering::Acquire);
        let mut seg = self.head.seg.load(Ordering::Acquire);
        loop {
            let offset = (head >> SHIFT) % LAP;
            if offset == SEG_CAP {
                // Marker slot: a consumer is installing the new head
                // segment; wait for it.
                std::hint::spin_loop();
                head = self.head.index.load(Ordering::Acquire);
                seg = self.head.seg.load(Ordering::Acquire);
                continue;
            }
            let mut new_head = head + (1 << SHIFT);
            if new_head & HAS_NEXT == 0 {
                // Unknown whether this lap has a successor: check
                // emptiness against the tail. The fence orders this load
                // against producer-side index CASes.
                fence(Ordering::SeqCst);
                let tail = self.tail.index.load(Ordering::Relaxed);
                if head >> SHIFT == tail >> SHIFT {
                    return None;
                }
                if (head >> SHIFT) / LAP != (tail >> SHIFT) / LAP {
                    new_head |= HAS_NEXT;
                }
            }
            if seg.is_null() {
                // Non-empty but the first producer has not installed the
                // initial segment yet.
                std::hint::spin_loop();
                head = self.head.index.load(Ordering::Acquire);
                seg = self.head.seg.load(Ordering::Acquire);
                continue;
            }
            match self.head.index.compare_exchange_weak(
                head,
                new_head,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                // SAFETY: the CAS claimed slot `offset` of `seg`
                // exclusively for this consumer.
                Ok(_) => unsafe {
                    if offset + 1 == SEG_CAP {
                        // Claimed the last slot: advance the head segment
                        // past the marker before reading.
                        let next = (*seg).wait_next();
                        let mut next_index = (new_head & !HAS_NEXT).wrapping_add(1 << SHIFT);
                        if !(*next).next.load(Ordering::Relaxed).is_null() {
                            next_index |= HAS_NEXT;
                        }
                        self.head.seg.store(next, Ordering::Release);
                        self.head.index.store(next_index, Ordering::Release);
                    }
                    let slot = &(*seg).slots[offset];
                    slot.wait_write();
                    let value = (*slot.value.get()).assume_init_read();
                    if offset + 1 == SEG_CAP {
                        // Last slot out: start the tear-down from slot 0.
                        Segment::destroy(seg, 0, &self.spares);
                    } else if slot.state.fetch_or(READ, Ordering::AcqRel) & DESTROY != 0 {
                        // Tear-down already passed us; continue it.
                        Segment::destroy(seg, offset + 1, &self.spares);
                    }
                    return Some(value);
                },
                Err(h) => {
                    head = h;
                    seg = self.head.seg.load(Ordering::Acquire);
                }
            }
        }
    }

    /// Retired segments currently pooled (test/diagnostic aid).
    #[cfg(test)]
    fn spare_count(&self) -> usize {
        self.spares.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the queue was observed empty (racy under concurrency).
    pub fn is_empty(&self) -> bool {
        let head = self.head.index.load(Ordering::SeqCst);
        let tail = self.tail.index.load(Ordering::SeqCst);
        head >> SHIFT == tail >> SHIFT
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        let mut head = *self.head.index.get_mut() & !HAS_NEXT;
        let tail = *self.tail.index.get_mut() & !HAS_NEXT;
        let mut seg = *self.head.seg.get_mut();
        // SAFETY: exclusive access; walk the un-consumed range, dropping
        // values and freeing segments.
        unsafe {
            while head != tail {
                let offset = (head >> SHIFT) % LAP;
                if offset < SEG_CAP {
                    let slot = &(*seg).slots[offset];
                    (*slot.value.get()).assume_init_drop();
                } else {
                    let next = *(*seg).next.get_mut();
                    drop(Box::from_raw(seg));
                    seg = next;
                }
                head = head.wrapping_add(1 << SHIFT);
            }
            if !seg.is_null() {
                drop(Box::from_raw(seg));
            }
            for spare in self.spares.get_mut().unwrap_or_else(|e| e.into_inner()) {
                drop(Box::from_raw(*spare));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = Injector::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        for i in 0..100 {
            q.push(i);
        }
        assert!(!q.is_empty());
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_fifo() {
        let q = Injector::new();
        let mut expect = 0;
        for i in 0..10_000 {
            q.push(i);
            if i % 3 != 0 {
                assert_eq!(q.pop(), Some(expect));
                expect += 1;
            }
        }
        while let Some(v) = q.pop() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, 10_000);
    }

    #[test]
    fn crosses_many_segments() {
        let q = Injector::new();
        for round in 0..10 {
            for i in 0..(LAP * 7 + 3) {
                q.push((round, i));
            }
            for i in 0..(LAP * 7 + 3) {
                assert_eq!(q.pop(), Some((round, i)));
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drop_releases_queued_values() {
        struct Counting(Arc<AtomicUsize>);
        impl Drop for Counting {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let q = Injector::new();
        for _ in 0..(LAP * 3 + 5) {
            q.push(Counting(Arc::clone(&drops)));
        }
        drop(q.pop());
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(q);
        assert_eq!(drops.load(Ordering::SeqCst), LAP * 3 + 5);
    }

    #[test]
    fn retired_segments_are_pooled_and_reused() {
        let q = Injector::new();
        // Drain several laps: each fully-consumed segment retires to the
        // pool instead of being freed, up to SPARE_CAP.
        for i in 0..LAP * (SPARE_CAP + 3) {
            q.push(i);
        }
        for i in 0..LAP * (SPARE_CAP + 3) {
            assert_eq!(q.pop(), Some(i));
        }
        let pooled = q.spare_count();
        assert!(pooled >= 1, "drained segments retire to the pool");
        assert!(pooled <= SPARE_CAP, "pool is bounded");
        // Steady-state churn: reuse keeps the pool level (no growth, and
        // values still flow FIFO through recycled segments).
        for round in 0..5 {
            for i in 0..LAP * 2 {
                q.push(round * 1000 + i);
            }
            for i in 0..LAP * 2 {
                assert_eq!(q.pop(), Some(round * 1000 + i));
            }
        }
        assert!(q.spare_count() <= SPARE_CAP);
    }

    #[test]
    fn mpmc_consumes_each_value_once() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 40_000;
        let q = Arc::new(Injector::new());
        let seen: Arc<Vec<AtomicUsize>> = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| AtomicUsize::new(0))
                .collect(),
        );
        let produced = Arc::new(AtomicUsize::new(0));
        let consumed = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            let produced = Arc::clone(&produced);
            threads.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.push(p * PER_PRODUCER + i);
                    produced.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            let produced = Arc::clone(&produced);
            let consumed = Arc::clone(&consumed);
            threads.push(std::thread::spawn(move || loop {
                match q.pop() {
                    Some(v) => {
                        seen[v].fetch_add(1, Ordering::SeqCst);
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                    None => {
                        if produced.load(Ordering::SeqCst) == PRODUCERS * PER_PRODUCER
                            && consumed.load(Ordering::SeqCst) == PRODUCERS * PER_PRODUCER
                        {
                            return;
                        }
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for th in threads {
            th.join().unwrap();
        }
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(
                s.load(Ordering::SeqCst),
                1,
                "value {i} consumed exactly once"
            );
        }
    }

    /// Per-producer FIFO order survives concurrency: each producer's
    /// items are consumed in the order that producer pushed them.
    #[test]
    fn per_producer_order_is_preserved() {
        const N: usize = 30_000;
        let q = Arc::new(Injector::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..N {
                    q.push(i);
                }
            })
        };
        let mut last_seen: i64 = -1;
        let mut got = 0;
        while got < N {
            if let Some(v) = q.pop() {
                assert!(
                    (v as i64) > last_seen,
                    "FIFO violated: {v} after {last_seen}"
                );
                last_seen = v as i64;
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }
}
