//! Fig. 8 — Gantt charts of the distributed task-based execution, with
//! TDG optimizations disabled vs enabled. One row per core of the
//! profiled rank; the digit drawn is the iteration number mod 10, dots
//! are idle time — the paper colours tasks by iteration the same way.
//!
//! With the persistent graph, no task of iteration n+1 can start before
//! every task of iteration n completed (the implicit barrier), which is
//! visible as clean vertical frontiers between digits; the non-optimized
//! version interleaves iterations but idles waiting for discovery.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin fig8
//! ```

use ptdg_bench::{emit_json, maybe_trace, obj, quick, Json};
use ptdg_core::opts::OptConfig;
use ptdg_core::profile::render_ascii_gantt;
use ptdg_lulesh::{LuleshConfig, LuleshTask, RankGrid};
use ptdg_simrt::{simulate_tasks, MachineConfig, SimConfig};

fn main() {
    let machine = MachineConfig::epyc_16();
    let (ranks, mesh_s, iters, tpl): (u32, usize, u64, usize) = if quick() {
        (8, 48, 3, 96)
    } else {
        (8, 96, 4, 192)
    };
    let grid = RankGrid::cube(ranks as usize);
    let center = 0u32;

    let mut variants = Vec::new();
    for (label, opts, fused, persistent) in [
        (
            "TDG optimizations disabled",
            OptConfig::redirect_only(),
            false,
            false,
        ),
        (
            "TDG optimizations enabled (persistent)",
            OptConfig::all(),
            true,
            true,
        ),
    ] {
        let cfg = LuleshConfig {
            grid,
            fused_deps: fused,
            ..LuleshConfig::single(mesh_s, iters, tpl)
        };
        let prog = LuleshTask::new(cfg);
        let sim = SimConfig {
            n_ranks: ranks,
            opts,
            persistent,
            record_trace_rank: Some(center),
            work_jitter: 0.10,
            ..Default::default()
        };
        let r = simulate_tasks(&machine, &sim, &prog.space, &prog);
        let trace = r.trace.as_ref().expect("trace requested");
        println!("== rank {center} — {label} ==");
        println!(
            "total {:.4} s, comm {:.4} s (collective {:.4} s), overlap {:.0}%",
            r.total_time_s(),
            r.rank(center).comm_s(),
            r.rank(center).comm_coll_ns as f64 * 1e-9,
            100.0 * r.rank(center).overlap_ratio()
        );
        print!("{}", render_ascii_gantt(trace, 100));
        println!();
        variants.push(obj([
            ("label", label.into()),
            ("total_s", r.total_time_s().into()),
            ("comm_s", r.rank(center).comm_s().into()),
            (
                "comm_collective_s",
                (r.rank(center).comm_coll_ns as f64 * 1e-9).into(),
            ),
            ("overlap_ratio", r.rank(center).overlap_ratio().into()),
            ("n_spans", trace.spans.len().into()),
        ]));
    }
    println!(
        "(paper: the persistent barrier prevents iteration n+1 tasks from\n\
         starting before iteration n ends, inflating collective time at\n\
         coarse TPL; without optimizations iterations interleave but the\n\
         slow discovery leaves threads idling)"
    );
    emit_json(
        "fig8",
        obj([
            ("ranks", (ranks as u64).into()),
            ("mesh_s", mesh_s.into()),
            ("iterations", iters.into()),
            ("tpl", tpl.into()),
            ("variants", Json::Arr(variants)),
        ]),
    );
    // The Chrome-trace counterpart of the ASCII Gantt: optimized variant.
    let cfg = LuleshConfig {
        grid,
        ..LuleshConfig::single(mesh_s, iters, tpl)
    };
    let prog = LuleshTask::new(cfg);
    let sim = SimConfig {
        n_ranks: ranks,
        opts: OptConfig::all(),
        persistent: true,
        work_jitter: 0.10,
        ..Default::default()
    };
    maybe_trace("fig8", &machine, &sim, &prog.space, &prog);
}
