//! # ptdg-simmpi — a simulated MPI layer in virtual time
//!
//! Stands in for Open MPI 4.1.4 over the BXI interconnect used by the
//! paper's distributed experiments (substitution documented in DESIGN.md).
//! It models exactly the protocol behaviours the paper's analysis depends
//! on:
//!
//! * **Non-blocking point-to-point** with an **eager / rendezvous**
//!   protocol switch on message size: LULESH's O(1) node and O(s) edge
//!   messages go eager, its O(s²) face messages go rendezvous (paper §4.1)
//!   — a rendezvous send cannot complete before the matching receive is
//!   posted, so *earlier posting* (what fast TDG discovery enables) directly
//!   shortens communication time.
//! * **`Iallreduce`** as a recursive-doubling tree: the operation completes
//!   `⌈log₂ P⌉` stages after the *last* rank joins, so one laggard rank
//!   (e.g. one whose discovery stalled, or one waiting on a persistent-TDG
//!   iteration barrier) inflates everyone's collective time — the effect
//!   visible in the paper's Fig. 8 Gantt charts.
//! * **Per-request communication metrics** matching the paper's PMPI
//!   methodology: `c(r)` = posting to completion, reduced per rank over
//!   send and collective requests only.
//!
//! The network is a passive state machine driven by the discrete-event
//! scheduler of `ptdg-simrt`: posting calls return [`Completion`]s that the
//! caller turns into future events.

mod collective;
mod config;
mod network;
mod request;

pub use collective::CollectiveState;
pub use config::NetConfig;
pub use network::{Completion, Network};
pub use request::{ReqId, ReqKind, Request};

/// Rank index within the simulated job.
pub type Rank = u32;
