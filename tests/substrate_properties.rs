//! Property-based tests of the simulation substrates: the network's
//! matching/collective invariants and the cache hierarchy's structural
//! properties under randomized inputs.

use proptest::prelude::*;
use ptdg::memsim::{BlockRange, LruCache, MemConfig, MemoryHierarchy};
use ptdg::simcore::SimTime;
use ptdg::simmpi::{NetConfig, Network, ReqKind};

// ---------------------------------------------------------------------
// simmpi
// ---------------------------------------------------------------------

/// A random sequence of matched P2P operations: for every (src, dst,
/// tag, bytes) message we emit one send and one recv in arbitrary
/// relative order across the timeline.
#[derive(Clone, Debug)]
struct MsgPlan {
    msgs: Vec<(u32, u32, u32, u64)>, // src, dst, tag, bytes
    send_first: Vec<bool>,
}

fn msg_plan(n_ranks: u32) -> impl Strategy<Value = MsgPlan> {
    prop::collection::vec(
        (
            0..n_ranks,
            0..n_ranks,
            0..4u32,
            prop_oneof![Just(128u64), Just(8192), Just(65536)],
        ),
        1..24,
    )
    .prop_flat_map(|msgs| {
        let n = msgs.len();
        (Just(msgs), prop::collection::vec(any::<bool>(), n))
            .prop_map(|(msgs, send_first)| MsgPlan { msgs, send_first })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every matched message eventually completes both sides, and no
    /// completion precedes its own posting.
    #[test]
    fn p2p_always_completes(plan in msg_plan(4)) {
        let mut net = Network::new(NetConfig::default(), 4);
        let mut t = 0u64;
        let mut all = Vec::new();
        for (k, &(src, dst, tag, bytes)) in plan.msgs.iter().enumerate() {
            // distinct tags per message avoid FIFO cross-matching between
            // different sizes on the same key
            let tag = tag + 4 * k as u32;
            t += 100;
            let now = SimTime::from_ns(t);
            if plan.send_first[k] {
                let (s, c1) = net.post_isend(now, src, dst, tag, bytes);
                let (r, c2) = net.post_irecv(now + SimTime::from_ns(50), src, dst, tag, bytes);
                all.push(s);
                all.push(r);
                let _ = (c1, c2);
            } else {
                let (r, c1) = net.post_irecv(now, src, dst, tag, bytes);
                let (s, c2) = net.post_isend(now + SimTime::from_ns(50), src, dst, tag, bytes);
                all.push(s);
                all.push(r);
                let _ = (c1, c2);
            }
        }
        prop_assert!(net.all_complete());
        for id in all {
            let req = net.request(id);
            let done = req.completed_at.expect("completed");
            prop_assert!(done >= req.posted_at, "completion before posting");
        }
    }

    /// Rendezvous messages can never complete before both sides posted;
    /// eager sends complete independently of the receiver.
    #[test]
    fn protocol_semantics(bytes in prop_oneof![Just(1024u64), Just(1 << 20)],
                          gap_ns in 1_000u64..1_000_000) {
        let cfg = NetConfig::default();
        let rendezvous = cfg.is_rendezvous(bytes);
        let mut net = Network::new(cfg, 2);
        let (send, comps) = net.post_isend(SimTime::ZERO, 0, 1, 9, bytes);
        if rendezvous {
            prop_assert!(comps.is_empty());
        } else {
            prop_assert!(comps.iter().any(|c| c.req == send));
        }
        let recv_post = SimTime::from_ns(gap_ns);
        let (_recv, comps) = net.post_irecv(recv_post, 0, 1, 9, bytes);
        for c in &comps {
            prop_assert!(c.at >= recv_post || !rendezvous);
        }
        prop_assert!(net.all_complete());
    }

    /// All-reduce: every rank's request completes at the same instant, and
    /// that instant is not before the last join.
    #[test]
    fn allreduce_synchronizes(joins in prop::collection::vec(0u64..10_000, 2..8)) {
        let p = joins.len() as u32;
        let mut net = Network::new(NetConfig::default(), p);
        let mut done_times = Vec::new();
        for (rank, &t) in joins.iter().enumerate() {
            let (_, comps) = net.post_iallreduce(SimTime::from_ns(t), rank as u32, 8);
            done_times.extend(comps.iter().map(|c| c.at));
        }
        prop_assert_eq!(done_times.len(), p as usize);
        let first = done_times[0];
        prop_assert!(done_times.iter().all(|&d| d == first));
        let last_join = joins.iter().max().unwrap();
        prop_assert!(first.as_ns() >= *last_join);
        // tracked metric: every rank has exactly one collective request
        for r in 0..p {
            prop_assert_eq!(net.tracked_request_count(r), 1);
            prop_assert_eq!(
                net.requests().iter().filter(|q| q.rank == r && q.kind == ReqKind::Allreduce).count(),
                1
            );
        }
    }

    // ------------------------------------------------------------------
    // memsim
    // ------------------------------------------------------------------

    /// LRU occupancy never exceeds capacity, and re-touching within the
    /// working set after warmup always hits when the set fits.
    #[test]
    fn lru_capacity_and_hits(cap in 1usize..64, ws in 1u64..128, stream in 0u64..3) {
        let mut c = LruCache::new(cap);
        let mut x = stream.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access((x >> 30) % ws);
            prop_assert!(c.len() <= cap);
        }
        if ws as usize <= cap {
            // warm then everything hits
            for b in 0..ws {
                c.access(b);
            }
            for b in 0..ws {
                prop_assert!(c.access(b));
            }
        }
    }

    /// Hierarchy counters are consistent: misses never exceed accesses and
    /// deeper-level misses never exceed shallower ones.
    #[test]
    fn hierarchy_counter_consistency(ranges in prop::collection::vec((0u64..4000, 1u32..64), 1..20)) {
        let cfg = MemConfig {
            l1_bytes: 4 * 512,
            l2_bytes: 32 * 512,
            l3_bytes: 256 * 512,
            ..MemConfig::default()
        };
        let mut h = MemoryHierarchy::new(cfg, 2);
        for (i, &(base, count)) in ranges.iter().enumerate() {
            let stats = h.touch_footprint(i % 2, &[BlockRange::new(base, count)]);
            prop_assert!(stats.l1_misses <= stats.accesses);
            prop_assert!(stats.l2_misses <= stats.l1_misses);
            prop_assert!(stats.l3_misses <= stats.l2_misses);
        }
        let t = h.totals();
        prop_assert!(t.l3_misses <= t.l2_misses && t.l2_misses <= t.l1_misses);
        prop_assert!(t.l1_misses <= t.accesses);
    }

    /// Repeating the same footprint from the same core can only improve
    /// (or keep) the miss counts at every level.
    #[test]
    fn repeat_touch_monotone(base in 0u64..1000, count in 1u32..32) {
        let mut h = MemoryHierarchy::new(MemConfig::default(), 1);
        let fp = [BlockRange::new(base, count)];
        let first = h.touch_footprint(0, &fp);
        let second = h.touch_footprint(0, &fp);
        prop_assert!(second.l1_misses <= first.l1_misses);
        prop_assert!(second.l2_misses <= first.l2_misses);
        prop_assert!(second.l3_misses <= first.l3_misses);
    }
}
