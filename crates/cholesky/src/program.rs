//! The dependent-task tile Cholesky.

use crate::config::CholeskyConfig;
use crate::tiles::TileMatrix;
use ptdg_core::access::AccessMode;
use ptdg_core::builder::{SpecBuf, TaskSubmitter};
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::workdesc::{CommOp, HandleSlice};
use ptdg_simrt::{Rank, RankProgram};

/// The task-based factorization program (one dependency handle per tile).
pub struct CholeskyTask {
    /// Run configuration.
    pub cfg: CholeskyConfig,
    /// Per-tile handles, indexed like [`TileMatrix::t`].
    pub tile_handles: Vec<DataHandle>,
    /// The handle space for the simulator.
    pub space: HandleSpace,
    /// Real tiles (single-rank thread execution).
    pub matrix: Option<TileMatrix>,
}

impl CholeskyTask {
    /// Cost-model-only program.
    pub fn new(cfg: CholeskyConfig) -> CholeskyTask {
        let mut space = HandleSpace::new();
        let bytes = (cfg.b * cfg.b * 8) as u64;
        let tile_handles = (0..cfg.n_tiles())
            .map(|_| space.region("tile", bytes))
            .collect();
        CholeskyTask {
            cfg,
            tile_handles,
            space,
            matrix: None,
        }
    }

    /// Program with a real seeded SPD matrix (single rank).
    pub fn with_matrix(cfg: CholeskyConfig, seed: u64) -> CholeskyTask {
        assert_eq!(cfg.n_ranks, 1, "real execution is single-rank");
        let matrix = TileMatrix::new_spd(cfg.nt, cfg.b, seed);
        let mut t = CholeskyTask::new(cfg);
        t.matrix = Some(matrix);
        t
    }

    fn h(&self, i: usize, j: usize) -> DataHandle {
        self.tile_handles[i * (i + 1) / 2 + j]
    }

    fn tile_fp(&self, i: usize, j: usize) -> HandleSlice {
        let h = self.h(i, j);
        HandleSlice::whole(h, self.space.info(h).bytes)
    }

    /// Whether `rank` owns any panel in `(k, nt)` — i.e. participates in
    /// trailing updates of step `k`.
    fn has_trailing_panel(&self, rank: Rank, k: usize) -> bool {
        ((k + 1)..self.cfg.nt).any(|j| self.cfg.owner(j) == rank)
    }
}

impl RankProgram for CholeskyTask {
    fn n_iterations(&self) -> u64 {
        self.cfg.iterations
    }

    fn n_ranks(&self) -> Rank {
        self.cfg.n_ranks
    }

    fn build_iteration(&self, rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        use AccessMode::*;
        let cfg = &self.cfg;
        let nt = cfg.nt;
        let b = cfg.b as f64;
        let tile_bytes = (cfg.b * cfg.b * 8) as u64;
        let want = sub.wants_bodies() && self.matrix.is_some();
        let multi = cfg.n_ranks > 1;
        // One recycled construction buffer for the whole factorization.
        let mut buf = SpecBuf::new();

        // Re-initialize every local tile (WAR edges order these after the
        // previous factorization's consumers).
        for i in 0..nt {
            for j in 0..=i {
                buf.begin("ResetTile")
                    .dep(self.h(i, j), Out)
                    .flops(b * b)
                    .touch(self.tile_fp(i, j));
                if want {
                    let m = self.matrix.clone().unwrap();
                    let idx = i * (i + 1) / 2 + j;
                    buf.body(move |_| m.k_reset(idx));
                }
                buf.submit(sub);
            }
        }

        for k in 0..nt {
            let panel_owner = cfg.owner(k);
            if panel_owner == rank {
                // potrf
                buf.begin("potrf")
                    .dep(self.h(k, k), InOut)
                    .flops(b * b * b / 3.0)
                    .touch(self.tile_fp(k, k));
                if want {
                    let m = self.matrix.clone().unwrap();
                    buf.body(move |_| m.k_potrf(k));
                }
                buf.submit(sub);
                // trsm per sub-diagonal tile of the panel
                for i in (k + 1)..nt {
                    buf.begin("trsm")
                        .dep(self.h(k, k), In)
                        .dep(self.h(i, k), InOut)
                        .flops(b * b * b)
                        .touch(self.tile_fp(k, k))
                        .touch(self.tile_fp(i, k));
                    if want {
                        let m = self.matrix.clone().unwrap();
                        buf.body(move |_| m.k_trsm(i, k));
                    }
                    buf.submit(sub);
                }
                // broadcast the panel to ranks holding trailing panels
                if multi {
                    for i in (k + 1)..nt {
                        for peer in 0..cfg.n_ranks {
                            if peer == rank || !self.has_trailing_panel(peer, k) {
                                continue;
                            }
                            buf.begin("MPI_Isend")
                                .dep(self.h(i, k), In)
                                .comm(CommOp::Isend {
                                    peer,
                                    bytes: tile_bytes,
                                    tag: (k * nt + i) as u32,
                                })
                                .submit(sub);
                        }
                    }
                }
            } else if multi && self.has_trailing_panel(rank, k) {
                // receive the panel tiles into the local ghosts
                for i in (k + 1)..nt {
                    buf.begin("MPI_Irecv")
                        .dep(self.h(i, k), Out)
                        .comm(CommOp::Irecv {
                            peer: panel_owner,
                            bytes: tile_bytes,
                            tag: (k * nt + i) as u32,
                        })
                        .submit(sub);
                }
            }

            // trailing updates: rank owning panel j updates its column
            for j in (k + 1)..nt {
                if cfg.owner(j) != rank {
                    continue;
                }
                for i in j..nt {
                    // syrk takes A(i,k) once; gemm takes both panel tiles.
                    let name = if i == j { "syrk" } else { "gemm" };
                    buf.begin(name).dep(self.h(i, k), In);
                    if i != j {
                        buf.dep(self.h(j, k), In);
                    }
                    buf.dep(self.h(i, j), InOut)
                        .flops(if i == j { b * b * b } else { 2.0 * b * b * b })
                        .touch(self.tile_fp(i, k))
                        .touch(self.tile_fp(i, j));
                    if i != j {
                        buf.touch(self.tile_fp(j, k));
                    }
                    if want {
                        let m = self.matrix.clone().unwrap();
                        buf.body(move |_| m.k_update(i, j, k));
                    }
                    buf.submit(sub);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdg_core::builder::{CountingSubmitter, RecordingSubmitter};

    #[test]
    fn single_rank_task_count() {
        let cfg = CholeskyConfig::single(5, 4, 1);
        let prog = CholeskyTask::new(cfg.clone());
        let mut c = CountingSubmitter::default();
        prog.build_iteration(0, 0, &mut c);
        assert_eq!(c.tasks as usize, cfg.n_tiles() + cfg.kernel_tasks());
    }

    #[test]
    fn distributed_sends_match_recvs() {
        let cfg = CholeskyConfig {
            n_ranks: 3,
            ..CholeskyConfig::single(6, 4, 1)
        };
        let prog = CholeskyTask::new(cfg.clone());
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        let mut kernels = 0usize;
        for r in 0..3u32 {
            let mut c = RecordingSubmitter::default();
            prog.build_iteration(r, 0, &mut c);
            for s in &c.specs {
                match s.comm {
                    Some(CommOp::Isend { peer, bytes, tag }) => sends.push((r, peer, tag, bytes)),
                    Some(CommOp::Irecv { peer, bytes, tag }) => recvs.push((peer, r, tag, bytes)),
                    None => {
                        if matches!(s.name, "potrf" | "trsm" | "syrk" | "gemm") {
                            kernels += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs, "panel broadcast must pair up");
        assert_eq!(
            kernels,
            cfg.kernel_tasks(),
            "work is partitioned, not duplicated"
        );
    }

    #[test]
    fn dense_regular_scheme_has_no_inoutset_or_duplicates() {
        // The reason (a)/(b)/(c) are neutral on Cholesky (paper §4.4).
        let cfg = CholeskyConfig::single(4, 4, 1);
        let prog = CholeskyTask::new(cfg);
        let mut c = RecordingSubmitter::default();
        prog.build_iteration(0, 0, &mut c);
        for s in &c.specs {
            assert!(s.depends.iter().all(|d| d.mode != AccessMode::InOutSet));
            // no task names the same handle twice
            let mut hs: Vec<_> = s.depends.iter().map(|d| d.handle).collect();
            hs.sort_unstable();
            hs.dedup();
            assert_eq!(hs.len(), s.depends.len());
        }
    }
}
