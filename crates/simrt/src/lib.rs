//! # ptdg-simrt — the virtual multicore executor
//!
//! Executes task programs (and their `parallel for` reference versions) on
//! simulated compute nodes in deterministic virtual time, reusing the
//! discovery engine of `ptdg-core` with a calibrated cost model. This is
//! the measurement substrate behind every figure and table of the
//! reproduction (see `DESIGN.md` §5 and `EXPERIMENTS.md`):
//!
//! * [`simulate_tasks`] — dependent-task execution: paced single-producer
//!   TDG discovery (streaming, persistent, throttled, or non-overlapped),
//!   depth-first/breadth-first scheduling, cache-model work times, DRAM
//!   contention, simulated MPI;
//! * [`simulate_bsp`] — the fork-join `parallel for` reference: statically
//!   chunked loops, loop barriers, blocking communication phases;
//! * [`SimReport`] — per-rank work/overhead/idle breakdown, discovery
//!   spans, cache and stall counters, communication time and overlap
//!   ratio, optional Gantt trace.
//!
//! ```
//! use ptdg_core::builder::TaskSubmitter;
//! use ptdg_core::{AccessMode, HandleSpace, TaskSpec, WorkDesc};
//! use ptdg_simrt::{simulate_tasks, MachineConfig, Rank, RankProgram, SimConfig};
//!
//! struct Chain(ptdg_core::DataHandle);
//! impl RankProgram for Chain {
//!     fn n_iterations(&self) -> u64 { 2 }
//!     fn build_iteration(&self, _r: Rank, _i: u64, sub: &mut dyn TaskSubmitter) {
//!         for _ in 0..10 {
//!             sub.submit(
//!                 TaskSpec::new("link")
//!                     .depend(self.0, AccessMode::InOut)
//!                     .work(WorkDesc::compute(1e6)),
//!             );
//!         }
//!     }
//! }
//!
//! let mut space = HandleSpace::new();
//! let prog = Chain(space.region("x", 64));
//! let report = simulate_tasks(
//!     &MachineConfig::tiny(4),
//!     &SimConfig::default(),
//!     &space,
//!     &prog,
//! );
//! assert_eq!(report.rank(0).tasks_executed, 20);
//! assert!(report.total_time_s() > 0.0);
//! ```

mod bsp;
mod costs;
mod machine;
mod program;
mod report;
mod sim;
#[cfg(test)]
mod tests;

pub use bsp::simulate_bsp;
pub use costs::{DiscoveryCosts, ForkJoinCosts, SchedCosts};
pub use machine::MachineConfig;
pub use program::{BspPhase, BspProgram, Rank, RankProgram};
pub use report::{RankReport, SimReport};
pub use sim::{simulate_tasks, SimConfig};
