//! Fig. 1 — intra-node LULESH with an LLVM-like runtime: execution time
//! and TDG discovery time vs tasks-per-loop, against the `parallel for`
//! reference.
//!
//! LLVM release/16.x implements the `inoutset` redirect (c) but not the
//! duplicate-edge elimination (b); the user code is the unfused Ferat
//! et al. port (no optimization (a)).
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin fig1
//! ```

use ptdg_bench::{
    arr, emit_json, maybe_trace, obj, quick, rule, s, INTRA_ITERS, INTRA_S, TPL_SWEEP,
};
use ptdg_core::opts::OptConfig;
use ptdg_lulesh::{LuleshBsp, LuleshConfig, LuleshTask};
use ptdg_simrt::{simulate_bsp, simulate_tasks, MachineConfig, SimConfig};

fn main() {
    let machine = MachineConfig::skylake_24();
    let (mesh_s, iters) = if quick() {
        (48, 2)
    } else {
        (INTRA_S, INTRA_ITERS)
    };

    // parallel-for reference
    let bsp_prog = LuleshBsp::new(LuleshConfig::single(mesh_s, iters, 1));
    let bsp = simulate_bsp(&machine, &SimConfig::default(), &bsp_prog.space, &bsp_prog);
    println!(
        "Fig. 1 — LULESH -s {mesh_s} -i {iters} on a simulated 24-core node (LLVM-like runtime)"
    );
    println!("parallel-for reference: {} s\n", s(bsp.total_time_s()));

    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12}",
        "TPL", "execution(s)", "discovery(s)", "total(s)", "tasks"
    );
    rule(58);
    let mut best = (0usize, f64::INFINITY);
    let mut rows = Vec::new();
    for &tpl in TPL_SWEEP {
        let cfg = LuleshConfig {
            fused_deps: false, // no optimization (a) in Fig. 1
            ..LuleshConfig::single(mesh_s, iters, tpl)
        };
        let prog = LuleshTask::new(cfg);
        let sim = SimConfig {
            opts: OptConfig::redirect_only(), // LLVM: (c) yes, (b) no
            ..Default::default()
        };
        let r = simulate_tasks(&machine, &sim, &prog.space, &prog);
        let rank = r.rank(0);
        let total = r.total_time_s();
        // "execution" in the paper: first task schedule to last completion;
        // ≈ the wall-clock span here (discovery is concurrent).
        println!(
            "{tpl:>6} {:>12} {:>12} {:>10} {:>12}",
            s(rank.span_s()),
            s(rank.discovery_s()),
            s(total),
            rank.disc.tasks
        );
        rows.push(obj([
            ("tpl", tpl.into()),
            ("execution_s", rank.span_s().into()),
            ("discovery_s", rank.discovery_s().into()),
            ("total_s", total.into()),
            ("tasks", rank.disc.tasks.into()),
        ]));
        if total < best.1 {
            best = (tpl, total);
        }
    }
    rule(58);
    println!(
        "best TPL = {} at {} s  ({:.2}x vs parallel-for)",
        best.0,
        s(best.1),
        bsp.total_time_s() / best.1
    );
    println!(
        "(paper: best TPL=1,200 at ~75 s vs ~86 s parallel-for, then the\n\
         discovery curve crosses the execution curve and binds total time)"
    );
    emit_json(
        "fig1",
        obj([
            ("mesh_s", mesh_s.into()),
            ("iterations", iters.into()),
            ("parallel_for_s", bsp.total_time_s().into()),
            ("best_tpl", best.0.into()),
            ("best_total_s", best.1.into()),
            ("rows", arr(rows)),
        ]),
    );
    let cfg = LuleshConfig {
        fused_deps: false,
        ..LuleshConfig::single(mesh_s, iters, best.0)
    };
    let prog = LuleshTask::new(cfg);
    let sim = SimConfig {
        opts: OptConfig::redirect_only(),
        ..Default::default()
    };
    maybe_trace("fig1", &machine, &sim, &prog.space, &prog);
}
