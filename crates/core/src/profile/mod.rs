//! Task-level profiling.
//!
//! The methodology mirrors the paper (§2.3.1): every task schedule is
//! recorded as a span on its worker, timestamps are nanoseconds from the
//! start of the measured region, and post-mortem analysis computes the
//! parallel time breakdown of Tallent & Mellor-Crummey adapted to dependent
//! tasks:
//!
//! * **work** — time inside a task body;
//! * **overhead** — time outside a task body while ready tasks exist;
//! * **idle** — time outside a task body while no task is ready.
//!
//! Both the real executor (wall-clock) and the virtual executor (exact
//! virtual time) emit the same [`Trace`] so one analysis pipeline serves
//! both.

mod breakdown;
mod gantt;

pub use breakdown::Breakdown;
pub use gantt::{render_ascii_gantt, GanttRow};

/// What a recorded span represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Inside a task body.
    Work,
    /// Scheduling/dependency-management time attributable to one task.
    Overhead,
    /// Producer-side discovery time (on the producer "row").
    Discovery,
    /// No ready task available.
    Idle,
}

/// One timed span on one worker.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// Worker (core) index; the producer uses its own index.
    pub worker: u32,
    /// Start, nanoseconds from trace origin.
    pub start_ns: u64,
    /// End, nanoseconds from trace origin.
    pub end_ns: u64,
    /// Category.
    pub kind: SpanKind,
    /// Task name (empty for idle/discovery spans).
    pub name: &'static str,
    /// Iteration the task belongs to.
    pub iter: u64,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A completed execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All spans, unordered.
    pub spans: Vec<Span>,
    /// Number of workers.
    pub n_workers: usize,
    /// Discovery span: first task creation to last task creation
    /// (producer-side; paper Fig. 1 green curve).
    pub discovery_ns: u64,
    /// Wall-clock span of execution: first schedule to last completion.
    pub span_ns: u64,
}

impl Trace {
    /// Push a span (events are preallocated-buffered by executors; this is
    /// the post-collection form).
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Sum of durations for one kind, in nanoseconds.
    pub fn total_ns(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.dur_ns())
            .sum()
    }

    /// Number of work spans (executed tasks).
    pub fn n_tasks_run(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Work)
            .count()
    }

    /// Compute the work/overhead/idle breakdown.
    pub fn breakdown(&self) -> Breakdown {
        Breakdown::from_trace(self)
    }

    /// Mean work-span duration in nanoseconds (the "task grain").
    pub fn mean_task_grain_ns(&self) -> f64 {
        let n = self.n_tasks_run();
        if n == 0 {
            0.0
        } else {
            self.total_ns(SpanKind::Work) as f64 / n as f64
        }
    }

    /// Cumulated work time per task name, sorted by time descending —
    /// the per-kernel profile the paper uses to name hot loops (e.g.
    /// `CalcFBHourglassForceForElems` in its Gantt discussion).
    pub fn work_by_name(&self) -> Vec<(&'static str, u64, usize)> {
        let mut map: std::collections::HashMap<&'static str, (u64, usize)> =
            std::collections::HashMap::new();
        for s in &self.spans {
            if s.kind == SpanKind::Work {
                let e = map.entry(s.name).or_default();
                e.0 += s.dur_ns();
                e.1 += 1;
            }
        }
        let mut v: Vec<(&'static str, u64, usize)> =
            map.into_iter().map(|(k, (ns, n))| (k, ns, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Export all spans as TSV (one line per span) for external plotting.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("worker\tstart_ns\tend_ns\tkind\tname\titer\n");
        for s in &self.spans {
            out.push_str(&format!(
                "{}\t{}\t{}\t{:?}\t{}\t{}\n",
                s.worker, s.start_ns, s.end_ns, s.kind, s.name, s.iter
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(worker: u32, s: u64, e: u64, kind: SpanKind) -> Span {
        Span {
            worker,
            start_ns: s,
            end_ns: e,
            kind,
            name: "t",
            iter: 0,
        }
    }

    #[test]
    fn totals_by_kind() {
        let mut t = Trace {
            n_workers: 2,
            span_ns: 100,
            ..Default::default()
        };
        t.push(span(0, 0, 30, SpanKind::Work));
        t.push(span(1, 0, 50, SpanKind::Work));
        t.push(span(0, 30, 40, SpanKind::Overhead));
        t.push(span(0, 40, 100, SpanKind::Idle));
        assert_eq!(t.total_ns(SpanKind::Work), 80);
        assert_eq!(t.total_ns(SpanKind::Overhead), 10);
        assert_eq!(t.total_ns(SpanKind::Idle), 60);
        assert_eq!(t.n_tasks_run(), 2);
        assert_eq!(t.mean_task_grain_ns(), 40.0);
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let mut t = Trace::default();
        t.push(span(0, 1, 2, SpanKind::Work));
        let tsv = t.to_tsv();
        assert!(tsv.starts_with("worker\t"));
        assert_eq!(tsv.lines().count(), 2);
    }

    #[test]
    fn empty_trace_grain_is_zero() {
        let t = Trace::default();
        assert_eq!(t.mean_task_grain_ns(), 0.0);
    }

    #[test]
    fn work_by_name_aggregates_and_sorts() {
        let mut t = Trace::default();
        for (name, s0, e0) in [
            ("b", 0u64, 10u64),
            ("a", 0, 30),
            ("b", 10, 25),
            ("a", 40, 50),
        ] {
            t.push(Span {
                worker: 0,
                start_ns: s0,
                end_ns: e0,
                kind: SpanKind::Work,
                name,
                iter: 0,
            });
        }
        t.push(Span {
            worker: 0,
            start_ns: 50,
            end_ns: 99,
            kind: SpanKind::Idle,
            name: "ignored",
            iter: 0,
        });
        let v = t.work_by_name();
        assert_eq!(v, vec![("a", 40, 2), ("b", 25, 2)]);
    }
}
