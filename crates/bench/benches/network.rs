//! Simulated-interconnect micro-benchmarks: P2P matching throughput and
//! collective round turnover.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ptdg_simcore::SimTime;
use ptdg_simmpi::{NetConfig, Network};
use std::hint::black_box;

fn bench_p2p(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    const N: u64 = 2_000;
    group.throughput(Throughput::Elements(N));
    group.sample_size(20);
    group.bench_function("p2p_post_and_match", |b| {
        b.iter(|| {
            let mut net = Network::new(NetConfig::default(), 2);
            let mut completions = 0usize;
            for i in 0..N {
                let t = SimTime::from_ns(i * 10);
                let (_, c1) = net.post_isend(t, 0, 1, (i % 8) as u32 + 8 * (i as u32 / 8), 4096);
                let (_, c2) = net.post_irecv(t, 0, 1, (i % 8) as u32 + 8 * (i as u32 / 8), 4096);
                completions += c1.len() + c2.len();
            }
            black_box(completions)
        })
    });
    group.bench_function("allreduce_rounds_64_ranks", |b| {
        b.iter(|| {
            let mut net = Network::new(NetConfig::default(), 64);
            let mut completions = 0usize;
            for round in 0..16u64 {
                for rank in 0..64u32 {
                    let (_, comps) =
                        net.post_iallreduce(SimTime::from_ns(round * 1000 + rank as u64), rank, 8);
                    completions += comps.len();
                }
            }
            black_box(completions)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_p2p);
criterion_main!(benches);
