//! The parallel time breakdown (paper §2.3.1).

use super::{SpanKind, Trace};

/// Work / overhead / idle decomposition of an execution.
///
/// All values are nanoseconds **cumulated over workers**; use
/// [`Breakdown::avg_work_s`] and friends for the per-thread averages the
/// paper plots (Fig. 2(c), Fig. 6, Fig. 7 top).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Time inside task bodies.
    pub work_ns: u64,
    /// Time outside bodies while tasks were ready.
    pub overhead_ns: u64,
    /// Time outside bodies with no ready task.
    pub idle_ns: u64,
    /// Workers contributing.
    pub n_workers: usize,
    /// Wall-clock span of the execution.
    pub span_ns: u64,
    /// Producer discovery span.
    pub discovery_ns: u64,
}

impl Breakdown {
    /// Derive a breakdown from a trace.
    ///
    /// Executors that emit explicit `Overhead`/`Idle` spans (the simulator)
    /// get exact values. For traces with only `Work` spans (the lightweight
    /// real-executor profiler), the non-work time per worker is classified
    /// as idle — a documented approximation.
    pub fn from_trace(t: &Trace) -> Breakdown {
        let work_ns = t.total_ns(SpanKind::Work);
        let overhead_ns = t.total_ns(SpanKind::Overhead);
        let explicit_idle = t.total_ns(SpanKind::Idle);
        let accounted = work_ns + overhead_ns + explicit_idle;
        let capacity = t.span_ns.saturating_mul(t.n_workers as u64);
        let idle_ns = explicit_idle
            .max(capacity.saturating_sub(accounted) + explicit_idle)
            .min(capacity.saturating_sub(work_ns + overhead_ns));
        Breakdown {
            work_ns,
            overhead_ns,
            idle_ns,
            n_workers: t.n_workers,
            span_ns: t.span_ns,
            discovery_ns: t.discovery_ns,
        }
    }

    fn per_worker(&self, v: u64) -> f64 {
        if self.n_workers == 0 {
            0.0
        } else {
            v as f64 / self.n_workers as f64 * 1e-9
        }
    }

    /// Average work time per worker, seconds.
    pub fn avg_work_s(&self) -> f64 {
        self.per_worker(self.work_ns)
    }

    /// Average overhead per worker, seconds.
    pub fn avg_overhead_s(&self) -> f64 {
        self.per_worker(self.overhead_ns)
    }

    /// Average idle per worker, seconds.
    pub fn avg_idle_s(&self) -> f64 {
        self.per_worker(self.idle_ns)
    }

    /// Wall-clock execution span, seconds.
    pub fn span_s(&self) -> f64 {
        self.span_ns as f64 * 1e-9
    }

    /// Discovery span, seconds.
    pub fn discovery_s(&self) -> f64 {
        self.discovery_ns as f64 * 1e-9
    }

    /// Cumulated work over all workers, seconds.
    pub fn total_work_s(&self) -> f64 {
        self.work_ns as f64 * 1e-9
    }

    /// Cumulated idle over all workers, seconds.
    pub fn total_idle_s(&self) -> f64 {
        self.idle_ns as f64 * 1e-9
    }

    /// Cumulated overhead over all workers, seconds.
    pub fn total_overhead_s(&self) -> f64 {
        self.overhead_ns as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Span;

    #[test]
    fn exact_breakdown_with_explicit_spans() {
        let mut t = Trace {
            n_workers: 2,
            span_ns: 100,
            discovery_ns: 30,
            ..Default::default()
        };
        // worker 0: 60 work, 10 overhead, 30 idle
        // worker 1: 40 work, 0 overhead, 60 idle
        for (w, s, e, k) in [
            (0, 0, 60, SpanKind::Work),
            (0, 60, 70, SpanKind::Overhead),
            (0, 70, 100, SpanKind::Idle),
            (1, 0, 40, SpanKind::Work),
            (1, 40, 100, SpanKind::Idle),
        ] {
            t.push(Span {
                worker: w,
                start_ns: s,
                end_ns: e,
                kind: k,
                name: "",
                iter: 0,
            });
        }
        let b = t.breakdown();
        assert_eq!(b.work_ns, 100);
        assert_eq!(b.overhead_ns, 10);
        assert_eq!(b.idle_ns, 90);
        assert!((b.avg_work_s() - 50e-9).abs() < 1e-18);
        assert!((b.span_s() - 100e-9).abs() < 1e-18);
        assert!((b.discovery_s() - 30e-9).abs() < 1e-18);
    }

    #[test]
    fn work_only_trace_classifies_gap_as_idle() {
        let mut t = Trace {
            n_workers: 1,
            span_ns: 100,
            ..Default::default()
        };
        t.push(Span {
            worker: 0,
            start_ns: 0,
            end_ns: 80,
            kind: SpanKind::Work,
            name: "",
            iter: 0,
        });
        let b = t.breakdown();
        assert_eq!(b.work_ns, 80);
        assert_eq!(b.idle_ns, 20);
    }

    #[test]
    fn zero_workers_is_safe() {
        let t = Trace::default();
        let b = t.breakdown();
        assert_eq!(b.avg_work_s(), 0.0);
    }

    #[test]
    fn fully_busy_worker_has_zero_idle() {
        let mut t = Trace {
            n_workers: 1,
            span_ns: 100,
            ..Default::default()
        };
        t.push(Span {
            worker: 0,
            start_ns: 0,
            end_ns: 100,
            kind: SpanKind::Work,
            name: "",
            iter: 0,
        });
        let b = t.breakdown();
        assert_eq!(b.work_ns, 100);
        assert_eq!(b.overhead_ns, 0);
        assert_eq!(b.idle_ns, 0);
    }

    #[test]
    fn spans_exceeding_capacity_clamp_idle_to_zero() {
        // Timer skew can make recorded spans sum past span × workers;
        // the inferred idle must clamp at zero rather than wrap.
        let mut t = Trace {
            n_workers: 1,
            span_ns: 100,
            ..Default::default()
        };
        t.push(Span {
            worker: 0,
            start_ns: 0,
            end_ns: 120,
            kind: SpanKind::Work,
            name: "",
            iter: 0,
        });
        let b = t.breakdown();
        assert_eq!(b.work_ns, 120);
        assert_eq!(b.idle_ns, 0);
    }

    #[test]
    fn explicit_idle_never_shrinks_below_recorded() {
        // A simulator trace with explicit idle plus an unaccounted gap:
        // the gap folds into idle on top of the recorded spans.
        let mut t = Trace {
            n_workers: 1,
            span_ns: 100,
            ..Default::default()
        };
        for (s, e, k) in [
            (0, 50, SpanKind::Work),
            (50, 60, SpanKind::Overhead),
            (60, 80, SpanKind::Idle),
            // 80..100 unaccounted
        ] {
            t.push(Span {
                worker: 0,
                start_ns: s,
                end_ns: e,
                kind: k,
                name: "",
                iter: 0,
            });
        }
        let b = t.breakdown();
        assert_eq!(b.work_ns, 50);
        assert_eq!(b.overhead_ns, 10);
        assert_eq!(b.idle_ns, 40, "explicit 20 + inferred 20");
    }

    #[test]
    fn breakdown_conserves_capacity() {
        let mut t = Trace {
            n_workers: 3,
            span_ns: 1_000,
            ..Default::default()
        };
        for w in 0..3u32 {
            t.push(Span {
                worker: w,
                start_ns: 0,
                end_ns: 400 + 100 * w as u64,
                kind: SpanKind::Work,
                name: "",
                iter: 0,
            });
        }
        let b = t.breakdown();
        let capacity = t.span_ns * t.n_workers as u64;
        assert_eq!(b.work_ns + b.overhead_ns + b.idle_ns, capacity);
    }
}
