//! Task throttling (paper §5, "Task Throttling").
//!
//! Throttling bounds tasking memory/operational overheads by making the
//! producer stop producing and start *consuming* once a threshold is hit.
//! GCC and LLVM bound the number of **ready** tasks; the paper's runtime
//! additionally bounds the **total live** tasks (ready or not), which is the
//! meaningful bound for dependent tasks where many discovered tasks are not
//! yet ready. A tight ready-task bound cripples the depth-first scheduler's
//! vision of the graph — the ablation harness measures exactly that.

use super::ReadyTracker;

/// Throttling thresholds for an executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThrottleConfig {
    /// Maximum tasks in the ready state before the producer helps
    /// (GCC/LLVM-style). `None` = unbounded.
    pub max_ready: Option<usize>,
    /// Maximum live tasks — discovered but not yet completed — before the
    /// producer helps (MPC-OMP-style; paper default 10,000,000).
    pub max_live: Option<usize>,
}

impl ThrottleConfig {
    /// No throttling at all.
    pub fn unbounded() -> Self {
        ThrottleConfig {
            max_ready: None,
            max_live: None,
        }
    }

    /// The paper's MPC-OMP default: total-task bound of 10 million, no
    /// ready bound.
    pub fn mpc_default() -> Self {
        ThrottleConfig {
            max_ready: None,
            max_live: Some(10_000_000),
        }
    }

    /// A production-runtime-like tight ready bound (LLVM/GCC behaviour
    /// studied in §5); `bound` is typically a small multiple of the thread
    /// count.
    pub fn ready_bound(bound: usize) -> Self {
        ThrottleConfig {
            max_ready: Some(bound),
            max_live: None,
        }
    }

    /// Whether the producer must help given current counts.
    pub fn should_help(&self, ready: usize, live: usize) -> bool {
        self.max_ready.is_some_and(|m| ready > m) || self.max_live.is_some_and(|m| live > m)
    }
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig::mpc_default()
    }
}

/// A [`ThrottleConfig`] bound to a [`ReadyTracker`]: the producer-side
/// decision point both back-ends consult before discovering more tasks.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThrottleGate {
    cfg: ThrottleConfig,
}

impl ThrottleGate {
    pub fn new(cfg: ThrottleConfig) -> Self {
        ThrottleGate { cfg }
    }

    /// The configured thresholds.
    pub fn config(&self) -> ThrottleConfig {
        self.cfg
    }

    /// Whether the producer must consume instead of produce right now.
    pub fn should_help(&self, tracker: &ReadyTracker) -> bool {
        self.cfg.should_help(tracker.ready(), tracker.live())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_helps() {
        let t = ThrottleConfig::unbounded();
        assert!(!t.should_help(usize::MAX, usize::MAX));
    }

    #[test]
    fn ready_bound_triggers_on_ready_only() {
        let t = ThrottleConfig::ready_bound(4);
        assert!(!t.should_help(4, 1_000_000));
        assert!(t.should_help(5, 0));
    }

    #[test]
    fn live_bound_triggers_on_live() {
        let t = ThrottleConfig {
            max_ready: None,
            max_live: Some(100),
        };
        assert!(!t.should_help(1_000, 100));
        assert!(t.should_help(0, 101));
    }

    #[test]
    fn mpc_default_matches_paper() {
        let t = ThrottleConfig::default();
        assert_eq!(t.max_live, Some(10_000_000));
        assert_eq!(t.max_ready, None);
    }

    #[test]
    fn gate_reads_tracker() {
        let gate = ThrottleGate::new(ThrottleConfig::ready_bound(1));
        let tracker = ReadyTracker::new();
        assert!(!gate.should_help(&tracker));
        tracker.created(2);
        tracker.became_ready();
        tracker.became_ready();
        assert!(gate.should_help(&tracker));
    }
}
