//! §4.4 — tile Cholesky: the persistent graph accelerates discovery ~5x
//! asymptotically across repeated factorizations, while (a)/(b)/(c) and
//! total time are unaffected (dense regular scheme, coarse tasks).
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin cholesky_bench
//! ```

use ptdg_bench::{arr, emit_json, maybe_trace, obj, quick, rule, s};
use ptdg_cholesky::{CholeskyConfig, CholeskyTask};
use ptdg_core::opts::OptConfig;
use ptdg_simrt::{simulate_tasks, MachineConfig, SimConfig};

fn main() {
    let machine = MachineConfig::skylake_24();
    let (nt, b) = if quick() { (12, 64) } else { (24, 192) };

    println!(
        "Tile Cholesky nt={nt}, b={b} (n = {}) on a simulated 24-core node",
        nt * b
    );

    // (a)/(b)/(c) neutrality: identical edges and totals.
    println!("\nedge-optimization neutrality (single factorization):");
    println!(
        "{:>14} {:>10} {:>12} {:>10}",
        "opts", "edges", "redirects", "total(s)"
    );
    rule(50);
    let mut opt_rows = Vec::new();
    for (label, opts) in [
        ("none", OptConfig::none()),
        ("(b)", OptConfig::dedup_only()),
        ("(c)", OptConfig::redirect_only()),
        ("(b)+(c)", OptConfig::all()),
    ] {
        let cfg = CholeskyConfig::single(nt, b, 1);
        let prog = CholeskyTask::new(cfg);
        let sim = SimConfig {
            opts,
            ..Default::default()
        };
        let r = simulate_tasks(&machine, &sim, &prog.space, &prog);
        println!(
            "{label:>14} {:>10} {:>12} {:>10}",
            r.rank(0).disc.edges_attempted(),
            r.rank(0).disc.redirect_nodes,
            s(r.total_time_s())
        );
        opt_rows.push(obj([
            ("optimizations", label.into()),
            ("edges_structural", r.rank(0).disc.edges_attempted().into()),
            ("redirects", r.rank(0).disc.redirect_nodes.into()),
            ("total_s", r.total_time_s().into()),
        ]));
    }

    // persistent-graph discovery speedup vs iteration count
    println!("\npersistent graph across repeated factorizations:");
    println!(
        "{:>6} {:>15} {:>16} {:>9} {:>12} {:>12}",
        "iters", "streaming(ms)", "persistent(ms)", "speedup", "total(s)", "total+p(s)"
    );
    rule(76);
    let mut pers_rows = Vec::new();
    for iters in [1u64, 2, 4, 8, 16] {
        let cfg = CholeskyConfig::single(nt, b, iters);
        let prog = CholeskyTask::new(cfg);
        let base = simulate_tasks(&machine, &SimConfig::default(), &prog.space, &prog);
        let pers = simulate_tasks(
            &machine,
            &SimConfig {
                persistent: true,
                ..Default::default()
            },
            &prog.space,
            &prog,
        );
        println!(
            "{iters:>6} {:>15.2} {:>16.2} {:>8.1}x {:>12} {:>12}",
            base.rank(0).discovery_ns as f64 / 1e6,
            pers.rank(0).discovery_ns as f64 / 1e6,
            base.rank(0).discovery_ns as f64 / pers.rank(0).discovery_ns as f64,
            s(base.total_time_s()),
            s(pers.total_time_s()),
        );
        pers_rows.push(obj([
            ("iterations", iters.into()),
            (
                "streaming_discovery_s",
                (base.rank(0).discovery_ns as f64 * 1e-9).into(),
            ),
            (
                "persistent_discovery_s",
                (pers.rank(0).discovery_ns as f64 * 1e-9).into(),
            ),
            (
                "discovery_speedup",
                (base.rank(0).discovery_ns as f64 / pers.rank(0).discovery_ns as f64).into(),
            ),
            ("streaming_total_s", base.total_time_s().into()),
            ("persistent_total_s", pers.total_time_s().into()),
        ]));
    }

    // distributed variant: 1-D cyclic panels over 4 ranks
    let cfg = CholeskyConfig {
        n_ranks: 4,
        ..CholeskyConfig::single(nt, b, 4)
    };
    let prog = CholeskyTask::new(cfg);
    let sim = SimConfig {
        n_ranks: 4,
        persistent: true,
        ..Default::default()
    };
    let r = simulate_tasks(&machine, &sim, &prog.space, &prog);
    println!(
        "\ndistributed (4 ranks, 1-D cyclic panels): total {} s, comm rank0 {} s",
        s(r.total_time_s()),
        s(r.rank(0).comm_s())
    );
    println!(
        "\n(paper: ~5x asymptotic discovery speedup with (p); no measurable\n\
         total-time impact — 269 s vs 274 s on 768 cores — because coarse\n\
         regular tiles make discovery <2% of the run; (a)/(b)/(c) find\n\
         nothing to remove in the dense scheme)"
    );
    emit_json(
        "cholesky",
        obj([
            ("nt", nt.into()),
            ("block", b.into()),
            ("opt_neutrality", arr(opt_rows)),
            ("persistent_sweep", arr(pers_rows)),
            ("distributed_total_s", r.total_time_s().into()),
            ("distributed_comm_rank0_s", r.rank(0).comm_s().into()),
        ]),
    );
    // Trace a persistent 4-iteration factorization on one rank.
    let prog = CholeskyTask::new(CholeskyConfig::single(nt, b, 4));
    let sim = SimConfig {
        persistent: true,
        ..Default::default()
    };
    maybe_trace("cholesky", &machine, &sim, &prog.space, &prog);
}
