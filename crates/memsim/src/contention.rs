//! Shared-DRAM bandwidth contention.
//!
//! The paper observes (§2.3.3, §4.1) that LULESH is DRAM-bandwidth bound:
//! with *fewer* cores running concurrently (e.g. when the execution is
//! discovery-bound) each running task's memory accesses get *faster*, which
//! deflates work time even while total time degrades. We model this with a
//! bandwidth pool: every running task registers its DRAM demand rate, and
//! the slowdown factor for memory time is
//! `max(1, total_demand / peak_bandwidth)`.

/// Tracks aggregate DRAM demand of concurrently running tasks.
#[derive(Debug)]
pub struct DramContention {
    peak_bytes_per_s: f64,
    demands: Vec<f64>, // slab of active demand rates
    free: Vec<usize>,
    total_demand: f64,
}

/// Handle for one registered demand stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandId(usize);

impl DramContention {
    /// New pool with the node's peak DRAM bandwidth (bytes/s).
    pub fn new(peak_bytes_per_s: f64) -> Self {
        assert!(peak_bytes_per_s > 0.0);
        DramContention {
            peak_bytes_per_s,
            demands: Vec::new(),
            free: Vec::new(),
            total_demand: 0.0,
        }
    }

    /// Register a stream demanding `bytes_per_s` from DRAM; returns a handle
    /// to deregister with on task completion.
    pub fn register(&mut self, bytes_per_s: f64) -> DemandId {
        let d = bytes_per_s.max(0.0);
        self.total_demand += d;
        if let Some(idx) = self.free.pop() {
            self.demands[idx] = d;
            DemandId(idx)
        } else {
            self.demands.push(d);
            DemandId(self.demands.len() - 1)
        }
    }

    /// Deregister a stream (task completed).
    pub fn unregister(&mut self, id: DemandId) {
        let d = self.demands[id.0];
        self.demands[id.0] = 0.0;
        self.free.push(id.0);
        self.total_demand -= d;
        if self.total_demand < 0.0 {
            // Guard against floating-point drift over millions of events.
            self.total_demand = self.demands.iter().sum();
        }
    }

    /// Current slowdown factor for DRAM-bound time: ≥ 1.
    pub fn factor(&self) -> f64 {
        (self.total_demand / self.peak_bytes_per_s).max(1.0)
    }

    /// Aggregate demand currently registered (bytes/s).
    pub fn total_demand(&self) -> f64 {
        self.total_demand.max(0.0)
    }

    /// Number of active streams.
    pub fn active_streams(&self) -> usize {
        self.demands.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_factor_is_one() {
        let mut c = DramContention::new(100.0);
        let id = c.register(50.0);
        assert_eq!(c.factor(), 1.0);
        c.unregister(id);
        assert_eq!(c.factor(), 1.0);
    }

    #[test]
    fn oversubscription_inflates() {
        let mut c = DramContention::new(100.0);
        let a = c.register(80.0);
        let b = c.register(80.0);
        assert!((c.factor() - 1.6).abs() < 1e-12);
        c.unregister(a);
        assert_eq!(c.factor(), 1.0);
        c.unregister(b);
        assert_eq!(c.active_streams(), 0);
    }

    #[test]
    fn slots_are_reused() {
        let mut c = DramContention::new(10.0);
        let a = c.register(1.0);
        c.unregister(a);
        let b = c.register(2.0);
        let cix = c.register(3.0);
        assert_eq!(c.active_streams(), 2);
        assert!((c.total_demand() - 5.0).abs() < 1e-12);
        c.unregister(b);
        c.unregister(cix);
    }

    #[test]
    fn drift_is_repaired() {
        let mut c = DramContention::new(1.0);
        // Many register/unregister cycles must not accumulate error.
        for i in 0..100_000 {
            let id = c.register(0.1 + (i % 7) as f64 * 0.01);
            c.unregister(id);
        }
        assert!(c.total_demand() < 1e-6);
    }

    #[test]
    fn negative_demand_clamps() {
        let mut c = DramContention::new(1.0);
        let id = c.register(-5.0);
        assert_eq!(c.total_demand(), 0.0);
        c.unregister(id);
    }
}
