//! # ptdg-memsim — memory-hierarchy model
//!
//! A deliberately simple but *mechanistic* model of a multi-core cache
//! hierarchy, standing in for the PAPI hardware counters used by the paper
//! (substitution documented in `DESIGN.md`).
//!
//! The model is:
//!
//! * per-core private **L1** and **L2** caches and one shared **L3**, each a
//!   fully-associative LRU over fixed-size *blocks* (coarse cache lines);
//! * tasks declare a **footprint**: the set of blocks they touch; executing
//!   a task probes each block top-down (L1 → L2 → L3 → DRAM) and installs it
//!   in every level (inclusive hierarchy);
//! * every miss level contributes **stall cycles**, and DRAM traffic draws
//!   on a shared bandwidth budget — concurrent DRAM pressure inflates the
//!   effective memory time of all running tasks ([`DramContention`]).
//!
//! This is exactly enough machinery to reproduce the cache-driven effects in
//! the paper: task refinement shrinks per-task footprints until they fit in
//! L2/L3; depth-first scheduling re-touches a predecessor's blocks while they
//! are still resident; discovery-bound executions run fewer cores in
//! parallel, which *reduces* DRAM contention and deflates work time even as
//! total time gets worse (paper §2.3.3).

mod config;
mod contention;
mod hierarchy;
mod lru;

pub use config::MemConfig;
pub use contention::{DemandId, DramContention};
pub use hierarchy::{AccessStats, MemoryHierarchy, StallCycles};
pub use lru::LruCache;

/// Identifier of one footprint block (a coarse cache line).
///
/// Applications map their arrays onto disjoint block-id ranges; see
/// [`BlockRange`].
pub type BlockId = u64;

/// A contiguous range of footprint blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRange {
    /// First block in the range.
    pub first: BlockId,
    /// Number of blocks.
    pub count: u32,
}

impl BlockRange {
    /// A new range; `count` may be zero (empty footprint contribution).
    pub fn new(first: BlockId, count: u32) -> Self {
        BlockRange { first, count }
    }

    /// Iterate over the block ids of this range.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.count as u64).map(move |i| self.first + i)
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_iterates() {
        let r = BlockRange::new(10, 3);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![10, 11, 12]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(BlockRange::new(0, 0).is_empty());
    }
}
