//! Slab arena for [`RtNode`]s — the allocation side of the discovery
//! hot path (DESIGN.md §4.4).
//!
//! The discovery producer creates one node per submitted task. Allocating
//! each node behind its own `Arc` puts one `malloc` (plus one `free` from
//! whichever worker drops the last reference) on the producer's critical
//! path — exactly the fine-TPL regime the paper says discovery must
//! survive. The arena instead hands out nodes from fixed-size chunks:
//!
//! * **Chunks** of [`CHUNK`] slots are boxed arrays owned by a shared
//!   [`ArenaCore`]; allocation is a bump of the owner's cursor, so in
//!   steady state (after [`NodeArena::reserve`] or a warm-up pass) a
//!   task submission performs **zero** heap allocations.
//! * **[`NodeRef`]** is a hand-rolled pooled `Arc`: two pointers (slot +
//!   core), a per-slot strong count for the node, and a core count that
//!   keeps the chunk memory alive until the last straggler reference —
//!   a worker can hold a `NodeRef` past the death of the
//!   `GraphInstance` that allocated it.
//! * Slots are **bump-only**: there is no free list. A graph instance
//!   keeps every node alive for the session anyway (`nodes` table), so
//!   recycling individual slots would buy nothing and cost a branch on
//!   the hot path.
//!
//! ### Lifetime / safety protocol
//!
//! * Only the unique [`NodeArena`] handle allocates (it takes `&mut
//!   self`), so the chunk vector inside the shared core is mutated by
//!   exactly one thread; `NodeRef`s never touch it — they hold direct
//!   slot pointers, and boxed chunks never move.
//! * A slot's payload is dropped by whoever decrements its strong count
//!   to zero (`Release` on the decrement, `Acquire` fence before the
//!   drop — the usual `Arc` protocol).
//! * Each live slot holds one reference on the core; the core (and all
//!   chunks) is freed when the handle **and** every slot are gone.
//! * Cross-thread *publication* of a freshly written node follows the
//!   same argument as the rest of the kernel: a `NodeRef` always travels
//!   through a synchronizing channel (ready queue push, mutex-guarded
//!   successor list), never through a data race.

use super::node::RtNode;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::Deref;
use std::ptr::NonNull;
use std::sync::atomic::{fence, AtomicU32, AtomicUsize, Ordering};

/// Nodes per chunk. 64 keeps a chunk around the size of a few pages
/// while amortizing the (rare) chunk allocation over 64 submissions.
pub const CHUNK: usize = 64;

struct Slot {
    /// Strong count for the node in this slot; 0 = empty/dead.
    strong: AtomicU32,
    /// The node payload; initialized while `strong > 0`.
    node: UnsafeCell<MaybeUninit<RtNode>>,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            strong: AtomicU32::new(0),
            node: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

type Chunk = Box<[Slot; CHUNK]>;

fn new_chunk() -> Chunk {
    // Build through a Vec to avoid a large stack temporary.
    let v: Vec<Slot> = (0..CHUNK).map(|_| Slot::empty()).collect();
    let boxed: Box<[Slot]> = v.into_boxed_slice();
    boxed.try_into().ok().expect("chunk length is CHUNK")
}

/// Shared backing store: chunk list + reference count.
struct ArenaCore {
    /// One reference per live slot plus one for the `NodeArena` handle.
    refs: AtomicUsize,
    /// Chunk list. Mutated only through the unique `NodeArena` handle
    /// (single thread); read only by that same handle. `NodeRef`s keep
    /// direct slot pointers and never look in here.
    chunks: UnsafeCell<Vec<Chunk>>,
}

// SAFETY: `chunks` is only accessed by the unique handle owner (alloc
// path) and by the final-release thread (drop path); the core refcount's
// Release/Acquire protocol orders the two. Slots themselves synchronize
// through their atomics.
unsafe impl Send for ArenaCore {}
unsafe impl Sync for ArenaCore {}

unsafe fn release_core(core: NonNull<ArenaCore>) {
    if core.as_ref().refs.fetch_sub(1, Ordering::Release) == 1 {
        fence(Ordering::Acquire);
        drop(Box::from_raw(core.as_ptr()));
    }
}

/// The unique allocation handle. Owned by a `GraphInstance` /
/// `PersistentInstance`; dropping it does not free chunks while any
/// [`NodeRef`] is alive.
pub struct NodeArena {
    core: NonNull<ArenaCore>,
    /// Global bump cursor: index of the next slot to hand out.
    cursor: usize,
}

// SAFETY: the handle is a unique owner moved between threads as a whole;
// all shared state is inside ArenaCore (see above).
unsafe impl Send for NodeArena {}

impl NodeArena {
    /// An empty arena (no chunks yet).
    pub fn new() -> NodeArena {
        let core = Box::new(ArenaCore {
            refs: AtomicUsize::new(1),
            chunks: UnsafeCell::new(Vec::new()),
        });
        NodeArena {
            core: NonNull::from(Box::leak(core)),
            cursor: 0,
        }
    }

    fn chunks_mut(&mut self) -> &mut Vec<Chunk> {
        // SAFETY: `&mut self` — we are the unique handle, and no NodeRef
        // ever touches the chunk vector.
        unsafe { &mut *self.core.as_ref().chunks.get() }
    }

    /// Number of nodes allocated so far.
    pub fn len(&self) -> usize {
        self.cursor
    }

    /// Whether no node has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.cursor == 0
    }

    /// Slot capacity currently backed by chunks.
    pub fn capacity(&self) -> usize {
        // SAFETY: unique handle; see chunks_mut.
        unsafe { (*self.core.as_ref().chunks.get()).len() * CHUNK }
    }

    /// Pre-allocate chunks so the next `extra` [`NodeArena::alloc`]
    /// calls perform no heap allocation.
    pub fn reserve(&mut self, extra: usize) {
        let need = self.cursor + extra;
        let need_chunks = need.div_ceil(CHUNK);
        let chunks = self.chunks_mut();
        if need_chunks > chunks.len() {
            chunks.reserve(need_chunks - chunks.len());
            while chunks.len() < need_chunks {
                chunks.push(new_chunk());
            }
        }
    }

    /// Move `node` into the arena and return its owning reference.
    pub fn alloc(&mut self, node: RtNode) -> NodeRef {
        let idx = self.cursor;
        self.cursor += 1;
        self.core_ref().refs.fetch_add(1, Ordering::Relaxed);
        let (ci, si) = (idx / CHUNK, idx % CHUNK);
        let core = self.core;
        let chunks = self.chunks_mut();
        if ci == chunks.len() {
            chunks.push(new_chunk());
        }
        let slot: &Slot = &chunks[ci][si];
        debug_assert_eq!(slot.strong.load(Ordering::Relaxed), 0);
        // SAFETY: the slot is unused (bump-only cursor) and we hold the
        // unique handle; no other thread can observe it until the
        // NodeRef is published through a synchronizing channel.
        unsafe { (*slot.node.get()).write(node) };
        slot.strong.store(1, Ordering::Release);
        NodeRef {
            slot: NonNull::from(slot),
            core,
        }
    }

    fn core_ref(&self) -> &ArenaCore {
        // SAFETY: the handle holds a core reference, so the core is live.
        unsafe { self.core.as_ref() }
    }

    /// Allocate a single node backed by its own throwaway arena — for
    /// tests and one-off nodes outside any instance.
    pub fn singleton(node: RtNode) -> NodeRef {
        let mut arena = NodeArena::new();
        arena.alloc(node)
        // `arena` drops here; the NodeRef's core reference keeps the
        // chunk alive.
    }
}

impl Default for NodeArena {
    fn default() -> Self {
        NodeArena::new()
    }
}

impl Drop for NodeArena {
    fn drop(&mut self) {
        // SAFETY: drops the handle's core reference exactly once.
        unsafe { release_core(self.core) };
    }
}

/// A shared reference to an arena-allocated [`RtNode`] — the kernel's
/// node currency. Clone/drop are refcount bumps on the slot; no
/// allocator traffic.
pub struct NodeRef {
    slot: NonNull<Slot>,
    core: NonNull<ArenaCore>,
}

// SAFETY: RtNode is Send + Sync (atomics + mutexes); the slot/core
// refcount protocol matches std::sync::Arc's.
unsafe impl Send for NodeRef {}
unsafe impl Sync for NodeRef {}

impl NodeRef {
    #[inline]
    fn slot(&self) -> &Slot {
        // SAFETY: we hold a strong reference, so the slot (and its
        // chunk, via the core reference) is alive.
        unsafe { self.slot.as_ref() }
    }

    /// Whether two references point at the same node.
    #[inline]
    pub fn ptr_eq(a: &NodeRef, b: &NodeRef) -> bool {
        a.slot == b.slot
    }
}

impl Deref for NodeRef {
    type Target = RtNode;
    #[inline]
    fn deref(&self) -> &RtNode {
        // SAFETY: payload is initialized while strong > 0, and we hold
        // a strong reference.
        unsafe { (*self.slot().node.get()).assume_init_ref() }
    }
}

impl Clone for NodeRef {
    #[inline]
    fn clone(&self) -> NodeRef {
        self.slot().strong.fetch_add(1, Ordering::Relaxed);
        NodeRef {
            slot: self.slot,
            core: self.core,
        }
    }
}

impl Drop for NodeRef {
    #[inline]
    fn drop(&mut self) {
        if self.slot().strong.fetch_sub(1, Ordering::Release) == 1 {
            fence(Ordering::Acquire);
            // SAFETY: last strong reference — drop the payload in place,
            // then release the slot's reference on the core.
            unsafe {
                (*self.slot().node.get()).assume_init_drop();
                release_core(self.core);
            }
        }
    }
}

impl std::fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let node: &RtNode = self;
        write!(f, "NodeRef({:?} {:?})", node.id, node.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;
    use std::sync::atomic::AtomicUsize;

    fn bare(id: u32) -> RtNode {
        RtNode::bare_value(TaskId(id), 0)
    }

    #[test]
    fn alloc_and_deref() {
        let mut arena = NodeArena::new();
        let a = arena.alloc(bare(7));
        assert_eq!(a.id, TaskId(7));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn refs_outlive_the_arena() {
        let mut arena = NodeArena::new();
        let refs: Vec<NodeRef> = (0..200).map(|i| arena.alloc(bare(i))).collect();
        drop(arena);
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(r.id, TaskId(i as u32));
        }
    }

    #[test]
    fn reserve_preallocates_chunks() {
        let mut arena = NodeArena::new();
        arena.reserve(1000);
        let cap = arena.capacity();
        assert!(cap >= 1000);
        for i in 0..1000 {
            arena.alloc(bare(i));
        }
        assert_eq!(arena.capacity(), cap, "no chunk growth inside reserve");
    }

    #[test]
    fn clone_drop_across_threads() {
        let mut arena = NodeArena::new();
        let node = arena.alloc(bare(1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let n = node.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let c = n.clone();
                        assert_eq!(c.id, TaskId(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(arena);
        assert_eq!(node.id, TaskId(1));
    }

    #[test]
    fn payload_dropped_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        // Smuggle a drop probe in through the body closure.
        let probe = std::sync::Arc::new(Probe);
        let node = RtNode::bare_value(TaskId(0), 0).with_test_body(move |_| {
            let _keep = &probe;
        });
        let r = NodeArena::singleton(node);
        let r2 = r.clone();
        drop(r);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        drop(r2);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn singleton_outlives_internal_arena() {
        let r = NodeArena::singleton(bare(3));
        assert_eq!(r.id, TaskId(3));
        let r2 = r.clone();
        drop(r);
        assert_eq!(r2.id, TaskId(3));
    }
}
