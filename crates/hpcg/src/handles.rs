//! Dependency handles of the task-based HPCG.

use crate::config::HpcgConfig;
use ptdg_core::handle::{DataHandle, HandleSpace};

/// Handles of one rank's CG task program.
#[derive(Clone, Debug)]
pub struct HpcgHandles {
    /// Row ranges `[lo, hi)` of the vector blocks.
    pub blocks: Vec<(usize, usize)>,
    /// Solution vector blocks.
    pub x: Vec<DataHandle>,
    /// Residual blocks.
    pub r: Vec<DataHandle>,
    /// Search-direction blocks.
    pub p: Vec<DataHandle>,
    /// `A·p` blocks.
    pub ap: Vec<DataHandle>,
    /// p·Ap partials (whole scratch vector; `inoutset` target).
    pub pap_scratch: DataHandle,
    /// r·r partials.
    pub rr_scratch: DataHandle,
    /// alpha (also carries rr forward).
    pub alpha: DataHandle,
    /// beta / rr.
    pub beta: DataHandle,
    /// Send buffers for the 6 faces.
    pub sbuf: Vec<DataHandle>,
    /// Receive buffers for the 6 faces.
    pub rbuf: Vec<DataHandle>,
    /// The sparse matrix itself (values + column indices ≈ 324 B/row):
    /// constant, so no dependences — but it is the dominant memory
    /// traffic of the SpMV, which is what makes HPCG bandwidth-bound.
    pub matrix: DataHandle,
}

impl HpcgHandles {
    /// Register every region in `space`.
    pub fn build(space: &mut HandleSpace, cfg: &HpcgConfig) -> HpcgHandles {
        let n = cfg.n_rows();
        let k = cfg.blocks();
        let blocks: Vec<(usize, usize)> = (0..k).map(|i| (n * i / k, n * (i + 1) / k)).collect();
        let vec_handles = |space: &mut HandleSpace, name: &'static str| -> Vec<DataHandle> {
            blocks
                .iter()
                .map(|&(a, b)| space.region(name, ((b - a) * 8) as u64))
                .collect()
        };
        let x = vec_handles(space, "x");
        let r = vec_handles(space, "r");
        let p = vec_handles(space, "p");
        let ap = vec_handles(space, "ap");
        let pap_scratch = space.region("pap_scratch", (k * 8) as u64);
        let rr_scratch = space.region("rr_scratch", (k * 8) as u64);
        let alpha = space.region("alpha", 8);
        let beta = space.region("beta", 8);
        let face_bytes = (cfg.nx * cfg.nx * 8) as u64;
        let sbuf = (0..6).map(|_| space.region("sbuf", face_bytes)).collect();
        let rbuf = (0..6).map(|_| space.region("rbuf", face_bytes)).collect();
        let matrix = space.region("matrix", (n * 324) as u64);
        HpcgHandles {
            blocks,
            x,
            r,
            p,
            ap,
            pap_scratch,
            rr_scratch,
            alpha,
            beta,
            sbuf,
            rbuf,
            matrix,
        }
    }

    /// Block indices whose `p` an SpMV task over rows `[a, b)` reads. The
    /// 27-point stencil's farthest neighbour in flat row order is
    /// `nx² + nx + 1` rows away (the (+1,+1,+1) corner), so the dependency
    /// range must cover that full reach on both sides.
    pub fn spmv_reads(&self, a: usize, b: usize, nx: usize) -> (usize, usize) {
        let n = self.blocks.last().map(|&(_, e)| e).unwrap_or(0);
        let reach = nx * nx + nx + 1;
        let lo = a.saturating_sub(reach);
        let hi = (b + reach).min(n);
        let first = self
            .blocks
            .partition_point(|&(_, end)| end <= lo)
            .min(self.blocks.len() - 1);
        let last = self
            .blocks
            .partition_point(|&(start, _)| start < hi)
            .saturating_sub(1)
            .max(first);
        (first, last)
    }

    /// Block indices overlapping the row range `[a, b)` exactly (no
    /// stencil reach) — used for halo frontier dependences.
    pub fn blocks_overlapping(&self, a: usize, b: usize) -> (usize, usize) {
        self.spmv_reads_inner(a, b, 0)
    }

    fn spmv_reads_inner(&self, lo: usize, hi: usize, _z: usize) -> (usize, usize) {
        let first = self
            .blocks
            .partition_point(|&(_, end)| end <= lo)
            .min(self.blocks.len() - 1);
        let last = self
            .blocks
            .partition_point(|&(start, _)| start < hi)
            .saturating_sub(1)
            .max(first);
        (first, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_counts() {
        let cfg = HpcgConfig::single(8, 1, 16);
        let mut sp = HandleSpace::new();
        let h = HpcgHandles::build(&mut sp, &cfg);
        assert_eq!(h.blocks.len(), 16);
        assert_eq!(h.x.len(), 16);
        assert_eq!(h.sbuf.len(), 6);
        // 4 vectors × 16 + 2 scratch + 2 scalars + 12 buffers + matrix
        assert_eq!(sp.len(), 4 * 16 + 2 + 2 + 12 + 1);
    }

    #[test]
    fn spmv_reads_neighboring_blocks() {
        let cfg = HpcgConfig::single(8, 1, 8); // 512 rows, plane=64, block=64
        let mut sp = HandleSpace::new();
        let h = HpcgHandles::build(&mut sp, &cfg);
        // reach = 73 rows = just over one 64-row block
        assert_eq!(h.spmv_reads(0, 64, 8), (0, 2));
        assert_eq!(h.spmv_reads(64, 128, 8), (0, 3));
        assert_eq!(h.spmv_reads(448, 512, 8), (5, 7));
    }

    #[test]
    fn spmv_reads_whole_vector_when_blocks_are_small() {
        let cfg = HpcgConfig::single(4, 1, 64); // 64 rows, plane=16, 64 blocks of 1
        let mut sp = HandleSpace::new();
        let h = HpcgHandles::build(&mut sp, &cfg);
        let (lo, hi) = h.spmv_reads(32, 33, 4);
        assert_eq!((lo, hi), (11, 53), "full stencil reach on each side");
    }
}
