//! A discovery/execution session on the thread executor.

use super::executor::Executor;
use crate::builder::TaskSubmitter;
use crate::graph::{DiscoveryEngine, DiscoveryStats, GraphTemplate};
use crate::opts::OptConfig;
use crate::profile::{Span, SpanKind};
use crate::rt::{GraphInstance, InstanceOptions, NodeRef, RtProbe};
use crate::task::{SpecView, TaskId, TaskSpec};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One sequential discovery stream plus the right to wait for its tasks.
///
/// Obtained from [`Executor::session`] (overlapped),
/// [`Executor::session_non_overlapped`] (paper Table 1 configuration), or
/// internally by a persistent region's first iteration. Discovery writes
/// into a kernel [`GraphInstance`]; this type only routes the tasks the
/// instance reports ready and decides when the producer helps execute.
///
/// [`Session::submit_view`] is the native, allocation-free submission
/// path; [`Session::submit`] wraps an owned [`TaskSpec`] around it. After
/// [`Session::reserve`], a steady-state submission performs zero heap
/// allocations end to end (DESIGN.md §4.4).
pub struct Session<'e> {
    exec: &'e Executor,
    engine: DiscoveryEngine,
    instance: GraphInstance,
    /// Recycled drain buffer: refills from the instance each submission
    /// and never regrows past its high-water mark.
    ready_buf: Vec<NodeRef>,
    discovery_t0_ns: Option<u64>,
    discovery_t1_ns: u64,
    iter: u64,
}

impl<'e> Session<'e> {
    pub(crate) fn new(
        exec: &'e Executor,
        opts: OptConfig,
        non_overlapped: bool,
        capture: bool,
    ) -> Session<'e> {
        if non_overlapped {
            exec.pool().gate.close();
        }
        let mut instance = GraphInstance::new(
            Arc::clone(&exec.pool().tracker),
            InstanceOptions {
                want_bodies: true,
                keep_work: false,
                capture,
            },
        );
        // Discovery narrates creation/readiness through the pool's
        // recorder (a no-op unless the executor profiles).
        instance.set_probe(Arc::clone(&exec.pool().recorder) as Arc<dyn RtProbe>);
        Session {
            exec,
            engine: DiscoveryEngine::new(opts),
            instance,
            ready_buf: Vec::new(),
            discovery_t0_ns: None,
            discovery_t1_ns: 0,
            iter: 0,
        }
    }

    /// Pre-size every producer-side buffer for a stream of about `tasks`
    /// tasks over `handles` distinct data handles, so steady-state
    /// submissions allocate nothing: arena chunks, node table, engine
    /// per-handle state, drain buffer, and — for non-overlapped sessions —
    /// the hold gate.
    pub fn reserve(&mut self, tasks: usize, handles: usize) {
        self.instance.reserve(tasks);
        self.engine.reserve(tasks, handles);
        self.ready_buf.reserve(tasks.min(64));
        self.exec.pool().gate.reserve(tasks);
    }

    /// Submit one task from a borrowed view — the allocation-free hot
    /// path; may execute tasks inline if throttling thresholds are
    /// exceeded.
    pub fn submit_view(&mut self, view: &SpecView<'_>) -> TaskId {
        let pool = Arc::clone(self.exec.pool());
        let now = pool.now_ns();
        self.discovery_t0_ns.get_or_insert(now);
        self.instance.set_now_ns(now);
        let id = self.engine.submit_view(&mut self.instance, view);
        self.discovery_t1_ns = pool.now_ns();
        if pool.profile {
            pool.recorder.span(Span {
                worker: self.exec.n_workers() as u32,
                start_ns: now,
                end_ns: self.discovery_t1_ns,
                kind: SpanKind::Discovery,
                name: "<discovery>",
                iter: self.iter,
            });
        }
        self.instance.drain_ready_into(&mut self.ready_buf);
        for node in self.ready_buf.drain(..) {
            pool.make_ready(node, None);
        }
        if pool.throttle.should_help(&pool.tracker) {
            // Relaxed: producer-written statistics, read post-quiescence.
            pool.throttle_stalls.fetch_add(1, Ordering::Relaxed);
            let h0 = Instant::now();
            while pool.throttle.should_help(&pool.tracker) {
                if !pool.help_once() {
                    break;
                }
            }
            pool.throttle_stall_ns
                .fetch_add(h0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        id
    }

    /// Submit one owned task spec (convenience wrapper over
    /// [`Session::submit_view`]).
    pub fn submit(&mut self, spec: TaskSpec) -> TaskId {
        self.submit_view(&spec.view())
    }

    /// Set the iteration number stamped on subsequently created tasks
    /// (what their bodies observe as [`crate::task::TaskCtx::iter`]).
    pub fn set_iter(&mut self, iter: u64) {
        self.iter = iter;
        self.instance.set_iter(iter);
    }

    /// Block until every task submitted *so far* has completed, without
    /// ending the session — the analogue of `#pragma omp taskwait` at the
    /// submission point (used by codes that fence their communication
    /// sequences, §4.1 of the paper).
    pub fn taskwait(&mut self) {
        let pool = Arc::clone(self.exec.pool());
        pool.release_gate();
        pool.barrier();
    }

    /// Discovery statistics so far.
    pub fn stats(&self) -> DiscoveryStats {
        self.engine.stats()
    }

    /// Producer-side discovery span (first to last submission), ns.
    pub fn discovery_ns(&self) -> u64 {
        match self.discovery_t0_ns {
            Some(t0) => self.discovery_t1_ns.saturating_sub(t0),
            None => 0,
        }
    }

    /// Release any held tasks and run until every submitted task has
    /// completed (the producer helps execute).
    pub fn wait_all(&mut self) {
        let pool = Arc::clone(self.exec.pool());
        pool.release_gate();
        // Relaxed: producer-written, read by `take_obs` after this call.
        pool.last_discovery_ns
            .store(self.discovery_ns(), Ordering::Relaxed);
        pool.barrier();
    }

    /// Wait for completion, then return the captured template and the
    /// discovery statistics (capturing sessions only).
    pub fn finish_capture(mut self) -> (GraphTemplate, DiscoveryStats) {
        self.wait_all();
        let stats = self.engine.stats();
        (self.instance.finish_capture(), stats)
    }
}

impl TaskSubmitter for Session<'_> {
    fn submit_view(&mut self, view: &SpecView<'_>) -> TaskId {
        Session::submit_view(self, view)
    }

    fn submit(&mut self, spec: TaskSpec) -> TaskId {
        Session::submit(self, spec)
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        // Never leave the gate closed: a dropped non-overlapped session
        // must not wedge the executor.
        self.exec.pool().release_gate();
    }
}
