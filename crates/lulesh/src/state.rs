//! Mesh state arrays and the numeric kernels.
//!
//! The physics is a simplified explicit shock-hydro step that preserves
//! what matters for the paper's study: the *loop sequence*, the per-loop
//! data-flow (element↔node gathers), real floating-point work per item,
//! and a dynamic time step reduced globally each iteration. Kernels are
//! elementwise-deterministic, so the task versions are bitwise equal to
//! the sequential reference regardless of scheduling — the property the
//! integration tests verify.

use crate::mesh::Mesh;
use ptdg_core::data::SharedVec;
use std::ops::Range;

/// Adiabatic index of the ideal-gas EOS.
const GAMMA: f64 = 1.4;
/// Artificial-viscosity coefficient.
const QCOEF: f64 = 2.0;
/// CFL factor for the dynamic time step.
const CFL: f64 = 0.05;
/// Floors to keep the simplified scheme defined.
const V_MIN: f64 = 1e-3;
const SS_MIN: f64 = 1e-3;

/// All mesh fields of one rank, shared across task bodies.
///
/// Cloning shares storage (every field is a [`SharedVec`]).
#[derive(Clone)]
pub struct LuleshState {
    /// Mesh geometry.
    pub mesh: Mesh,
    /// Nodal positions.
    pub x: SharedVec<f64>,
    /// Nodal positions.
    pub y: SharedVec<f64>,
    /// Nodal positions.
    pub z: SharedVec<f64>,
    /// Nodal velocities.
    pub xd: SharedVec<f64>,
    /// Nodal velocities.
    pub yd: SharedVec<f64>,
    /// Nodal velocities.
    pub zd: SharedVec<f64>,
    /// Nodal forces.
    pub fx: SharedVec<f64>,
    /// Nodal forces.
    pub fy: SharedVec<f64>,
    /// Nodal forces.
    pub fz: SharedVec<f64>,
    /// Nodal mass.
    pub mass: SharedVec<f64>,
    /// Element stress.
    pub sig: SharedVec<f64>,
    /// Element internal energy.
    pub e: SharedVec<f64>,
    /// Element pressure.
    pub p: SharedVec<f64>,
    /// Element artificial viscosity.
    pub q: SharedVec<f64>,
    /// Element relative volume.
    pub v: SharedVec<f64>,
    /// Element volume change this step.
    pub delv: SharedVec<f64>,
    /// Element sound speed.
    pub ss: SharedVec<f64>,
    /// Per-slice minimum time-step scratch (one slot per courant task).
    pub scratch: SharedVec<f64>,
    /// The global time step (length 1).
    pub dt: SharedVec<f64>,
}

impl LuleshState {
    /// Initialize a Sedov-like problem: unit cube, energy deposited in the
    /// origin-corner element, everything else cold and at rest.
    pub fn new(mesh: Mesh, tpl: usize) -> LuleshState {
        let nn = mesh.n_nodes();
        let ne = mesh.n_elems();
        let np = mesh.np() as f64;
        let mut x = vec![0.0f64; nn];
        let mut y = vec![0.0f64; nn];
        let mut z = vec![0.0f64; nn];
        for n in 0..nn {
            let (nx, ny, nz) = mesh.node_coords(n);
            x[n] = nx as f64 / (np - 1.0);
            y[n] = ny as f64 / (np - 1.0);
            z[n] = nz as f64 / (np - 1.0);
        }
        let mut e = vec![1e-6f64; ne];
        e[0] = 3.0; // the Sedov energy deposit
        let h = 1.0 / mesh.s as f64;
        let ss0 = (GAMMA * (GAMMA - 1.0) * 1e-6f64).sqrt().max(SS_MIN);
        let st = LuleshState {
            mesh,
            x: SharedVec::from_vec(x),
            y: SharedVec::from_vec(y),
            z: SharedVec::from_vec(z),
            xd: SharedVec::new(nn, 0.0),
            yd: SharedVec::new(nn, 0.0),
            zd: SharedVec::new(nn, 0.0),
            fx: SharedVec::new(nn, 0.0),
            fy: SharedVec::new(nn, 0.0),
            fz: SharedVec::new(nn, 0.0),
            mass: SharedVec::new(nn, h * h * h),
            sig: SharedVec::new(ne, 0.0),
            e: SharedVec::from_vec(e),
            p: SharedVec::new(ne, 0.0),
            q: SharedVec::new(ne, 0.0),
            v: SharedVec::new(ne, h * h * h),
            delv: SharedVec::new(ne, 0.0),
            ss: SharedVec::new(ne, ss0),
            scratch: SharedVec::new(tpl.max(1), h / ss0),
            dt: SharedVec::new(1, 0.0),
        };
        // Prime pressure from the initial energy so step 0 produces
        // forces, and the courant scratch so the first dt is CFL-safe.
        st.k_eos_init();
        let nslots = st.scratch.len();
        let ne_per = ne.div_ceil(nslots);
        for slot in 0..nslots {
            let lo = slot * ne_per;
            let hi = ((slot + 1) * ne_per).min(ne);
            if lo < hi {
                st.k_courant(lo..hi, slot);
            }
        }
        st
    }

    fn k_eos_init(&self) {
        let ne = self.mesh.n_elems();
        let (e, p, v, ss) = (
            self.e.slice(0..ne),
            self.p.slice_mut(0..ne),
            self.v.slice(0..ne),
            self.ss.slice_mut(0..ne),
        );
        for i in 0..ne {
            p[i] = (GAMMA - 1.0) * e[i] / v[i].max(V_MIN);
            ss[i] = (GAMMA * p[i].max(0.0)).sqrt().max(SS_MIN);
        }
    }

    /// Loop 1 (`CalcTimeConstraints` + reduce): dt = CFL · min(scratch).
    pub fn k_dt(&self) {
        let s = self.scratch.slice(0..self.scratch.len());
        let m = s.iter().cloned().fold(f64::INFINITY, f64::min);
        self.dt.set(0, (CFL * m).min(1e-3));
    }

    /// Loop 2 (`CalcStressForElems`): σ = −(p + q).
    pub fn k_stress(&self, elems: Range<usize>) {
        let p = self.p.slice(elems.clone());
        let q = self.q.slice(elems.clone());
        let sig = self.sig.slice_mut(elems);
        for i in 0..sig.len() {
            sig[i] = -(p[i] + q[i]);
        }
    }

    /// Loop 3 (`CalcFBHourglassForceForElems`-like): gather the pressure
    /// gradient from the (up to 8) elements adjacent to each node.
    pub fn k_force(&self, nodes: Range<usize>) {
        let mesh = self.mesh;
        let s = mesh.s;
        let ne = mesh.n_elems();
        let sig = self.sig.slice(0..ne);
        let fx = self.fx.slice_mut(nodes.clone());
        let fy = self.fy.slice_mut(nodes.clone());
        let fz = self.fz.slice_mut(nodes.clone());
        let hh = 1.0 / s as f64;
        let h2 = hh * hh / 4.0; // element face area shared by 4 nodes
        for (k, n) in nodes.clone().enumerate() {
            let (nx, ny, nz) = mesh.node_coords(n);
            let (mut gx, mut gy, mut gz) = (0.0, 0.0, 0.0);
            for dz in 0..2usize {
                for dy in 0..2usize {
                    for dx in 0..2usize {
                        // element at (nx-1+dx, ny-1+dy, nz-1+dz) if it exists
                        let (ex, ey, ez) = (
                            nx as i64 - 1 + dx as i64,
                            ny as i64 - 1 + dy as i64,
                            nz as i64 - 1 + dz as i64,
                        );
                        if ex < 0 || ey < 0 || ez < 0 {
                            continue;
                        }
                        let (ex, ey, ez) = (ex as usize, ey as usize, ez as usize);
                        if ex >= s || ey >= s || ez >= s {
                            continue;
                        }
                        // σ = −p: a pressurized element on the low side
                        // pushes the node toward +axis, and vice versa.
                        let sv = sig[mesh.elem_idx(ex, ey, ez)];
                        gx += sv * if dx == 0 { -1.0 } else { 1.0 };
                        gy += sv * if dy == 0 { -1.0 } else { 1.0 };
                        gz += sv * if dz == 0 { -1.0 } else { 1.0 };
                    }
                }
            }
            fx[k] = gx * h2;
            fy[k] = gy * h2;
            fz[k] = gz * h2;
        }
    }

    /// Loops 4+5 (`CalcAccelerationForNodes` + velocity): v += dt·F/m,
    /// with LULESH's symmetry boundary conditions on the 0-planes.
    pub fn k_accel(&self, nodes: Range<usize>) {
        let dt = *self.dt.get(0);
        let mesh = self.mesh;
        let fx = self.fx.slice(nodes.clone());
        let fy = self.fy.slice(nodes.clone());
        let fz = self.fz.slice(nodes.clone());
        let m = self.mass.slice(nodes.clone());
        let xd = self.xd.slice_mut(nodes.clone());
        let yd = self.yd.slice_mut(nodes.clone());
        let zd = self.zd.slice_mut(nodes.clone());
        for (i, n) in nodes.enumerate() {
            let (nx, ny, nz) = mesh.node_coords(n);
            if nx != 0 {
                xd[i] += dt * fx[i] / m[i];
            }
            if ny != 0 {
                yd[i] += dt * fy[i] / m[i];
            }
            if nz != 0 {
                zd[i] += dt * fz[i] / m[i];
            }
        }
    }

    /// Loop 6 (`CalcPositionForNodes`): x += dt·v.
    pub fn k_pos(&self, nodes: Range<usize>) {
        let dt = *self.dt.get(0);
        let xd = self.xd.slice(nodes.clone());
        let yd = self.yd.slice(nodes.clone());
        let zd = self.zd.slice(nodes.clone());
        let x = self.x.slice_mut(nodes.clone());
        let y = self.y.slice_mut(nodes.clone());
        let z = self.z.slice_mut(nodes);
        for i in 0..x.len() {
            x[i] += dt * xd[i];
            y[i] += dt * yd[i];
            z[i] += dt * zd[i];
        }
    }

    /// Loop 7 (`CalcLagrangeElements`): element volume from its main
    /// diagonal corners; records the volume change.
    pub fn k_kin(&self, elems: Range<usize>) {
        let mesh = self.mesh;
        let nn = mesh.n_nodes();
        let x = self.x.slice(0..nn);
        let y = self.y.slice(0..nn);
        let z = self.z.slice(0..nn);
        let v = self.v.slice_mut(elems.clone());
        let delv = self.delv.slice_mut(elems.clone());
        for (k, eidx) in elems.enumerate() {
            let (ex, ey, ez) = mesh.elem_coords(eidx);
            let c0 = mesh.node_idx(ex, ey, ez);
            let c7 = mesh.node_idx(ex + 1, ey + 1, ez + 1);
            let vol = ((x[c7] - x[c0]) * (y[c7] - y[c0]) * (z[c7] - z[c0]))
                .abs()
                .max(V_MIN * V_MIN);
            delv[k] = vol - v[k];
            v[k] = vol;
        }
    }

    /// Loop 8 (`EvalEOSForElems`): viscosity, energy, pressure, sound speed.
    pub fn k_eos(&self, elems: Range<usize>) {
        let e = self.e.slice_mut(elems.clone());
        let p = self.p.slice_mut(elems.clone());
        let q = self.q.slice_mut(elems.clone());
        let v = self.v.slice(elems.clone());
        let delv = self.delv.slice(elems.clone());
        let ss = self.ss.slice_mut(elems);
        for i in 0..e.len() {
            q[i] = if delv[i] < 0.0 {
                QCOEF * delv[i] * delv[i] / v[i].max(V_MIN)
            } else {
                0.0
            };
            e[i] = (e[i] - 0.5 * delv[i] * (p[i] + q[i])).max(0.0);
            p[i] = (GAMMA - 1.0) * e[i] / v[i].max(V_MIN);
            ss[i] = (GAMMA * p[i].max(0.0)).sqrt().max(SS_MIN);
        }
    }

    /// Loop 9 (`CalcCourantConstraintForElems`): per-slice dt bound into
    /// this task's scratch slot.
    pub fn k_courant(&self, elems: Range<usize>, slot: usize) {
        let h = 1.0 / self.mesh.s as f64;
        let ss = self.ss.slice(elems);
        let m = ss
            .iter()
            .map(|&c| h / c.max(SS_MIN))
            .fold(f64::INFINITY, f64::min);
        self.scratch.set(slot, m);
    }

    /// Total internal + kinetic energy (verification aid).
    pub fn total_energy(&self) -> f64 {
        let ne = self.mesh.n_elems();
        let nn = self.mesh.n_nodes();
        let internal: f64 = self.e.slice(0..ne).iter().sum();
        let xd = self.xd.slice(0..nn);
        let yd = self.yd.slice(0..nn);
        let zd = self.zd.slice(0..nn);
        let m = self.mass.slice(0..nn);
        let kinetic: f64 = (0..nn)
            .map(|i| 0.5 * m[i] * (xd[i] * xd[i] + yd[i] * yd[i] + zd[i] * zd[i]))
            .sum();
        internal + kinetic
    }

    /// Whether every field is finite (stability check).
    pub fn all_finite(&self) -> bool {
        let ne = self.mesh.n_elems();
        let nn = self.mesh.n_nodes();
        self.e.slice(0..ne).iter().all(|v| v.is_finite())
            && self.p.slice(0..ne).iter().all(|v| v.is_finite())
            && self.v.slice(0..ne).iter().all(|v| v.is_finite())
            && self.x.slice(0..nn).iter().all(|v| v.is_finite())
            && self.xd.slice(0..nn).iter().all(|v| v.is_finite())
            && self.dt.get(0).is_finite()
    }

    /// A digest of the full state for bitwise-equality tests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |v: f64| {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x100000001b3);
        };
        let ne = self.mesh.n_elems();
        let nn = self.mesh.n_nodes();
        for &v in self.e.slice(0..ne) {
            mix(v);
        }
        for &v in self.p.slice(0..ne) {
            mix(v);
        }
        for &v in self.x.slice(0..nn) {
            mix(v);
        }
        for &v in self.xd.slice(0..nn) {
            mix(v);
        }
        mix(*self.dt.get(0));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::slices;

    fn step_sequential(st: &LuleshState, tpl: usize) {
        let ne = st.mesh.n_elems();
        let nn = st.mesh.n_nodes();
        st.k_dt();
        for &(a, b) in &slices(ne, tpl) {
            st.k_stress(a..b);
        }
        for &(a, b) in &slices(nn, tpl) {
            st.k_force(a..b);
        }
        for &(a, b) in &slices(nn, tpl) {
            st.k_accel(a..b);
        }
        for &(a, b) in &slices(nn, tpl) {
            st.k_pos(a..b);
        }
        for &(a, b) in &slices(ne, tpl) {
            st.k_kin(a..b);
        }
        for &(a, b) in &slices(ne, tpl) {
            st.k_eos(a..b);
        }
        for (slot, &(a, b)) in slices(ne, tpl).iter().enumerate() {
            st.k_courant(a..b, slot);
        }
    }

    #[test]
    fn initial_state_is_sane() {
        let st = LuleshState::new(Mesh::new(6), 4);
        assert!(st.all_finite());
        assert!(st.total_energy() > 2.9);
        assert!(*st.p.get(0) > 0.0, "Sedov element must be pressurized");
    }

    #[test]
    fn simulation_stays_finite_and_energy_spreads() {
        let st = LuleshState::new(Mesh::new(6), 4);
        for _ in 0..20 {
            step_sequential(&st, 4);
            assert!(st.all_finite());
        }
        // the shock moved energy into neighbouring elements
        let e1 = *st.e.get(1);
        assert!(e1 > 1e-6, "energy must propagate: e[1] = {e1}");
        // nodes near the deposit moved
        assert!(st.xd.slice(0..8).iter().any(|&v| v != 0.0));
        assert!(*st.dt.get(0) > 0.0);
    }

    #[test]
    fn sequential_is_deterministic() {
        let run = || {
            let st = LuleshState::new(Mesh::new(5), 3);
            for _ in 0..10 {
                step_sequential(&st, 3);
            }
            st.digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn force_gather_is_antisymmetric_around_uniform_field() {
        // With uniform sig, interior nodes feel zero net force.
        let st = LuleshState::new(Mesh::new(4), 2);
        let ne = st.mesh.n_elems();
        for i in 0..ne {
            st.sig.set(i, -1.0);
        }
        st.k_force(0..st.mesh.n_nodes());
        let interior = st.mesh.node_idx(2, 2, 2);
        assert_eq!(*st.fx.get(interior), 0.0);
        assert_eq!(*st.fy.get(interior), 0.0);
        // boundary nodes feel the unbalanced surface term
        let corner = st.mesh.node_idx(0, 0, 0);
        assert_ne!(*st.fx.get(corner), 0.0);
    }

    #[test]
    fn dt_respects_cfl() {
        let st = LuleshState::new(Mesh::new(4), 2);
        st.k_dt();
        let dt = *st.dt.get(0);
        assert!(dt > 0.0 && dt <= 1e-2);
    }

    #[test]
    fn kinematics_tracks_volume_change() {
        let st = LuleshState::new(Mesh::new(4), 2);
        // compress element 0 by moving node (1,1,1) toward the origin
        let n = st.mesh.node_idx(1, 1, 1);
        st.x.set(n, *st.x.get(n) * 0.5);
        st.k_kin(0..1);
        assert!(*st.delv.get(0) < 0.0, "compression must be negative delv");
    }

    #[test]
    fn eos_generates_viscosity_only_under_compression() {
        let st = LuleshState::new(Mesh::new(4), 2);
        st.delv.set(0, -0.1);
        st.delv.set(1, 0.1);
        st.k_eos(0..2);
        assert!(*st.q.get(0) > 0.0);
        assert_eq!(*st.q.get(1), 0.0);
    }
}
