//! # ptdg-simcore — deterministic discrete-event simulation engine
//!
//! Minimal, allocation-light discrete-event scheduling used by the virtual
//! multicore executor (`ptdg-simrt`) and the simulated interconnect
//! (`ptdg-simmpi`).
//!
//! Design goals:
//!
//! * **Determinism.** Events are ordered by `(time, sequence)`, where the
//!   sequence number is assigned at insertion. Two runs with the same inputs
//!   produce bit-identical schedules, which the test-suite relies on.
//! * **Fixed-point virtual time.** Time is a `u64` count of nanoseconds
//!   ([`SimTime`]); no floating-point drift in orderings.
//! * **Payload-agnostic.** The queue stores an application event enum `E`;
//!   the engine knows nothing about cores, tasks or messages.

mod queue;
mod time;

pub use queue::{EventQueue, ScheduledEvent};
pub use time::SimTime;

/// A deterministic splittable RNG helper for workload generation.
///
/// This is a tiny xoshiro256** implementation so substrate crates do not
/// need a `rand` dependency for reproducible jitter. Applications that need
/// distributions use the `rand` crate instead.
#[derive(Clone, Debug)]
pub struct SplitRng {
    s: [u64; 4],
}

impl SplitRng {
    /// Create an RNG from a 64-bit seed using splitmix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SplitRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derive an independent child stream, e.g. one per simulated rank.
    pub fn split(&mut self, salt: u64) -> SplitRng {
        SplitRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine for
        // simulation jitter; exact uniformity is not required.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = SplitRng::new(42);
        let mut b = SplitRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_streams_differ_by_seed() {
        let mut a = SplitRng::new(1);
        let mut b = SplitRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds should give distinct streams");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SplitRng::new(7);
        let mut c1 = root.split(1);
        let mut c2 = root.split(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitRng::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitRng::new(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
