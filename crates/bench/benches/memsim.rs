//! Memory-model micro-benchmarks: LRU probe cost and whole-footprint
//! touches (the per-task cost paid by the virtual executor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ptdg_memsim::{BlockRange, LruCache, MemConfig, MemoryHierarchy};
use std::hint::black_box;

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_access");
    group.throughput(Throughput::Elements(10_000));
    group.sample_size(20);
    for (label, working_set) in [("hits", 1_000u64), ("thrash", 100_000u64)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &working_set,
            |b, &ws| {
                let mut cache = LruCache::new(2048);
                let mut x = 1u64;
                b.iter(|| {
                    let mut hits = 0u32;
                    for _ in 0..10_000 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        if cache.access((x >> 33) % ws) {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                })
            },
        );
    }
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_footprint_touch");
    // a typical task footprint: ~64 blocks across 4 ranges
    let footprint = [
        BlockRange::new(0, 16),
        BlockRange::new(1000, 16),
        BlockRange::new(2000, 16),
        BlockRange::new(3000, 16),
    ];
    group.throughput(Throughput::Elements(64));
    group.sample_size(20);
    group.bench_function("touch_64_blocks", |b| {
        let mut h = MemoryHierarchy::new(MemConfig::default(), 4);
        let mut core = 0usize;
        b.iter(|| {
            core = (core + 1) % 4;
            black_box(h.touch_footprint(core, &footprint))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lru, bench_hierarchy);
criterion_main!(benches);
