//! The dependent-task CG iteration.

use crate::config::*;
use crate::handles::HpcgHandles;
use crate::state::HpcgState;
use ptdg_core::access::AccessMode;
use ptdg_core::builder::{SpecBuf, TaskSubmitter};
use ptdg_core::handle::HandleSpace;
use ptdg_core::workdesc::{CommOp, HandleSlice};
use ptdg_simrt::{Rank, RankProgram};

/// The task-based HPCG program.
pub struct HpcgTask {
    /// Run configuration.
    pub cfg: HpcgConfig,
    /// Block handles.
    pub handles: HpcgHandles,
    /// Handle space for the simulator.
    pub space: HandleSpace,
    /// Real vectors (single-rank thread execution) or `None` (simulation).
    pub state: Option<HpcgState>,
}

impl HpcgTask {
    /// Cost-model-only program.
    pub fn new(cfg: HpcgConfig) -> HpcgTask {
        let mut space = HandleSpace::new();
        let handles = HpcgHandles::build(&mut space, &cfg);
        HpcgTask {
            cfg,
            handles,
            space,
            state: None,
        }
    }

    /// Program with real vectors (requires a single rank).
    pub fn with_state(cfg: HpcgConfig) -> HpcgTask {
        assert_eq!(cfg.n_ranks(), 1, "real execution is single-rank");
        let state = HpcgState::new(&cfg);
        let mut t = HpcgTask::new(cfg);
        t.state = Some(state);
        t
    }

    /// Six face-neighbor ranks of `rank` in the cubic grid (dir: 0..6 for
    /// -x,+x,-y,+y,-z,+z).
    fn face_neighbors(&self, rank: Rank) -> Vec<(usize, Rank)> {
        let p = self.cfg.px;
        let r = rank as usize;
        let (x, y, z) = (r % p, (r / p) % p, r / (p * p));
        let mut v = Vec::new();
        let idx = |x: usize, y: usize, z: usize| ((z * p + y) * p + x) as Rank;
        if x > 0 {
            v.push((0, idx(x - 1, y, z)));
        }
        if x + 1 < p {
            v.push((1, idx(x + 1, y, z)));
        }
        if y > 0 {
            v.push((2, idx(x, y - 1, z)));
        }
        if y + 1 < p {
            v.push((3, idx(x, y + 1, z)));
        }
        if z > 0 {
            v.push((4, idx(x, y, z - 1)));
        }
        if z + 1 < p {
            v.push((5, idx(x, y, z + 1)));
        }
        v
    }
}

impl RankProgram for HpcgTask {
    fn n_iterations(&self) -> u64 {
        self.cfg.iterations
    }

    fn n_ranks(&self) -> Rank {
        self.cfg.n_ranks()
    }

    fn build_iteration(&self, rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        use AccessMode::*;
        let h = &self.handles;
        let cfg = &self.cfg;
        let space = &self.space;
        let nx = cfg.nx;
        let want = sub.wants_bodies() && self.state.is_some();
        let multi = cfg.n_ranks() > 1;
        let whole = |hd| HandleSlice::whole(hd, space.info(hd).bytes);
        // One recycled construction buffer for the whole iteration: after
        // the widest task warms it up, submissions build no Vecs.
        let mut buf = SpecBuf::new();

        // Halo exchange of p with the 6 face neighbors, before the SpMV.
        if multi {
            for (dir, peer) in self.face_neighbors(rank) {
                let bytes = space.info(h.sbuf[dir]).bytes;
                // frontier blocks: the first/last plane of rows for z
                // faces, everything for x/y faces (blocked by flat row
                // index, like the LULESH slabs).
                let n = cfg.n_rows();
                let plane = nx * nx;
                let (fa, fb) = match dir {
                    4 => (0, plane),
                    5 => (n - plane, n),
                    _ => (0, n),
                };
                let (s0, s1) = h.blocks_overlapping(fa, fb.max(fa + 1));
                buf.begin("MPI_Irecv")
                    .dep(h.rbuf[dir], Out)
                    .comm(CommOp::Irecv {
                        peer,
                        bytes,
                        tag: (dir ^ 1) as u32,
                    })
                    .submit(sub);
                buf.begin("PackHalo");
                for i in s0..=s1 {
                    buf.dep(h.p[i], In);
                }
                buf.dep(h.sbuf[dir], Out)
                    .flops(bytes as f64 / 8.0)
                    .touch(whole(h.sbuf[dir]))
                    .submit(sub);
                buf.begin("MPI_Isend")
                    .dep(h.sbuf[dir], In)
                    .comm(CommOp::Isend {
                        peer,
                        bytes,
                        tag: dir as u32,
                    })
                    .submit(sub);
                buf.begin("UnpackHalo").dep(h.rbuf[dir], In);
                for i in s0..=s1 {
                    buf.dep(h.p[i], InOut);
                }
                buf.flops(bytes as f64 / 8.0)
                    .touch(whole(h.rbuf[dir]))
                    .submit(sub);
            }
        }

        // SpMV: row block i reads the neighbouring p blocks.
        for (i, &(a, b)) in h.blocks.iter().enumerate() {
            let (p0, p1) = h.spmv_reads(a, b, nx);
            buf.begin("SpMV");
            for j in p0..=p1 {
                buf.dep(h.p[j], In).touch(whole(h.p[j]));
            }
            buf.dep(h.ap[i], Out)
                .touch(whole(h.ap[i]))
                .touch(HandleSlice {
                    handle: h.matrix,
                    offset: a as u64 * 324,
                    len: (b - a) as u64 * 324,
                })
                .flops((b - a) as f64 * F_SPMV);
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_spmv(a..b));
            }
            buf.submit(sub);
        }

        // Partial p·Ap into the scratch vector (concurrent writes).
        for (i, &(a, b)) in h.blocks.iter().enumerate() {
            buf.begin("DotPAp")
                .dep(h.p[i], In)
                .dep(h.ap[i], In)
                .dep(h.pap_scratch, InOutSet)
                .flops((b - a) as f64 * F_DOT)
                .touch(whole(h.p[i]))
                .touch(whole(h.ap[i]))
                .touch(HandleSlice {
                    handle: h.pap_scratch,
                    offset: i as u64 * 8,
                    len: 8,
                });
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_dot_pap(a..b, i));
            }
            buf.submit(sub);
        }

        // Reduce + alpha (carries the collective).
        {
            buf.begin("ReduceAlpha")
                .dep(h.pap_scratch, In)
                .dep(h.alpha, AccessMode::InOut)
                .flops(h.blocks.len() as f64)
                .touch(whole(h.pap_scratch))
                .touch(whole(h.alpha));
            if multi {
                buf.comm(CommOp::Iallreduce { bytes: 8 });
            }
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_alpha());
            }
            buf.submit(sub);
        }

        // x += alpha p ; r -= alpha ap.
        for (i, &(a, b)) in h.blocks.iter().enumerate() {
            buf.begin("AxpyX")
                .dep(h.alpha, In)
                .dep(h.p[i], In)
                .dep(h.x[i], AccessMode::InOut)
                .flops((b - a) as f64 * F_AXPY)
                .touch(whole(h.p[i]))
                .touch(whole(h.x[i]));
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_axpy_x(a..b));
            }
            buf.submit(sub);
        }
        for (i, &(a, b)) in h.blocks.iter().enumerate() {
            buf.begin("AxpyR")
                .dep(h.alpha, In)
                .dep(h.ap[i], In)
                .dep(h.r[i], AccessMode::InOut)
                .flops((b - a) as f64 * F_AXPY)
                .touch(whole(h.ap[i]))
                .touch(whole(h.r[i]));
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_axpy_r(a..b));
            }
            buf.submit(sub);
        }

        // Partial r·r.
        for (i, &(a, b)) in h.blocks.iter().enumerate() {
            buf.begin("DotRR")
                .dep(h.r[i], In)
                .dep(h.rr_scratch, InOutSet)
                .flops((b - a) as f64 * F_DOT)
                .touch(whole(h.r[i]))
                .touch(HandleSlice {
                    handle: h.rr_scratch,
                    offset: i as u64 * 8,
                    len: 8,
                });
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_dot_rr(a..b, i));
            }
            buf.submit(sub);
        }

        // Reduce + beta (second collective; also reads/writes rr via alpha
        // handle's region ordering: beta depends on alpha to serialize the
        // scalar updates).
        {
            buf.begin("ReduceBeta")
                .dep(h.rr_scratch, In)
                .dep(h.alpha, In)
                .dep(h.beta, AccessMode::InOut)
                .flops(h.blocks.len() as f64)
                .touch(whole(h.rr_scratch))
                .touch(whole(h.beta));
            if multi {
                buf.comm(CommOp::Iallreduce { bytes: 8 });
            }
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_beta());
            }
            buf.submit(sub);
        }

        // p = r + beta p.
        for (i, &(a, b)) in h.blocks.iter().enumerate() {
            buf.begin("UpdateP")
                .dep(h.beta, In)
                .dep(h.r[i], In)
                .dep(h.p[i], AccessMode::InOut)
                .flops((b - a) as f64 * F_AXPY)
                .touch(whole(h.r[i]))
                .touch(whole(h.p[i]));
            if want {
                let st = self.state.clone().unwrap();
                buf.body(move |_| st.k_update_p(a..b));
            }
            buf.submit(sub);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdg_core::builder::{CountingSubmitter, RecordingSubmitter};

    #[test]
    fn task_count_per_iteration() {
        let cfg = HpcgConfig::single(8, 1, 16);
        let prog = HpcgTask::new(cfg);
        let mut c = CountingSubmitter::default();
        prog.build_iteration(0, 0, &mut c);
        // 6 sliced loops × 16 + 2 reduces
        assert_eq!(c.tasks, 6 * 16 + 2);
    }

    #[test]
    fn multi_rank_adds_halo_and_collectives() {
        let cfg = HpcgConfig {
            px: 2,
            ..HpcgConfig::single(8, 1, 8)
        };
        let prog = HpcgTask::new(cfg);
        let mut c = RecordingSubmitter::default();
        prog.build_iteration(0, 0, &mut c);
        // rank 0 of a 2³ grid has 3 face neighbors × 4 tasks
        let halo = c
            .specs
            .iter()
            .filter(|s| s.name.contains("Halo") || s.name.starts_with("MPI_"))
            .count();
        assert_eq!(halo, 12);
        let colls = c
            .specs
            .iter()
            .filter(|s| matches!(s.comm, Some(CommOp::Iallreduce { .. })))
            .count();
        assert_eq!(colls, 2);
    }

    #[test]
    fn halo_tags_pair_up() {
        let cfg = HpcgConfig {
            px: 2,
            ..HpcgConfig::single(4, 1, 4)
        };
        let prog = HpcgTask::new(cfg.clone());
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for r in 0..cfg.n_ranks() {
            let mut c = RecordingSubmitter::default();
            prog.build_iteration(r, 0, &mut c);
            for s in &c.specs {
                match s.comm {
                    Some(CommOp::Isend { peer, bytes, tag }) => sends.push((r, peer, tag, bytes)),
                    Some(CommOp::Irecv { peer, bytes, tag }) => recvs.push((peer, r, tag, bytes)),
                    _ => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs);
        assert_eq!(sends.len(), 8 * 3);
    }
}
