//! The reference `parallel for` HPCG (barriers + blocking MPI).

use crate::config::*;
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::workdesc::HandleSlice;
use ptdg_simrt::{BspPhase, BspProgram, Rank};

/// Fork-join HPCG with whole-array handles.
pub struct HpcgBsp {
    /// Run configuration.
    pub cfg: HpcgConfig,
    /// The handle space for the simulator.
    pub space: HandleSpace,
    x: DataHandle,
    r: DataHandle,
    p: DataHandle,
    ap: DataHandle,
    matrix: DataHandle,
}

impl HpcgBsp {
    /// Register the whole-array regions.
    pub fn new(cfg: HpcgConfig) -> HpcgBsp {
        let n = (cfg.n_rows() * 8) as u64;
        let mut space = HandleSpace::new();
        let x = space.region("x", n);
        let r = space.region("r", n);
        let p = space.region("p", n);
        let ap = space.region("ap", n);
        let matrix = space.region("matrix", (cfg.n_rows() * 324) as u64);
        HpcgBsp {
            cfg,
            space,
            x,
            r,
            p,
            ap,
            matrix,
        }
    }

    fn whole(&self, h: DataHandle) -> HandleSlice {
        HandleSlice::whole(h, self.space.info(h).bytes)
    }

    #[cfg(test)]
    fn face_count(&self, rank: Rank) -> usize {
        let p = self.cfg.px;
        let r = rank as usize;
        let (x, y, z) = (r % p, (r / p) % p, r / (p * p));
        [x > 0, x + 1 < p, y > 0, y + 1 < p, z > 0, z + 1 < p]
            .iter()
            .filter(|&&b| b)
            .count()
    }
}

impl BspProgram for HpcgBsp {
    fn n_iterations(&self) -> u64 {
        self.cfg.iterations
    }

    fn phases(&self, rank: Rank, _iter: u64) -> Vec<BspPhase> {
        let n = self.cfg.n_rows() as f64;
        let mut v = Vec::new();
        // Blocking halo exchange of p before the SpMV.
        if self.cfg.n_ranks() > 1 {
            let p = self.cfg.px;
            let r = rank as usize;
            let (x, y, z) = (r % p, (r / p) % p, r / (p * p));
            let idx = |x: usize, y: usize, z: usize| ((z * p + y) * p + x) as Rank;
            let bytes = (self.cfg.nx * self.cfg.nx * 8) as u64;
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            let mut add = |dir: usize, peer: Rank| {
                sends.push((peer, bytes, dir as u32));
                recvs.push((peer, bytes, (dir ^ 1) as u32));
            };
            if x > 0 {
                add(0, idx(x - 1, y, z));
            }
            if x + 1 < p {
                add(1, idx(x + 1, y, z));
            }
            if y > 0 {
                add(2, idx(x, y - 1, z));
            }
            if y + 1 < p {
                add(3, idx(x, y + 1, z));
            }
            if z > 0 {
                add(4, idx(x, y, z - 1));
            }
            if z + 1 < p {
                add(5, idx(x, y, z + 1));
            }
            v.push(BspPhase::Exchange { sends, recvs });
        }
        v.push(BspPhase::Loop {
            name: "SpMV",
            flops: n * F_SPMV,
            footprint: vec![
                self.whole(self.p),
                self.whole(self.ap),
                self.whole(self.matrix),
            ],
        });
        v.push(BspPhase::Loop {
            name: "DotPAp",
            flops: n * F_DOT,
            footprint: vec![self.whole(self.p), self.whole(self.ap)],
        });
        if self.cfg.n_ranks() > 1 {
            v.push(BspPhase::Allreduce { bytes: 8 });
        }
        v.push(BspPhase::Loop {
            name: "AxpyX",
            flops: n * F_AXPY,
            footprint: vec![self.whole(self.p), self.whole(self.x)],
        });
        v.push(BspPhase::Loop {
            name: "AxpyR",
            flops: n * F_AXPY,
            footprint: vec![self.whole(self.ap), self.whole(self.r)],
        });
        v.push(BspPhase::Loop {
            name: "DotRR",
            flops: n * F_DOT,
            footprint: vec![self.whole(self.r)],
        });
        if self.cfg.n_ranks() > 1 {
            v.push(BspPhase::Allreduce { bytes: 8 });
        }
        v.push(BspPhase::Loop {
            name: "UpdateP",
            flops: n * F_AXPY,
            footprint: vec![self.whole(self.r), self.whole(self.p)],
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_loops_only() {
        let b = HpcgBsp::new(HpcgConfig::single(8, 2, 8));
        let phases = b.phases(0, 0);
        assert_eq!(phases.len(), 6);
        assert!(phases.iter().all(|p| matches!(p, BspPhase::Loop { .. })));
    }

    #[test]
    fn multi_rank_has_exchange_and_two_allreduces() {
        let cfg = HpcgConfig {
            px: 2,
            ..HpcgConfig::single(8, 1, 8)
        };
        let b = HpcgBsp::new(cfg);
        let phases = b.phases(0, 0);
        assert!(matches!(phases[0], BspPhase::Exchange { .. }));
        let colls = phases
            .iter()
            .filter(|p| matches!(p, BspPhase::Allreduce { .. }))
            .count();
        assert_eq!(colls, 2);
        assert_eq!(b.face_count(0), 3);
    }
}
