//! A LULESH-style command line for the proxy app, mirroring the original
//! flags (`-s`, `-i`) plus the task-version knobs of the paper's port
//! (`-tel` tasks-per-loop, `--parallel-for`, `--persistent`).
//!
//! ```sh
//! cargo run --release -p ptdg-lulesh --bin lulesh -- -s 12 -i 20 -tel 32
//! ```

use ptdg_core::exec::{run_program, ExecConfig, Executor, SchedPolicy, ThreadsConfig};
use ptdg_core::obs::{chrome_trace, critical_path};
use ptdg_core::opts::OptConfig;
use ptdg_core::throttle::ThrottleConfig;
use ptdg_lulesh::sequential::run_sequential;
use ptdg_lulesh::{LuleshConfig, LuleshTask, RankGrid};
use ptdg_simrt::RankProgram;
use std::path::PathBuf;

struct Args {
    s: usize,
    i: u64,
    tel: usize,
    workers: usize,
    ranks: usize,
    parallel_for: bool,
    persistent: bool,
    trace: Option<PathBuf>,
}

fn parse() -> Result<Args, String> {
    let mut args = Args {
        s: 10,
        i: 10,
        tel: 24,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ranks: 1,
        parallel_for: false,
        persistent: true,
        trace: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut k = 0;
    let next = |k: &mut usize| -> Result<usize, String> {
        *k += 1;
        argv.get(*k)
            .ok_or_else(|| format!("missing value after {}", argv[*k - 1]))?
            .parse::<usize>()
            .map_err(|e| format!("bad number after {}: {e}", argv[*k - 1]))
    };
    while k < argv.len() {
        match argv[k].as_str() {
            "-s" => args.s = next(&mut k)?,
            "-i" => args.i = next(&mut k)? as u64,
            "-tel" => args.tel = next(&mut k)?,
            "-t" | "--workers" => args.workers = next(&mut k)?,
            "--ranks" => args.ranks = next(&mut k)?,
            "--parallel-for" => args.parallel_for = true,
            "--no-persistent" => args.persistent = false,
            "--trace" => {
                k += 1;
                args.trace = Some(PathBuf::from(
                    argv.get(k).ok_or("missing path after --trace")?,
                ));
            }
            "-h" | "--help" => {
                return Err("usage: lulesh [-s edge] [-i iters] [-tel tasks-per-loop] \
                     [-t workers-per-rank] [--ranks P³] [--parallel-for] [--no-persistent] \
                     [--trace out.json]"
                    .into())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        k += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let t0 = std::time::Instant::now();
    if args.parallel_for {
        // the fork-join reference: plain sequential loops here stand in
        // for the statically-chunked version (identical numerics)
        let st = run_sequential(args.s, args.i, args.tel);
        println!(
            "parallel-for LULESH -s {} -i {}: energy {:.6}, dt {:.3e}, {:.3}s",
            args.s,
            args.i,
            st.total_energy(),
            *st.dt.get(0),
            t0.elapsed().as_secs_f64()
        );
        return;
    }
    if args.ranks > 1 {
        // Cost-model mode: every rank's task stream runs concurrently on
        // its own worker pool, halo exchanges go through the in-process
        // network with detached completion. No numeric state — task
        // bodies carry work descriptors only, like the simulator's.
        let px = (args.ranks as f64).cbrt().round() as usize;
        if px * px * px != args.ranks {
            eprintln!("--ranks {} is not a perfect cube", args.ranks);
            std::process::exit(2);
        }
        let cfg = LuleshConfig {
            grid: RankGrid::cube(args.ranks),
            ..LuleshConfig::single(args.s, args.i, args.tel)
        };
        let prog = LuleshTask::new(cfg);
        let report = run_program(
            &prog,
            &ThreadsConfig {
                exec: ExecConfig {
                    n_workers: args.workers,
                    policy: SchedPolicy::DepthFirst,
                    throttle: ThrottleConfig::mpc_default(),
                    profile: args.trace.is_some(),
                    record_events: false,
                },
                opts: OptConfig::all(),
                persistent: args.persistent,
                ..Default::default()
            },
        );
        println!(
            "task LULESH -s {} -i {} -tel {} on {} ranks x {} workers (cost model): \
             {} tasks, {} comms posted / {} completed, {:.3}s",
            args.s,
            args.i,
            args.tel,
            report.n_ranks,
            args.workers,
            report.counters.tasks_completed,
            report.counters.comms_posted,
            report.counters.comms_completed,
            t0.elapsed().as_secs_f64()
        );
        for (r, c) in report.per_rank_counters.iter().enumerate() {
            println!(
                "  rank {r}: {} tasks, {} posted / {} completed, {} unexpected",
                c.tasks_completed, c.comms_posted, c.comms_completed, c.unexpected_msgs
            );
        }
        if let (Some(path), Some(trace)) = (&args.trace, &report.trace) {
            let doc = chrome_trace(trace, &report.events, &report.counters);
            if let Err(e) = std::fs::write(path, doc.render() + "\n") {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!(
                "chrome trace of rank 0 written to {} (load at https://ui.perfetto.dev)",
                path.display()
            );
        }
        if let Some(err) = &report.comm_error {
            eprintln!("{err}");
            std::process::exit(1);
        }
        return;
    }
    let cfg = LuleshConfig::single(args.s, args.i, args.tel);
    let prog = LuleshTask::with_state(cfg.clone());
    let exec = Executor::new(ExecConfig {
        n_workers: args.workers,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::mpc_default(),
        profile: args.trace.is_some(),
        record_events: false,
    });
    let (graph, stats) = if args.persistent {
        let mut region = exec.persistent_region(OptConfig::all());
        for iter in 0..cfg.iterations {
            region.run(iter, |sub| prog.build_iteration(0, iter, sub));
        }
        let t = region.template().unwrap();
        println!(
            "persistent TDG: {} tasks, {} edges per iteration",
            t.n_tasks(),
            t.n_edges()
        );
        (Some((**t).clone()), region.first_iteration_stats())
    } else if args.trace.is_some() {
        // capture the full streamed graph so the critical-path report can
        // walk it
        let mut session = exec.session_capturing(OptConfig::all());
        for iter in 0..cfg.iterations {
            prog.build_iteration(0, iter, &mut session);
        }
        let (g, stats) = session.finish_capture();
        println!("streaming discovery: {stats:?}");
        (Some(g), stats)
    } else {
        let mut session = exec.session(OptConfig::all());
        for iter in 0..cfg.iterations {
            prog.build_iteration(0, iter, &mut session);
        }
        session.wait_all();
        println!("streaming discovery: {:?}", session.stats());
        (None, session.stats())
    };
    if let Some(path) = &args.trace {
        let mut obs = exec.take_obs();
        // the tracker already counted created tasks; only fold the
        // discovery-side counters in
        let created = obs.counters.tasks_created;
        obs.counters.absorb_discovery(&stats);
        obs.counters.tasks_created = created;
        let doc = chrome_trace(&obs.trace, &obs.events, &obs.counters);
        if let Err(e) = std::fs::write(path, doc.render() + "\n") {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "chrome trace written to {} (load at https://ui.perfetto.dev)",
            path.display()
        );
        if let Some(g) = &graph {
            println!(
                "{}",
                critical_path(g, &obs.events, obs.trace.span_ns, args.workers).render(5)
            );
        }
    }
    let st = prog.state.as_ref().unwrap();
    let reference = run_sequential(args.s, args.i, args.tel.min(args.s.pow(3)));
    println!(
        "task LULESH -s {} -i {} -tel {} on {} workers: energy {:.6}, dt {:.3e}, {:.3}s ({})",
        args.s,
        args.i,
        args.tel,
        args.workers,
        st.total_energy(),
        *st.dt.get(0),
        t0.elapsed().as_secs_f64(),
        if st.digest() == reference.digest() {
            "verified vs sequential"
        } else {
            "MISMATCH vs sequential"
        }
    );
}
