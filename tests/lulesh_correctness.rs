//! End-to-end LULESH correctness: the task versions executed on the real
//! work-stealing executor must reproduce the sequential reference
//! *bitwise*, across schedulers, TPL values, optimization sets, and
//! persistent re-instancing.

use ptdg::core::exec::{ExecConfig, Executor, SchedPolicy};
use ptdg::core::opts::OptConfig;
use ptdg::core::throttle::ThrottleConfig;
use ptdg::lulesh::sequential::run_sequential;
use ptdg::lulesh::{LuleshConfig, LuleshTask};
use ptdg::simrt::RankProgram;

fn executor(workers: usize, policy: SchedPolicy) -> Executor {
    Executor::new(ExecConfig {
        n_workers: workers,
        policy,
        throttle: ThrottleConfig::unbounded(),
        profile: false,
        record_events: false,
    })
}

/// Run the task version on the thread executor, one session per
/// iteration-stream (streaming discovery, as in the paper's normal mode).
fn run_tasks(cfg: LuleshConfig, workers: usize, policy: SchedPolicy, opts: OptConfig) -> u64 {
    let prog = LuleshTask::with_state(cfg.clone());
    let exec = executor(workers, policy);
    let mut session = exec.session(opts);
    for iter in 0..cfg.iterations {
        prog.build_iteration(0, iter, &mut session);
    }
    session.wait_all();
    prog.state.as_ref().unwrap().digest()
}

/// Same but through a persistent region (optimization (p)).
fn run_tasks_persistent(cfg: LuleshConfig, workers: usize, opts: OptConfig) -> u64 {
    let prog = LuleshTask::with_state(cfg.clone());
    let exec = executor(workers, SchedPolicy::DepthFirst);
    let mut region = exec.persistent_region(opts);
    for iter in 0..cfg.iterations {
        region.run(iter, |sub| prog.build_iteration(0, iter, sub));
    }
    prog.state.as_ref().unwrap().digest()
}

const S: usize = 6;
const ITERS: u64 = 8;
const TPL: usize = 12;

fn reference_digest() -> u64 {
    run_sequential(S, ITERS, TPL).digest()
}

#[test]
fn task_version_matches_sequential_bitwise() {
    let cfg = LuleshConfig::single(S, ITERS, TPL);
    let got = run_tasks(cfg, 3, SchedPolicy::DepthFirst, OptConfig::all());
    assert_eq!(got, reference_digest());
}

#[test]
fn breadth_first_scheduling_does_not_change_physics() {
    let cfg = LuleshConfig::single(S, ITERS, TPL);
    let got = run_tasks(cfg, 3, SchedPolicy::BreadthFirst, OptConfig::all());
    assert_eq!(got, reference_digest());
}

#[test]
fn optimizations_do_not_change_physics() {
    let cfg = LuleshConfig::single(S, ITERS, TPL);
    for opts in [
        OptConfig::none(),
        OptConfig::dedup_only(),
        OptConfig::redirect_only(),
        OptConfig::all(),
    ] {
        let got = run_tasks(cfg.clone(), 2, SchedPolicy::DepthFirst, opts);
        assert_eq!(got, reference_digest(), "opts {opts:?} diverged");
    }
}

#[test]
fn unfused_dependencies_match_too() {
    let cfg = LuleshConfig {
        fused_deps: false,
        ..LuleshConfig::single(S, ITERS, TPL)
    };
    let got = run_tasks(cfg, 3, SchedPolicy::DepthFirst, OptConfig::none());
    assert_eq!(got, reference_digest());
}

#[test]
fn persistent_region_matches_sequential_bitwise() {
    let cfg = LuleshConfig::single(S, ITERS, TPL);
    let got = run_tasks_persistent(cfg, 3, OptConfig::all());
    assert_eq!(got, reference_digest());
}

#[test]
fn worker_count_does_not_change_physics() {
    let cfg = LuleshConfig::single(S, ITERS, TPL);
    for workers in [1, 2, 4] {
        let got = run_tasks(
            cfg.clone(),
            workers,
            SchedPolicy::DepthFirst,
            OptConfig::all(),
        );
        assert_eq!(got, reference_digest(), "{workers} workers diverged");
    }
}

#[test]
fn tpl_does_not_change_physics() {
    // Different TPL slices the dt reduction differently but the global min
    // is invariant; energies must agree to roundoff-free equality because
    // all kernels are elementwise.
    let a = run_tasks(
        LuleshConfig::single(S, ITERS, 4),
        2,
        SchedPolicy::DepthFirst,
        OptConfig::all(),
    );
    let b = run_sequential(S, ITERS, 4).digest();
    assert_eq!(a, b);
}

#[test]
fn throttled_execution_matches() {
    let cfg = LuleshConfig::single(S, ITERS, TPL);
    let prog = LuleshTask::with_state(cfg.clone());
    let exec = Executor::new(ExecConfig {
        n_workers: 2,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::ready_bound(4),
        profile: false,
        record_events: false,
    });
    let mut session = exec.session(OptConfig::all());
    for iter in 0..cfg.iterations {
        prog.build_iteration(0, iter, &mut session);
    }
    session.wait_all();
    assert_eq!(prog.state.as_ref().unwrap().digest(), reference_digest());
}

#[test]
fn non_overlapped_session_matches() {
    let cfg = LuleshConfig::single(S, 4, TPL);
    let prog = LuleshTask::with_state(cfg.clone());
    let exec = executor(2, SchedPolicy::DepthFirst);
    // Non-overlapped sessions gate *all* tasks until wait_all, so the
    // cross-iteration dt dependency requires one session per iteration.
    for iter in 0..cfg.iterations {
        let mut session = exec.session_non_overlapped(OptConfig::all());
        prog.build_iteration(0, iter, &mut session);
        session.wait_all();
    }
    assert_eq!(
        prog.state.as_ref().unwrap().digest(),
        run_sequential(S, 4, TPL).digest()
    );
}

#[test]
fn energy_is_conserved_to_tolerance() {
    // The simplified hydro is not exactly conservative (q dissipates), but
    // total energy must stay bounded near the deposit over a long run.
    let st = run_sequential(8, 50, 16);
    let e = st.total_energy();
    assert!(e.is_finite());
    assert!(e > 0.1 && e < 30.0, "energy drifted wildly: {e}");
}
