//! Calibrated cost constants of the virtual runtime.
//!
//! These constants were calibrated once against the paper's published
//! measurements and are then **held fixed for every experiment** — the
//! harnesses never retune them per figure. Calibration anchors (paper
//! Table 2, LULESH `-s 384 -i 16`, TPL = 1,872, 2.9 M tasks):
//!
//! * no optimizations: 94.0 M edges discovered in 83.4 s  →  ≈ 0.8 µs/edge;
//! * (a)+(b)+(c): 36.8 M edges in 32.1 s  →  per-task+per-probe share;
//! * (p) re-instance: 15 iterations × ~181 k tasks in 1.26 s  →  ≈ 0.45
//!   µs/task re-instanced (a constant plus ~2 ns per firstprivate byte);
//! * scheduling: MPC-OMP per-task management cost of a few µs.

use ptdg_simcore::SimTime;

/// Costs paid by the producer thread during TDG discovery.
#[derive(Clone, Debug)]
pub struct DiscoveryCosts {
    /// Allocating and initializing one task descriptor (ICVs, refcounts).
    pub per_task: SimTime,
    /// Processing one `depend` item (hash lookup of the handle state).
    pub per_depend: SimTime,
    /// Materializing one edge.
    pub per_edge: SimTime,
    /// Processing an edge that ends up pruned (cheaper: no allocation).
    pub per_pruned_edge: SimTime,
    /// One optimization-(b) duplicate probe.
    pub per_dup_probe: SimTime,
    /// Materializing one optimization-(c) redirect node.
    pub per_redirect: SimTime,
    /// Per-task constant of a persistent re-instance (counter reset,
    /// ready-queue push for roots).
    pub per_reinstance_task: SimTime,
    /// Per-byte cost of the persistent firstprivate memcpy.
    pub per_fp_byte: SimTime,
}

impl Default for DiscoveryCosts {
    fn default() -> Self {
        DiscoveryCosts {
            per_task: SimTime::from_ns(2_000),
            per_depend: SimTime::from_ns(100),
            per_edge: SimTime::from_ns(800),
            per_pruned_edge: SimTime::from_ns(400),
            per_dup_probe: SimTime::from_ns(50),
            per_redirect: SimTime::from_ns(1_000),
            per_reinstance_task: SimTime::from_ns(340),
            per_fp_byte: SimTime::from_ns(2),
        }
    }
}

/// Costs paid by worker cores around task bodies.
#[derive(Clone, Debug)]
pub struct SchedCosts {
    /// Acquiring a task from the local deque.
    pub per_schedule: SimTime,
    /// Extra cost when the task had to be stolen.
    pub steal_penalty: SimTime,
    /// Releasing successors / completion bookkeeping, per successor.
    pub per_release: SimTime,
    /// Cost of an idle core's wakeup.
    pub wakeup: SimTime,
}

impl Default for SchedCosts {
    fn default() -> Self {
        SchedCosts {
            per_schedule: SimTime::from_ns(1_500),
            steal_penalty: SimTime::from_ns(600),
            per_release: SimTime::from_ns(120),
            wakeup: SimTime::from_ns(500),
        }
    }
}

/// Costs of the `parallel for` (fork-join) reference mode.
#[derive(Clone, Debug)]
pub struct ForkJoinCosts {
    /// Forking one parallel loop (team wakeup).
    pub per_loop_fork: SimTime,
    /// The implicit barrier at loop end.
    pub per_loop_barrier: SimTime,
}

impl Default for ForkJoinCosts {
    fn default() -> Self {
        ForkJoinCosts {
            per_loop_fork: SimTime::from_us(3),
            per_loop_barrier: SimTime::from_us(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_anchor_no_opts() {
        // 94 M edges + 2.9 M tasks + 11 M depend items ≈ 81–84 s.
        let c = DiscoveryCosts::default();
        let edges = 94.0e6 * c.per_edge.as_secs_f64();
        let tasks = 2.9e6 * c.per_task.as_secs_f64();
        let total = edges + tasks;
        assert!(
            (70.0..95.0).contains(&total),
            "no-opt discovery anchor off: {total}"
        );
    }

    #[test]
    fn table2_anchor_reinstance() {
        // ~181 k tasks of ~50 B firstprivate per iteration ≈ 0.08 s.
        let c = DiscoveryCosts::default();
        let per_iter =
            181_000.0 * (c.per_reinstance_task.as_secs_f64() + 50.0 * c.per_fp_byte.as_secs_f64());
        assert!(
            (0.05..0.12).contains(&per_iter),
            "re-instance anchor off: {per_iter}"
        );
    }

    #[test]
    fn pruned_edges_cost_less_than_created() {
        let c = DiscoveryCosts::default();
        assert!(c.per_pruned_edge < c.per_edge);
    }
}
