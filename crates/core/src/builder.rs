//! Back-end-agnostic task submission.
//!
//! Applications describe one iteration of their computation as a stream of
//! task submissions pushed into a [`TaskSubmitter`]. The same description
//! runs on the real thread executor (`crate::exec`), on the virtual-time
//! executor (`ptdg-simrt`), or into a [`crate::graph::TemplateRecorder`] —
//! the analogue of the same OpenMP pragmas executing on different runtimes.
//!
//! The native submission currency is a borrowed [`SpecView`]; owned
//! [`TaskSpec`]s are a convenience wrapper over it. Hot loops build each
//! task into a recycled [`SpecBuf`] so a whole iteration's submissions
//! reuse two small buffers instead of allocating a fresh depend list and
//! footprint per task (DESIGN.md §4.4).

use crate::access::{AccessMode, Depend};
use crate::handle::DataHandle;
use crate::task::{SpecView, TaskBody, TaskCtx, TaskId, TaskSpec};
use crate::workdesc::{CommOp, HandleSlice};
use std::sync::Arc;

/// Receives the producer thread's sequential task stream.
pub trait TaskSubmitter {
    /// Submit one task from a borrowed view — the allocation-free path.
    /// Sinks that must retain the data clone what they need (e.g. via
    /// [`TaskSpec::from_view`]).
    fn submit_view(&mut self, view: &SpecView<'_>) -> TaskId;

    /// Submit one owned task (convenience wrapper).
    fn submit(&mut self, spec: TaskSpec) -> TaskId {
        self.submit_view(&spec.view())
    }

    /// Whether closures are needed — cost-model-only back-ends return
    /// `false` so applications can skip building bodies.
    fn wants_bodies(&self) -> bool {
        true
    }
}

/// An application kernel that can generate its task graph iteration by
/// iteration (the body of the paper's annotated `ptsg` loop).
///
/// Implementations must generate tasks **in the same order and with the
/// same dependency scheme on every iteration** — the precondition of the
/// persistent-graph optimization (paper Fig. 5). Bodies must read the
/// iteration number from [`crate::task::TaskCtx::iter`], never capture it.
pub trait IterationBuilder {
    /// Generate all tasks of iteration `iter`.
    fn build_iteration(&self, sub: &mut dyn TaskSubmitter, iter: u64);

    /// Number of iterations this program wants to run.
    fn iterations(&self) -> u64;
}

/// A recycled task-construction buffer: the allocation-free counterpart
/// of building a fresh [`TaskSpec`] per task.
///
/// One `SpecBuf` lives across a whole submission loop; each task does
/// [`SpecBuf::begin`] (clears the depend list and footprint, keeping
/// their capacity), chains builder calls, then [`SpecBuf::submit`]s the
/// borrowed [`SpecView`]. After the first few tasks warm the two buffers
/// up to the stream's widest depend list, no submission allocates.
///
/// ```
/// use ptdg_core::builder::{CountingSubmitter, SpecBuf};
/// use ptdg_core::{AccessMode, HandleSpace};
///
/// let mut space = HandleSpace::new();
/// let x = space.region("x", 4096);
/// let mut sub = CountingSubmitter::default();
/// let mut buf = SpecBuf::new();
/// for _ in 0..3 {
///     buf.begin("stencil")
///         .dep(x, AccessMode::InOut)
///         .flops(1e6)
///         .submit(&mut sub);
/// }
/// assert_eq!(sub.tasks, 3);
/// ```
#[derive(Default)]
pub struct SpecBuf {
    name: &'static str,
    depends: Vec<Depend>,
    flops: f64,
    footprint: Vec<HandleSlice>,
    comm: Option<CommOp>,
    body: Option<TaskBody>,
    fp_bytes: u32,
}

impl SpecBuf {
    /// An empty buffer; the first few tasks size its storage.
    pub fn new() -> Self {
        SpecBuf {
            name: "",
            fp_bytes: 16,
            ..SpecBuf::default()
        }
    }

    /// Pre-size for tasks with up to `deps` depend items.
    pub fn with_capacity(deps: usize) -> Self {
        let mut buf = SpecBuf::new();
        buf.depends.reserve(deps);
        buf
    }

    /// Start describing a new task: resets every field, keeping the
    /// depend-list and footprint capacity.
    pub fn begin(&mut self, name: &'static str) -> &mut Self {
        self.name = name;
        self.depends.clear();
        self.flops = 0.0;
        self.footprint.clear();
        self.comm = None;
        self.body = None;
        self.fp_bytes = 16;
        self
    }

    /// Add one depend item.
    pub fn dep(&mut self, handle: DataHandle, mode: AccessMode) -> &mut Self {
        self.depends.push(Depend::new(handle, mode));
        self
    }

    /// Add many depend items.
    pub fn deps(&mut self, items: impl IntoIterator<Item = Depend>) -> &mut Self {
        self.depends.extend(items);
        self
    }

    /// Copy a pre-built depend slice (e.g. a per-phase constant list).
    pub fn deps_slice(&mut self, items: &[Depend]) -> &mut Self {
        self.depends.extend_from_slice(items);
        self
    }

    /// Set the cost-model flop count.
    pub fn flops(&mut self, flops: f64) -> &mut Self {
        self.flops = flops;
        self
    }

    /// Add one cost-model footprint slice.
    pub fn touch(&mut self, slice: HandleSlice) -> &mut Self {
        self.footprint.push(slice);
        self
    }

    /// Attach a communication operation (detached-task semantics).
    pub fn comm(&mut self, op: CommOp) -> &mut Self {
        self.comm = Some(op);
        self
    }

    /// Attach a computational body (allocates the closure's `Arc`; pass a
    /// pre-built body via [`SpecBuf::body_arc`] to avoid it).
    pub fn body<F: Fn(&TaskCtx) + Send + Sync + 'static>(&mut self, f: F) -> &mut Self {
        self.body = Some(Arc::new(f));
        self
    }

    /// Attach an already-built body (refcount bump only).
    pub fn body_arc(&mut self, body: TaskBody) -> &mut Self {
        self.body = Some(body);
        self
    }

    /// Set the firstprivate payload size.
    pub fn fp_bytes(&mut self, bytes: u32) -> &mut Self {
        self.fp_bytes = bytes;
        self
    }

    /// Borrow the task described since [`SpecBuf::begin`].
    pub fn view(&self) -> SpecView<'_> {
        SpecView {
            name: self.name,
            depends: &self.depends,
            flops: self.flops,
            footprint: &self.footprint,
            comm: self.comm,
            body: self.body.as_ref(),
            fp_bytes: self.fp_bytes,
        }
    }

    /// Submit the described task.
    pub fn submit(&mut self, sub: &mut dyn TaskSubmitter) -> TaskId {
        sub.submit_view(&self.view())
    }
}

/// A submitter that simply counts tasks — useful for sizing and tests.
#[derive(Debug, Default)]
pub struct CountingSubmitter {
    /// Tasks seen.
    pub tasks: u64,
    /// Depend items seen.
    pub depend_items: u64,
}

impl TaskSubmitter for CountingSubmitter {
    fn submit_view(&mut self, view: &SpecView<'_>) -> TaskId {
        let id = TaskId(self.tasks as u32);
        self.tasks += 1;
        self.depend_items += view.depends.len() as u64;
        id
    }

    fn wants_bodies(&self) -> bool {
        false
    }
}

/// A submitter that records full specs (testing aid).
#[derive(Default)]
pub struct RecordingSubmitter {
    /// Every submitted spec, in order.
    pub specs: Vec<TaskSpec>,
}

impl TaskSubmitter for RecordingSubmitter {
    fn submit_view(&mut self, view: &SpecView<'_>) -> TaskId {
        let id = TaskId(self.specs.len() as u32);
        self.specs.push(TaskSpec::from_view(view));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessMode;
    use crate::handle::HandleSpace;

    #[test]
    fn counting_submitter_counts() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 8);
        let mut c = CountingSubmitter::default();
        let id0 = c.submit(TaskSpec::new("a").depend(x, AccessMode::Out));
        let id1 = c.submit(TaskSpec::new("b").depend(x, AccessMode::In));
        assert_eq!(id0, TaskId(0));
        assert_eq!(id1, TaskId(1));
        assert_eq!(c.tasks, 2);
        assert_eq!(c.depend_items, 2);
        assert!(!c.wants_bodies());
    }

    #[test]
    fn recording_submitter_preserves_order_and_bodies() {
        let mut r = RecordingSubmitter::default();
        assert!(r.wants_bodies());
        r.submit(TaskSpec::new("first").body(|_| {}));
        r.submit(TaskSpec::new("second"));
        assert_eq!(r.specs.len(), 2);
        assert_eq!(r.specs[0].name, "first");
        assert!(r.specs[0].body.is_some());
        assert!(r.specs[1].body.is_none());
    }

    #[test]
    fn spec_buf_is_equivalent_to_task_spec() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 8);
        let y = s.region("y", 8);
        let mut r = RecordingSubmitter::default();
        let mut buf = SpecBuf::new();
        buf.begin("k")
            .dep(x, AccessMode::Out)
            .deps([Depend::read(y)])
            .flops(9.0)
            .touch(HandleSlice::whole(x, 8))
            .comm(CommOp::Iallreduce { bytes: 8 })
            .fp_bytes(40)
            .body(|_| {})
            .submit(&mut r);
        let via_spec = TaskSpec::new("k")
            .depend(x, AccessMode::Out)
            .depends([Depend::read(y)])
            .work(crate::workdesc::WorkDesc::compute(9.0).touching(HandleSlice::whole(x, 8)))
            .comm(CommOp::Iallreduce { bytes: 8 })
            .firstprivate_bytes(40);
        let got = &r.specs[0];
        assert_eq!(got.name, via_spec.name);
        assert_eq!(got.depends, via_spec.depends);
        assert_eq!(got.work.flops, via_spec.work.flops);
        assert_eq!(got.work.footprint.len(), 1);
        assert!(got.comm.is_some());
        assert!(got.body.is_some());
        assert_eq!(got.fp_bytes, 40);
    }

    #[test]
    fn spec_buf_recycles_capacity_between_tasks() {
        let mut s = HandleSpace::new();
        let x = s.region("x", 8);
        let mut c = CountingSubmitter::default();
        let mut buf = SpecBuf::new();
        buf.begin("warm");
        for _ in 0..16 {
            buf.dep(x, AccessMode::In);
        }
        buf.submit(&mut c);
        let cap = buf.depends.capacity();
        for _ in 0..10 {
            buf.begin("steady").dep(x, AccessMode::InOut).submit(&mut c);
            assert_eq!(buf.depends.capacity(), cap, "begin keeps capacity");
        }
        assert_eq!(c.tasks, 11);
    }
}
