//! Live/ready task accounting shared by both back-ends.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts of live (created, not completed) and ready (runnable, not
/// scheduled) tasks. Both back-ends drive their throttle and barrier
/// decisions off this one tracker, so the thresholds mean the same thing
/// in wall-clock and virtual time.
#[derive(Default)]
pub struct ReadyTracker {
    live: AtomicUsize,
    ready: AtomicUsize,
    created_total: AtomicUsize,
    live_hwm: AtomicUsize,
    ready_hwm: AtomicUsize,
}

impl ReadyTracker {
    pub fn new() -> Self {
        ReadyTracker::default()
    }

    /// `n` tasks were created (discovery or re-instancing).
    ///
    /// Relaxed: the increment is published to eventual completers through
    /// the ready-queue transfer of the tasks themselves, and counter
    /// atomicity alone guarantees `live` cannot read 0 while any created
    /// task has not completed — which is all `quiescent` relies on.
    pub fn created(&self, n: usize) {
        self.created_total.fetch_add(n, Ordering::Relaxed);
        let live = self.live.fetch_add(n, Ordering::Relaxed) + n;
        self.live_hwm.fetch_max(live, Ordering::Relaxed);
    }

    /// A task became ready. (Relaxed: `ready` only steers throttling
    /// heuristics and statistics, never a safety decision.)
    pub fn became_ready(&self) {
        let ready = self.ready.fetch_add(1, Ordering::Relaxed) + 1;
        self.ready_hwm.fetch_max(ready, Ordering::Relaxed);
    }

    /// A ready task was handed to a core.
    pub fn scheduled(&self) {
        self.ready.fetch_sub(1, Ordering::Relaxed);
    }

    /// A task finished; returns `true` if it was the last live task.
    ///
    /// AcqRel: the Release half publishes this task's side effects on the
    /// counter; because atomic RMWs extend release sequences, the thread
    /// that observes `live == 0` with an Acquire load synchronizes with
    /// *every* completing task, not just the final one — the guarantee
    /// `wait_all`/`taskwait` callers need before reading task outputs.
    /// The Acquire half orders successive completions among themselves.
    pub fn completed(&self) -> bool {
        self.live.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Current live count. (Acquire: pairs with the Release decrements in
    /// [`ReadyTracker::completed`]; see there.)
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// Current ready count.
    pub fn ready(&self) -> usize {
        self.ready.load(Ordering::Relaxed)
    }

    /// No live tasks remain. Observing this synchronizes with every
    /// completed task (see [`ReadyTracker::completed`]).
    pub fn quiescent(&self) -> bool {
        self.live() == 0
    }

    /// Tasks ever created through this tracker.
    pub fn created_total(&self) -> usize {
        self.created_total.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently live tasks.
    pub fn live_hwm(&self) -> usize {
        self.live_hwm.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently ready (queued) tasks.
    pub fn ready_hwm(&self) -> usize {
        self.ready_hwm.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counts() {
        let t = ReadyTracker::new();
        t.created(3);
        assert_eq!(t.live(), 3);
        t.became_ready();
        t.became_ready();
        assert_eq!(t.ready(), 2);
        t.scheduled();
        assert_eq!(t.ready(), 1);
        assert!(!t.completed());
        assert!(!t.completed());
        t.scheduled();
        assert!(t.completed());
        assert!(t.quiescent());
    }
}
