//! The persistent task dependency graph (optimization (p)), end to end:
//! how capture works, what a re-instance costs, and its effect on a
//! discovery-bound workload — the paper's §3.2 in one runnable file.
//!
//! ```sh
//! cargo run --release --example persistent_graph
//! ```

use ptdg::core::builder::TaskSubmitter;
use ptdg::core::handle::HandleSpace;
use ptdg::core::opts::OptConfig;
use ptdg::core::task::TaskSpec;
use ptdg::core::workdesc::{HandleSlice, WorkDesc};
use ptdg::lulesh::{LuleshConfig, LuleshTask};
use ptdg::simrt::{simulate_tasks, MachineConfig, Rank, RankProgram, SimConfig};

/// A deliberately discovery-heavy synthetic program: many tiny tasks with
/// several depend items each.
struct ManyTinyTasks {
    handles: Vec<ptdg::core::handle::DataHandle>,
    iters: u64,
}

impl RankProgram for ManyTinyTasks {
    fn n_iterations(&self) -> u64 {
        self.iters
    }
    fn build_iteration(&self, _rank: Rank, _iter: u64, sub: &mut dyn TaskSubmitter) {
        let n = self.handles.len();
        for i in 0..n {
            sub.submit(
                TaskSpec::new("tiny")
                    .depend(self.handles[i], ptdg::core::AccessMode::InOut)
                    .depend(self.handles[(i + 1) % n], ptdg::core::AccessMode::In)
                    .depend(self.handles[(i + 7) % n], ptdg::core::AccessMode::In)
                    .work(WorkDesc::compute(2e4).touching(HandleSlice::whole(self.handles[i], 512)))
                    .firstprivate_bytes(32),
            );
        }
    }
}

fn main() {
    let machine = MachineConfig::skylake_24();

    // --- synthetic: the raw mechanics ------------------------------------
    let mut space = HandleSpace::new();
    let handles = (0..2000).map(|_| space.region("cell", 512)).collect();
    let prog = ManyTinyTasks { handles, iters: 16 };

    let streaming = simulate_tasks(&machine, &SimConfig::default(), &space, &prog);
    let persistent = simulate_tasks(
        &machine,
        &SimConfig {
            persistent: true,
            ..Default::default()
        },
        &space,
        &prog,
    );
    let s = streaming.rank(0);
    let p = persistent.rank(0);
    println!("synthetic discovery-bound program (2000 tiny tasks × 16 iterations):");
    println!(
        "  streaming : discovery {:>7.2} ms, total {:>7.2} ms, idle/core {:>6.2} ms",
        s.discovery_ns as f64 / 1e6,
        s.span_ns as f64 / 1e6,
        s.avg_idle_s() * 1e3,
    );
    println!(
        "  persistent: discovery {:>7.2} ms, total {:>7.2} ms, idle/core {:>6.2} ms",
        p.discovery_ns as f64 / 1e6,
        p.span_ns as f64 / 1e6,
        p.avg_idle_s() * 1e3,
    );
    println!(
        "  discovery speedup: {:.1}x (first iteration {:.2} ms, later ones {:.3} ms each)",
        s.discovery_ns as f64 / p.discovery_ns as f64,
        p.discovery_first_iter_ns as f64 / 1e6,
        (p.discovery_ns - p.discovery_first_iter_ns) as f64 / 1e6 / 15.0,
    );

    // --- LULESH: the paper's Table 2 bottom rows --------------------------
    // (a scale where the producer stays ahead of the workers, so edges
    // are materialized rather than pruned — see the table2 bench harness
    // for the full crossing)
    println!("\nLULESH -s 96 -i 4, TPL=96 — optimization crossing (abridged Table 2):");
    println!(
        "{:>14} {:>12} {:>14} {:>12}",
        "config", "edges", "discovery(ms)", "total(ms)"
    );
    for (label, opts, fused, pers) in [
        ("none", OptConfig::none(), false, false),
        ("(a)+(b)+(c)", OptConfig::all(), true, false),
        ("+(p)", OptConfig::all(), true, true),
    ] {
        let cfg = LuleshConfig {
            fused_deps: fused,
            ..LuleshConfig::single(96, 4, 96)
        };
        let lp = LuleshTask::new(cfg);
        let sim = SimConfig {
            opts,
            persistent: pers,
            ..Default::default()
        };
        let r = simulate_tasks(&machine, &sim, &lp.space, &lp);
        let rank = r.rank(0);
        println!(
            "{:>14} {:>12} {:>14.2} {:>12.2}",
            label,
            rank.edges_existing,
            rank.discovery_ns as f64 / 1e6,
            r.total_time_s() * 1e3
        );
    }
}
