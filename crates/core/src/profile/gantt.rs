//! Gantt-chart export (paper Fig. 8).

use super::{SpanKind, Trace};

/// One worker's row of scheduled task spans.
#[derive(Clone, Debug)]
pub struct GanttRow {
    /// Worker index.
    pub worker: u32,
    /// `(start_ns, end_ns, name, iter)` per scheduled task, time-sorted.
    pub spans: Vec<(u64, u64, &'static str, u64)>,
}

/// Build time-sorted per-worker rows of work spans.
pub fn gantt_rows(trace: &Trace) -> Vec<GanttRow> {
    let mut rows: Vec<GanttRow> = (0..trace.n_workers as u32)
        .map(|worker| GanttRow {
            worker,
            spans: Vec::new(),
        })
        .collect();
    for s in &trace.spans {
        if s.kind == SpanKind::Work && (s.worker as usize) < rows.len() {
            rows[s.worker as usize]
                .spans
                .push((s.start_ns, s.end_ns, s.name, s.iter));
        }
    }
    for r in &mut rows {
        r.spans.sort_unstable_by_key(|&(st, _, _, _)| st);
    }
    rows
}

/// Render an ASCII Gantt chart with `width` columns; each task span is
/// drawn with the digit of its iteration modulo 10 (the paper colours by
/// iteration), idle gaps with `.`.
pub fn render_ascii_gantt(trace: &Trace, width: usize) -> String {
    let rows = gantt_rows(trace);
    let t_end = trace.span_ns.max(1);
    let mut out = String::new();
    for row in &rows {
        let mut line = vec![b'.'; width];
        for &(s, e, _, iter) in &row.spans {
            let c0 = (s as u128 * width as u128 / t_end as u128) as usize;
            let c1 = ((e as u128 * width as u128).div_ceil(t_end as u128) as usize).min(width);
            let ch = b'0' + (iter % 10) as u8;
            for c in line.iter_mut().take(c1).skip(c0.min(width)) {
                *c = ch;
            }
        }
        out.push_str(&format!("w{:>3} |", row.worker));
        out.push_str(std::str::from_utf8(&line).unwrap());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Span;

    fn trace() -> Trace {
        let mut t = Trace {
            n_workers: 2,
            span_ns: 100,
            ..Default::default()
        };
        for (w, s, e, iter) in [(0u32, 0u64, 50u64, 0u64), (0, 50, 100, 1), (1, 25, 75, 0)] {
            t.push(Span {
                worker: w,
                start_ns: s,
                end_ns: e,
                kind: SpanKind::Work,
                name: "k",
                iter,
            });
        }
        t.push(Span {
            worker: 1,
            start_ns: 0,
            end_ns: 25,
            kind: SpanKind::Idle,
            name: "",
            iter: 0,
        });
        t
    }

    #[test]
    fn rows_are_sorted_and_work_only() {
        let rows = gantt_rows(&trace());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].spans.len(), 2);
        assert!(rows[0].spans[0].0 <= rows[0].spans[1].0);
        assert_eq!(rows[1].spans.len(), 1, "idle spans excluded");
    }

    #[test]
    fn ascii_render_shape() {
        let art = render_ascii_gantt(&trace(), 20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        // worker 0: first half iteration 0, second half iteration 1
        assert!(lines[0].contains('0'));
        assert!(lines[0].contains('1'));
        // worker 1: leading idle dots
        assert!(lines[1].split('|').nth(1).unwrap().starts_with('.'));
    }

    #[test]
    fn empty_trace_renders_empty() {
        let t = Trace::default();
        assert_eq!(render_ascii_gantt(&t, 10), "");
    }
}
