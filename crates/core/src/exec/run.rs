//! Whole-program entry point for the thread back-end.
//!
//! Runs a [`RankProgram`] — the same value `ptdg_simrt::simulate_tasks`
//! accepts — on real threads. Ranks execute sequentially on one worker
//! pool (there is no memory transport between ranks in shared memory);
//! communication tasks participate in the dependency graph but their
//! network side effect is a no-op.

use super::executor::{ExecConfig, Executor};
use crate::graph::{DiscoveryStats, GraphTemplate};
use crate::obs::{RtCounters, RtEvent};
use crate::opts::OptConfig;
use crate::profile::Trace;
use crate::program::RankProgram;
use std::time::Instant;

/// Configuration of a [`run_program`] call.
#[derive(Clone, Debug, Default)]
pub struct ThreadsConfig {
    /// Worker-pool configuration.
    pub exec: ExecConfig,
    /// Discovery optimizations.
    pub opts: OptConfig,
    /// Use a persistent region per rank (optimization (p)) instead of
    /// streaming discovery every iteration.
    pub persistent: bool,
    /// Discover each rank's full stream before executing any task
    /// (paper Table 1, non-overlapped).
    pub non_overlapped: bool,
    /// Capture the discovered graph per rank (equivalence checks). In
    /// persistent mode the capture is the first-iteration template; in
    /// streaming mode it spans every iteration.
    pub capture_graph: bool,
}

/// What [`run_program`] reports.
#[derive(Clone, Debug, Default)]
pub struct ThreadsReport {
    /// Ranks executed.
    pub n_ranks: u32,
    /// Discovery statistics per rank.
    pub per_rank_stats: Vec<DiscoveryStats>,
    /// Producer-side discovery span per rank, nanoseconds.
    pub discovery_ns: Vec<u64>,
    /// Captured graph per rank (empty unless
    /// [`ThreadsConfig::capture_graph`]).
    pub graphs: Vec<GraphTemplate>,
    /// Wall-clock for the whole run, nanoseconds.
    pub elapsed_ns: u64,
    /// Per-worker span trace (present when [`ExecConfig::profile`]).
    pub trace: Option<Trace>,
    /// Lifecycle event stream (empty unless profiling).
    pub events: Vec<RtEvent>,
    /// Kernel counters (zeroed unless profiling).
    pub counters: RtCounters,
}

impl ThreadsReport {
    /// Discovery statistics merged over ranks.
    pub fn stats(&self) -> DiscoveryStats {
        let mut total = DiscoveryStats::default();
        for s in &self.per_rank_stats {
            total.merge(s);
        }
        total
    }
}

/// Execute `program` on the thread back-end.
pub fn run_program<P: RankProgram + ?Sized>(program: &P, cfg: &ThreadsConfig) -> ThreadsReport {
    let exec = Executor::new(cfg.exec.clone());
    let t0 = Instant::now();
    let mut report = ThreadsReport {
        n_ranks: program.n_ranks(),
        ..Default::default()
    };
    let mut persistent_reuses = 0u64;
    for rank in 0..program.n_ranks() {
        if cfg.persistent {
            let mut region = exec.persistent_region(cfg.opts);
            for iter in 0..program.n_iterations() {
                region.run(iter, |sub| program.build_iteration(rank, iter, sub));
            }
            persistent_reuses += region.reuses();
            report.per_rank_stats.push(region.first_iteration_stats());
            report.discovery_ns.push(0);
            if cfg.capture_graph {
                if let Some(t) = region.template() {
                    report.graphs.push((**t).clone());
                }
            }
        } else {
            let mut session = if cfg.capture_graph {
                exec.session_capturing(cfg.opts)
            } else if cfg.non_overlapped {
                exec.session_non_overlapped(cfg.opts)
            } else {
                exec.session(cfg.opts)
            };
            for iter in 0..program.n_iterations() {
                session.set_iter(iter);
                program.build_iteration(rank, iter, &mut session);
            }
            report.per_rank_stats.push(session.stats());
            report.discovery_ns.push(session.discovery_ns());
            if cfg.capture_graph {
                let (graph, _) = session.finish_capture();
                report.graphs.push(graph);
            } else {
                session.wait_all();
            }
        }
    }
    report.elapsed_ns = t0.elapsed().as_nanos() as u64;
    if cfg.exec.profile {
        let obs = exec.take_obs();
        report.counters = obs.counters;
        // The tracker already counted every created task (discovery and
        // re-instanced); absorbing discovery stats would double-count it.
        let created = report.counters.tasks_created;
        for s in &report.per_rank_stats {
            report.counters.absorb_discovery(s);
        }
        report.counters.tasks_created = created;
        report.counters.persistent_reuses = persistent_reuses;
        report.events = obs.events;
        report.trace = Some(obs.trace);
    }
    report
}
