//! One entry point, two back-ends.
//!
//! A [`ptdg_core::program::RankProgram`] value is runnable unmodified on
//! real threads ([`ptdg_core::exec::run_program`]) or under the
//! discrete-event simulator ([`ptdg_simrt::simulate_tasks`]): both sit on
//! the same runtime kernel (`ptdg_core::rt`), so the discovered graph —
//! node for node, edge for edge — is the same. [`run`] selects the
//! back-end with a [`Backend`] value and returns a [`RunOutcome`] exposing
//! the back-end-independent measurements uniformly.

use ptdg_core::exec::{run_program, ThreadsConfig, ThreadsReport};
use ptdg_core::graph::{DiscoveryStats, GraphTemplate};
use ptdg_core::handle::HandleSpace;
use ptdg_core::obs::{RtCounters, RtEvent};
use ptdg_core::profile::Trace;
use ptdg_core::program::RankProgram;
use ptdg_simrt::{simulate_tasks, MachineConfig, SimConfig, SimReport};

/// Which executor runs the program.
///
/// `Sim` is much larger than `Threads` (it embeds the full machine and
/// simulation configuration), but the value is built once per run and
/// never stored in bulk, so boxing would only hurt ergonomics.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Backend {
    /// The wall-clock thread pool. Ranks run concurrently (one executor
    /// pool each) and communicate through a shared in-process network
    /// with detached completion — the same contract the simulator models.
    Threads(ThreadsConfig),
    /// The virtual-time DES with cache, DRAM-contention and network
    /// models.
    Sim {
        /// Modeled platform.
        machine: MachineConfig,
        /// Simulation configuration.
        cfg: SimConfig,
    },
}

/// What [`run`] produced — the full back-end report, plus uniform
/// accessors for what both sides measure.
// One value per run; report sizes differ but neither is hot.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// Thread back-end report.
    Threads(ThreadsReport),
    /// Simulator report.
    Sim(SimReport),
}

impl RunOutcome {
    /// Discovery statistics merged over ranks.
    pub fn stats(&self) -> DiscoveryStats {
        match self {
            RunOutcome::Threads(r) => r.stats(),
            RunOutcome::Sim(r) => {
                let mut total = DiscoveryStats::default();
                for rank in &r.ranks {
                    total.merge(&rank.disc);
                }
                total
            }
        }
    }

    /// Per-rank discovery statistics.
    pub fn per_rank_stats(&self) -> Vec<DiscoveryStats> {
        match self {
            RunOutcome::Threads(r) => r.per_rank_stats.clone(),
            RunOutcome::Sim(r) => r.ranks.iter().map(|rank| rank.disc).collect(),
        }
    }

    /// Captured graphs per rank (set `capture_graph` in the back-end
    /// configuration to fill these).
    pub fn graphs(&self) -> &[GraphTemplate] {
        match self {
            RunOutcome::Threads(r) => &r.graphs,
            RunOutcome::Sim(r) => &r.graphs,
        }
    }

    /// The thread report, if that back-end ran.
    pub fn threads(&self) -> Option<&ThreadsReport> {
        match self {
            RunOutcome::Threads(r) => Some(r),
            RunOutcome::Sim(_) => None,
        }
    }

    /// The simulation report, if that back-end ran.
    pub fn sim(&self) -> Option<&SimReport> {
        match self {
            RunOutcome::Threads(_) => None,
            RunOutcome::Sim(r) => Some(r),
        }
    }

    /// Kernel counters, merged over ranks (always filled on the thread
    /// back-end; the simulator fills every rank's too).
    pub fn counters(&self) -> RtCounters {
        match self {
            RunOutcome::Threads(r) => r.counters,
            RunOutcome::Sim(r) => {
                let mut total = RtCounters::default();
                for rank in &r.ranks {
                    total.merge(&rank.counters);
                }
                total
            }
        }
    }

    /// The lifecycle event stream (empty unless profiling; the simulator
    /// records the rank selected by `SimConfig::record_trace_rank`).
    pub fn events(&self) -> &[RtEvent] {
        match self {
            RunOutcome::Threads(r) => &r.events,
            RunOutcome::Sim(r) => &r.events,
        }
    }

    /// The recorded span trace, if one was requested.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            RunOutcome::Threads(r) => r.trace.as_ref(),
            RunOutcome::Sim(r) => r.trace.as_ref(),
        }
    }

    /// Kernel counters per rank.
    pub fn per_rank_counters(&self) -> Vec<RtCounters> {
        match self {
            RunOutcome::Threads(r) => r.per_rank_counters.clone(),
            RunOutcome::Sim(r) => r.ranks.iter().map(|rank| rank.counters).collect(),
        }
    }

    /// Communication requests that could never match, if any — the same
    /// structured error on both back-ends.
    pub fn comm_error(&self) -> Option<&ptdg_core::comm::CommError> {
        match self {
            RunOutcome::Threads(r) => r.comm_error.as_ref(),
            RunOutcome::Sim(r) => r.comm_error.as_ref(),
        }
    }
}

/// Run `program` on the chosen back-end.
///
/// `space` is the handle space the program's dependences live in; the
/// simulator additionally resolves task footprints against it (its block
/// size must match the machine's memory model), while the thread back-end
/// only needs it to have been used consistently by the program.
pub fn run(
    space: &HandleSpace,
    program: &(dyn RankProgram + Sync),
    backend: Backend,
) -> RunOutcome {
    match backend {
        Backend::Threads(cfg) => RunOutcome::Threads(run_program(program, &cfg)),
        Backend::Sim { machine, cfg } => {
            RunOutcome::Sim(simulate_tasks(&machine, &cfg, space, program))
        }
    }
}
