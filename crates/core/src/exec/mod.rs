//! The shared-memory work-stealing executor.
//!
//! This is the *thread-pool policy layer* over the runtime kernel
//! ([`crate::rt`]) — the "runtime" half of the paper's study, on real
//! threads:
//!
//! * one **producer** (the thread owning a [`Session`]) discovers the TDG
//!   sequentially through [`crate::graph::DiscoveryEngine`], concurrently
//!   with execution — exactly the single-producer discovery whose speed the
//!   paper measures. Discovery writes into a kernel
//!   [`crate::rt::GraphInstance`];
//! * `n_workers` **workers** execute ready tasks off the kernel's
//!   [`crate::rt::ReadyQueues`]. The default scheduling policy is the
//!   paper's depth-first heuristic: a completing worker pushes newly-ready
//!   successors onto its own LIFO deque, so the tasks that reuse
//!   just-produced data run next on the same core; other workers steal
//!   from the opposite (FIFO) end. A breadth-first mode (global FIFO
//!   queue) is provided for comparison;
//! * **throttling** ([`crate::throttle::ThrottleConfig`]) can turn the
//!   producer into a consumer when ready/live bounds are exceeded;
//! * the kernel's **hold gate** supports the paper's *non-overlapped*
//!   configuration (Table 1): the whole graph is discovered before any
//!   task runs;
//! * [`PersistentRegion`] implements optimization **(p)** over the
//!   kernel's [`crate::rt::PersistentInstance`]: iteration 0 is discovered
//!   once (concurrently with its execution) while a
//!   [`crate::graph::TemplateRecorder`] captures every node and edge;
//!   later iterations re-instance the captured graph by resetting
//!   dependence counters and re-writing firstprivate data — no allocation,
//!   no depend processing, no edge creation;
//! * [`run_program`] runs a whole [`crate::program::RankProgram`] — the
//!   same value the DES back-end in `ptdg-simrt` accepts.

mod executor;
mod persistent;
mod run;
mod session;
#[cfg(test)]
mod tests;

pub use executor::{ExecConfig, Executor, QueueBackend, SchedPolicy};
pub use persistent::PersistentRegion;
pub use run::{run_program, ThreadsConfig, ThreadsReport};
pub use session::Session;
