//! Cholesky configuration.

/// One run configuration.
#[derive(Clone, Debug)]
pub struct CholeskyConfig {
    /// Tiles per matrix edge.
    pub nt: usize,
    /// Tile edge (the paper's block size `b`).
    pub b: usize,
    /// Repeated factorizations (iterations of the persistent region).
    pub iterations: u64,
    /// Ranks (1-D cyclic panel distribution; 1 = shared memory).
    pub n_ranks: u32,
}

impl CholeskyConfig {
    /// Single-rank configuration.
    pub fn single(nt: usize, b: usize, iterations: u64) -> CholeskyConfig {
        CholeskyConfig {
            nt,
            b,
            iterations,
            n_ranks: 1,
        }
    }

    /// Matrix size `n = nt·b`.
    pub fn n(&self) -> usize {
        self.nt * self.b
    }

    /// Lower-triangular tiles (including the diagonal).
    pub fn n_tiles(&self) -> usize {
        self.nt * (self.nt + 1) / 2
    }

    /// Owner rank of panel `k` (1-D cyclic).
    pub fn owner(&self, k: usize) -> u32 {
        (k as u32) % self.n_ranks
    }

    /// Factorization kernels per iteration: potrf + trsm + updates.
    pub fn kernel_tasks(&self) -> usize {
        let nt = self.nt;
        // Σ_k [1 + (nt-1-k) + (nt-1-k)(nt-k)/2]
        (0..nt)
            .map(|k| {
                let m = nt - 1 - k;
                1 + m + m * (m + 1) / 2
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let c = CholeskyConfig::single(4, 8, 2);
        assert_eq!(c.n(), 32);
        assert_eq!(c.n_tiles(), 10);
        // k=0: 1+3+6, k=1: 1+2+3, k=2: 1+1+1, k=3: 1
        assert_eq!(c.kernel_tasks(), 10 + 6 + 3 + 1);
    }

    #[test]
    fn cyclic_owner() {
        let c = CholeskyConfig {
            n_ranks: 3,
            ..CholeskyConfig::single(7, 4, 1)
        };
        assert_eq!(c.owner(0), 0);
        assert_eq!(c.owner(4), 1);
        assert_eq!(c.owner(5), 2);
    }
}
