//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! implements exactly the slice of the proptest API the workspace uses:
//! range/tuple/`Just`/`vec` strategies, `prop_map`/`prop_flat_map`,
//! `prop_oneof!`, `any::<bool>()`, the `proptest!` macro with
//! `ProptestConfig::with_cases`, and the `prop_assert*`/`prop_assume!`
//! macros. Generation is deterministic per test (seeded from the test
//! name) and there is **no shrinking**: a failing case reports the case
//! number and message so it can be reproduced by rerunning the test.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG (xoshiro256** seeded by splitmix64 — same family the workspace's
// simulation substrate uses; re-implemented here so the shim stays
// dependency-free)
// ---------------------------------------------------------------------------

/// Deterministic RNG driving value generation.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded RNG (splitmix64 expansion).
    pub fn new(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Errors & config
// ---------------------------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: cases.saturating_mul(64).max(1024),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value: fmt::Debug + Clone;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the produced value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produce a dependent strategy from the value, then sample it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: fmt::Debug + Clone>(pub T);

impl<T: fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among alternatives of the same strategy type
/// (the shape `prop_oneof!` builds).
pub struct Union<S>(pub Vec<S>);

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let k = rng.below(self.0.len() as u64) as usize;
        self.0[k].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(width) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // full-domain u64 range
                    return rng.next_u64() as $t;
                }
                lo + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: fmt::Debug + Clone + Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

/// The canonical strategy of an [`Arbitrary`] type.
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count range for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.hi_incl - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(width) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works from the prelude.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Drives the cases of one `proptest!` test function.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// A runner for a named test. The seed derives from the test name (and
    /// `PROPTEST_SHIM_SEED` if set), so each test explores a stable,
    /// test-specific sequence.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        let base = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let mut seed = base;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3) ^ b as u64;
        }
        TestRunner { config, seed }
    }

    /// Run the property until `cases` successes; panics on the first
    /// failure with the case index (rerunnable: same seed every run).
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut index = 0u64;
        while passed < self.config.cases {
            let mut rng = TestRng::new(self.seed.wrapping_add(index));
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "{name}: too many rejected cases ({rejected}) — \
                             prop_assume! rejects nearly everything"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed at case #{index}: {msg}")
                }
            }
            index += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
            runner.run(stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                // `mut` is needed whenever `$body` mutates a captured
                // generated value; harmless otherwise.
                #[allow(unused_mut)]
                let mut case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                case()
            });
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($strat),+])
    };
}

/// Assert inside a property; failure reports the case instead of
/// unwinding through generated values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Reject the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The imports a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_and_tuple_compose(v in prop::collection::vec((0u8..4, 10u64..20), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((10..20).contains(&b));
            }
        }

        #[test]
        fn oneof_map_flat_map(x in prop_oneof![Just(1u64), Just(5)]
            .prop_map(|v| v * 2)
            .prop_flat_map(|v| 0..v))
        {
            prop_assert!(x < 10);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
