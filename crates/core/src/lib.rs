//! # ptdg-core — a dependent-task runtime with optimized & persistent TDG discovery
//!
//! This crate is a from-scratch Rust analogue of the MPC-OMP tasking runtime
//! studied in *"Investigating Dependency Graph Discovery Impact on Task-based
//! MPI+OpenMP Applications Performances"* (Pereira, Roussel, Carribault,
//! Gautier — ICPP 2023). It provides:
//!
//! * **Dependent tasks** with OpenMP 5.1 access modes: `in`, `out`, `inout`
//!   and `inoutset` ([`AccessMode`]), declared against registered memory
//!   regions ([`DataHandle`]).
//! * **Sequential TDG discovery** ([`graph::DiscoveryEngine`]) — the
//!   single-producer unrolling of the task dependency graph — with the
//!   paper's edge-reduction optimizations:
//!   - **(b)** O(1) duplicate-edge elimination exploiting sequential
//!     submission ([`OptConfig::dedup_edges`]),
//!   - **(c)** `inoutset` redirect nodes turning `m·n` edges into `m+n`
//!     ([`OptConfig::inoutset_redirect`]),
//!   - automatic **edge pruning** to already-consumed predecessors (the
//!     default behaviour of non-persistent OpenMP runtimes).
//!
//!   Optimization **(a)** — minimizing the `depend` lists in user code — is
//!   by nature application-side; the bundled applications expose it as a
//!   `fused_deps` flag.
//! * A **persistent task dependency graph** — optimization **(p)** — that
//!   captures the graph of an iteration once ([`graph::GraphTemplate`]) and
//!   re-instances it on later iterations for the cost of a firstprivate
//!   `memcpy`, the paper's headline 15× discovery speedup.
//! * A **work-stealing executor** on real threads ([`exec::Executor`]) with
//!   the depth-first (LIFO local deque, FIFO steal) scheduling heuristic the
//!   paper relies on for cache reuse, plus a breadth-first mode, ready/live
//!   **task throttling** ([`ThrottleConfig`]), and a non-overlapped mode
//!   that fully unrolls the graph before execution (paper Table 1).
//! * A **task-level profiler** ([`profile`]) recording creation, schedule
//!   and completion events, with the work/overhead/idle breakdown of the
//!   paper (§2.3.1) and Gantt export.
//! * End-to-end **observability** ([`obs`]): a lock-free lifecycle event
//!   recorder fed by the kernel's [`rt::RtProbe`] hooks, kernel counters,
//!   a Chrome/Perfetto trace exporter, and critical-path analysis — the
//!   same signals from both back-ends.
//!
//! Performance *studies* (virtual 24-core nodes, cache hierarchy, MPI) run
//! on `ptdg-simrt`, which reuses this crate's discovery engine with a timed
//! cost model; this crate alone is a complete, usable shared-memory tasking
//! library.
//!
//! ## Quick example
//!
//! ```
//! use ptdg_core::prelude::*;
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let mut space = HandleSpace::new();
//! let x = space.region("x", 8);
//!
//! let exec = Executor::new(ExecConfig { n_workers: 2, ..Default::default() });
//! let acc = Arc::new(AtomicU64::new(0));
//!
//! let mut session = exec.session(OptConfig::all());
//! // producer: t1 writes x, t2 reads it — t2 runs strictly after t1
//! let a = acc.clone();
//! session.submit(
//!     TaskSpec::new("t1")
//!         .depend(x, AccessMode::Out)
//!         .body(move |_ctx| { a.fetch_add(1, Ordering::SeqCst); }),
//! );
//! let a = acc.clone();
//! session.submit(
//!     TaskSpec::new("t2")
//!         .depend(x, AccessMode::In)
//!         .body(move |_ctx| {
//!             assert_eq!(a.load(Ordering::SeqCst), 1);
//!             a.fetch_add(10, Ordering::SeqCst);
//!         }),
//! );
//! session.wait_all();
//! assert_eq!(acc.load(Ordering::SeqCst), 11);
//! ```

pub mod access;
pub mod builder;
pub mod comm;
pub mod data;
pub mod exec;
pub mod graph;
pub mod handle;
pub mod obs;
pub mod opts;
pub mod profile;
pub mod program;
pub mod rt;
pub mod task;
pub mod util;
pub mod workdesc;

// Throttling moved into the runtime kernel; keep the historical path.
pub use rt::throttle;

pub use access::{AccessMode, Depend};
pub use builder::{IterationBuilder, SpecBuf, TaskSubmitter};
pub use comm::{CommConfig, CommError, CommWorld, UnmatchedComm};
pub use exec::{ExecConfig, Executor, SchedPolicy, Session};
pub use handle::{DataHandle, HandleSpace};
pub use opts::OptConfig;
pub use program::{Rank, RankProgram};
pub use rt::{ThrottleConfig, ThrottleGate};
pub use task::{SpecView, TaskBody, TaskCtx, TaskId, TaskSpec};
pub use workdesc::{CommOp, HandleSlice, WorkDesc};

/// Convenience re-exports for application code.
pub mod prelude {
    pub use crate::access::{AccessMode, Depend};
    pub use crate::builder::{IterationBuilder, SpecBuf, TaskSubmitter};
    pub use crate::data::SharedVec;
    pub use crate::exec::{ExecConfig, Executor, SchedPolicy, Session};
    pub use crate::graph::{DiscoveryEngine, DiscoveryStats, GraphTemplate};
    pub use crate::handle::{DataHandle, HandleSpace};
    pub use crate::opts::OptConfig;
    pub use crate::program::{Rank, RankProgram};
    pub use crate::rt::ThrottleConfig;
    pub use crate::task::{TaskCtx, TaskId, TaskSpec};
    pub use crate::workdesc::{CommOp, HandleSlice, WorkDesc};
}
