//! Data handles: the registered memory regions that `depend` clauses name.
//!
//! In OpenMP, a `depend` item is a memory address; the runtime identifies
//! regions by base pointer. Here applications *register* their regions with
//! a [`HandleSpace`] — typically one handle per array slice at the chosen
//! tasks-per-loop granularity — and reference them in depend clauses. The
//! space also assigns each region a stable range of footprint *blocks* used
//! by the memory-hierarchy model in `ptdg-simrt`.

use std::fmt;
use std::sync::Arc;

/// Opaque identifier of a registered data region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataHandle(pub(crate) u32);

impl DataHandle {
    /// The raw index of this handle within its [`HandleSpace`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DataHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Metadata for one registered region.
#[derive(Clone, Debug)]
pub struct RegionInfo {
    /// Debug name (e.g. `"mesh.nodes[3]"`).
    pub name: &'static str,
    /// Region size in bytes (drives the simulated footprint).
    pub bytes: u64,
    /// First footprint block id assigned to this region.
    pub base_block: u64,
}

/// Registry of data regions, shared by discovery and executors.
///
/// Cloning a `HandleSpace` is cheap (it is an `Arc` snapshot holder): the
/// registry is append-only during setup and immutable once tasks run.
#[derive(Clone, Debug, Default)]
pub struct HandleSpace {
    regions: Vec<RegionInfo>,
    next_block: u64,
    block_bytes: u64,
}

impl HandleSpace {
    /// An empty space with the default 512-byte footprint granularity.
    pub fn new() -> Self {
        Self::with_block_bytes(512)
    }

    /// An empty space with a custom footprint block size, which must match
    /// the memory model's `block_bytes` when simulating.
    pub fn with_block_bytes(block_bytes: u64) -> Self {
        assert!(block_bytes > 0);
        HandleSpace {
            regions: Vec::new(),
            next_block: 0,
            block_bytes,
        }
    }

    /// Register a region of `bytes` bytes and return its handle.
    pub fn region(&mut self, name: &'static str, bytes: u64) -> DataHandle {
        let blocks = if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.block_bytes)
        };
        let info = RegionInfo {
            name,
            bytes,
            base_block: self.next_block,
        };
        self.next_block += blocks;
        let id = self.regions.len();
        assert!(id <= u32::MAX as usize, "too many regions");
        self.regions.push(info);
        DataHandle(id as u32)
    }

    /// Register `n` equally-sized slices of a logical array of
    /// `total_bytes`, returning their handles in order. This is the idiom
    /// for `taskloop`-style slicing: one handle per task's slice.
    pub fn sliced_region(
        &mut self,
        name: &'static str,
        total_bytes: u64,
        n: usize,
    ) -> Vec<DataHandle> {
        assert!(n > 0);
        let per = total_bytes / n as u64;
        let rem = total_bytes % n as u64;
        (0..n)
            .map(|i| {
                let bytes = per + if (i as u64) < rem { 1 } else { 0 };
                self.region(name, bytes)
            })
            .collect()
    }

    /// Look up a region's metadata.
    pub fn info(&self, h: DataHandle) -> &RegionInfo {
        &self.regions[h.index()]
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Footprint block granularity in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Total footprint blocks assigned so far.
    pub fn total_blocks(&self) -> u64 {
        self.next_block
    }

    /// Freeze into a cheaply-shareable snapshot.
    pub fn freeze(self) -> Arc<HandleSpace> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_get_distinct_handles_and_blocks() {
        let mut s = HandleSpace::new();
        let a = s.region("a", 1024);
        let b = s.region("b", 100);
        let c = s.region("c", 513);
        assert_ne!(a, b);
        assert_eq!(s.info(a).base_block, 0);
        assert_eq!(s.info(b).base_block, 2); // 1024/512 = 2 blocks
        assert_eq!(s.info(c).base_block, 3); // 100 B -> 1 block
        assert_eq!(s.total_blocks(), 5); // 513 B -> 2 blocks
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn zero_sized_region_takes_no_blocks() {
        let mut s = HandleSpace::new();
        let z = s.region("z", 0);
        let a = s.region("a", 512);
        assert_eq!(s.info(z).bytes, 0);
        assert_eq!(s.info(a).base_block, 0);
    }

    #[test]
    fn sliced_region_covers_total() {
        let mut s = HandleSpace::new();
        let hs = s.sliced_region("arr", 1000, 3);
        assert_eq!(hs.len(), 3);
        let total: u64 = hs.iter().map(|&h| s.info(h).bytes).sum();
        assert_eq!(total, 1000);
        // 334, 333, 333
        assert_eq!(s.info(hs[0]).bytes, 334);
    }

    #[test]
    fn custom_block_size() {
        let mut s = HandleSpace::with_block_bytes(4096);
        let a = s.region("a", 4097);
        assert_eq!(s.info(a).base_block, 0);
        assert_eq!(s.total_blocks(), 2);
        assert_eq!(s.block_bytes(), 4096);
    }
}
