//! Table 3 — weak and strong scaling of LULESH, `parallel for` vs the
//! optimized task version.
//!
//! Weak scaling: fixed per-rank mesh, growing rank count — efficiency is
//! bounded by the collective (log P tree + noise skew). Strong scaling:
//! fixed global mesh split over more ranks with the paper's dynamic TPL
//! (at least 16 tasks per loop, at most 8192 mesh nodes per task) — fine
//! grain stops paying once per-rank work shrinks below the runtime costs.
//!
//! The paper scales to 4,096 ranks on a real machine; we simulate full
//! cubic jobs up to 216 ranks (every rank simulated, ~2 M task events)
//! and report the same columns.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin table3    # ~10 min
//! PTDG_QUICK=1 cargo run --release -p ptdg-bench --bin table3
//! ```

use ptdg_bench::{arr, emit_json, maybe_trace, obj, quick, rule, s};
use ptdg_core::opts::OptConfig;
use ptdg_lulesh::{LuleshBsp, LuleshConfig, LuleshTask, RankGrid};
use ptdg_simrt::{simulate_bsp, simulate_tasks, MachineConfig, SimConfig};

fn run_pair(cfg: &LuleshConfig, ranks: u32) -> (f64, f64) {
    let machine = MachineConfig::epyc_16();
    let sim_bsp = SimConfig {
        n_ranks: ranks,
        work_jitter: 0.10,
        ..Default::default()
    };
    let bsp_prog = LuleshBsp::new(cfg.clone());
    let bsp = simulate_bsp(&machine, &sim_bsp, &bsp_prog.space, &bsp_prog);
    let sim_task = SimConfig {
        n_ranks: ranks,
        opts: OptConfig::all(),
        persistent: true,
        work_jitter: 0.10,
        ..Default::default()
    };
    let task_prog = LuleshTask::new(cfg.clone());
    let task = simulate_tasks(&machine, &sim_task, &task_prog.space, &task_prog);
    (bsp.total_time_s(), task.total_time_s())
}

fn main() {
    // weak-scaling mesh must sit in the cache-thrash regime (s=96/rank)
    // for the task version's advantage to exist at all
    let (weak_s, iters, plist): (usize, u64, &[usize]) = if quick() {
        (96, 2, &[1, 8])
    } else {
        (96, 2, &[1, 8, 27])
    };

    println!("Table 3 — LULESH weak and strong scaling (simulated EPYC ranks, 16 cores each)");

    println!("\nweak scaling: -s {weak_s}/rank, -i {iters}, TPL=128");
    println!(
        "{:>7} {:>12} {:>12} {:>9} {:>10}",
        "ranks", "for (s)", "task (s)", "speedup", "task eff."
    );
    rule(54);
    let mut t1 = None;
    let mut weak_rows = Vec::new();
    for &p in plist {
        let cfg = LuleshConfig {
            grid: RankGrid::cube(p),
            ..LuleshConfig::single(weak_s, iters, 128)
        };
        let (bsp, task) = run_pair(&cfg, p as u32);
        let eff = t1.get_or_insert(task);
        println!(
            "{p:>7} {:>12} {:>12} {:>8.2}x {:>9.0}%",
            s(bsp),
            s(task),
            bsp / task,
            100.0 * *eff / task
        );
        weak_rows.push(obj([
            ("ranks", p.into()),
            ("parallel_for_s", bsp.into()),
            ("task_s", task.into()),
            ("speedup", (bsp / task).into()),
            ("task_efficiency", (*eff / task).into()),
        ]));
    }

    // strong scaling: fixed global mesh
    let global_s = 192;
    println!("\nstrong scaling: global mesh {global_s}³ elements, -i {iters}, dynamic TPL");
    println!(
        "{:>7} {:>8} {:>6} {:>12} {:>12} {:>9}",
        "ranks", "s/rank", "TPL", "for (s)", "task (s)", "speedup"
    );
    rule(60);
    let mut strong_rows = Vec::new();
    for &p in plist.iter().filter(|&&p| p > 1) {
        let px = (p as f64).cbrt().round() as usize;
        let per_rank = global_s / px;
        if per_rank < 8 {
            println!("{p:>7}  (per-rank mesh below the minimum: skipped)");
            continue;
        }
        // the paper's dynamic TPL: >=16 tasks/loop, <=8192 nodes/task
        let nn = (per_rank + 1) * (per_rank + 1) * (per_rank + 1);
        let tpl = (nn / 8192).max(16);
        let cfg = LuleshConfig {
            grid: RankGrid::cube(p),
            ..LuleshConfig::single(per_rank, iters, tpl)
        };
        let (bsp, task) = run_pair(&cfg, p as u32);
        println!(
            "{p:>7} {per_rank:>8} {tpl:>6} {:>12} {:>12} {:>8.2}x",
            s(bsp),
            s(task),
            bsp / task
        );
        strong_rows.push(obj([
            ("ranks", p.into()),
            ("per_rank_s", per_rank.into()),
            ("tpl", tpl.into()),
            ("parallel_for_s", bsp.into()),
            ("task_s", task.into()),
            ("speedup", (bsp / task).into()),
        ]));
    }
    println!(
        "\n(paper: weak scaling holds >95% efficiency to 1,000 ranks with the\n\
         task version ~2.0x ahead; strong scaling favours tasks until the\n\
         per-rank workload shrinks to a few percent of DRAM, after which\n\
         fine grain provides no gain)"
    );
    emit_json(
        "table3",
        obj([
            ("weak_mesh_s", weak_s.into()),
            ("strong_global_s", global_s.into()),
            ("iterations", iters.into()),
            ("weak_scaling", arr(weak_rows)),
            ("strong_scaling", arr(strong_rows)),
        ]),
    );
    // Trace the largest weak-scaling task run.
    let p = *plist.last().unwrap();
    let cfg = LuleshConfig {
        grid: RankGrid::cube(p),
        ..LuleshConfig::single(weak_s, iters, 128)
    };
    let prog = LuleshTask::new(cfg);
    let sim = SimConfig {
        n_ranks: p as u32,
        opts: OptConfig::all(),
        persistent: true,
        work_jitter: 0.10,
        ..Default::default()
    };
    maybe_trace(
        "table3",
        &MachineConfig::epyc_16(),
        &sim,
        &prog.space,
        &prog,
    );
}
