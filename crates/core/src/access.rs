//! Dependency access modes and `depend`-clause items.

use crate::handle::DataHandle;

/// OpenMP 5.1 dependence types on a data region.
///
/// Semantics (OpenMP 5.1 §2.19.11, as implemented by the discovery engine):
///
/// * [`In`](AccessMode::In): ordered after the last writer(s) of the region.
/// * [`Out`](AccessMode::Out) / [`InOut`](AccessMode::InOut): ordered after
///   every reader since the last write (or after the last writer(s) when
///   there are no intervening readers). `Out` and `InOut` are
///   indistinguishable for ordering purposes and are kept distinct only for
///   user-code fidelity.
/// * [`InOutSet`](AccessMode::InOutSet): members of a consecutive
///   `inoutset` group on the same region may run concurrently with each
///   other, but any access of a *different* type is ordered against every
///   member of the group. This is the "concurrent write" of Athapascan /
///   OmpSs, and the dependence type whose naive implementation produces the
///   `m·n` edge blow-up that optimization (c) removes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Read access (`depend(in: ...)`).
    In,
    /// Write access (`depend(out: ...)`).
    Out,
    /// Read-write access (`depend(inout: ...)`).
    InOut,
    /// Concurrent-write set access (`depend(inoutset: ...)`).
    InOutSet,
}

impl AccessMode {
    /// Whether this mode writes the region (orders against later readers).
    pub fn is_write(self) -> bool {
        !matches!(self, AccessMode::In)
    }

    /// Whether two *consecutive* accesses of these modes on the same region
    /// may execute concurrently.
    pub fn concurrent_with(self, other: AccessMode) -> bool {
        matches!(
            (self, other),
            (AccessMode::In, AccessMode::In) | (AccessMode::InOutSet, AccessMode::InOutSet)
        )
    }
}

/// One item of a task's `depend` clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Depend {
    /// The data region accessed.
    pub handle: DataHandle,
    /// How the region is accessed.
    pub mode: AccessMode,
}

impl Depend {
    /// Construct a depend item.
    pub fn new(handle: DataHandle, mode: AccessMode) -> Self {
        Depend { handle, mode }
    }

    /// `depend(in: handle)`.
    pub fn read(handle: DataHandle) -> Self {
        Depend::new(handle, AccessMode::In)
    }

    /// `depend(out: handle)`.
    pub fn write(handle: DataHandle) -> Self {
        Depend::new(handle, AccessMode::Out)
    }

    /// `depend(inout: handle)`.
    pub fn read_write(handle: DataHandle) -> Self {
        Depend::new(handle, AccessMode::InOut)
    }

    /// `depend(inoutset: handle)`.
    pub fn concurrent_write(handle: DataHandle) -> Self {
        Depend::new(handle, AccessMode::InOutSet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleSpace;

    #[test]
    fn write_classification() {
        assert!(!AccessMode::In.is_write());
        assert!(AccessMode::Out.is_write());
        assert!(AccessMode::InOut.is_write());
        assert!(AccessMode::InOutSet.is_write());
    }

    #[test]
    fn concurrency_matrix() {
        use AccessMode::*;
        assert!(In.concurrent_with(In));
        assert!(InOutSet.concurrent_with(InOutSet));
        for a in [In, Out, InOut, InOutSet] {
            assert!(!a.concurrent_with(Out));
            assert!(!a.concurrent_with(InOut));
            assert!(!Out.concurrent_with(a));
        }
        assert!(!In.concurrent_with(InOutSet));
        assert!(!InOutSet.concurrent_with(In));
    }

    #[test]
    fn constructors_set_modes() {
        let mut s = HandleSpace::new();
        let h = s.region("r", 64);
        assert_eq!(Depend::read(h).mode, AccessMode::In);
        assert_eq!(Depend::write(h).mode, AccessMode::Out);
        assert_eq!(Depend::read_write(h).mode, AccessMode::InOut);
        assert_eq!(Depend::concurrent_write(h).mode, AccessMode::InOutSet);
        assert_eq!(Depend::read(h).handle, h);
    }
}
