//! Quickstart: dependent tasks, discovery optimizations, and a persistent
//! task graph on the real work-stealing executor.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ptdg::core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    // 1. Register the data regions that `depend` clauses will name.
    let mut space = HandleSpace::new();
    let grid = space.region("grid", 1 << 16);
    let halo = space.region("halo", 1 << 10);
    let norm = space.region("norm", 8);

    // 2. Spawn the executor: a depth-first work-stealing pool.
    let exec = Executor::new(ExecConfig {
        n_workers: 4,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::mpc_default(),
        profile: true,
        record_events: false,
    });

    // 3. Stream a small iterative stencil program through a *persistent
    //    region*: iteration 0 discovers and captures the graph; later
    //    iterations re-instance it for the cost of a memcpy.
    let sum = Arc::new(AtomicU64::new(0));
    let mut region = exec.persistent_region(OptConfig::all());
    for iter in 0..8u64 {
        let sum = sum.clone();
        region.run(iter, |sub| {
            // compute the grid
            for _ in 0..4 {
                let sum = sum.clone();
                sub.submit(
                    TaskSpec::new("compute")
                        .depend(grid, AccessMode::InOutSet)
                        .body(move |ctx| {
                            // a little real work so the Gantt is visible
                            std::thread::sleep(std::time::Duration::from_micros(200));
                            sum.fetch_add(ctx.iter + 1, Ordering::Relaxed);
                        }),
                );
            }
            // pack the halo from the grid, then "reduce" a norm
            sub.submit(
                TaskSpec::new("pack")
                    .depend(grid, AccessMode::In)
                    .depend(halo, AccessMode::Out)
                    .body(|_| {}),
            );
            sub.submit(
                TaskSpec::new("reduce")
                    .depend(grid, AccessMode::In)
                    .depend(norm, AccessMode::Out)
                    .body(|_| {}),
            );
        });
    }

    let template = region.template().expect("captured on iteration 0");
    let stats = region.first_iteration_stats();
    println!("persistent task graph:");
    println!("  tasks/iteration      : {}", template.n_tasks());
    println!(
        "  nodes (with redirect): {} (optimization (c) inserted {})",
        template.n_nodes(),
        stats.redirect_nodes
    );
    println!("  edges/iteration      : {}", template.n_edges());
    println!(
        "  firstprivate bytes re-instanced per iteration: {}",
        template.firstprivate_bytes()
    );
    println!(
        "  duplicate edges elided by optimization (b): {}",
        stats.dup_skipped
    );
    println!("  iterations run       : {}", region.iterations_run());
    println!("  checksum             : {}", sum.load(Ordering::Relaxed));

    let trace = exec.take_trace();
    println!(
        "\nexecuted {} task instances; mean grain {:.1} µs",
        trace.n_tasks_run(),
        trace.mean_task_grain_ns() / 1000.0
    );
    println!("\nGantt (one row per worker; digits are iterations):");
    print!("{}", ptdg::core::profile::render_ascii_gantt(&trace, 72));
}
