//! Live task nodes: the kernel's readiness state machine.
//!
//! An [`RtNode`] is one instantiated task. Its `pending` counter holds the
//! number of unsatisfied predecessors **plus one creation token** owned by
//! the producer until the node is sealed (all its edges added). The
//! decrement-on-complete transition — the heart of dependent-task
//! readiness — lives *only* here; back-ends never touch in-degree
//! counters themselves.
//!
//! Nodes live in a [`super::NodeArena`] and are shared as [`NodeRef`]s —
//! pooled references whose clone/drop never touch the allocator. The
//! per-node successor list is an [`InlineVec`]: typical stencil fan-outs
//! ([`SUCC_INLINE`] successors or fewer) stay inline in the node; larger
//! fan-outs spill once and keep their capacity across completions.

use super::arena::{NodeArena, NodeRef};
use super::probe::RtProbe;
use crate::task::{SpecView, TaskBody, TaskId};
use crate::util::InlineVec;
use crate::workdesc::{CommOp, WorkDesc};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Successors kept inline in the node before spilling to the heap.
///
/// Sized for the bundled apps: a LULESH/HPCG slice writer feeds its own
/// and adjacent slices' consumers (≤ 3–6 edges after dedup), and a
/// Cholesky tile writer feeds the panel below it; redirect nodes absorb
/// the wide `inoutset` fan-outs. 8 keeps those inline with slack.
pub const SUCC_INLINE: usize = 8;

/// Ready-list entries kept inline in a [`Completion`].
pub const READY_INLINE: usize = 8;

/// Mutable graph-side state of a node, guarded by one small lock.
///
/// The lock serializes the completion of the predecessor against the
/// producer attaching new successor edges — the race that makes edge
/// *pruning* well-defined: an edge requested after completion is pruned.
#[derive(Default)]
struct NodeLinks {
    /// Streaming successors to release on completion (taken exactly once).
    succs: InlineVec<NodeRef, SUCC_INLINE>,
    /// Whether the task has completed (this iteration).
    completed: bool,
}

/// Result of completing a node.
#[derive(Default)]
pub struct Completion {
    /// Successors that became ready (their last predecessor was this node).
    pub ready: InlineVec<NodeRef, READY_INLINE>,
    /// Total successor releases performed (streaming + persistent) — the
    /// quantity cost models charge per completion.
    pub released: usize,
}

/// A live task instance, shared by the thread executor and the DES
/// simulator.
pub struct RtNode {
    /// Dense id within its graph instance.
    pub id: TaskId,
    /// Task name (profiling).
    pub name: &'static str,
    /// Body to run (None for redirect or cost-model-only nodes).
    pub body: Option<TaskBody>,
    /// Communication side effect (detached-task semantics).
    pub comm: Option<CommOp>,
    /// Cost-model description, kept when the instance is configured to
    /// retain it (virtual-time back-end).
    pub work: Option<WorkDesc>,
    /// Firstprivate payload size (the persistent re-instance memcpy).
    pub fp_bytes: u32,
    /// Whether this is an optimization-(c) redirect node.
    pub is_redirect: bool,
    /// Predecessors not yet completed, plus one creation/visibility token.
    pending: AtomicU32,
    /// Streaming links + completion flag.
    links: Mutex<NodeLinks>,
    /// Current iteration (the firstprivate payload a persistent
    /// re-instance rewrites).
    pub iter: AtomicU64,
    /// Successor list of an instanced persistent node. Set once when the
    /// captured template is instanced; unlike streaming edges these
    /// survive completion, so re-instancing allocates nothing.
    persistent_succs: OnceLock<Vec<NodeRef>>,
}

impl RtNode {
    /// A new application-task node value holding its creation token;
    /// the caller moves it into an arena.
    pub fn from_view(
        id: TaskId,
        view: &SpecView<'_>,
        iter: u64,
        want_bodies: bool,
        keep_work: bool,
    ) -> RtNode {
        RtNode {
            id,
            name: view.name,
            body: if want_bodies {
                view.body.cloned()
            } else {
                None
            },
            comm: view.comm,
            work: keep_work.then(|| WorkDesc {
                flops: view.flops,
                footprint: view.footprint.to_vec(),
            }),
            fp_bytes: view.fp_bytes,
            is_redirect: false,
            pending: AtomicU32::new(1), // creation token
            links: Mutex::new(NodeLinks::default()),
            iter: AtomicU64::new(iter),
            persistent_succs: OnceLock::new(),
        }
    }

    /// A bare node backed by its own one-slot arena (redirect-free tests
    /// and standalone uses; graph instances allocate through their arena).
    pub fn bare(id: TaskId, name: &'static str, body: Option<TaskBody>, iter: u64) -> NodeRef {
        NodeArena::singleton(RtNode::bare_value_named(id, name, body, iter))
    }

    fn bare_value_named(
        id: TaskId,
        name: &'static str,
        body: Option<TaskBody>,
        iter: u64,
    ) -> RtNode {
        RtNode {
            id,
            name,
            body,
            comm: None,
            work: None,
            fp_bytes: 0,
            is_redirect: false,
            pending: AtomicU32::new(1),
            links: Mutex::new(NodeLinks::default()),
            iter: AtomicU64::new(iter),
            persistent_succs: OnceLock::new(),
        }
    }

    /// A bare node *value* (arena tests fill blocks with these directly).
    #[cfg(test)]
    pub(crate) fn bare_value(id: TaskId, iter: u64) -> RtNode {
        RtNode::bare_value_named(id, "t", None, iter)
    }

    /// Attach a body (arena drop-count tests).
    #[cfg(test)]
    pub(crate) fn with_test_body<F: Fn(&crate::task::TaskCtx) + Send + Sync + 'static>(
        mut self,
        f: F,
    ) -> RtNode {
        self.body = Some(std::sync::Arc::new(f));
        self
    }

    /// A node value instanced from a captured template node (persistent
    /// graphs).
    pub(crate) fn from_template(
        id: TaskId,
        tn: &crate::graph::TemplateNode,
        keep_work: bool,
    ) -> RtNode {
        RtNode {
            id,
            name: tn.name,
            body: tn.body.clone(),
            comm: tn.comm,
            work: keep_work.then(|| tn.work.clone()),
            fp_bytes: tn.fp_bytes,
            is_redirect: tn.is_redirect,
            pending: AtomicU32::new(1),
            links: Mutex::new(NodeLinks::default()),
            iter: AtomicU64::new(0),
            persistent_succs: OnceLock::new(),
        }
    }

    /// An empty redirect node value (optimization (c)).
    pub fn redirect(id: TaskId, iter: u64) -> RtNode {
        let mut n = RtNode::bare_value_named(id, "<redirect>", None, iter);
        n.is_redirect = true;
        n
    }

    fn links(&self) -> MutexGuard<'_, NodeLinks> {
        // A poisoned lock means a panic inside the short critical section
        // below, never inside a task body; the state is still consistent.
        self.links.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current pending count (tests / diagnostics; Relaxed — a racy
    /// snapshot is all this can ever be).
    pub fn pending(&self) -> u32 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Set the persistent successor list (once, at template instancing).
    pub(crate) fn set_persistent_succs(&self, succs: Vec<NodeRef>) {
        assert!(
            self.persistent_succs.set(succs).is_ok(),
            "persistent successors are instanced once"
        );
    }

    /// Count of successors a completion would release right now.
    pub fn succ_count(&self) -> usize {
        let streaming = self.links().succs.len();
        streaming + self.persistent_succs.get().map_or(0, |s| s.len())
    }

    /// Reset an instanced persistent node for a new iteration: restore its
    /// dependence counter (plus one *visibility token*, dropped by
    /// [`super::PersistentInstance::publish`]).
    ///
    /// This is valid **only** for instanced persistent nodes: their
    /// successor edges live in `persistent_succs` (never in `links.succs`),
    /// and `attach_succ` is never called on them, so the `completed` flag —
    /// which exists solely to define streaming-edge pruning — is dead state
    /// and need not be cleared. Skipping the links lock turns the
    /// per-iteration re-arm into two plain stores per node, which is what
    /// lets `begin_iteration` be a single dense sweep (DESIGN.md §4.4).
    /// Relaxed stores: re-instancing runs strictly between iterations —
    /// after the previous barrier's quiescence synchronization and before
    /// the nodes are re-published through the ready queues, which is the
    /// happens-before edge that carries these values to the workers.
    pub(crate) fn rearm_persistent(&self, indegree: u32, iter: u64) {
        debug_assert!(
            self.persistent_succs.get().is_some() || self.links().succs.is_empty(),
            "fast re-arm is reserved for instanced persistent nodes"
        );
        self.pending.store(indegree + 1, Ordering::Relaxed);
        self.iter.store(iter, Ordering::Relaxed);
    }

    /// Attach an edge `self -> succ`, unless `self` already completed.
    /// Returns whether the edge was created.
    pub fn attach_succ(&self, succ: &NodeRef) -> bool {
        let mut links = self.links();
        if links.completed {
            return false; // pruned
        }
        // Relaxed: the producer holds the creation token, so this add can
        // never race the counter to zero; `seal`'s AcqRel decrement is
        // what orders readiness.
        succ.pending.fetch_add(1, Ordering::Relaxed);
        links.succs.push(succ.clone());
        true
    }

    /// Drop the creation (or visibility) token; returns `true` if the node
    /// became ready.
    ///
    /// AcqRel — the kernel's pivotal ordering site. Release: everything
    /// the caller did before (a predecessor's task-body writes, the
    /// producer's node initialization) is published on `pending`.
    /// Acquire + release sequences over the RMW chain: the decrementer
    /// that hits zero synchronizes with *every* earlier decrementer, so
    /// whoever enqueues (and eventually runs) this node sees the effects
    /// of all its predecessors, not just the last one.
    pub fn seal(&self) -> bool {
        self.pending.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Mark completed and release every successor — streaming edges
    /// (consumed) then persistent ones (reusable). Returns the successors
    /// that became ready, plus the number of releases performed.
    pub fn complete(&self) -> Completion {
        self.complete_with(&crate::rt::NullProbe, 0, 0)
    }

    /// [`RtNode::complete`] narrated through a probe: emits
    /// `task_completed` on `core` and one `task_ready` per successor this
    /// completion released — the kernel-side emit site both back-ends
    /// share, so their lifecycle streams cannot diverge. (`comm_posted` /
    /// `comm_completed` are emitted by the back-ends' network layers at
    /// post and match time; for a detached comm task this completion runs
    /// from the progress path, after the request matched.)
    pub fn complete_with(&self, probe: &dyn RtProbe, core: usize, now_ns: u64) -> Completion {
        let taken = {
            let mut links = self.links();
            links.completed = true;
            std::mem::take(&mut links.succs)
        };
        let mut out = Completion {
            ready: InlineVec::new(),
            released: taken.len(),
        };
        for succ in taken {
            if succ.seal() {
                out.ready.push(succ);
            }
        }
        if let Some(persistent) = self.persistent_succs.get() {
            out.released += persistent.len();
            for succ in persistent {
                if succ.seal() {
                    out.ready.push(succ.clone());
                }
            }
        }
        if probe.lifecycle_enabled() {
            probe.task_completed(self.id, core, now_ns);
            for succ in &out.ready {
                probe.task_ready(succ.id, now_ns);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creation_token_prevents_premature_ready() {
        let a = RtNode::bare(TaskId(0), "a", None, 0);
        let b = RtNode::bare(TaskId(1), "b", None, 0);
        assert!(a.attach_succ(&b));
        // b has token + 1 pred = 2 pending; sealing only drops the token.
        assert!(!b.seal());
        let done = a.complete();
        assert_eq!(done.released, 1);
        assert_eq!(done.ready.len(), 1, "b ready after its only pred");
        assert_eq!(done.ready[0].id, TaskId(1));
    }

    #[test]
    fn edge_to_completed_node_is_pruned() {
        let a = RtNode::bare(TaskId(0), "a", None, 0);
        let b = RtNode::bare(TaskId(1), "b", None, 0);
        a.complete();
        assert!(!a.attach_succ(&b));
        assert!(b.seal(), "b is a root: ready on seal");
    }

    #[test]
    fn root_ready_on_seal() {
        let a = RtNode::bare(TaskId(0), "a", None, 0);
        assert!(a.seal());
    }

    #[test]
    fn multiple_preds_release_in_any_order() {
        let p1 = RtNode::bare(TaskId(0), "p1", None, 0);
        let p2 = RtNode::bare(TaskId(1), "p2", None, 0);
        let s = RtNode::bare(TaskId(2), "s", None, 0);
        p1.attach_succ(&s);
        p2.attach_succ(&s);
        assert!(!s.seal());
        assert!(p2.complete().ready.is_empty());
        let done = p1.complete();
        assert_eq!(done.ready.len(), 1);
    }

    #[test]
    fn duplicate_edges_require_duplicate_releases() {
        // Without optimization (b), the same (pred, succ) pair may carry
        // two edges; correctness demands both be released.
        let p = RtNode::bare(TaskId(0), "p", None, 0);
        let s = RtNode::bare(TaskId(1), "s", None, 0);
        p.attach_succ(&s);
        p.attach_succ(&s);
        s.seal();
        let done = p.complete();
        assert_eq!(done.released, 2);
        assert_eq!(
            done.ready.len(),
            1,
            "ready exactly once, on the last release"
        );
    }

    #[test]
    fn wide_fanout_spills_and_still_releases_every_successor() {
        let p = RtNode::bare(TaskId(0), "p", None, 0);
        let succs: Vec<NodeRef> = (1..=2 * SUCC_INLINE as u32)
            .map(|i| RtNode::bare(TaskId(i), "s", None, 0))
            .collect();
        for s in &succs {
            assert!(p.attach_succ(s));
            s.seal();
        }
        let done = p.complete();
        assert_eq!(done.released, 2 * SUCC_INLINE);
        assert_eq!(done.ready.len(), 2 * SUCC_INLINE);
    }

    #[test]
    fn persistent_succs_survive_completion() {
        let p = RtNode::bare(TaskId(0), "p", None, 0);
        let s = RtNode::bare(TaskId(1), "s", None, 0);
        p.set_persistent_succs(vec![s.clone()]);
        p.rearm_persistent(0, 1);
        s.rearm_persistent(1, 1);
        // publish: drop visibility tokens
        assert!(p.seal());
        assert!(!s.seal());
        let d1 = p.complete();
        assert_eq!(d1.ready.len(), 1);
        // next iteration: same links, no reallocation
        p.rearm_persistent(0, 2);
        s.rearm_persistent(1, 2);
        assert!(p.seal());
        assert!(!s.seal());
        let d2 = p.complete();
        assert_eq!(d2.ready.len(), 1);
    }

    #[test]
    fn fast_rearm_matches_full_reset_for_persistent_nodes() {
        let p = RtNode::bare(TaskId(0), "p", None, 0);
        let s = RtNode::bare(TaskId(1), "s", None, 0);
        p.set_persistent_succs(vec![s.clone()]);
        s.set_persistent_succs(vec![]);
        p.rearm_persistent(0, 1);
        s.rearm_persistent(1, 1);
        assert_eq!(p.pending(), 1);
        assert_eq!(s.pending(), 2);
        assert!(p.seal());
        assert!(!s.seal());
        let d = p.complete();
        assert_eq!(d.ready.len(), 1);
        assert_eq!(p.iter.load(Ordering::Relaxed), 1);
        // and again, after the completion above
        p.rearm_persistent(0, 2);
        s.rearm_persistent(1, 2);
        assert!(p.seal());
        assert!(!s.seal());
        assert_eq!(p.complete().ready.len(), 1);
    }
}
