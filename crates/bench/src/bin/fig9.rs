//! Fig. 9 — HPCG across the vector-block (TPL) sweep: time breakdown,
//! communication time and overlap, average edges per task and task grain.
//!
//! The paper runs 32 ranks of 24 threads; we simulate an 8-rank cubic job
//! on the 24-core node model with SpMV sub-blocking fixed by the stencil
//! reach, as in our port.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin fig9
//! ```

use ptdg_bench::{arr, emit_json, maybe_trace, obj, quick, rule, s};
use ptdg_hpcg::{HpcgBsp, HpcgConfig, HpcgTask};
use ptdg_simrt::{simulate_bsp, simulate_tasks, MachineConfig, SimConfig};

fn main() {
    let machine = MachineConfig::skylake_24();
    let (nx, iters, ranks, sweep): (usize, u64, u32, &[usize]) = if quick() {
        (128, 4, 8, &[96, 240, 480])
    } else {
        (128, 6, 8, &[24, 48, 96, 144, 240, 384, 480, 768, 960, 1536])
    };

    let base = HpcgConfig {
        px: 2,
        ..HpcgConfig::single(nx, iters, 1)
    };
    let sim0 = SimConfig {
        n_ranks: ranks,
        work_jitter: 0.05,
        ..Default::default()
    };
    let bsp_prog = HpcgBsp::new(base);
    let bsp = simulate_bsp(&machine, &sim0, &bsp_prog.space, &bsp_prog);
    println!("Fig. 9 — HPCG n={nx}³/rank, {iters} CG iterations on {ranks} ranks × 24 cores");
    println!("parallel-for reference: {} s\n", s(bsp.total_time_s()));

    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>10} {:>9} | {:>8} {:>7} | {:>10} {:>10}",
        "TPL",
        "work/c",
        "idle/c",
        "ovh/c",
        "discovery",
        "total",
        "comm(s)",
        "ovl%",
        "edges/task",
        "grain(µs)"
    );
    rule(110);
    let mut best = (0usize, f64::INFINITY);
    let mut rows = Vec::new();
    for &tpl in sweep {
        let cfg = HpcgConfig {
            px: 2,
            ..HpcgConfig::single(nx, iters, tpl)
        };
        let prog = HpcgTask::new(cfg);
        let r = simulate_tasks(&machine, &sim0, &prog.space, &prog);
        let rank = r.rank(0);
        let total = r.total_time_s();
        if total < best.1 {
            best = (tpl, total);
        }
        println!(
            "{tpl:>6} {:>9} {:>9} {:>9} {:>10} {:>9} | {:>8} {:>6.0}% | {:>10.1} {:>10.1}",
            s(rank.avg_work_s()),
            s(rank.avg_idle_s()),
            s(rank.avg_overhead_s()),
            s(rank.discovery_s()),
            s(total),
            s(rank.comm_s()),
            100.0 * rank.overlap_ratio(),
            rank.disc.edges_attempted() as f64 / rank.disc.tasks as f64,
            rank.mean_grain_s() * 1e6,
        );
        rows.push(obj([
            ("tpl", tpl.into()),
            ("breakdown", ptdg_bench::breakdown_json(rank, total)),
            ("comm_s", rank.comm_s().into()),
            ("overlap_ratio", rank.overlap_ratio().into()),
            (
                "edges_per_task",
                (rank.disc.edges_attempted() as f64 / rank.disc.tasks as f64).into(),
            ),
            ("grain_s", rank.mean_grain_s().into()),
        ]));
    }
    rule(110);
    println!(
        "best TPL = {} at {} s ({:.2}x vs parallel-for)",
        best.0,
        s(best.1),
        bsp.total_time_s() / best.1
    );
    println!(
        "(paper: best total at TPL=144 (~1 ms grain) for 1.1x over parallel\n\
         for; the best *work* time needs the finest 80 µs grain but loses it\n\
         to runtime contention; overlap ratio stays <=23% — HPCG simply has\n\
         too little communication to hide; edges/task grows with refinement)"
    );
    emit_json(
        "fig9",
        obj([
            ("nx", nx.into()),
            ("iterations", iters.into()),
            ("ranks", (ranks as u64).into()),
            ("parallel_for_s", bsp.total_time_s().into()),
            ("best_tpl", best.0.into()),
            ("best_total_s", best.1.into()),
            ("rows", arr(rows)),
        ]),
    );
    let cfg = HpcgConfig {
        px: 2,
        ..HpcgConfig::single(nx, iters, best.0)
    };
    let prog = HpcgTask::new(cfg);
    maybe_trace("fig9", &machine, &sim0, &prog.space, &prog);
}
