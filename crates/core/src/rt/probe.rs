//! Unified profiling hooks for the runtime kernel.
//!
//! Both back-ends report the same task-lifecycle events through one
//! [`RtProbe`]; the wall-clock executor timestamps them itself, the
//! simulator stamps them with virtual time. Either way the result is a
//! [`crate::profile::Trace`] fed to one analysis pipeline.

use crate::profile::{Span, Trace};
use crate::task::TaskId;
use std::sync::Mutex;

/// Observer of kernel-level task events. All hooks default to no-ops so a
/// backend only implements what it measures.
pub trait RtProbe: Send + Sync {
    /// A task was created by discovery or re-instancing.
    fn task_created(&self, _id: TaskId) {}
    /// A task's last dependence was satisfied.
    fn task_ready(&self, _id: TaskId) {}
    /// A task was handed to a core.
    fn task_scheduled(&self, _id: TaskId, _core: usize) {}
    /// A task finished.
    fn task_completed(&self, _id: TaskId, _core: usize) {}
    /// A communication operation was posted (detached task).
    fn comm_posted(&self, _id: TaskId) {}
    /// A timed span was measured on a lane.
    fn span(&self, _span: Span) {}
}

/// The probe that measures nothing.
#[derive(Default, Clone, Copy)]
pub struct NullProbe;

impl RtProbe for NullProbe {}

/// A probe that collects [`Span`]s into per-lane buffers (lane =
/// worker/core index, plus one extra lane for the producer).
pub struct SpanCollector {
    bufs: Vec<Mutex<Vec<Span>>>,
}

impl SpanCollector {
    /// A collector with `lanes` buffers.
    pub fn new(lanes: usize) -> Self {
        SpanCollector {
            bufs: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// All collected spans, unordered (virtual-time back-end: timestamps
    /// are already zero-based).
    pub fn take_spans(&self) -> Vec<Span> {
        let mut all = Vec::new();
        for b in &self.bufs {
            all.append(&mut b.lock().unwrap_or_else(|e| e.into_inner()));
        }
        all
    }

    /// Build a [`Trace`], rebasing all timestamps so the earliest span
    /// starts at zero (wall-clock back-end: spans carry `Instant`-derived
    /// offsets from an arbitrary origin).
    pub fn take_trace(&self, n_workers: usize, discovery_ns: u64) -> Trace {
        let mut spans = self.take_spans();
        let t_min = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let t_max = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        for s in &mut spans {
            s.start_ns -= t_min;
            s.end_ns -= t_min;
        }
        Trace {
            spans,
            n_workers,
            discovery_ns,
            span_ns: t_max - t_min,
        }
    }
}

impl RtProbe for SpanCollector {
    fn span(&self, span: Span) {
        let lane = (span.worker as usize).min(self.bufs.len().saturating_sub(1));
        self.bufs[lane]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SpanKind;

    #[test]
    fn collector_rebases_trace() {
        let c = SpanCollector::new(2);
        c.span(Span {
            worker: 0,
            start_ns: 1_000,
            end_ns: 1_500,
            kind: SpanKind::Work,
            name: "a",
            iter: 0,
        });
        c.span(Span {
            worker: 1,
            start_ns: 1_200,
            end_ns: 2_000,
            kind: SpanKind::Work,
            name: "b",
            iter: 0,
        });
        let t = c.take_trace(2, 42);
        assert_eq!(t.span_ns, 1_000);
        assert_eq!(t.discovery_ns, 42);
        assert_eq!(t.spans.iter().map(|s| s.start_ns).min(), Some(0));
    }
}
