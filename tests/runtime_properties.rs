//! Property-based tests of the runtime: random dependent-task programs
//! must execute with sequential semantics on the real executor, and the
//! discovery optimizations must never change reachability.

use proptest::prelude::*;
use ptdg::core::access::AccessMode;
use ptdg::core::exec::{ExecConfig, Executor, SchedPolicy};
use ptdg::core::graph::{DiscoveryEngine, GraphTemplate, TemplateRecorder};
use ptdg::core::handle::HandleSpace;
use ptdg::core::opts::OptConfig;
use ptdg::core::task::TaskSpec;
use ptdg::core::throttle::ThrottleConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const N_HANDLES: usize = 6;

/// A random program: per task, 1..=3 depend items (handle, mode).
#[derive(Clone, Debug)]
struct ProgSpec {
    tasks: Vec<Vec<(usize, u8)>>,
}

fn prog_strategy(max_tasks: usize, allow_set: bool) -> impl Strategy<Value = ProgSpec> {
    let mode_max = if allow_set { 4u8 } else { 3u8 };
    prop::collection::vec(
        prop::collection::vec((0..N_HANDLES, 0..mode_max), 1..=3),
        1..=max_tasks,
    )
    .prop_map(|tasks| ProgSpec { tasks })
}

fn mode_of(m: u8) -> AccessMode {
    match m {
        0 => AccessMode::In,
        1 => AccessMode::Out,
        2 => AccessMode::InOut,
        _ => AccessMode::InOutSet,
    }
}

/// Build the template graph of a program under `opts`.
fn template_of(prog: &ProgSpec, opts: OptConfig) -> GraphTemplate {
    let mut space = HandleSpace::new();
    let handles: Vec<_> = (0..N_HANDLES).map(|_| space.region("h", 64)).collect();
    let mut eng = DiscoveryEngine::new(opts);
    let mut rec = TemplateRecorder::new(false);
    for deps in &prog.tasks {
        let mut spec = TaskSpec::new("t");
        let mut seen = Vec::new();
        for &(h, m) in deps {
            if seen.contains(&h) {
                continue; // one access per handle per task
            }
            seen.push(h);
            spec = spec.depend(handles[h], mode_of(m));
        }
        eng.submit(&mut rec, &spec);
    }
    rec.finish()
}

/// Reachability closure by DFS from every node (redirect edges may point
/// to lower ids, so no sweep order can be assumed).
#[allow(clippy::needless_range_loop)]
fn closure(t: &GraphTemplate) -> Vec<Vec<bool>> {
    let n = t.n_nodes();
    let mut reach = vec![vec![false; n]; n];
    for u in 0..n {
        let mut stack: Vec<usize> = t
            .successors(ptdg::core::task::TaskId(u as u32))
            .map(|v| v.index())
            .collect();
        while let Some(v) = stack.pop() {
            if !reach[u][v] {
                reach[u][v] = true;
                stack.extend(
                    t.successors(ptdg::core::task::TaskId(v as u32))
                        .map(|w| w.index()),
                );
            }
        }
    }
    reach
}

/// Project a closure onto application tasks only (drop redirects).
fn task_closure(t: &GraphTemplate) -> Vec<(u32, u32)> {
    let reach = closure(t);
    let task_ids: Vec<usize> = t
        .ids()
        .filter(|&id| !t.node(id).is_redirect)
        .map(|id| id.index())
        .collect();
    let mut pairs = Vec::new();
    for (ai, &a) in task_ids.iter().enumerate() {
        for (bi, &b) in task_ids.iter().enumerate() {
            if reach[a][b] {
                pairs.push((ai as u32, bi as u32));
            }
        }
    }
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Optimization (b) removes only duplicates: same reachability.
    #[test]
    fn dedup_preserves_reachability(prog in prog_strategy(24, true)) {
        let plain = template_of(&prog, OptConfig::none());
        let dedup = template_of(&prog, OptConfig::dedup_only());
        prop_assert_eq!(task_closure(&plain), task_closure(&dedup));
        prop_assert!(dedup.n_edges() <= plain.n_edges());
    }

    /// Optimization (c) re-routes through redirects: same reachability
    /// between application tasks.
    #[test]
    fn redirect_preserves_reachability(prog in prog_strategy(24, true)) {
        let plain = template_of(&prog, OptConfig::none());
        let redir = template_of(&prog, OptConfig::redirect_only());
        prop_assert_eq!(task_closure(&plain), task_closure(&redir));
    }

    /// Both together too.
    #[test]
    fn all_optimizations_preserve_reachability(prog in prog_strategy(24, true)) {
        let plain = template_of(&prog, OptConfig::none());
        let all = template_of(&prog, OptConfig::all());
        prop_assert_eq!(task_closure(&plain), task_closure(&all));
    }

    /// The template is always acyclic; without redirects it is even
    /// id-ordered.
    #[test]
    fn templates_are_acyclic(prog in prog_strategy(32, true)) {
        for opts in [OptConfig::none(), OptConfig::all()] {
            prop_assert!(template_of(&prog, opts).is_acyclic());
        }
        prop_assert!(template_of(&prog, OptConfig::dedup_only()).is_topologically_ordered());
    }

    /// Executing a random program (without inoutset) on the thread
    /// executor respects sequential read/write ordering exactly.
    #[test]
    fn execution_respects_sequential_semantics(
        prog in prog_strategy(30, false),
        workers in 1usize..4,
    ) {
        // Oracle: sequential write counts per handle before each task.
        let n = prog.tasks.len();
        let mut writes_before = vec![[0usize; N_HANDLES]; n];
        let mut wcount = [0usize; N_HANDLES];
        let mut deduped: Vec<Vec<(usize, u8)>> = Vec::with_capacity(n);
        for (t, deps) in prog.tasks.iter().enumerate() {
            let mut seen = Vec::new();
            let mut d = Vec::new();
            for &(h, m) in deps {
                if seen.contains(&h) {
                    continue;
                }
                seen.push(h);
                d.push((h, m));
                writes_before[t][h] = wcount[h];
            }
            for &(h, m) in &d {
                if m != 0 {
                    wcount[h] += 1;
                }
            }
            deduped.push(d);
        }

        let mut space = HandleSpace::new();
        let handles: Vec<_> = (0..N_HANDLES).map(|_| space.region("h", 64)).collect();
        let counters: Arc<Vec<AtomicUsize>> =
            Arc::new((0..N_HANDLES).map(|_| AtomicUsize::new(0)).collect());
        let violations = Arc::new(AtomicUsize::new(0));

        let exec = Executor::new(ExecConfig {
            n_workers: workers,
            policy: SchedPolicy::DepthFirst,
            throttle: ThrottleConfig::unbounded(),
            profile: false,
            record_events: false,
        });
        let mut session = exec.session(OptConfig::all());
        for (t, deps) in deduped.iter().enumerate() {
            let mut spec = TaskSpec::new("t");
            for &(h, m) in deps {
                spec = spec.depend(handles[h], mode_of(m));
            }
            let deps = deps.clone();
            let counters = counters.clone();
            let violations = violations.clone();
            let expected = writes_before[t];
            spec = spec.body(move |_| {
                // At body entry, the observed per-handle write count must
                // equal the sequential count (reads block later writers;
                // writers block everything later).
                for &(h, m) in &deps {
                    let seen = counters[h].load(Ordering::SeqCst);
                    if seen != expected[h] {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    let _ = m;
                }
                for &(h, m) in &deps {
                    if m != 0 {
                        counters[h].fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
            session.submit(spec);
        }
        session.wait_all();
        prop_assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    /// Edge accounting is consistent whatever the optimization set.
    #[test]
    fn edge_accounting_is_consistent(prog in prog_strategy(32, true)) {
        for opts in [OptConfig::none(), OptConfig::dedup_only(), OptConfig::all()] {
            let mut space = HandleSpace::new();
            let handles: Vec<_> = (0..N_HANDLES).map(|_| space.region("h", 64)).collect();
            let mut eng = DiscoveryEngine::new(opts);
            let mut rec = TemplateRecorder::new(false);
            for deps in &prog.tasks {
                let mut spec = TaskSpec::new("t");
                let mut seen = Vec::new();
                for &(h, m) in deps {
                    if seen.contains(&h) { continue; }
                    seen.push(h);
                    spec = spec.depend(handles[h], mode_of(m));
                }
                eng.submit(&mut rec, &spec);
            }
            let st = eng.stats();
            let t = rec.finish();
            prop_assert_eq!(st.edges_created, t.n_edges());
            prop_assert_eq!(st.edges_created + st.dup_skipped, st.edges_attempted());
            if !opts.dedup_edges {
                prop_assert_eq!(st.dup_probes, 0);
                prop_assert_eq!(st.dup_skipped, 0);
            }
            prop_assert_eq!(st.nodes() as usize, t.n_nodes());
        }
    }
}

/// Inoutset members all complete before any subsequent reader starts,
/// under randomized group sizes (non-proptest stress variant).
#[test]
fn inoutset_barrier_semantics_under_stress() {
    let mut space = HandleSpace::new();
    let h = space.region("x", 64);
    for trial in 0..20 {
        let exec = Executor::new(ExecConfig {
            n_workers: 4,
            policy: SchedPolicy::DepthFirst,
            throttle: ThrottleConfig::unbounded(),
            profile: false,
            record_events: false,
        });
        let m = 3 + (trial % 5);
        let done = Arc::new(AtomicUsize::new(0));
        let mut session = exec.session(if trial % 2 == 0 {
            OptConfig::all()
        } else {
            OptConfig::none()
        });
        for _ in 0..m {
            let done = done.clone();
            session.submit(
                TaskSpec::new("member")
                    .depend(h, AccessMode::InOutSet)
                    .body(move |_| {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                        done.fetch_add(1, Ordering::SeqCst);
                    }),
            );
        }
        let done2 = done.clone();
        session.submit(
            TaskSpec::new("reader")
                .depend(h, AccessMode::In)
                .body(move |_| {
                    assert_eq!(done2.load(Ordering::SeqCst), m, "trial {trial}");
                }),
        );
        session.wait_all();
        assert_eq!(done.load(Ordering::SeqCst), m);
    }
}
