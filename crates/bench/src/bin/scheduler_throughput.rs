//! Scheduler fast-path throughput: lock-free Chase–Lev + injector vs
//! the `Mutex<VecDeque>` baseline, on empty-body task dispatch.
//!
//! The quantity the paper's Fig. 1/2 sweeps are bounded by once TPL
//! refines past the core count is tasks *dispatched* per second — queue
//! handoff plus wakeup latency, not task work. Two measurements per
//! (workers, backend) point:
//!
//! * `raw` — one producer pushes into a bare `ReadyQueues`, `W` threads
//!   pop; isolates the queue structures themselves.
//! * `e2e` — a discovery session submits empty tasks into the executor
//!   (`fanout` shape: one root releasing all others on completion, so
//!   successors land on one worker's deque and the rest must steal).
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin scheduler_throughput [--json out.json]
//! ```

use ptdg_bench::{arr, emit_json, obj, quick, rule, Json};
use ptdg_core::exec::{ExecConfig, Executor, QueueBackend, SchedPolicy};
use ptdg_core::handle::HandleSpace;
use ptdg_core::opts::OptConfig;
use ptdg_core::rt::ReadyQueues;
use ptdg_core::task::TaskSpec;
use ptdg_core::throttle::ThrottleConfig;
use ptdg_core::AccessMode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

const REPS: usize = 3;

/// Raw queue throughput: one producer, `workers` consumers, `n` items.
/// Returns items/second (best of `REPS`).
fn raw_tasks_per_s(backend: QueueBackend, workers: usize, n: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let q = Arc::new(ReadyQueues::with_backend(
            SchedPolicy::DepthFirst,
            workers,
            backend,
        ));
        let consumed = Arc::new(AtomicUsize::new(0));
        let t0 = Instant::now();
        let threads: Vec<_> = (0..workers)
            .map(|w| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || loop {
                    if q.pop(Some(w)).is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else if consumed.load(Ordering::Relaxed) >= n {
                        return;
                    } else {
                        // Yield, don't spin: the sweep includes worker
                        // counts above the core count and a spinning
                        // consumer would starve the producer there.
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for i in 0..n {
            q.push(i as u32, None);
        }
        for th in threads {
            th.join().unwrap();
        }
        best = best.max(n as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// End-to-end executor throughput on an empty-body fan-out: one root
/// task releases `n` successors at once on completion. Returns
/// tasks/second (best of `REPS`), counting the root.
fn e2e_tasks_per_s(backend: QueueBackend, workers: usize, n: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let e = Executor::with_queue_backend(
            ExecConfig {
                n_workers: workers,
                policy: SchedPolicy::DepthFirst,
                throttle: ThrottleConfig::unbounded(),
                profile: false,
                record_events: false,
            },
            backend,
        );
        let mut space = HandleSpace::new();
        let root = space.region("root", 64);
        let leaves: Vec<_> = (0..n).map(|_| space.region("leaf", 64)).collect();
        let t0 = Instant::now();
        let mut s = e.session(OptConfig::all());
        s.submit(
            TaskSpec::new("root")
                .depend(root, AccessMode::Out)
                .body(|_| {}),
        );
        for &leaf in &leaves {
            s.submit(
                TaskSpec::new("leaf")
                    .depend(root, AccessMode::In)
                    .depend(leaf, AccessMode::Out)
                    .body(|_| {}),
            );
        }
        s.wait_all();
        best = best.max((n + 1) as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = quick();
    let (raw_n, e2e_n) = if quick {
        (50_000, 10_000)
    } else {
        (500_000, 100_000)
    };
    // Always sweep 1/2/4 — the acceptance point is >= 4 workers even on
    // small runners (oversubscription, if any, hits both backends
    // equally) — and add the machine width when it goes further.
    let max_workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut sweep: Vec<usize> = vec![1, 2, 4];
    if max_workers > 4 {
        sweep.push(max_workers.min(16));
    }

    println!("scheduler throughput — lock-free vs mutex ReadyQueues (empty-body tasks)");
    println!("raw: {raw_n} items, 1 producer + W consumers | e2e: {e2e_n}-wide fan-out\n");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>9}",
        "workers", "mode", "mutex(t/s)", "lockfree(t/s)", "speedup"
    );
    rule(62);

    let mut rows: Vec<Json> = Vec::new();
    let mut win_at_4 = true;
    for &w in &sweep {
        for (mode, f) in [
            (
                "raw",
                raw_tasks_per_s as fn(QueueBackend, usize, usize) -> f64,
            ),
            (
                "e2e",
                e2e_tasks_per_s as fn(QueueBackend, usize, usize) -> f64,
            ),
        ] {
            let n = if mode == "raw" { raw_n } else { e2e_n };
            let locked = f(QueueBackend::Locked, w, n);
            let lockfree = f(QueueBackend::LockFree, w, n);
            let speedup = lockfree / locked;
            // The acceptance quantity is scheduler dispatch throughput
            // (the fan-out); raw rows are informational.
            if mode == "e2e" && w >= 4 && speedup <= 1.0 {
                win_at_4 = false;
            }
            println!("{w:>8} {mode:>12} {locked:>14.0} {lockfree:>14.0} {speedup:>8.2}x");
            rows.push(obj([
                ("workers", (w as u64).into()),
                ("mode", mode.into()),
                ("mutex_tasks_per_s", locked.into()),
                ("lockfree_tasks_per_s", lockfree.into()),
                ("speedup", speedup.into()),
            ]));
        }
    }
    rule(62);
    println!(
        "lock-free beats mutex at every point with >= 4 workers: {}",
        if win_at_4 { "yes" } else { "NO" }
    );
    emit_json(
        "scheduler_throughput",
        obj([
            ("raw_items", (raw_n as u64).into()),
            ("e2e_tasks", (e2e_n as u64).into()),
            ("rows", arr(rows)),
            ("lockfree_wins_at_4_workers", win_at_4.into()),
        ]),
    );
}
