//! The backend-agnostic program abstraction.
//!
//! A [`RankProgram`] describes a task-based application as one sequential
//! task stream per rank per iteration — the analogue of the OpenMP
//! `single` region of the paper's Listing 1. The same value runs
//! unmodified on the wall-clock thread executor
//! ([`crate::exec::run_program`]) and on the discrete-event simulator
//! (`ptdg_simrt::simulate_tasks`); the back-end is chosen at the call
//! site, not in application code.

use crate::builder::TaskSubmitter;

/// Rank index.
pub type Rank = u32;

/// A task-based application: one sequential task stream per rank per
/// iteration.
///
/// Implementations must generate the same task stream for a given
/// `(rank, iter)` every time they are asked (the simulator may replay), and
/// the same *dependency scheme* across iterations when run persistently.
pub trait RankProgram {
    /// Iterations to run.
    fn n_iterations(&self) -> u64;

    /// Generate the tasks of `iter` on `rank`.
    fn build_iteration(&self, rank: Rank, iter: u64, sub: &mut dyn TaskSubmitter);

    /// How many ranks this program spans. Defaults to 1; cost-model
    /// programs override it, programs carrying real shared-memory state
    /// stay single-rank (there is no memory transport between ranks).
    fn n_ranks(&self) -> Rank {
        1
    }
}
