//! The reference `parallel for` LULESH (paper §2.1).
//!
//! Same loop sequence and data flow as the task version, expressed as
//! fork-join phases: each loop is statically chunked over cores and ends
//! in a barrier; the dt all-reduce blocks at the start of the iteration;
//! the neighbor exchange blocks between iterations.

use crate::config::*;
use crate::mesh::{Mesh, RankGrid};
use ptdg_core::handle::{DataHandle, HandleSpace};
use ptdg_core::workdesc::HandleSlice;
use ptdg_simrt::{BspPhase, BspProgram, Rank};

/// Whole-array handles of the fork-join version.
pub struct LuleshBsp {
    /// Run configuration (TPL is ignored: chunking is per-core).
    pub cfg: LuleshConfig,
    /// The handle space to pass to the simulator.
    pub space: HandleSpace,
    pos: [DataHandle; 3],
    vel: [DataHandle; 3],
    force: [DataHandle; 3],
    mass: DataHandle,
    sig: DataHandle,
    kin: [DataHandle; 2],
    eos: [DataHandle; 4],
    qgrad: [DataHandle; 2],
    qq: [DataHandle; 2],
    epass: [DataHandle; 2],
    acc: [DataHandle; 3],
    tmp_elem: DataHandle,
    tmp_node: DataHandle,
}

impl LuleshBsp {
    /// Register the whole-array regions.
    pub fn new(cfg: LuleshConfig) -> LuleshBsp {
        let mesh = Mesh::new(cfg.s);
        let nn = (mesh.n_nodes() * 8) as u64;
        let ne = (mesh.n_elems() * 8) as u64;
        let mut space = HandleSpace::new();
        let tmp_elem = space.region("tmp_elem", (mesh.n_elems() * 8 * 6) as u64);
        let tmp_node = space.region("tmp_node", (mesh.n_nodes() * 8 * 2) as u64);
        let pos = [
            space.region("x", nn),
            space.region("y", nn),
            space.region("z", nn),
        ];
        let vel = [
            space.region("xd", nn),
            space.region("yd", nn),
            space.region("zd", nn),
        ];
        let force = [
            space.region("fx", nn),
            space.region("fy", nn),
            space.region("fz", nn),
        ];
        let mass = space.region("mass", nn);
        let sig = space.region("sig", ne);
        let kin = [space.region("v", ne), space.region("delv", ne)];
        let eos = [
            space.region("e", ne),
            space.region("p", ne),
            space.region("q", ne),
            space.region("ss", ne),
        ];
        let qgrad = [space.region("delv_xi", ne), space.region("delv_eta", ne)];
        let qq = [space.region("qq", ne), space.region("ql", ne)];
        let epass = [space.region("e_old", ne), space.region("work", ne)];
        let acc = [
            space.region("xdd", nn),
            space.region("ydd", nn),
            space.region("zdd", nn),
        ];
        LuleshBsp {
            cfg,
            space,
            pos,
            vel,
            force,
            mass,
            sig,
            kin,
            eos,
            qgrad,
            qq,
            epass,
            acc,
            tmp_elem,
            tmp_node,
        }
    }

    fn whole(&self, hs: &[DataHandle]) -> Vec<HandleSlice> {
        hs.iter()
            .map(|&h| HandleSlice::whole(h, self.space.info(h).bytes))
            .collect()
    }
}

impl BspProgram for LuleshBsp {
    fn n_iterations(&self) -> u64 {
        self.cfg.iterations
    }

    fn phases(&self, rank: Rank, _iter: u64) -> Vec<BspPhase> {
        let mesh = Mesh::new(self.cfg.s);
        let ne = mesh.n_elems() as f64;
        let nn = mesh.n_nodes() as f64;
        let mut v = Vec::new();
        // Blocking dt reduction at the start of the iteration.
        if self.cfg.n_ranks() > 1 {
            v.push(BspPhase::Allreduce { bytes: 8 });
        }
        v.push(BspPhase::Loop {
            name: "CalcStressForElems",
            flops: ne * F_STRESS,
            footprint: {
                let mut fp = self.whole(&[self.eos[1], self.eos[2]]);
                fp.extend(self.whole(&[self.sig]));
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "CalcForceForNodes",
            flops: nn * F_ZEROF,
            footprint: self.whole(&self.force),
        });
        v.push(BspPhase::Loop {
            name: "CalcFBHourglassForceForElems",
            flops: nn * F_FORCE,
            footprint: {
                let mut fp = self.whole(&[self.sig]);
                fp.extend(self.whole(&self.force));
                fp.extend(self.whole(&self.pos));
                fp.extend(self.whole(&[self.tmp_node]));
                fp.push(HandleSlice {
                    handle: self.tmp_elem,
                    offset: 0,
                    len: self.space.info(self.tmp_elem).bytes * 4 / 6,
                });
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "CalcAccelerationForNodes",
            flops: nn * F_ACCSOLVE,
            footprint: {
                let mut fp = self.whole(&self.force);
                fp.extend(self.whole(&self.acc));
                fp.extend(self.whole(&[self.mass]));
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "CalcVelocityForNodes",
            flops: nn * F_ACCEL,
            footprint: {
                let mut fp = self.whole(&self.acc);
                fp.extend(self.whole(&self.vel));
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "CalcPositionForNodes",
            flops: nn * F_POS,
            footprint: {
                let mut fp = self.whole(&self.vel);
                fp.extend(self.whole(&self.pos));
                fp
            },
        });
        // Blocking frontier exchange: the entire domain must be computed
        // before any request is posted (no overlap potential).
        if self.cfg.n_ranks() > 1 {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for nb in self.cfg.grid.neighbors(rank) {
                let bytes = RankGrid::message_bytes(self.cfg.s, nb.axes, EXCHANGE_FIELDS);
                sends.push((nb.rank, bytes, nb.dir as u32));
                recvs.push((nb.rank, bytes, RankGrid::opposite(nb.dir) as u32));
            }
            v.push(BspPhase::Exchange { sends, recvs });
        }
        v.push(BspPhase::Loop {
            name: "CalcLagrangeElements",
            flops: ne * F_KIN,
            footprint: {
                let mut fp = self.whole(&self.pos);
                fp.extend(self.whole(&self.vel));
                fp.extend(self.whole(&self.kin));
                fp.push(HandleSlice {
                    handle: self.tmp_elem,
                    offset: 0,
                    len: self.space.info(self.tmp_elem).bytes / 6,
                });
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "CalcMonotonicQGradientsForElems",
            flops: ne * F_QGRAD,
            footprint: {
                let mut fp = self.whole(&self.pos);
                fp.extend(self.whole(&self.vel));
                fp.extend(self.whole(&self.kin));
                fp.extend(self.whole(&self.qgrad));
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "CalcMonotonicQRegionForElems",
            flops: ne * F_QREGION,
            footprint: {
                let mut fp = self.whole(&self.qgrad);
                fp.extend(self.whole(&self.qq));
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "CalcEnergyForElems",
            flops: ne * F_EPASS,
            footprint: {
                let mut fp = self.whole(&self.kin);
                fp.extend(self.whole(&self.qq));
                fp.extend(self.whole(&self.epass));
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "EvalEOSForElems",
            flops: ne * F_EOS,
            footprint: {
                let mut fp = self.whole(&self.kin);
                fp.extend(self.whole(&self.eos));
                fp.extend(self.whole(&self.qq));
                fp.extend(self.whole(&self.epass));
                fp.push(HandleSlice {
                    handle: self.tmp_elem,
                    offset: 0,
                    len: self.space.info(self.tmp_elem).bytes / 3,
                });
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "UpdateVolumesForElems",
            flops: ne * F_UPDVOL,
            footprint: {
                let mut fp = self.whole(&self.eos);
                fp.extend(self.whole(&self.kin));
                fp
            },
        });
        v.push(BspPhase::Loop {
            name: "CalcCourantConstraintForElems",
            flops: ne * F_COURANT,
            footprint: self.whole(&[self.eos[3]]),
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_has_no_comm_phases() {
        let p = LuleshBsp::new(LuleshConfig::single(8, 2, 16));
        let phases = p.phases(0, 0);
        assert_eq!(phases.len(), 13);
        assert!(phases.iter().all(|ph| matches!(ph, BspPhase::Loop { .. })));
    }

    #[test]
    fn multi_rank_adds_allreduce_and_exchange() {
        let cfg = LuleshConfig {
            grid: RankGrid::cube(27),
            ..LuleshConfig::single(6, 1, 8)
        };
        let p = LuleshBsp::new(cfg);
        let phases = p.phases(13, 0); // center rank
        assert!(matches!(phases[0], BspPhase::Allreduce { bytes: 8 }));
        let ex = phases
            .iter()
            .find_map(|ph| match ph {
                BspPhase::Exchange { sends, recvs } => Some((sends.len(), recvs.len())),
                _ => None,
            })
            .expect("exchange phase");
        assert_eq!(ex, (26, 26));
    }

    #[test]
    fn bsp_send_recv_tags_pair_up() {
        let cfg = LuleshConfig {
            grid: RankGrid::cube(8),
            ..LuleshConfig::single(4, 1, 4)
        };
        let p = LuleshBsp::new(cfg);
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for r in 0..8u32 {
            for ph in p.phases(r, 0) {
                if let BspPhase::Exchange {
                    sends: s,
                    recvs: rc,
                } = ph
                {
                    for (peer, bytes, tag) in s {
                        sends.push((r, peer, tag, bytes));
                    }
                    for (peer, bytes, tag) in rc {
                        recvs.push((peer, r, tag, bytes));
                    }
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs);
    }
}
