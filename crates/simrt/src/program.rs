//! Program abstractions consumed by the virtual executors.

use ptdg_core::builder::TaskSubmitter;
use ptdg_core::workdesc::HandleSlice;

/// Rank index.
pub type Rank = u32;

/// A task-based application: one sequential task stream per rank per
/// iteration (the analogue of the OpenMP `single` region of Listing 1).
///
/// Implementations must generate the same task stream for a given
/// `(rank, iter)` every time they are asked (the simulator may replay), and
/// the same *dependency scheme* across iterations when run persistently.
pub trait RankProgram {
    /// Iterations to run.
    fn n_iterations(&self) -> u64;
    /// Generate the tasks of `iter` on `rank`.
    fn build_iteration(&self, rank: Rank, iter: u64, sub: &mut dyn TaskSubmitter);
}

/// One phase of a fork-join (`parallel for`) program.
#[derive(Clone, Debug)]
pub enum BspPhase {
    /// A mesh-wide parallel loop, statically chunked over cores.
    Loop {
        /// Loop name (profiling).
        name: &'static str,
        /// Total flops of the loop.
        flops: f64,
        /// Total footprint; each core touches its 1/n_cores contiguous
        /// chunk of every slice (static scheduling).
        footprint: Vec<HandleSlice>,
    },
    /// Post all non-blocking P2P requests, then wait for all of them
    /// (the paper's "communications outside OpenMP constructs").
    Exchange {
        /// `(peer, bytes, tag)` per send.
        sends: Vec<(Rank, u64, u32)>,
        /// `(peer, bytes, tag)` per receive.
        recvs: Vec<(Rank, u64, u32)>,
    },
    /// A blocking all-reduce.
    Allreduce {
        /// Payload bytes.
        bytes: u64,
    },
}

/// A fork-join application: the reference `parallel for` versions.
pub trait BspProgram {
    /// Iterations to run.
    fn n_iterations(&self) -> u64;
    /// The phases of `iter` on `rank`, executed in order with an implicit
    /// barrier after each.
    fn phases(&self, rank: Rank, iter: u64) -> Vec<BspPhase>;
}
