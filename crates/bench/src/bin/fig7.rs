//! Fig. 7 — distributed LULESH: time breakdown (top) and communication /
//! overlap (bottom) across the TPL sweep, for the `parallel for` version,
//! the non-optimized task version, and the optimized task version.
//!
//! The paper runs 125 ranks on 54 EPYC nodes; we simulate a 27-rank cubic
//! job (the center rank has the same 26-neighbor topology as the paper's
//! profiled rank 82) with 10% work jitter standing in for system noise.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin fig7     # ~10 min
//! PTDG_QUICK=1 cargo run --release -p ptdg-bench --bin fig7
//! ```

use ptdg_bench::{arr, emit_json, maybe_trace, obj, quick, rule, s, Json};
use ptdg_core::opts::OptConfig;
use ptdg_lulesh::{LuleshBsp, LuleshConfig, LuleshTask, RankGrid};
use ptdg_simrt::{simulate_bsp, simulate_tasks, MachineConfig, SimConfig};

fn main() {
    let machine = MachineConfig::epyc_16();
    let (ranks, mesh_s, iters, sweep): (u32, usize, u64, &[usize]) = if quick() {
        (8, 48, 2, &[48, 96, 192])
    } else {
        (27, 96, 4, &[64, 128, 192, 256, 384, 512])
    };
    let grid = RankGrid::cube(ranks as usize);
    // profile the center rank: full 26-neighbor connectivity
    let center = (ranks / 2) as usize as u32;
    let jitter = 0.10;

    println!("Fig. 7 — LULESH -s {mesh_s}/rank -i {iters} on {ranks} ranks × 16 cores (10% noise)");

    let base_cfg = LuleshConfig {
        grid,
        ..LuleshConfig::single(mesh_s, iters, 1)
    };
    let bsp_prog = LuleshBsp::new(base_cfg.clone());
    let sim0 = SimConfig {
        n_ranks: ranks,
        work_jitter: jitter,
        ..Default::default()
    };
    let bsp = simulate_bsp(&machine, &sim0, &bsp_prog.space, &bsp_prog);
    let br = bsp.rank(center);
    println!(
        "\nparallel-for reference: total {} s  (work/c {}, idle/c {}, comm {} s, overlap 0%)",
        s(bsp.total_time_s()),
        s(br.avg_work_s()),
        s(br.avg_idle_s()),
        s(br.comm_s()),
    );

    let mut variants = Vec::new();
    for (label, opts, fused, persistent) in [
        (
            "task-based, TDG optimizations disabled",
            OptConfig::redirect_only(),
            false,
            false,
        ),
        (
            "task-based, TDG optimizations enabled",
            OptConfig::all(),
            true,
            true,
        ),
    ] {
        println!("\n== {label} ==");
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>10} {:>9} | {:>9} {:>9} {:>8}",
            "TPL", "work/c", "idle/c", "ovh/c", "discovery", "total", "comm(s)", "ovl(s)", "ratio"
        );
        rule(96);
        let mut best = f64::INFINITY;
        let mut rows = Vec::new();
        for &tpl in sweep {
            let cfg = LuleshConfig {
                grid,
                fused_deps: fused,
                ..LuleshConfig::single(mesh_s, iters, tpl)
            };
            let prog = LuleshTask::new(cfg);
            let sim = SimConfig {
                n_ranks: ranks,
                opts,
                persistent,
                work_jitter: jitter,
                ..Default::default()
            };
            let r = simulate_tasks(&machine, &sim, &prog.space, &prog);
            let rank = r.rank(center);
            let total = r.total_time_s();
            best = best.min(total);
            println!(
                "{tpl:>6} {:>9} {:>9} {:>9} {:>10} {:>9} | {:>9} {:>9} {:>7.0}%",
                s(rank.avg_work_s()),
                s(rank.avg_idle_s()),
                s(rank.avg_overhead_s()),
                s(rank.discovery_s()),
                s(total),
                s(rank.comm_s()),
                s(rank.overlapped_ns as f64 * 1e-9 / rank.n_cores as f64),
                100.0 * rank.overlap_ratio(),
            );
            rows.push(obj([
                ("tpl", tpl.into()),
                ("breakdown", ptdg_bench::breakdown_json(rank, total)),
                ("comm_s", rank.comm_s().into()),
                ("overlap_ratio", rank.overlap_ratio().into()),
            ]));
        }
        println!(
            "best: {} s ({:.2}x vs parallel-for)",
            s(best),
            bsp.total_time_s() / best
        );
        variants.push(obj([
            ("label", label.into()),
            ("best_total_s", best.into()),
            ("rows", arr(rows)),
        ]));
    }

    // the +7% taskwait experiment (§4.1), at the best optimized TPL
    let tpl = sweep[sweep.len() / 2];
    let mut fenced_cfg = LuleshConfig {
        grid,
        taskwait_fenced: true,
        ..LuleshConfig::single(mesh_s, iters, tpl)
    };
    let sim = SimConfig {
        n_ranks: ranks,
        opts: OptConfig::all(),
        persistent: true,
        work_jitter: jitter,
        ..Default::default()
    };
    let fenced_prog = LuleshTask::new(fenced_cfg.clone());
    let fenced = simulate_tasks(&machine, &sim, &fenced_prog.space, &fenced_prog);
    fenced_cfg.taskwait_fenced = false;
    let free_prog = LuleshTask::new(fenced_cfg);
    let free = simulate_tasks(&machine, &sim, &free_prog.space, &free_prog);
    println!(
        "\ntaskwait-fenced communications at TPL={tpl}: {} s vs {} s integrated \
         (+{:.1}%; paper: 131.0 s vs 121.9 s, +7%)",
        s(fenced.total_time_s()),
        s(free.total_time_s()),
        100.0 * (fenced.total_time_s() / free.total_time_s() - 1.0)
    );
    println!(
        "(paper: optimized tasks are 2.0x vs parallel-for and 1.2x vs\n\
         non-optimized; overlap ratio >80% with optimizations vs ~50% without)"
    );
    emit_json(
        "fig7",
        obj([
            ("ranks", (ranks as u64).into()),
            ("mesh_s", mesh_s.into()),
            ("iterations", iters.into()),
            ("parallel_for_s", bsp.total_time_s().into()),
            ("variants", Json::Arr(variants)),
            ("taskwait_fenced_s", fenced.total_time_s().into()),
            ("taskwait_free_s", free.total_time_s().into()),
        ]),
    );
    // Trace rank 0 of the optimized distributed run (comm tasks included).
    let cfg = LuleshConfig {
        grid,
        ..LuleshConfig::single(mesh_s, iters, tpl)
    };
    let prog = LuleshTask::new(cfg);
    maybe_trace("fig7", &machine, &sim, &prog.space, &prog);
}
