//! End-to-end tile-Cholesky correctness on the real executor.

use ptdg::cholesky::{CholeskyConfig, CholeskyTask, TileMatrix};
use ptdg::core::exec::{ExecConfig, Executor, SchedPolicy};
use ptdg::core::opts::OptConfig;
use ptdg::core::throttle::ThrottleConfig;
use ptdg::simrt::RankProgram;

fn executor(workers: usize) -> Executor {
    Executor::new(ExecConfig {
        n_workers: workers,
        policy: SchedPolicy::DepthFirst,
        throttle: ThrottleConfig::unbounded(),
        profile: false,
        record_events: false,
    })
}

#[test]
fn task_factorization_is_numerically_correct() {
    let cfg = CholeskyConfig::single(5, 6, 1);
    let prog = CholeskyTask::with_matrix(cfg.clone(), 42);
    let exec = executor(3);
    let mut session = exec.session(OptConfig::all());
    prog.build_iteration(0, 0, &mut session);
    session.wait_all();
    let err = prog.matrix.as_ref().unwrap().factorization_error();
    assert!(err < 1e-9, "L·Lᵀ must equal A: {err}");
}

#[test]
fn task_factorization_matches_sequential_bitwise() {
    let cfg = CholeskyConfig::single(4, 5, 1);
    let prog = CholeskyTask::with_matrix(cfg.clone(), 7);
    let exec = executor(4);
    let mut session = exec.session(OptConfig::all());
    prog.build_iteration(0, 0, &mut session);
    session.wait_all();
    let reference = TileMatrix::new_spd(4, 5, 7);
    reference.factor_sequential();
    assert_eq!(prog.matrix.as_ref().unwrap().digest(), reference.digest());
}

#[test]
fn repeated_factorizations_via_persistent_region() {
    let cfg = CholeskyConfig::single(4, 4, 6);
    let prog = CholeskyTask::with_matrix(cfg.clone(), 3);
    let exec = executor(3);
    let mut region = exec.persistent_region(OptConfig::all());
    for iter in 0..cfg.iterations {
        region.run(iter, |sub| prog.build_iteration(0, iter, sub));
    }
    // every re-instanced factorization produced the same correct factor
    let err = prog.matrix.as_ref().unwrap().factorization_error();
    assert!(err < 1e-9, "persistent re-factorization broke: {err}");
    let reference = TileMatrix::new_spd(4, 4, 3);
    reference.factor_sequential();
    assert_eq!(prog.matrix.as_ref().unwrap().digest(), reference.digest());
    // reset + kernels captured once
    assert_eq!(
        region.template().unwrap().n_tasks(),
        cfg.n_tiles() + cfg.kernel_tasks()
    );
}

#[test]
fn streaming_iterations_also_match() {
    let cfg = CholeskyConfig::single(4, 4, 3);
    let prog = CholeskyTask::with_matrix(cfg.clone(), 11);
    let exec = executor(2);
    let mut session = exec.session(OptConfig::all());
    for iter in 0..cfg.iterations {
        prog.build_iteration(0, iter, &mut session);
    }
    session.wait_all();
    let reference = TileMatrix::new_spd(4, 4, 11);
    reference.factor_sequential();
    assert_eq!(prog.matrix.as_ref().unwrap().digest(), reference.digest());
}

#[test]
fn optimizations_are_neutral_for_cholesky_edges() {
    // Paper §4.4: (b)/(c) do not change the dense regular scheme.
    use ptdg::core::builder::RecordingSubmitter;
    use ptdg::core::graph::{DiscoveryEngine, TemplateRecorder};
    let cfg = CholeskyConfig::single(6, 4, 1);
    let prog = CholeskyTask::new(cfg);
    let mut rec = RecordingSubmitter::default();
    prog.build_iteration(0, 0, &mut rec);
    let count_edges = |opts: OptConfig| {
        let mut eng = DiscoveryEngine::new(opts);
        let mut sink = TemplateRecorder::new(false);
        for spec in &rec.specs {
            eng.submit(&mut sink, spec);
        }
        (eng.stats().edges_created, eng.stats().redirect_nodes)
    };
    let (e_none, r_none) = count_edges(OptConfig::none());
    let (e_all, r_all) = count_edges(OptConfig::all());
    assert_eq!(e_none, e_all, "no duplicate or inoutset edges to remove");
    assert_eq!(r_none, 0);
    assert_eq!(r_all, 0, "no redirect nodes in a dense regular scheme");
}
