//! §3.3 — Minimum Effective Task Granularity (Task Bench metric):
//! `METG(95%)` is the smallest average task grain at which an execution
//! still reaches 95% of the best efficiency measured across the sweep.
//!
//! ```sh
//! cargo run --release -p ptdg-bench --bin metg
//! ```

use ptdg_bench::{arr, emit_json, maybe_trace, obj, quick, rule, s, Json};
use ptdg_core::opts::OptConfig;
use ptdg_lulesh::{LuleshConfig, LuleshTask};
use ptdg_simrt::{simulate_tasks, MachineConfig, SimConfig};

fn main() {
    let machine = MachineConfig::skylake_24();
    let (mesh_s, iters) = if quick() { (48, 2) } else { (96, 4) };
    let sweep: &[usize] = if quick() {
        &[24, 48, 96, 192, 384]
    } else {
        &[24, 48, 96, 144, 192, 256, 384, 512, 768, 1024, 1536]
    };

    println!("METG — LULESH -s {mesh_s} -i {iters}, optimized runtime ((a)+(b)+(c)+(p))");
    println!(
        "{:>6} {:>12} {:>10} {:>12}",
        "TPL", "grain(µs)", "total(s)", "efficiency"
    );
    rule(44);

    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for &tpl in sweep {
        let cfg = LuleshConfig::single(mesh_s, iters, tpl);
        let prog = LuleshTask::new(cfg);
        let sim = SimConfig {
            opts: OptConfig::all(),
            persistent: true,
            ..Default::default()
        };
        let r = simulate_tasks(&machine, &sim, &prog.space, &prog);
        rows.push((tpl, r.rank(0).mean_grain_s() * 1e6, r.total_time_s()));
    }
    let best = rows
        .iter()
        .map(|&(_, _, t)| t)
        .fold(f64::INFINITY, f64::min);
    let mut metg: Option<f64> = None;
    for &(tpl, grain, total) in &rows {
        let eff = best / total;
        println!(
            "{tpl:>6} {:>12.1} {:>10} {:>11.0}%",
            grain,
            s(total),
            eff * 100.0
        );
        if eff >= 0.95 {
            metg = Some(metg.map_or(grain, |m: f64| m.min(grain)));
        }
    }
    rule(44);
    match metg {
        Some(g) => println!("METG(95%) = {g:.0} µs"),
        None => println!("METG(95%): no configuration reached 95% efficiency"),
    }
    println!(
        "(paper: 65 µs with 9,216 TPL on the optimized runtime — 1.5 orders\n\
         of magnitude below the ~1 ms reported for production OpenMP\n\
         runtimes in Task Bench)"
    );
    emit_json(
        "metg",
        obj([
            ("mesh_s", mesh_s.into()),
            ("iterations", iters.into()),
            ("metg_us", metg.map_or(Json::Null, |g| g.into())),
            (
                "rows",
                arr(rows
                    .iter()
                    .map(|&(tpl, grain, total)| {
                        obj([
                            ("tpl", tpl.into()),
                            ("grain_us", grain.into()),
                            ("total_s", total.into()),
                            ("efficiency", (best / total).into()),
                        ])
                    })
                    .collect()),
            ),
        ]),
    );
    // Trace the finest-grain configuration (the METG regime).
    let prog = LuleshTask::new(LuleshConfig::single(mesh_s, iters, *sweep.last().unwrap()));
    let sim = SimConfig {
        opts: OptConfig::all(),
        persistent: true,
        ..Default::default()
    };
    maybe_trace("metg", &machine, &sim, &prog.space, &prog);
}
