//! Worker pool: the *thread-pool policy* over the runtime kernel.
//!
//! Everything semantic — readiness, queue placement/steal order, hold
//! gate, throttling, profiling — lives in [`crate::rt`]; this file only
//! decides *which OS thread* consumes the queues and when the producer
//! helps.

use super::persistent::PersistentRegion;
use super::session::Session;
use crate::comm::{CommConfig, CommError, CommWorld};
use crate::obs::{EventRecorder, ObsReport};
use crate::opts::OptConfig;
use crate::profile::{Span, SpanKind, Trace};
use crate::rt::{HoldGate, NodeRef, Parker, ReadyQueues, ReadyTracker, RtProbe};
use crate::task::TaskCtx;
use crate::throttle::{ThrottleConfig, ThrottleGate};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub use crate::rt::{QueueBackend, SchedPolicy};

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Worker threads (the producer thread is additional and only helps
    /// during throttling and `wait_all`).
    pub n_workers: usize,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Producer throttling thresholds.
    pub throttle: ThrottleConfig,
    /// Record per-task spans for post-mortem analysis.
    pub profile: bool,
    /// Record the lifecycle event stream even without span profiling
    /// (events are cheap; spans cost two clock reads per task).
    pub record_events: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            n_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            policy: SchedPolicy::DepthFirst,
            throttle: ThrottleConfig::default(),
            profile: false,
            record_events: false,
        }
    }
}

/// The pool's slot in a [`CommWorld`]: which world, and as which rank.
pub(crate) struct CommCtx {
    pub world: Arc<CommWorld>,
    pub rank: u32,
}

pub(crate) struct Pool {
    pub queues: ReadyQueues<NodeRef>,
    pub tracker: Arc<ReadyTracker>,
    /// Non-overlapped mode: buffer ready tasks until released.
    pub gate: HoldGate<NodeRef>,
    pub throttle: ThrottleGate,
    pub shutdown: AtomicBool,
    /// Eventcount all idle threads (workers and the waiting producer)
    /// block on instead of sleep-polling. Wake discipline: `notify_one`
    /// per task pushed, `notify_all` on one-to-many events — gate
    /// release, reaching quiescence, shutdown, and (via the registered
    /// waker) comm deliveries from peer ranks. `Arc` so the comm world
    /// can hold it past this pool's lifetime.
    pub parker: Arc<Parker>,
    /// Park/unpark telemetry (Relaxed: stats only).
    pub parks: AtomicU64,
    pub unparks: AtomicU64,
    pub profile: bool,
    /// Lifecycle events are being recorded (`profile || record_events`):
    /// the clock must be read even where spans are off.
    pub record: bool,
    /// Lock-free span/event sink; one lane per worker plus one for the
    /// producer (last). Implements [`RtProbe`], so it is also the probe
    /// the kernel emit sites narrate through.
    pub recorder: Arc<EventRecorder>,
    pub start: Instant,
    pub last_discovery_ns: AtomicU64,
    /// Producer throttle stalls (count and helping time, ns).
    pub throttle_stalls: AtomicU64,
    pub throttle_stall_ns: AtomicU64,
    /// Communication tasks whose side effect was posted.
    pub comms_posted: AtomicU64,
    /// Detached requests whose completion was drained by this pool.
    pub comms_completed: AtomicU64,
    /// Summed post-to-completion latency, nanoseconds.
    pub comm_wait_ns: AtomicU64,
    /// Tasks between queue pop and completion, plus progress sweeps
    /// holding popped comm completions. Incremented *before* the pop
    /// (SeqCst on both sides): the deadlock sweep reads queue emptiness
    /// first and this second, so a task in motion is never invisible to
    /// both.
    pub in_flight: AtomicU32,
    /// This pool's slot in the communication world (a private 1-rank
    /// world unless built via [`Executor::with_comm_world`]).
    pub comm: CommCtx,
    n_workers: usize,
}

impl Pool {
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Clock read for lifecycle narration: free when nothing records.
    /// Gated on `record`, not `profile` — event-only tracing must still
    /// see real timestamps (the old `profile`-only gate stamped every
    /// event 0 when spans were off).
    fn probe_now(&self) -> u64 {
        if self.record {
            self.now_ns()
        } else {
            0
        }
    }

    /// Publish a task that just became ready; `local` is the core whose
    /// deque should receive it under depth-first (`None` = producer).
    ///
    /// Redirect nodes (optimization (c)) never queue: they carry no body,
    /// so they complete inline, immediately releasing their successors —
    /// the same shortcut the simulator takes, which keeps both back-ends'
    /// lifecycle streams identical (`Created → Ready → Completed`, no
    /// `Scheduled`, gate bypassed: a redirect "runs" the moment its
    /// predecessors are done even in non-overlapped mode, because its
    /// successors are still held by the gate).
    ///
    /// Iterative, not recursive: a chain of redirect nodes completing
    /// into one another is walked with an explicit worklist, so graphs
    /// with arbitrarily deep redirect chains cannot overflow the stack.
    /// The common case — one non-redirect node — allocates nothing.
    pub fn make_ready(&self, node: NodeRef, local: Option<usize>) {
        let mut next = Some(node);
        let mut worklist: Vec<NodeRef> = Vec::new();
        while let Some(node) = next.take().or_else(|| worklist.pop()) {
            if node.is_redirect {
                let core = local.unwrap_or(self.n_workers);
                let done = node.complete_with(&*self.recorder, core, self.probe_now());
                if self.tracker.completed() {
                    self.parker.notify_all();
                }
                worklist.extend(done.ready);
            } else if let Some(node) = self.gate.offer(node) {
                self.tracker.became_ready();
                self.queues.push(node, local);
                self.parker.notify_one();
            }
        }
    }

    /// Open the gate, flushing buffered ready tasks in discovery order.
    pub fn release_gate(&self) {
        let mut flushed = false;
        for node in self.gate.release() {
            self.tracker.became_ready();
            self.queues.push(node, None);
            flushed = true;
        }
        if flushed {
            self.parker.notify_all();
        }
    }

    /// Find a ready task from the perspective of worker `idx`
    /// (`None` = the producer). A successful find transfers an
    /// `in_flight` token to the caller; [`Pool::run_task`] releases it.
    pub fn find_task(&self, idx: Option<usize>) -> Option<NodeRef> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let found = self.queues.pop_with(idx, &*self.recorder, self.probe_now());
        if found.is_some() {
            self.tracker.scheduled();
        } else {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        found.map(|(node, _stolen)| node)
    }

    /// Execute one task on behalf of `worker_idx` (the producer uses index
    /// `n_workers`); `local` is the deque for newly-ready successors.
    ///
    /// A task carrying a [`crate::workdesc::CommOp`] detaches (paper
    /// Listing 1): its body runs, the request is posted to the comm
    /// world, and the core is released immediately — the node completes
    /// later, from [`Pool::progress_comm`], when the request matches.
    pub fn run_task(&self, node: NodeRef, local: Option<usize>, worker_idx: usize) {
        let ctx = TaskCtx {
            task: node.id,
            // Relaxed: `iter` is stamped before the node is published to a
            // queue; the queue transfer (mutex, or Release push → Acquire
            // pop/steal) is the happens-before edge that makes it visible.
            iter: node.iter.load(Ordering::Relaxed),
            worker: worker_idx,
        };
        let t0 = self.probe_now();
        if let Some(body) = &node.body {
            body(&ctx);
        }
        let t1 = self.probe_now();
        if self.profile {
            self.recorder.span(Span {
                worker: worker_idx as u32,
                start_ns: t0,
                end_ns: t1,
                kind: SpanKind::Work,
                name: node.name,
                iter: ctx.iter,
            });
        }
        if let Some(op) = node.comm {
            // Relaxed: statistic, read after the run quiesces.
            self.comms_posted.fetch_add(1, Ordering::Relaxed);
            let req = self.comm.world.alloc_req();
            // Narrate the post before handing the node over: the request
            // can match the instant it is posted, and CommCompleted must
            // not beat CommPosted into the event stream.
            self.recorder.comm_posted(node.id, req, worker_idx, t1);
            self.comm
                .world
                .post(self.comm.rank, node, op, self.now_ns(), req);
            // Post happened-before this release: the posted envelope's
            // epoch bump is visible to any deadlock sweep that sees us
            // go idle.
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        for succ in node.complete_with(&*self.recorder, worker_idx, t1).ready {
            self.make_ready(succ, local);
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        if self.tracker.completed() {
            // Last live task: wake everything blocked on quiescence (the
            // producer in `wait_all`/`taskwait`/persistent barriers, and
            // workers waiting out a shutdown drain).
            self.parker.notify_all();
        }
    }

    /// Drive the communication engine from an idle path: match arrived
    /// envelopes, then complete every detached node whose request is
    /// done. Returns whether anything moved. `local` is the deque for
    /// successors the completions release (`None` = producer).
    pub fn progress_comm(&self, local: Option<usize>) -> bool {
        // The in-flight bracket spans pop-to-completion: a completion in
        // hand is invisible to the deadlock sweep's queue-emptiness
        // check, so the busy token has to cover it.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let mut any = self.comm.world.progress(self.comm.rank);
        while let Some(done) = self.comm.world.pop_completion(self.comm.rank) {
            any = true;
            self.comms_completed.fetch_add(1, Ordering::Relaxed);
            self.comm_wait_ns.fetch_add(
                self.now_ns().saturating_sub(done.posted_ns),
                Ordering::Relaxed,
            );
            // Off-core completion: no worker "ran" this transition, so
            // the event carries no core; the request id ties it back to
            // its CommPosted.
            self.recorder
                .comm_completed(done.node.id, done.req, usize::MAX, self.probe_now());
            let core = local.unwrap_or(self.n_workers);
            for succ in done
                .node
                .complete_with(&*self.recorder, core, self.probe_now())
                .ready
            {
                self.make_ready(succ, local);
            }
            if self.tracker.completed() {
                self.parker.notify_all();
            }
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        any
    }

    /// Report this rank fully idle to the deadlock detector. Only
    /// meaningful right after `find_task` and `progress_comm` both came
    /// up empty with no task in flight. Returns true if the report
    /// completed a deadlock declaration (forced completions are queued;
    /// the caller should drain instead of parking).
    pub fn comm_stall(&self) -> bool {
        self.in_flight.load(Ordering::SeqCst) == 0 && self.comm.world.note_stall(self.comm.rank)
    }

    /// Try to execute one task from outside the worker pool (producer
    /// helping). Returns whether a task was run.
    pub fn help_once(&self) -> bool {
        if let Some(node) = self.find_task(None) {
            self.run_task(node, None, self.n_workers);
            true
        } else {
            false
        }
    }

    /// Help execute until the tracker reports quiescence, parking — not
    /// sleep-polling — when no work is available. The producer-side
    /// implicit barrier behind `wait_all`, `taskwait`, and persistent
    /// iteration boundaries.
    ///
    /// This is also where the rank reports comm stalls: quiescence can be
    /// unreachable when detached requests wait on peers, so when the
    /// barrier is fully idle (no task found, no comm progress, nothing in
    /// flight) it tells the world — if every rank is in the same state,
    /// the detector fires and force-drains, letting the barrier exit with
    /// a [`CommError`] instead of hanging.
    pub fn barrier(&self) {
        let mut reported = false;
        loop {
            if self.help_once() || self.progress_comm(None) {
                continue;
            }
            if self.tracker.quiescent() {
                break;
            }
            // Two-phase park (see `worker_loop`): re-check quiescence
            // and the queues after taking the ticket, so neither the
            // completion nor a push racing with us can be missed — the
            // notify it performs invalidates our ticket.
            let ticket = self.parker.prepare();
            if self.tracker.quiescent() {
                break;
            }
            if self.help_once() || self.progress_comm(None) {
                continue;
            }
            reported = true;
            if self.comm_stall() {
                continue; // detector fired: drain the forced completions
            }
            self.parks.fetch_add(1, Ordering::Relaxed);
            self.parker.park(ticket);
            self.unparks.fetch_add(1, Ordering::Relaxed);
        }
        if reported {
            // Leaving the barrier for more discovery: clear the stall
            // flag eagerly (stale reports are also invalidated by the
            // epoch, this just keeps the detector's view tidy).
            self.comm.world.note_active(self.comm.rank);
        }
    }
}

fn worker_loop(pool: Arc<Pool>, idx: usize) {
    loop {
        if let Some(node) = pool.find_task(Some(idx)) {
            pool.run_task(node, Some(idx), idx);
            continue;
        }
        if pool.progress_comm(Some(idx)) {
            continue;
        }
        // Two-phase park: take a ticket, re-check every wake condition,
        // then sleep. Any notify between `prepare` and `park` makes
        // `park` return immediately, so a task pushed (or shutdown
        // raised) in that window cannot be missed. Comm deliveries
        // notify through the waker the pool registered with the world.
        let ticket = pool.parker.prepare();
        if let Some(node) = pool.find_task(Some(idx)) {
            pool.run_task(node, Some(idx), idx);
            continue;
        }
        if pool.progress_comm(Some(idx)) {
            continue;
        }
        // Exit only once the pool is both shutting down *and* drained:
        // `quiescent` (not just an empty queue) means no in-flight task
        // can spawn more work, so nothing is abandoned by leaving.
        // Acquire pairs with the Release store in `Executor::drop`.
        if pool.shutdown.load(Ordering::Acquire) {
            if pool.tracker.quiescent() {
                return;
            }
            // Shutting down but not quiescent: only detached requests
            // can be outstanding (the producer is gone). Report the
            // stall so an unmatched request becomes a CommError drain
            // instead of a hung join.
            if pool.comm_stall() {
                continue;
            }
        }
        pool.parks.fetch_add(1, Ordering::Relaxed);
        pool.parker.park(ticket);
        pool.unparks.fetch_add(1, Ordering::Relaxed);
    }
}

/// The work-stealing executor: a pool of worker threads plus entry points
/// for sessions and persistent regions.
pub struct Executor {
    pool: Arc<Pool>,
    cfg: ExecConfig,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawn an executor with `cfg.n_workers` worker threads on the
    /// lock-free scheduler fast path (Chase–Lev deques + injector).
    pub fn new(cfg: ExecConfig) -> Executor {
        Self::with_queue_backend(cfg, QueueBackend::LockFree)
    }

    /// Spawn an executor with an explicit [`QueueBackend`] — the mutex
    /// baseline is kept selectable so `scheduler_throughput` (and any
    /// future A/B) can measure the lock-free path against it.
    ///
    /// The executor is rank 0 of its own private 1-rank [`CommWorld`], so
    /// detach semantics hold unconditionally: a comm task always releases
    /// its core at post time, even on a lone executor.
    pub fn with_queue_backend(cfg: ExecConfig, backend: QueueBackend) -> Executor {
        let world = Arc::new(CommWorld::new(1, CommConfig::default()));
        Self::with_comm_world(cfg, backend, world, 0)
    }

    /// Spawn an executor as rank `rank` of a shared [`CommWorld`] — one
    /// pool per rank, all inside this process, exchanging messages
    /// through the world's mailboxes (the thread back-end's multi-rank
    /// mode).
    pub fn with_comm_world(
        cfg: ExecConfig,
        backend: QueueBackend,
        world: Arc<CommWorld>,
        rank: u32,
    ) -> Executor {
        assert!(cfg.n_workers >= 1, "need at least one worker");
        assert!(rank < world.n_ranks(), "rank out of range for comm world");
        let record = cfg.profile || cfg.record_events;
        let pool = Arc::new(Pool {
            queues: ReadyQueues::with_backend(cfg.policy, cfg.n_workers, backend),
            tracker: Arc::new(ReadyTracker::new()),
            gate: HoldGate::new(false),
            throttle: ThrottleGate::new(cfg.throttle),
            shutdown: AtomicBool::new(false),
            parker: Arc::new(Parker::new()),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            profile: cfg.profile,
            record,
            recorder: Arc::new(EventRecorder::new(cfg.n_workers + 1, record)),
            start: Instant::now(),
            last_discovery_ns: AtomicU64::new(0),
            throttle_stalls: AtomicU64::new(0),
            throttle_stall_ns: AtomicU64::new(0),
            comms_posted: AtomicU64::new(0),
            comms_completed: AtomicU64::new(0),
            comm_wait_ns: AtomicU64::new(0),
            in_flight: AtomicU32::new(0),
            comm: CommCtx {
                world: Arc::clone(&world),
                rank,
            },
            n_workers: cfg.n_workers,
        });
        // Busy probe via Weak: the pool owns an Arc to the world, so the
        // world must not own one back (the closure outlives the pool on
        // shared worlds; an upgrade failure just means "not busy").
        let weak = Arc::downgrade(&pool);
        world.register_rank(rank, Arc::clone(&pool.parker), move || {
            weak.upgrade()
                .is_some_and(|p| p.in_flight.load(Ordering::SeqCst) != 0 || p.tracker.ready() != 0)
        });
        let workers = (0..cfg.n_workers)
            .map(|idx| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("ptdg-worker-{idx}"))
                    .spawn(move || worker_loop(pool, idx))
                    .expect("spawn worker")
            })
            .collect();
        Executor { pool, cfg, workers }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.cfg.n_workers
    }

    /// The configuration this executor was built with.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    pub(crate) fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// The communication world this executor posts into.
    pub fn comm_world(&self) -> &Arc<CommWorld> {
        &self.pool.comm.world
    }

    /// This executor's rank within its communication world.
    pub fn comm_rank(&self) -> u32 {
        self.pool.comm.rank
    }

    /// The error recorded by the world's deadlock detector, if it fired
    /// (unmatched requests were force-completed to let the run drain).
    pub fn comm_error(&self) -> Option<CommError> {
        self.pool.comm.world.take_error()
    }

    /// Start a discovery/execution session (overlapped: tasks run while
    /// later tasks are still being discovered).
    pub fn session(&self, opts: OptConfig) -> Session<'_> {
        Session::new(self, opts, false, false)
    }

    /// Start a *non-overlapped* session (paper Table 1): all ready tasks
    /// are held until `wait_all`, so the graph is fully discovered before
    /// execution starts.
    pub fn session_non_overlapped(&self, opts: OptConfig) -> Session<'_> {
        Session::new(self, opts, true, false)
    }

    /// Start a capturing session: streams and executes normally while a
    /// [`crate::graph::TemplateRecorder`] mirrors every node and edge.
    /// Used by persistent regions, graph equivalence checks, and
    /// post-mortem critical-path analysis (which needs the executed DAG).
    pub fn session_capturing(&self, opts: OptConfig) -> Session<'_> {
        Session::new(self, opts, false, true)
    }

    /// Start a persistent region (optimization (p)).
    pub fn persistent_region(&self, opts: OptConfig) -> PersistentRegion<'_> {
        PersistentRegion::new(self, opts)
    }

    /// Collect and clear the recorded trace (requires `cfg.profile`).
    pub fn take_trace(&self) -> Trace {
        self.take_obs().trace
    }

    /// Collect and clear everything observability recorded — spans,
    /// lifecycle events, and the kernel counters this executor can fill
    /// on its own (discovery statistics are the session's to add via
    /// [`crate::obs::RtCounters::absorb_discovery`]). Wall-clock
    /// timestamps are rebased to the earliest record.
    pub fn take_obs(&self) -> ObsReport {
        // Relaxed loads throughout: these are post-quiescence statistics;
        // the `wait_all` barrier that preceded this call is the
        // synchronization point.
        let mut obs = self.pool.recorder.finish(
            true,
            self.cfg.n_workers + 1,
            self.pool.last_discovery_ns.load(Ordering::Relaxed),
        );
        let c = &mut obs.counters;
        let created = self.pool.tracker.created_total() as u64;
        c.tasks_created = created;
        c.tasks_completed = created - self.pool.tracker.live() as u64;
        c.ready_hwm = self.pool.tracker.ready_hwm() as u64;
        c.live_hwm = self.pool.tracker.live_hwm() as u64;
        c.gate_held = self.pool.gate.held_total();
        c.throttle_stalls = self.pool.throttle_stalls.load(Ordering::Relaxed);
        c.throttle_stall_ns = self.pool.throttle_stall_ns.load(Ordering::Relaxed);
        c.comms_posted = self.pool.comms_posted.load(Ordering::Relaxed);
        c.comms_completed = self.pool.comms_completed.load(Ordering::Relaxed);
        c.comm_wait_ns = self.pool.comm_wait_ns.load(Ordering::Relaxed);
        c.unexpected_msgs = self.pool.comm.world.unexpected_count(self.pool.comm.rank);
        let (attempts, successes) = self.pool.queues.steal_stats();
        c.steal_attempts = attempts;
        c.steal_successes = successes;
        c.parks = self.pool.parks.load(Ordering::Relaxed);
        c.unparks = self.pool.unparks.load(Ordering::Relaxed);
        obs
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.pool.release_gate();
        // Release pairs with the Acquire load in `worker_loop`; the
        // `notify_all` epoch bump (SeqCst) makes the store visible to
        // already-parked workers when they wake.
        self.pool.shutdown.store(true, Ordering::Release);
        self.pool.parker.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
