//! The multi-core cache hierarchy.

use crate::{BlockId, BlockRange, LruCache, MemConfig};

/// Counters produced by probing one task footprint.
///
/// Counter semantics follow PAPI naming used by the paper:
/// `l1_misses` = accesses that missed L1 (PAPI `L1_DCM`),
/// `l2_misses` = accesses that missed L2 (PAPI `L2_DCM`),
/// `l3_misses` = accesses that missed L3 and went to DRAM (PAPI `L3_TCM`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Blocks probed.
    pub accesses: u64,
    /// Probes missing the private L1.
    pub l1_misses: u64,
    /// Probes missing the private L2.
    pub l2_misses: u64,
    /// Probes missing the shared L3 (served by DRAM).
    pub l3_misses: u64,
}

impl AccessStats {
    /// Accumulate another stats record into this one.
    pub fn merge(&mut self, other: AccessStats) {
        self.accesses += other.accesses;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.l3_misses += other.l3_misses;
    }

    /// Stall cycles implied by these counters under `cfg`'s latencies.
    ///
    /// A probe served by L2 stalls `l1_miss_cycles`; served by L3 stalls
    /// additionally `l2_miss_cycles`; served by DRAM additionally
    /// `l3_miss_cycles` — i.e. miss costs accumulate down the hierarchy.
    pub fn stall_cycles(&self, cfg: &MemConfig) -> StallCycles {
        StallCycles {
            l1: self.l1_misses * cfg.l1_miss_cycles,
            l2: self.l2_misses * cfg.l2_miss_cycles,
            l3: self.l3_misses * cfg.l3_miss_cycles,
        }
    }

    /// Bytes fetched from DRAM.
    pub fn dram_bytes(&self, cfg: &MemConfig) -> u64 {
        self.l3_misses * cfg.block_bytes
    }
}

/// Stall-cycle breakdown per miss level (paper Fig. 2(f)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallCycles {
    /// Cycles stalled on L1 misses (data served by L2).
    pub l1: u64,
    /// Cycles stalled on L2 misses (data served by L3).
    pub l2: u64,
    /// Cycles stalled on L3 misses (data served by DRAM).
    pub l3: u64,
}

impl StallCycles {
    /// Total stalled cycles.
    pub fn total(&self) -> u64 {
        self.l1 + self.l2 + self.l3
    }
}

/// Private L1/L2 per core plus one shared L3, all LRU.
#[derive(Debug)]
pub struct MemoryHierarchy {
    cfg: MemConfig,
    l1: Vec<LruCache>,
    l2: Vec<LruCache>,
    l3: LruCache,
    totals: AccessStats,
}

impl MemoryHierarchy {
    /// Build a hierarchy for `n_cores` cores.
    pub fn new(cfg: MemConfig, n_cores: usize) -> Self {
        let l1 = (0..n_cores)
            .map(|_| LruCache::new(cfg.l1_blocks()))
            .collect();
        let l2 = (0..n_cores)
            .map(|_| LruCache::new(cfg.l2_blocks()))
            .collect();
        let l3 = LruCache::new(cfg.l3_blocks());
        MemoryHierarchy {
            cfg,
            l1,
            l2,
            l3,
            totals: AccessStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of modelled cores.
    pub fn n_cores(&self) -> usize {
        self.l1.len()
    }

    /// Probe a single block from `core`, updating all levels (inclusive).
    pub fn touch(&mut self, core: usize, block: BlockId) -> AccessStats {
        let mut s = AccessStats {
            accesses: 1,
            ..Default::default()
        };
        let l1_hit = self.l1[core].access(block);
        if !l1_hit {
            s.l1_misses = 1;
            let l2_hit = self.l2[core].access(block);
            if !l2_hit {
                s.l2_misses = 1;
                let l3_hit = self.l3.access(block);
                if !l3_hit {
                    s.l3_misses = 1;
                }
            } else {
                // Keep L3 inclusive and recency-correct on L2 hits.
                self.l3.access(block);
            }
        }
        self.totals.merge(s);
        s
    }

    /// Probe a whole task footprint from `core`.
    pub fn touch_footprint(&mut self, core: usize, footprint: &[BlockRange]) -> AccessStats {
        let mut s = AccessStats::default();
        for range in footprint {
            for block in range.iter() {
                s.merge(self.touch(core, block));
            }
        }
        s
    }

    /// Cumulative counters since construction (paper Fig. 2(e) series).
    pub fn totals(&self) -> AccessStats {
        self.totals
    }

    /// Drop all cache contents and counters.
    pub fn reset(&mut self) {
        for c in &mut self.l1 {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        self.l3.clear();
        self.totals = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MemoryHierarchy {
        // 2 cores; L1 = 2 blocks, L2 = 8 blocks, L3 = 32 blocks.
        let cfg = MemConfig {
            block_bytes: 512,
            l1_bytes: 1024,
            l2_bytes: 4096,
            l3_bytes: 16384,
            ..MemConfig::default()
        };
        MemoryHierarchy::new(cfg, 2)
    }

    #[test]
    fn cold_access_misses_everywhere() {
        let mut h = tiny();
        let s = h.touch(0, 42);
        assert_eq!(
            s,
            AccessStats {
                accesses: 1,
                l1_misses: 1,
                l2_misses: 1,
                l3_misses: 1
            }
        );
    }

    #[test]
    fn warm_access_hits_l1() {
        let mut h = tiny();
        h.touch(0, 42);
        let s = h.touch(0, 42);
        assert_eq!(s.l1_misses, 0);
        assert_eq!(s.accesses, 1);
    }

    #[test]
    fn other_core_hits_shared_l3_only() {
        let mut h = tiny();
        h.touch(0, 42);
        let s = h.touch(1, 42);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 1);
        assert_eq!(s.l3_misses, 0, "block must be resident in shared L3");
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = tiny();
        h.touch(0, 1);
        h.touch(0, 2);
        h.touch(0, 3); // L1 holds {2,3}; 1 evicted from L1 but resident in L2
        let s = h.touch(0, 1);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 0);
    }

    #[test]
    fn footprint_fitting_l2_reuses_across_sweeps() {
        let mut h = tiny();
        let fp = [BlockRange::new(0, 8)]; // exactly L2-sized
        h.touch_footprint(0, &fp);
        let s = h.touch_footprint(0, &fp);
        assert_eq!(s.l2_misses, 0, "L2-resident working set must not miss L2");
        assert_eq!(s.l3_misses, 0);
    }

    #[test]
    fn footprint_exceeding_l3_thrashes_dram() {
        let mut h = tiny();
        let fp = [BlockRange::new(0, 33)]; // L3 is 32 blocks; cyclic sweep thrashes
        h.touch_footprint(0, &fp);
        let s = h.touch_footprint(0, &fp);
        assert_eq!(
            s.l3_misses, 33,
            "cyclic LRU sweep over capacity+1 misses all"
        );
    }

    #[test]
    fn stall_cycles_accumulate_per_level() {
        let cfg = MemConfig::default();
        let s = AccessStats {
            accesses: 10,
            l1_misses: 10,
            l2_misses: 4,
            l3_misses: 1,
        };
        let st = s.stall_cycles(&cfg);
        assert_eq!(st.l1, 10 * cfg.l1_miss_cycles);
        assert_eq!(st.l2, 4 * cfg.l2_miss_cycles);
        assert_eq!(st.l3, cfg.l3_miss_cycles);
        assert_eq!(st.total(), st.l1 + st.l2 + st.l3);
    }

    #[test]
    fn totals_track_all_traffic() {
        let mut h = tiny();
        h.touch_footprint(0, &[BlockRange::new(0, 4)]);
        h.touch_footprint(1, &[BlockRange::new(0, 4)]);
        let t = h.totals();
        assert_eq!(t.accesses, 8);
        assert_eq!(t.l3_misses, 4, "second core reuses L3");
    }

    #[test]
    fn reset_clears_state() {
        let mut h = tiny();
        h.touch(0, 7);
        h.reset();
        assert_eq!(h.totals(), AccessStats::default());
        let s = h.touch(0, 7);
        assert_eq!(s.l3_misses, 1);
    }
}
