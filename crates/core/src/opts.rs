//! TDG-discovery optimization switches (paper §3).

/// Which discovery optimizations are enabled.
///
/// The paper's optimization **(a)** — minimizing the `depend` lists written
/// in user code — cannot live in the runtime; applications expose it as
/// their own `fused_deps` flag. **(p)** — the persistent task sub-graph — is
/// selected by *how* the program is run (through
/// [`crate::exec::PersistentRegion`] / a captured
/// [`crate::graph::GraphTemplate`]) rather than by a flag here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptConfig {
    /// Optimization **(b)**: O(1) duplicate-edge elimination at discovery.
    ///
    /// Implemented in GCC but not LLVM; implemented by the paper in
    /// MPC-OMP. When disabled, a task depending on the same predecessor
    /// through several handles receives several (redundant but harmless)
    /// edges.
    pub dedup_edges: bool,
    /// Optimization **(c)**: insert an empty redirect node after an
    /// `inoutset` group of `m ≥ 2` tasks so that `n` successors cost
    /// `m + n` edges instead of `m·n`.
    ///
    /// Implemented in LLVM (D97085) but not GCC; implemented by the paper
    /// in MPC-OMP.
    pub inoutset_redirect: bool,
}

impl OptConfig {
    /// Everything off — the baseline "none" row of paper Table 2.
    pub fn none() -> Self {
        OptConfig {
            dedup_edges: false,
            inoutset_redirect: false,
        }
    }

    /// Both runtime-side optimizations on: (b) + (c).
    pub fn all() -> Self {
        OptConfig {
            dedup_edges: true,
            inoutset_redirect: true,
        }
    }

    /// Only (b), the GCC-like configuration.
    pub fn dedup_only() -> Self {
        OptConfig {
            dedup_edges: true,
            inoutset_redirect: false,
        }
    }

    /// Only (c), the LLVM-like configuration.
    pub fn redirect_only() -> Self {
        OptConfig {
            dedup_edges: false,
            inoutset_redirect: true,
        }
    }

    /// Short label such as `"b+c"` for experiment tables.
    pub fn label(&self) -> &'static str {
        match (self.dedup_edges, self.inoutset_redirect) {
            (false, false) => "none",
            (true, false) => "(b)",
            (false, true) => "(c)",
            (true, true) => "(b)+(c)",
        }
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(!OptConfig::none().dedup_edges);
        assert!(!OptConfig::none().inoutset_redirect);
        assert!(OptConfig::all().dedup_edges);
        assert!(OptConfig::all().inoutset_redirect);
        assert!(OptConfig::dedup_only().dedup_edges);
        assert!(!OptConfig::dedup_only().inoutset_redirect);
        assert!(OptConfig::redirect_only().inoutset_redirect);
        assert_eq!(OptConfig::default(), OptConfig::all());
    }

    #[test]
    fn labels() {
        assert_eq!(OptConfig::none().label(), "none");
        assert_eq!(OptConfig::dedup_only().label(), "(b)");
        assert_eq!(OptConfig::redirect_only().label(), "(c)");
        assert_eq!(OptConfig::all().label(), "(b)+(c)");
    }
}
