//! Work descriptors: what a task *costs*, independent of what it computes.
//!
//! The real executor runs a task's closure; the virtual executor
//! (`ptdg-simrt`) instead interprets the task's [`WorkDesc`] — its flop
//! count and memory footprint — through the cache/DRAM model, and its
//! optional [`CommOp`] through the simulated interconnect. Applications fill
//! both so the same task program runs on either back-end.

use crate::handle::DataHandle;

/// A byte sub-range of a registered region touched by a task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandleSlice {
    /// The region.
    pub handle: DataHandle,
    /// Byte offset within the region.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl HandleSlice {
    /// The whole region (offset 0, caller supplies the region length).
    pub fn whole(handle: DataHandle, len: u64) -> Self {
        HandleSlice {
            handle,
            offset: 0,
            len,
        }
    }
}

/// Cost model description of a task's computation.
#[derive(Clone, Debug, Default)]
pub struct WorkDesc {
    /// Floating-point (or equivalent) operations executed by the task body.
    pub flops: f64,
    /// Memory regions/slices the body touches (its cache footprint).
    pub footprint: Vec<HandleSlice>,
}

impl WorkDesc {
    /// A descriptor with `flops` and no memory footprint.
    pub fn compute(flops: f64) -> Self {
        WorkDesc {
            flops,
            footprint: Vec::new(),
        }
    }

    /// Add a footprint slice (builder style).
    pub fn touching(mut self, slice: HandleSlice) -> Self {
        self.footprint.push(slice);
        self
    }

    /// Add whole-region footprints for each handle, with lengths from a
    /// lookup function (usually `HandleSpace::info(h).bytes`).
    pub fn touching_whole<F: Fn(DataHandle) -> u64>(
        mut self,
        handles: &[DataHandle],
        len_of: F,
    ) -> Self {
        for &h in handles {
            self.footprint.push(HandleSlice::whole(h, len_of(h)));
        }
        self
    }

    /// Total bytes in the footprint.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint.iter().map(|s| s.len).sum()
    }
}

/// An MPI-style operation initiated from a task body.
///
/// All operations are non-blocking; a task carrying a `CommOp` has OpenMP
/// `detach` semantics — the task *completes* (and releases its successors)
/// only when the request completes, but the executing core is released as
/// soon as the request is posted. This mirrors Listing 1 of the paper where
/// `MPI_Isend`/`MPI_Irecv` tasks use `detach(event)`.
///
/// Both back-ends implement the contract: the DES simulator routes the
/// request through its virtual-time network, and the thread executor posts
/// it into the in-process [`crate::comm::CommWorld`], deferring the node's
/// completion to a progress engine polled from worker idle paths. Either
/// way the request is narrated as `CommPosted`/`CommCompleted` events
/// sharing a request id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CommOp {
    /// Non-blocking send of `bytes` to `peer` with matching `tag`.
    Isend {
        /// Destination rank.
        peer: u32,
        /// Message size in bytes.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Non-blocking receive of `bytes` from `peer` with matching `tag`.
    Irecv {
        /// Source rank.
        peer: u32,
        /// Message size in bytes.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Non-blocking all-reduce of `bytes` across every rank of the job
    /// (the `MPI_Iallreduce` that reduces LULESH's dynamic time step).
    Iallreduce {
        /// Payload size in bytes.
        bytes: u64,
    },
}

impl CommOp {
    /// Message payload size in bytes.
    pub fn bytes(&self) -> u64 {
        match *self {
            CommOp::Isend { bytes, .. }
            | CommOp::Irecv { bytes, .. }
            | CommOp::Iallreduce { bytes } => bytes,
        }
    }

    /// Whether this is a collective operation.
    pub fn is_collective(&self) -> bool {
        matches!(self, CommOp::Iallreduce { .. })
    }

    /// Whether this operation sends data to a peer (P2P send side).
    pub fn is_send(&self) -> bool {
        matches!(self, CommOp::Isend { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::HandleSpace;

    #[test]
    fn workdesc_accumulates_footprint() {
        let mut s = HandleSpace::new();
        let a = s.region("a", 100);
        let b = s.region("b", 200);
        let w = WorkDesc::compute(1e6)
            .touching(HandleSlice::whole(a, 100))
            .touching(HandleSlice {
                handle: b,
                offset: 50,
                len: 70,
            });
        assert_eq!(w.footprint_bytes(), 170);
        assert_eq!(w.flops, 1e6);
        assert_eq!(w.footprint.len(), 2);
    }

    #[test]
    fn touching_whole_uses_lookup() {
        let mut s = HandleSpace::new();
        let a = s.region("a", 100);
        let b = s.region("b", 200);
        let space = s.clone();
        let w = WorkDesc::compute(0.0).touching_whole(&[a, b], |h| space.info(h).bytes);
        assert_eq!(w.footprint_bytes(), 300);
    }

    #[test]
    fn comm_op_accessors() {
        let send = CommOp::Isend {
            peer: 3,
            bytes: 4096,
            tag: 7,
        };
        let coll = CommOp::Iallreduce { bytes: 8 };
        assert_eq!(send.bytes(), 4096);
        assert!(send.is_send());
        assert!(!send.is_collective());
        assert!(coll.is_collective());
        assert!(!coll.is_send());
        assert_eq!(coll.bytes(), 8);
    }
}
