//! One `RankProgram`, two back-ends: the same LULESH configuration runs
//! on the real work-stealing thread pool and under the discrete-event
//! simulator through the single `ptdg::run` entry point, and the
//! discovered dependency graphs are identical because both back-ends sit
//! on the same runtime kernel (`ptdg_core::rt`).
//!
//! ```sh
//! cargo run --release --example two_backends
//! ```

use ptdg::core::exec::{ExecConfig, ThreadsConfig};
use ptdg::core::opts::OptConfig;
use ptdg::lulesh::{LuleshConfig, LuleshTask};
use ptdg::simrt::{MachineConfig, SimConfig};
use ptdg::{run, Backend};

fn main() {
    let prog = LuleshTask::new(LuleshConfig::single(6, 2, 4));

    let threads = run(
        &prog.space,
        &prog,
        Backend::Threads(ThreadsConfig {
            exec: ExecConfig {
                n_workers: 4,
                ..ExecConfig::default()
            },
            opts: OptConfig::all(),
            capture_graph: true,
            ..ThreadsConfig::default()
        }),
    );

    let sim = run(
        &prog.space,
        &prog,
        Backend::Sim {
            machine: MachineConfig::tiny(4),
            cfg: SimConfig {
                opts: OptConfig::all(),
                capture_graph: true,
                ..SimConfig::default()
            },
        },
    );

    let (ts, ss) = (threads.stats(), sim.stats());
    println!("LULESH s=6, 2 iterations, TPL=4 — one program, two back-ends\n");
    println!("{:<22} {:>12} {:>12}", "", "threads", "simulator");
    println!(
        "{:<22} {:>12} {:>12}",
        "tasks discovered", ts.tasks, ss.tasks
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "edges created", ts.edges_created, ss.edges_created
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "redirect nodes", ts.redirect_nodes, ss.redirect_nodes
    );

    let tg = &threads.graphs()[0];
    let sg = &sim.graphs()[0];
    println!(
        "\ncaptured graphs: threads {} nodes / {} edges, sim {} nodes / {} edges",
        tg.n_tasks(),
        tg.n_edges(),
        sg.n_tasks(),
        sg.n_edges()
    );
    assert_eq!(tg.n_tasks(), sg.n_tasks());
    assert_eq!(tg.n_edges(), sg.n_edges());
    println!("graphs match — the kernel makes divergence impossible by construction");

    let wall = threads.threads().unwrap().elapsed_ns as f64 * 1e-9;
    let virt = sim.sim().unwrap().total_time_s();
    println!("\nthreads wall-clock {wall:.4} s · simulated virtual time {virt:.4} s");
}
