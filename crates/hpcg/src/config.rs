//! HPCG configuration.

/// Flops per row of the 27-point SpMV (27 multiply-adds).
pub const F_SPMV: f64 = 54.0;
/// Flops per element of a dot-product partial.
pub const F_DOT: f64 = 2.0;
/// Flops per element of an axpy.
pub const F_AXPY: f64 = 2.0;

/// One HPCG run configuration.
#[derive(Clone, Debug)]
pub struct HpcgConfig {
    /// Grid points per edge per rank (local problem is `nx³`).
    pub nx: usize,
    /// CG iterations.
    pub iterations: u64,
    /// Vector blocks (the paper's TPL sweep of Fig. 9).
    pub tpl: usize,
    /// Ranks per edge of the cubic process grid.
    pub px: usize,
}

impl HpcgConfig {
    /// Single-rank configuration.
    pub fn single(nx: usize, iterations: u64, tpl: usize) -> HpcgConfig {
        HpcgConfig {
            nx,
            iterations,
            tpl,
            px: 1,
        }
    }

    /// Local rows.
    pub fn n_rows(&self) -> usize {
        self.nx * self.nx * self.nx
    }

    /// Number of MPI ranks.
    pub fn n_ranks(&self) -> u32 {
        (self.px * self.px * self.px) as u32
    }

    /// Effective number of vector blocks (clamped to the row count).
    pub fn blocks(&self) -> usize {
        self.tpl.min(self.n_rows()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = HpcgConfig::single(16, 10, 24);
        assert_eq!(c.n_rows(), 4096);
        assert_eq!(c.n_ranks(), 1);
        assert_eq!(c.blocks(), 24);
    }

    #[test]
    fn blocks_clamp() {
        let c = HpcgConfig::single(2, 1, 1000);
        assert_eq!(c.blocks(), 8);
    }
}
