//! Chase–Lev work-stealing deque: the lock-free per-worker lane of the
//! scheduler fast path.
//!
//! One [`WorkDeque`] belongs to one worker (the *owner*), which pushes and
//! pops at the bottom end (LIFO — the depth-first policy's data-reuse
//! order). Any other thread may [`WorkDeque::steal`] from the top end
//! (FIFO — thieves take the *oldest* task, exactly the order the
//! `Mutex<VecDeque>` lanes used `pop_front` for). The algorithm is the
//! weak-memory-model formulation of Lê, Pop, Cohen & Zappa Nardelli,
//! *Correct and Efficient Work-Stealing for Weak Memory Models* (PPoPP'13);
//! the memory orderings below follow that paper and are individually
//! justified in the §4.3 invariant table of `DESIGN.md`.
//!
//! # Ownership protocol (the invariant that makes this safe)
//!
//! `push` and `pop` may only be called by one thread at a time — the
//! owner. `steal` may be called by any number of threads concurrently.
//! The executor upholds this by construction: worker *i* is the only
//! thread that ever pushes to or pops from deque *i* (the producer routes
//! its tasks through the global injector instead). A fully
//! single-threaded caller (the DES simulator's model tests) trivially
//! satisfies the protocol.
//!
//! # Reclamation
//!
//! Growing replaces the ring buffer; a concurrent thief may still be
//! reading the old one. Instead of an epoch/hazard scheme, retired
//! buffers are parked in a side list and freed when the deque drops:
//! capacity doubles on every grow, so the retired memory is bounded by
//! twice the peak buffer size — a deliberate simplicity/space trade.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; the deque may still
    /// hold tasks — callers should retry (possibly elsewhere) rather than
    /// conclude emptiness.
    Abort,
    /// Stole the oldest task.
    Success(T),
}

/// Fixed-capacity ring of possibly-uninitialized slots. Which slots are
/// live is tracked solely by the deque's `top`/`bottom` indices.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        Buffer {
            slots: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: cap - 1,
        }
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    /// Write `value` at ring index `i`. Caller must own the slot.
    unsafe fn write(&self, i: isize, value: T) {
        (*self.slots[i as usize & self.mask].get()).write(value);
    }

    /// Read the value at ring index `i` as an owned bit-copy. The caller
    /// must either own the slot (owner pop, successful steal CAS) or
    /// `mem::forget` the copy (failed steal CAS) so it is never dropped
    /// twice.
    unsafe fn read(&self, i: isize) -> T {
        (*self.slots[i as usize & self.mask].get()).assume_init_read()
    }
}

/// A lock-free single-owner, multi-thief deque.
pub struct WorkDeque<T> {
    /// Steal end. Only ever advances (monotone), via CAS.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it.
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by grow, kept alive for late thieves (freed on
    /// drop). Locked only on the grow path — never on push/pop/steal.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the deque hands each element to exactly one consumer; `T` only
// needs to cross threads, not be shared (`&T` is never exposed).
unsafe impl<T: Send> Send for WorkDeque<T> {}
unsafe impl<T: Send> Sync for WorkDeque<T> {}

const INITIAL_CAP: usize = 64;

impl<T> WorkDeque<T> {
    pub fn new() -> WorkDeque<T> {
        WorkDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(INITIAL_CAP)))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Double the buffer, copying the live range `[top, bottom)`. Owner
    /// only (called from `push`). The old buffer is retired, not freed: a
    /// concurrent thief may be mid-read in it, and its bits for indices
    /// `< top` stay valid forever.
    fn grow(&self, top: isize, bottom: isize) -> *mut Buffer<T> {
        let old = self.buffer.load(Ordering::Relaxed);
        // SAFETY: only the owner calls grow, and `old` is the current
        // buffer it installed (or the initial one).
        let new = unsafe {
            let new = Box::into_raw(Box::new(Buffer::new((*old).cap() * 2)));
            for i in top..bottom {
                (*new).write(i, (*old).read(i));
            }
            new
        };
        // Publish the new buffer before the push that needed it bumps
        // `bottom`: thieves load the buffer with `Acquire` and the slot
        // copies above must be visible to them.
        self.buffer.store(new, Ordering::Release);
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(old);
        new
    }

    /// Owner: push `value` on the LIFO end.
    pub fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        // `Acquire` pairs with thieves' CAS on `top`: seeing their
        // increment means the stolen slot is reusable.
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        // SAFETY: owner-only access to bottom and the buffer.
        unsafe {
            if b - t >= (*buf).cap() as isize {
                buf = self.grow(t, b);
            }
            (*buf).write(b, value);
        }
        // `Release` publishes the slot write to thieves that `Acquire`
        // load `bottom`.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner: pop from the LIFO end.
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the `bottom` store above against the
        // `top` load below — the heart of the algorithm: either a racing
        // thief sees the reserved (decremented) bottom, or we see its
        // `top` increment. Without it both sides could take the last task.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Single task left: race the thieves for it via `top`.
                if self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // A thief won the last task.
                    self.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                self.bottom.store(b + 1, Ordering::Relaxed);
            }
            // SAFETY: index b is owned — either b > top (no thief can
            // reach it) or the CAS above claimed it.
            Some(unsafe { (*buf).read(b) })
        } else {
            // Was empty; undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief: steal from the FIFO end. Safe to call from any thread.
    pub fn steal(&self) -> Steal<T> {
        // `Acquire` on `top` pairs with other thieves' `SeqCst` CAS.
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` load before the `bottom` load (mirrors the
        // owner-side fence in `pop`).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // `Acquire` pairs with `grow`'s `Release` store: the copied slots
        // are visible in whichever buffer we see.
        let buf = self.buffer.load(Ordering::Acquire);
        // SAFETY: speculative bit-copy of slot `t`; ownership is only
        // assumed if the CAS below claims it, otherwise the copy is
        // forgotten (never dropped). Retired buffers outlive all thieves,
        // so the read is in-bounds even if the owner grew concurrently.
        let value = unsafe { (*buf).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            std::mem::forget(value);
            return Steal::Abort;
        }
        Steal::Success(value)
    }

    /// Owner-perspective emptiness (diagnostics; racy under concurrency).
    pub fn is_empty(&self) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        t >= b
    }
}

impl<T> Default for WorkDeque<T> {
    fn default() -> Self {
        WorkDeque::new()
    }
}

impl<T> Drop for WorkDeque<T> {
    fn drop(&mut self) {
        let buf = *self.buffer.get_mut();
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        // SAFETY: exclusive access (`&mut self`); `[top, bottom)` are the
        // initialized, un-consumed slots.
        unsafe {
            for i in t..b {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
            for retired in self
                .retired
                .get_mut()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
            {
                // Retired buffers hold only bit-copies of values that were
                // moved out (live range was copied forward on grow), so
                // nothing in them is dropped.
                drop(Box::from_raw(retired));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn owner_lifo_thief_fifo() {
        let d = WorkDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Steal::Success(1), "thief takes the oldest");
        assert_eq!(d.pop(), Some(3), "owner takes the newest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn grow_preserves_order() {
        let d = WorkDeque::new();
        for i in 0..(INITIAL_CAP * 4) {
            d.push(i);
        }
        for i in 0..(INITIAL_CAP * 2) {
            assert_eq!(d.steal(), Steal::Success(i));
        }
        for i in (INITIAL_CAP * 2..INITIAL_CAP * 4).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn drop_releases_unconsumed_elements() {
        struct Counting(Arc<AtomicUsize>);
        impl Drop for Counting {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let d = WorkDeque::new();
        for _ in 0..100 {
            d.push(Counting(Arc::clone(&drops)));
        }
        drop(d.pop());
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(d);
        assert_eq!(drops.load(Ordering::SeqCst), 100, "no leak, no double-drop");
    }

    /// Owner pops + many thieves: every pushed value is consumed exactly
    /// once across all threads.
    #[test]
    fn concurrent_steal_consumes_each_value_once() {
        const N: usize = 50_000;
        const THIEVES: usize = 3;
        let d: Arc<WorkDeque<usize>> = Arc::new(WorkDeque::new());
        let seen: Arc<Vec<AtomicUsize>> = Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect());
        let done = Arc::new(AtomicUsize::new(0));
        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let d = Arc::clone(&d);
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            seen[v].fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Abort => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) == 1 {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        // Owner: interleave pushes and pops.
        for i in 0..N {
            d.push(i);
            if i % 3 == 0 {
                if let Some(v) = d.pop() {
                    seen[v].fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        while let Some(v) = d.pop() {
            seen[v].fetch_add(1, Ordering::SeqCst);
        }
        done.store(1, Ordering::SeqCst);
        for th in thieves {
            th.join().unwrap();
        }
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(
                s.load(Ordering::SeqCst),
                1,
                "value {i} consumed exactly once"
            );
        }
    }
}
